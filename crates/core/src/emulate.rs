//! The SLG-WAM emulator (paper §3.2).
//!
//! [`Machine::run`] is the instruction loop; [`Machine::backtrack`] is the
//! failure path, which doubles as the SLG scheduler: generator choice
//! points step through program clauses and then *check completion*;
//! consumer choice points return unconsumed answers or suspend; a leader
//! whose fixpoint check finds no unconsumed answers completes its whole
//! SCC, schedules negation/`tfindall` suspensions, and releases the freeze
//! registers. Scheduling is *batched*: `new_answer` returns answers to the
//! caller eagerly, and suspended consumers are resumed from the completing
//! leader via [`Machine::switch_environments`].

use crate::builtins::{exec_builtin, BAction};
use crate::cell::{Cell, Tag};
use crate::compile::compile_query;
use crate::error::EngineError;
use crate::instr::{CodePtr, Instr, PredId};
use crate::machine::{Alt, Machine, NONE};
use crate::program::PredKind;
use crate::shared::SharedFrame;
use crate::table::{GenMode, NegMode, NegSusp, SharedClaim, SubgoalId, SubgoalState};
use std::rc::Rc;
use std::sync::Arc;
use xsb_obs::{Counter, SlgEvent, Stopwatch};
use xsb_syntax::{well_known, SymbolTable};

/// Result of running the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// the query succeeded; bindings are live in the machine
    Solution,
    /// no (more) solutions
    Exhausted,
}

/// Result of the backtracking scheduler.
enum Bt {
    /// execution resumed; continue the instruction loop
    Resumed,
    /// every choice point is exhausted
    NoMore,
}

/// What a dispatch did.
enum Disp {
    Ok,
    Failed,
}

impl Machine<'_> {
    /// Prepares the machine to run query predicate `qpred` (compiled by
    /// [`compile_query`]) with `nvars` fresh variables, returning their
    /// heap cells in order.
    pub fn setup_query(&mut self, qpred: PredId, nvars: u32) -> Vec<Cell> {
        let mut vars = Vec::with_capacity(nvars as usize);
        for i in 0..nvars {
            let v = self.new_var();
            self.x[i as usize] = v;
            vars.push(v);
        }
        self.push_cp(nvars as u16, Alt::Query);
        self.cont = self.db.snippets.halt;
        self.b0 = self.b;
        let entry = match &self.db.pred(qpred).kind {
            PredKind::Static { entry, .. } => *entry,
            _ => unreachable!("query predicate is compiled static code"),
        };
        self.p = entry;
        vars
    }

    /// Resumes after a reported solution: backtrack into the remaining
    /// alternatives, then continue running.
    pub fn next_solution(&mut self, syms: &mut SymbolTable) -> Result<Outcome, EngineError> {
        match self.backtrack(syms)? {
            Bt::NoMore => Ok(Outcome::Exhausted),
            Bt::Resumed => self.run(syms),
        }
    }

    /// The instruction loop. Wraps [`Machine::run_loop`] so spent fuel is
    /// folded into `steps` and the `Instructions` counter on *every* exit
    /// path (solution, exhaustion, or error).
    pub fn run(&mut self, syms: &mut SymbolTable) -> Result<Outcome, EngineError> {
        let r = self.run_loop(syms);
        self.flush_steps();
        r
    }

    /// Folds dispatches spent from the current fuel block into `steps` and
    /// the cumulative `Instructions` counter. Cheap (two adds) and called
    /// at block refills, builtin dispatch (so `statistics/2` observes an
    /// exact count mid-query), and run-loop exit.
    #[inline]
    pub(crate) fn flush_steps(&mut self) {
        let spent = self.fuel_block - self.fuel;
        if spent > 0 {
            self.steps += spent;
            self.obs.metrics.add(Counter::Instructions, spent);
            self.fuel_block = self.fuel;
        }
    }

    /// Issues the next accounting block. With a step limit the grant never
    /// exceeds the remaining budget, so the limit trips at exactly the
    /// same dispatch boundary as per-instruction checking did (and with
    /// the same observable `steps`/`Instructions` count of `limit + 1`,
    /// charging the dispatch that was about to run).
    #[cold]
    fn refill_fuel(&mut self) -> Result<(), EngineError> {
        // dispatches per block: the hot loop pays one decrement and one
        // predicted branch per instruction instead of a metrics bump plus
        // two step-limit branches
        const FUEL_BLOCK: u64 = 2048;
        self.flush_steps();
        let grant = match self.step_limit {
            Some(limit) if self.steps >= limit => {
                self.steps += 1;
                self.obs.metrics.bump(Counter::Instructions);
                return Err(EngineError::StepLimit);
            }
            Some(limit) => (limit - self.steps).min(FUEL_BLOCK),
            None => FUEL_BLOCK,
        };
        self.fuel = grant;
        self.fuel_block = grant;
        Ok(())
    }

    fn run_loop(&mut self, syms: &mut SymbolTable) -> Result<Outcome, EngineError> {
        macro_rules! fail {
            () => {
                match self.backtrack(syms)? {
                    Bt::Resumed => continue,
                    Bt::NoMore => return Ok(Outcome::Exhausted),
                }
            };
        }
        loop {
            // block-granular step accounting (see refill_fuel)
            if self.fuel == 0 {
                self.refill_fuel()?;
            }
            self.fuel -= 1;
            // clone-free fetch: `Instr` is `Copy` (scalar operands only),
            // so decode is a plain indexed load
            let instr = self.db.code.code[self.p as usize];
            self.p += 1;
            // opcode profiler: one predicted branch when off; two array
            // increments when on
            if self.obs.metrics.profile.enabled {
                self.obs.metrics.profile.record(instr.opcode());
            }
            match instr {
                // ---- get ----
                Instr::GetVariableX { x, a } => self.x[x as usize] = self.x[a as usize],
                Instr::GetVariableY { y, a } => {
                    let v = self.x[a as usize];
                    self.set_y(y, v);
                }
                Instr::GetValueX { x, a } => {
                    let (u, v) = (self.x[x as usize], self.x[a as usize]);
                    if !self.unify(u, v) {
                        fail!();
                    }
                }
                Instr::GetValueY { y, a } => {
                    let (u, v) = (self.get_y(y), self.x[a as usize]);
                    if !self.unify(u, v) {
                        fail!();
                    }
                }
                Instr::GetConstant { c, a } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => self.bind(d.addr(), c),
                        _ if d == c => {}
                        _ => fail!(),
                    }
                }
                Instr::GetStructure { f, n, a } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => {
                            let base = self.heap.len();
                            self.heap.push(Cell::fun(f, n as usize));
                            self.bind(d.addr(), Cell::str(base));
                            self.write_mode = true;
                        }
                        Tag::Str => {
                            let pa = d.addr();
                            if self.heap[pa] != Cell::fun(f, n as usize) {
                                fail!();
                            }
                            self.s = pa + 1;
                            self.write_mode = false;
                        }
                        Tag::Lis if f == well_known::DOT && n == 2 => {
                            self.s = d.addr();
                            self.write_mode = false;
                        }
                        _ => fail!(),
                    }
                }
                Instr::GetList { a } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => {
                            let base = self.heap.len();
                            self.bind(d.addr(), Cell::lis(base));
                            self.write_mode = true;
                        }
                        Tag::Lis => {
                            self.s = d.addr();
                            self.write_mode = false;
                        }
                        Tag::Str => {
                            let pa = d.addr();
                            if self.heap[pa] != Cell::fun(well_known::DOT, 2) {
                                fail!();
                            }
                            self.s = pa + 1;
                            self.write_mode = false;
                        }
                        _ => fail!(),
                    }
                }

                // ---- unify ----
                Instr::UnifyVariableX { .. }
                | Instr::UnifyVariableY { .. }
                | Instr::UnifyValueX { .. }
                | Instr::UnifyValueY { .. }
                | Instr::UnifyConstant { .. }
                | Instr::UnifyVoid { .. } => {
                    if !self.exec_unify_op(instr) {
                        fail!();
                    }
                }

                // ---- put ----
                Instr::PutVariableX { x, a } => {
                    let v = self.new_var();
                    self.x[x as usize] = v;
                    self.x[a as usize] = v;
                }
                Instr::PutVariableY { y, a } => {
                    let v = self.new_var();
                    self.set_y(y, v);
                    self.x[a as usize] = v;
                }
                Instr::PutValueX { x, a } => self.x[a as usize] = self.x[x as usize],
                Instr::PutValueY { y, a } => self.x[a as usize] = self.get_y(y),
                Instr::PutConstant { c, a } => self.x[a as usize] = c,
                Instr::PutStructure { f, n, a } => {
                    let base = self.heap.len();
                    self.heap.push(Cell::fun(f, n as usize));
                    self.x[a as usize] = Cell::str(base);
                    self.write_mode = true;
                }
                Instr::PutList { a } => {
                    let base = self.heap.len();
                    self.x[a as usize] = Cell::lis(base);
                    self.write_mode = true;
                }

                // ---- control ----
                Instr::Allocate { nperms } => self.allocate(nperms),
                Instr::Deallocate => self.deallocate(),
                Instr::Call { pred } => match self.dispatch(pred, syms, false)? {
                    Disp::Ok => {}
                    Disp::Failed => fail!(),
                },
                Instr::Execute { pred } => match self.dispatch(pred, syms, true)? {
                    Disp::Ok => {}
                    Disp::Failed => fail!(),
                },
                Instr::Proceed => self.p = self.cont,
                Instr::Fail => fail!(),

                // ---- choice ----
                Instr::Try { target, arity } => {
                    let next = self.p; // the following Retry/Trust
                    self.push_cp(arity, Alt::Code(next));
                    self.p = target;
                }
                Instr::Retry { target } => {
                    // reached only via backtracking: Alt::Code pointed here
                    let next = self.p;
                    self.cps[self.b as usize].alt = Alt::Code(next);
                    self.p = target;
                }
                Instr::Trust { target } => {
                    let prev = self.cps[self.b as usize].prev;
                    self.b = prev;
                    self.p = target;
                }
                Instr::TryMeElse { .. } | Instr::RetryMeElse { .. } | Instr::TrustMe => {
                    unreachable!("sequential chain instructions are not emitted")
                }

                // ---- indexing ----
                Instr::SwitchOnTerm { var, con, lis, str } => {
                    let d = self.deref(self.x[0]);
                    self.p = match d.tag() {
                        Tag::Ref => var,
                        Tag::Con | Tag::Int => {
                            let t = &self.db.code.const_tables[con as usize];
                            t.map.get(&d).copied().unwrap_or(t.miss)
                        }
                        Tag::Lis => lis,
                        Tag::Str => {
                            let (f, n) = self.functor_of(d);
                            if f == well_known::DOT && n == 2 {
                                lis
                            } else {
                                let t = &self.db.code.struct_tables[str as usize];
                                t.map.get(&(f, n as u16)).copied().unwrap_or(t.miss)
                            }
                        }
                        _ => unreachable!(),
                    };
                    if matches!(self.db.code.code[self.p as usize], Instr::Fail) {
                        fail!();
                    }
                }
                Instr::TrieDispatch { trie, arity } => {
                    let args = &self.x[..arity as usize];
                    let t = &self.db.code.tries[trie as usize];
                    // manual deref closure over the heap
                    let heap = &self.heap;
                    let cands = t.lookup(args, heap, |mut c| loop {
                        if c.tag() != Tag::Ref {
                            return c;
                        }
                        let v = heap[c.addr()];
                        if v == c {
                            return c;
                        }
                        c = v;
                    });
                    let addrs: Vec<CodePtr> =
                        cands.iter().map(|&i| t.clause_addrs[i as usize]).collect();
                    match addrs.len() {
                        0 => fail!(),
                        1 => self.p = addrs[0],
                        _ => {
                            let first = addrs[0];
                            self.push_cp(
                                arity,
                                Alt::StaticList {
                                    list: Rc::from(&addrs[1..]),
                                    idx: 0,
                                },
                            );
                            self.p = first;
                        }
                    }
                }

                // ---- cut ----
                Instr::GetLevel { y } => {
                    let b0 = self.b0;
                    self.set_y(y, Cell::int(b0 as i64));
                }
                Instr::CutY { y } => {
                    let target = self.get_y(y).int_value() as u32;
                    self.cut_to(target, syms)?;
                }

                // ---- tabling ----
                Instr::TableCall { pred, arity } => match self.table_call(pred, arity, syms)? {
                    Disp::Ok => {}
                    Disp::Failed => fail!(),
                },
                Instr::SaveGenerator { y } => {
                    let g = self.executing_gen;
                    self.set_y(y, Cell::int(g as i64));
                }
                Instr::NewAnswer { y } => {
                    let gen = self.get_y(y).int_value() as u32;
                    match self.new_answer(gen, syms)? {
                        Disp::Ok => {} // falls through to Deallocate; Proceed
                        Disp::Failed => fail!(),
                    }
                }
                Instr::NewAnswerDirect => {
                    let gen = self.executing_gen;
                    match self.new_answer(gen, syms)? {
                        Disp::Ok => self.p = self.cont,
                        Disp::Failed => fail!(),
                    }
                }

                // ---- snippets ----
                Instr::FindallCollect => {
                    let rec = self.findalls.last().expect("active findall");
                    let template = rec.template;
                    let mut vars = Vec::new();
                    let canon = self.canonicalize(&[template], &mut vars);
                    self.findalls
                        .last_mut()
                        .expect("active findall")
                        .solutions
                        .push(canon);
                    // next instruction is Fail: search for more solutions
                }
                Instr::NafCutFail => {
                    // the \+ goal succeeded: cut back to the barrier and fail
                    let mut i = self.b;
                    loop {
                        if i == NONE {
                            return Err(EngineError::Other("naf barrier missing".into()));
                        }
                        if matches!(self.cps[i as usize].alt, Alt::NafBarrier { .. }) {
                            break;
                        }
                        i = self.cps[i as usize].prev;
                    }
                    self.check_cut_safety(self.b, i, syms)?;
                    self.b = self.cps[i as usize].prev;
                    fail!();
                }
                Instr::HaltSolution => return Ok(Outcome::Solution),

                // ---- fused superinstructions (peephole pass) ----
                // Each executes the exact original sequence, then continues
                // after the shadowed instruction(s). `self.p` currently
                // points at the first shadowed op.
                Instr::PutValueXCall { x, a, pred } => {
                    self.x[a as usize] = self.x[x as usize];
                    self.p += 1; // continuation is after the shadowed Call
                    match self.dispatch(pred, syms, false)? {
                        Disp::Ok => {}
                        Disp::Failed => fail!(),
                    }
                }
                Instr::PutValueYCall { y, a, pred } => {
                    self.x[a as usize] = self.get_y(y);
                    self.p += 1;
                    match self.dispatch(pred, syms, false)? {
                        Disp::Ok => {}
                        Disp::Failed => fail!(),
                    }
                }
                Instr::PutValueY2 { y1, a1, y2, a2 } => {
                    self.x[a1 as usize] = self.get_y(y1);
                    self.x[a2 as usize] = self.get_y(y2);
                    self.p += 1;
                }
                Instr::AllocateSaveGenerator { nperms, y } => {
                    self.allocate(nperms);
                    let g = self.executing_gen;
                    self.set_y(y, Cell::int(g as i64));
                    self.p += 1;
                }
                Instr::DeallocateProceed => {
                    // Deallocate restores `cont`; Proceed then jumps to it
                    self.deallocate();
                    self.p = self.cont;
                }
                Instr::GetConstantProceed { c, a } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => self.bind(d.addr(), c),
                        _ if d == c => {}
                        _ => fail!(),
                    }
                    self.p = self.cont;
                }
                Instr::GetStructureUnify { f, n, a, len } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => {
                            let base = self.heap.len();
                            self.heap.push(Cell::fun(f, n as usize));
                            self.bind(d.addr(), Cell::str(base));
                            self.write_mode = true;
                        }
                        Tag::Str => {
                            let pa = d.addr();
                            if self.heap[pa] != Cell::fun(f, n as usize) {
                                fail!();
                            }
                            self.s = pa + 1;
                            self.write_mode = false;
                        }
                        Tag::Lis if f == well_known::DOT && n == 2 => {
                            self.s = d.addr();
                            self.write_mode = false;
                        }
                        _ => fail!(),
                    }
                    // the unify tail is the shadowed originals at p..p+len,
                    // executed in place with the mode resolved above; the
                    // mode split lets the (infallible) write loop drop the
                    // failure bookkeeping
                    let start = self.p as usize;
                    self.p += len as u32;
                    if self.write_mode {
                        for j in start..start + len as usize {
                            let op = self.db.code.code[j];
                            self.exec_unify_write(op);
                        }
                    } else {
                        let mut ok = true;
                        for j in start..start + len as usize {
                            let op = self.db.code.code[j];
                            if !self.exec_unify_read(op) {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            fail!();
                        }
                    }
                }
                Instr::GetListUnify { a, len } => {
                    let d = self.deref(self.x[a as usize]);
                    match d.tag() {
                        Tag::Ref => {
                            let base = self.heap.len();
                            self.bind(d.addr(), Cell::lis(base));
                            self.write_mode = true;
                        }
                        Tag::Lis => {
                            self.s = d.addr();
                            self.write_mode = false;
                        }
                        Tag::Str => {
                            let pa = d.addr();
                            if self.heap[pa] != Cell::fun(well_known::DOT, 2) {
                                fail!();
                            }
                            self.s = pa + 1;
                            self.write_mode = false;
                        }
                        _ => fail!(),
                    }
                    // in-place shadowed tail, as in GetStructureUnify
                    let start = self.p as usize;
                    self.p += len as u32;
                    if self.write_mode {
                        for j in start..start + len as usize {
                            let op = self.db.code.code[j];
                            self.exec_unify_write(op);
                        }
                    } else {
                        let mut ok = true;
                        for j in start..start + len as usize {
                            let op = self.db.code.code[j];
                            if !self.exec_unify_read(op) {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            fail!();
                        }
                    }
                }
                Instr::UnifyRun { run, len } => {
                    // the gathered run in the side pool replaces ops
                    // [p-1, p-1+len); continue after the shadowed tail
                    self.p += len as u32 - 1;
                    let start = run as usize;
                    if self.write_mode {
                        for j in start..start + len as usize {
                            let op = self.db.code.unify_runs[j];
                            self.exec_unify_write(op);
                        }
                    } else {
                        let mut ok = true;
                        for j in start..start + len as usize {
                            let op = self.db.code.unify_runs[j];
                            if !self.exec_unify_read(op) {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            fail!();
                        }
                    }
                }
            }
        }
    }

    /// Executes one unify-group instruction (shared by the plain dispatch
    /// arms and the fused [`Instr::GetStructureUnify`]/[`Instr::UnifyRun`]
    /// run executors). Returns `false` on unification failure.
    /// `inline(always)` so each caller specializes the match instead of
    /// paying a call per unify op.
    #[inline(always)]
    fn exec_unify_op(&mut self, op: Instr) -> bool {
        if self.write_mode {
            self.exec_unify_write(op);
            true
        } else {
            self.exec_unify_read(op)
        }
    }

    /// Write-mode unify op: builds the structure being constructed on the
    /// heap. No write-mode op can fail, so the fused run executors skip
    /// failure bookkeeping entirely on this path. `write_mode` is only
    /// flipped by the get/put structure ops, never by a unify op, so the
    /// mode chosen at the head of a run holds for the whole run.
    #[inline(always)]
    fn exec_unify_write(&mut self, op: Instr) {
        match op {
            Instr::UnifyVariableX { x } => {
                let v = self.new_var();
                self.x[x as usize] = v;
            }
            Instr::UnifyVariableY { y } => {
                let v = self.new_var();
                self.set_y(y, v);
            }
            Instr::UnifyValueX { x } => {
                let v = self.x[x as usize];
                self.heap.push(v);
            }
            Instr::UnifyValueY { y } => {
                let v = self.get_y(y);
                self.heap.push(v);
            }
            Instr::UnifyConstant { c } => self.heap.push(c),
            Instr::UnifyVoid { n } => {
                for _ in 0..n {
                    self.new_var();
                }
            }
            _ => unreachable!("non-unify op {op:?} in a unify run"),
        }
    }

    /// Read-mode unify op: matches against the existing structure at `s`.
    /// Returns `false` on unification failure.
    #[inline(always)]
    fn exec_unify_read(&mut self, op: Instr) -> bool {
        match op {
            Instr::UnifyVariableX { x } => {
                self.x[x as usize] = self.heap[self.s];
                self.s += 1;
                true
            }
            Instr::UnifyVariableY { y } => {
                let v = self.heap[self.s];
                self.s += 1;
                self.set_y(y, v);
                true
            }
            Instr::UnifyValueX { x } => {
                let (u, v) = (self.x[x as usize], self.heap[self.s]);
                self.s += 1;
                self.unify(u, v)
            }
            Instr::UnifyValueY { y } => {
                let (u, v) = (self.get_y(y), self.heap[self.s]);
                self.s += 1;
                self.unify(u, v)
            }
            Instr::UnifyConstant { c } => {
                let d = self.deref(self.heap[self.s]);
                self.s += 1;
                match d.tag() {
                    Tag::Ref => {
                        self.bind(d.addr(), c);
                        true
                    }
                    _ => d == c,
                }
            }
            Instr::UnifyVoid { n } => {
                self.s += n as usize;
                true
            }
            _ => unreachable!("non-unify op {op:?} in a unify run"),
        }
    }

    // ------------------------------------------------------------------
    // dispatch
    // ------------------------------------------------------------------

    fn dispatch(
        &mut self,
        pred: PredId,
        syms: &mut SymbolTable,
        is_tail: bool,
    ) -> Result<Disp, EngineError> {
        self.obs.metrics.count_call(pred as usize);
        // match on the place directly: every binding below is `Copy`, so no
        // clone of the kind (and no `Rc<[CodePtr]>` refcount bump) happens
        // on this per-call path
        match self.db.pred(pred).kind {
            PredKind::Static { entry, .. } => {
                if !is_tail {
                    self.cont = self.p;
                }
                self.b0 = self.b;
                self.p = entry;
                Ok(Disp::Ok)
            }
            PredKind::Dynamic { .. } => {
                if !is_tail {
                    self.cont = self.p;
                }
                self.b0 = self.b;
                self.dyn_call(pred, syms)
            }
            PredKind::Builtin(b) => {
                // builtins like statistics/2 read the step counters; fold
                // the fuel block in so they observe exact counts
                self.flush_steps();
                let resume = if is_tail { self.cont } else { self.p };
                match exec_builtin(self, syms, b, resume, is_tail)? {
                    BAction::Continue => {
                        if is_tail {
                            self.p = self.cont;
                        }
                        Ok(Disp::Ok)
                    }
                    BAction::Fail => Ok(Disp::Failed),
                    BAction::Jumped => Ok(Disp::Ok),
                }
            }
            PredKind::Undefined => {
                let p = self.db.pred(pred);
                Err(EngineError::UndefinedPredicate(format!(
                    "{}/{}",
                    syms.name(p.name),
                    p.arity
                )))
            }
        }
    }

    /// Calls a goal given as a heap term (used by `call/N`, `findall`,
    /// `\+`, dynamic rule bodies). Tail semantics: the caller has already
    /// arranged the continuation.
    pub fn dispatch_goal(&mut self, goal: Cell, syms: &mut SymbolTable) -> Result<(), EngineError> {
        let g = self.deref(goal);
        let (f, n) = match g.tag() {
            Tag::Con => (g.sym(), 0usize),
            Tag::Str => self.functor_of(g),
            Tag::Lis => (well_known::DOT, 2),
            Tag::Ref => return Err(EngineError::Instantiation("call/1")),
            _ => {
                return Err(EngineError::Type {
                    expected: "callable",
                    found: format!("{g:?}"),
                })
            }
        };
        // control constructs are compiled on the fly (they have no predicate
        // entry): (A,B), (A;B), (A->B)
        if (f == well_known::COMMA || f == well_known::SEMICOLON || f == well_known::ARROW)
            && n == 2
        {
            return self.meta_compile_call(g, syms);
        }
        for i in 0..n {
            self.x[i] = self.arg_of(g, i);
        }
        let Some(pred) = self.db.lookup_pred(f, n as u16) else {
            return Err(EngineError::UndefinedPredicate(format!(
                "{}/{n}",
                syms.name(f)
            )));
        };
        match self.dispatch(pred, syms, true)? {
            Disp::Ok => Ok(()),
            Disp::Failed => {
                // make the failure visible to the instruction loop
                self.p = self.db.snippets.fail;
                Ok(())
            }
        }
    }

    /// Runtime compilation of a control-construct goal: decode to AST,
    /// compile as a one-off predicate over its free variables, call it.
    fn meta_compile_call(&mut self, goal: Cell, syms: &mut SymbolTable) -> Result<(), EngineError> {
        let mut var_addrs: Vec<u32> = Vec::new();
        let ast = self.heap_to_ast(goal, &mut var_addrs);
        let nvars = var_addrs.len() as u32;
        let qpred = compile_query(self.db, syms, &[ast], nvars)?;
        for (i, &a) in var_addrs.iter().enumerate() {
            self.x[i] = Cell::r#ref(a as usize);
        }
        match self.dispatch(qpred, syms, true)? {
            Disp::Ok => Ok(()),
            Disp::Failed => {
                self.p = self.db.snippets.fail;
                Ok(())
            }
        }
    }

    fn dyn_call(&mut self, pred: PredId, syms: &mut SymbolTable) -> Result<Disp, EngineError> {
        let arity = self.db.pred(pred).arity as usize;
        let mut tokens = std::mem::take(&mut self.scratch_tokens);
        tokens.clear();
        for i in 0..arity {
            tokens.push(crate::dynamic::outer_token(
                self.deref(self.x[i]),
                &self.heap,
            ));
        }
        let mut cands = std::mem::take(&mut self.scratch_cands);
        self.db
            .dyn_of(pred)
            .expect("dynamic predicate")
            .candidates_into(&tokens, &mut cands);
        self.scratch_tokens = tokens;
        let r = self.dyn_dispatch_cands(pred, &cands, syms);
        self.scratch_cands = cands;
        r
    }

    fn dyn_dispatch_cands(
        &mut self,
        pred: PredId,
        cands: &[u32],
        syms: &mut SymbolTable,
    ) -> Result<Disp, EngineError> {
        let arity = self.db.pred(pred).arity as usize;
        match cands.len() {
            0 => Ok(Disp::Failed),
            1 => {
                if self.try_dyn_clause(pred, cands[0], syms)? {
                    Ok(Disp::Ok)
                } else {
                    Ok(Disp::Failed)
                }
            }
            _ => {
                let first = cands[0];
                self.push_cp(
                    arity as u16,
                    Alt::DynClauses {
                        pred,
                        list: Rc::from(&cands[1..]),
                        idx: 0,
                    },
                );
                if self.try_dyn_clause(pred, first, syms)? {
                    Ok(Disp::Ok)
                } else {
                    Ok(Disp::Failed)
                }
            }
        }
    }

    /// Decodes and runs one dynamic clause: unify head, then either proceed
    /// (fact) or tail-call the body goal.
    fn try_dyn_clause(
        &mut self,
        pred: PredId,
        id: u32,
        syms: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        let arity = self.db.pred(pred).arity as usize;
        let (canon, has_body) = {
            let c = self.db.dyn_of(pred).expect("dynamic").clause(id);
            (c.canon.clone(), c.has_body)
        };
        // unify the head directly against the stored canonical cells —
        // no term materialization for matched structure (paper §4.2)
        let mut tvars: Vec<Option<Cell>> = Vec::new();
        let mut pos = 0usize;
        for i in 0..arity {
            let target = self.x[i];
            if !self.unify_canon_one(&canon, &mut pos, &mut tvars, target) {
                return Ok(false);
            }
        }
        if has_body {
            let body = self.decode_one(&canon, &mut pos, &mut tvars);
            self.dispatch_goal(body, syms)?;
        } else {
            self.p = self.cont;
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // cut
    // ------------------------------------------------------------------

    /// Errors if cutting from `from` back to `target` would discard a
    /// generator or consumer of an incomplete table (paper §4.4).
    fn check_cut_safety(
        &self,
        from: u32,
        target: u32,
        syms: &SymbolTable,
    ) -> Result<(), EngineError> {
        let mut i = from;
        while i != target && i != NONE {
            match self.cps[i as usize].alt {
                Alt::Generator { sub } | Alt::Consumer { cons: sub } => {
                    // for consumers, `sub` is the consumer id; resolve it
                    let subgoal = match self.cps[i as usize].alt {
                        Alt::Generator { sub } => sub,
                        Alt::Consumer { cons } => self.tables.consumers[cons as usize].sub,
                        _ => unreachable!(),
                    };
                    let f = self.tables.frame(subgoal);
                    if f.state == SubgoalState::Incomplete && !f.deleted {
                        let p = self.db.pred(f.pred);
                        return Err(EngineError::CutOverTable(format!(
                            "{}/{}",
                            syms.name(p.name),
                            p.arity
                        )));
                    }
                    let _ = sub;
                }
                _ => {}
            }
            i = self.cps[i as usize].prev;
        }
        Ok(())
    }

    fn cut_to(&mut self, target: u32, syms: &SymbolTable) -> Result<(), EngineError> {
        if self.b == target || self.b == NONE {
            return Ok(());
        }
        self.check_cut_safety(self.b, target, syms)?;
        self.b = target;
        Ok(())
    }

    // ------------------------------------------------------------------
    // tabling operations
    // ------------------------------------------------------------------

    /// Records a completed-table reuse: counted as a cross-query hit when
    /// the table was built by an earlier query, and stamped for the
    /// least-recently-hit eviction policy either way.
    fn note_table_reuse(&mut self, sub: u32) {
        if self.tables.frame(sub).born < self.tables.clock() {
            self.obs.metrics.bump(Counter::TableHits);
        }
        self.tables.touch(sub);
    }

    /// Invalidates every tabled predicate that (transitively) depends on
    /// the changed predicate `pred` — the assert/retract → table
    /// consistency hook. Completed tables are freed immediately;
    /// incomplete ones are freed at `end_query`.
    pub fn invalidate_dependents(&mut self, pred: PredId) {
        let deps = self.db.tabled_dependents(pred);
        // assert/retract during a query is never a pool broadcast: if it
        // reaches a shared-floor predicate, this worker's EDB has
        // diverged and it detaches from answer sharing
        self.tables.note_local_mutation(pred, &deps);
        for &dep in &deps {
            let n = self.tables.invalidate_pred(dep);
            if n > 0 {
                self.obs.metrics.add(Counter::TableInvalidations, n as u64);
                if self.obs.trace.enabled {
                    self.obs
                        .trace
                        .push(SlgEvent::TableInvalidated { pred: dep });
                }
            }
        }
        // push the same invalidation pool-wide so other workers drop the
        // affected tables at their next sync
        let shared = self.tables.shared_invalidate(&deps);
        if shared > 0 {
            self.obs
                .metrics
                .add(Counter::SharedTableInvalidations, shared as u64);
        }
    }

    /// Materializes a pool-published frame locally, with the import
    /// stopwatch/span/trace bookkeeping shared by the probe-hit and
    /// claim-wait import paths.
    fn import_shared_frame(&mut self, pred: PredId, sf: &SharedFrame) -> SubgoalId {
        let sw = Stopwatch::new();
        let sub = self.tables.import_shared(sf);
        let import_ns = sw.elapsed_nanos();
        self.obs.metrics.shared_import.record(import_ns);
        if self.obs.spans.enabled {
            let answers = self.tables.frame(sub).store.len() as u32;
            self.obs
                .spans
                .record("import", pred, sub, import_ns, answers);
        }
        if self.obs.trace.enabled {
            self.obs
                .trace
                .push(SlgEvent::SubgoalCall { pred, subgoal: sub });
        }
        sub
    }

    /// Records one parked claim wait (counter + latency histogram). A
    /// claim resolved without parking costs nothing observable.
    fn note_claim_wait(&mut self, parked: bool, waited_ns: u64) {
        if parked {
            self.obs.metrics.bump(Counter::ClaimWaits);
            self.obs.metrics.claim_wait.record(waited_ns);
        }
    }

    fn table_call(
        &mut self,
        pred: PredId,
        arity: u16,
        syms: &mut SymbolTable,
    ) -> Result<Disp, EngineError> {
        let args: Vec<Cell> = self.x[..arity as usize].to_vec();
        let mut var_addrs = Vec::new();
        let mut canon = std::mem::take(&mut self.scratch_canon);
        self.canonicalize_into(&args, &mut var_addrs, &mut canon);
        let found = self.tables.find(pred, &canon);
        let r = match found {
            None => {
                if let Some(sf) = self.tables.shared_probe(pred, &canon) {
                    // another pool worker already completed this table:
                    // import it (zero-copy) and serve it like a local
                    // completed-table hit
                    self.obs.metrics.bump(Counter::SharedTableHits);
                    let sub = self.import_shared_frame(pred, &sf);
                    self.completed_call(sub, var_addrs)
                } else {
                    // cold miss on a shareable subgoal: claim it in the
                    // pool's in-progress registry, or park until the
                    // first claimant publishes (see DESIGN.md §2.9)
                    match self.tables.shared_claim_or_wait(pred, &canon) {
                        SharedClaim::Published {
                            frame,
                            parked,
                            waited_ns,
                        } => {
                            // a concurrent claimant computed it while we
                            // waited — import instead of recomputing
                            self.note_claim_wait(parked, waited_ns);
                            self.obs.metrics.bump(Counter::SharedTableHits);
                            let sub = self.import_shared_frame(pred, &frame);
                            self.completed_call(sub, var_addrs)
                        }
                        outcome => {
                            match outcome {
                                SharedClaim::Claimed { parked, waited_ns } => {
                                    self.obs.metrics.bump(Counter::SharedClaims);
                                    self.note_claim_wait(parked, waited_ns);
                                }
                                SharedClaim::TimedOut { parked, waited_ns } => {
                                    // bounded wait expired behind a stuck
                                    // claimant: compute locally so the
                                    // pool never wedges
                                    self.obs.metrics.bump(Counter::ClaimFallbacks);
                                    self.note_claim_wait(parked, waited_ns);
                                }
                                SharedClaim::Unshared | SharedClaim::Published { .. } => {}
                            }
                            self.obs.metrics.bump(Counter::TableMisses);
                            let owned: Box<[Cell]> = canon.as_slice().into();
                            self.new_generator(
                                pred,
                                arity,
                                owned,
                                var_addrs,
                                GenMode::Positive,
                                NONE,
                                None,
                                syms,
                            )
                        }
                    }
                }
            }
            Some(sub) => {
                if self.tables.frame(sub).state == SubgoalState::Complete {
                    self.note_table_reuse(sub);
                    self.completed_call(sub, var_addrs)
                } else {
                    self.new_consumer(sub, var_addrs, syms)
                }
            }
        };
        self.scratch_canon = canon;
        r
    }

    /// `register_neg`: a suspension id to attach to the new subgoal frame
    /// *before* its first clause runs, so that an immediately-completing
    /// generator still schedules it.
    #[allow(clippy::too_many_arguments)]
    fn new_generator(
        &mut self,
        pred: PredId,
        arity: u16,
        canon: Box<[Cell]>,
        subst: Vec<u32>,
        mode: GenMode,
        exist_cut_b: u32,
        register_neg: Option<u32>,
        syms: &mut SymbolTable,
    ) -> Result<Disp, EngineError> {
        let clauses = match &self.db.pred(pred).kind {
            PredKind::Static { clauses, .. } => clauses.clone(),
            _ => {
                return Err(EngineError::Other(format!(
                    "tabled predicate {}/{} is not static",
                    syms.name(self.db.pred(pred).name),
                    self.db.pred(pred).arity
                )))
            }
        };
        let saved_freeze = self.freeze_state();
        let sub = self.tables.new_subgoal(
            pred,
            Arc::from(canon),
            subst,
            clauses,
            mode,
            saved_freeze,
            exist_cut_b,
        );
        self.obs.metrics.count_subgoal(pred as usize);
        if self.obs.spans.enabled {
            self.obs.spans.begin_subgoal(pred, sub);
        }
        if self.obs.trace.enabled {
            self.obs
                .trace
                .push(SlgEvent::SubgoalCall { pred, subgoal: sub });
        }
        if let Some(neg) = register_neg {
            self.tables.negs[neg as usize].sub = sub;
            self.tables.frame_mut(sub).negs.push(neg);
        }
        let cp = self.push_cp(arity, Alt::Generator { sub });
        self.tables.frame_mut(sub).gen_cp = cp;
        if self.generator_step(sub, syms)? {
            Ok(Disp::Ok)
        } else {
            Ok(Disp::Failed)
        }
    }

    /// Runs the generator's next program clause, or enters completion.
    /// Returns false if execution could not be resumed (caller backtracks).
    fn generator_step(&mut self, sub: u32, syms: &mut SymbolTable) -> Result<bool, EngineError> {
        loop {
            let f = self.tables.frame(sub);
            if f.deleted {
                // table was freed by an existential cut; fall through
                let prev = self.cps[self.tables.frame(sub).gen_cp as usize].prev;
                self.b = prev;
                return Ok(false);
            }
            match f.state {
                SubgoalState::Incomplete => {
                    let cursor = f.clause_cursor as usize;
                    if cursor < f.clauses.len() {
                        let addr = f.clauses[cursor];
                        self.tables.frame_mut(sub).clause_cursor += 1;
                        self.executing_gen = sub;
                        self.b0 = self.b;
                        self.p = addr;
                        return Ok(true);
                    }
                    // clauses exhausted: completion check
                    if !self.tables.is_leader(sub) {
                        self.tables.propagate_dir_link(sub);
                        self.freeze_now();
                        let prev = self.cps[self.tables.frame(sub).gen_cp as usize].prev;
                        self.b = prev;
                        return Ok(false);
                    }
                    // leader: fixpoint over unconsumed answers
                    if let Some(cons) = self.find_unconsumed_consumer(sub) {
                        return self.schedule_consumer(sub, cons, syms);
                    }
                    // fixpoint reached: complete the whole SCC
                    let members = self.tables.complete_scc(sub);
                    self.obs.metrics.bump(Counter::SccCompletions);
                    self.obs
                        .metrics
                        .add(Counter::SubgoalsCompleted, members.len() as u64);
                    if self.obs.trace.enabled {
                        self.obs.trace.push(SlgEvent::CompleteScc {
                            leader: sub,
                            members: members.len() as u32,
                        });
                    }
                    if self.obs.spans.enabled {
                        for &m in &members {
                            let answers = self.tables.frame(m).store.len() as u32;
                            self.obs.spans.end_subgoal(m, answers);
                        }
                        let pred = self.tables.frame(sub).pred;
                        self.obs
                            .spans
                            .record("complete", pred, sub, 0, members.len() as u32);
                    }
                    let mut queue: Vec<u32> = Vec::new();
                    for &m in &members {
                        let negs = self.tables.frame(m).negs.clone();
                        queue.extend(negs);
                        // consumers that have drained a now-complete table
                        // will never receive more answers
                        let nanswers = self.tables.frame(m).store.len();
                        let conss = self.tables.frame(m).consumers.clone();
                        for cid in conss {
                            if self.tables.consumers[cid as usize].cursor as usize >= nanswers {
                                self.tables.consumers[cid as usize].dead = true;
                            }
                        }
                    }
                    self.tables.frame_mut(sub).pending_negs = queue;
                    // loop back into the Complete branch to schedule them
                }
                SubgoalState::Complete => {
                    // post-completion: schedule suspensions one at a time
                    while let Some(neg) = self.tables.frame_mut(sub).pending_negs.pop() {
                        if self.tables.negs[neg as usize].done {
                            continue;
                        }
                        if self.resume_suspension(sub, neg, syms)? {
                            return Ok(true);
                        }
                    }
                    // all scheduled: release frozen space, fail onward
                    let f = self.tables.frame(sub);
                    self.freeze = f.saved_freeze;
                    let prev = self.cps[f.gen_cp as usize].prev;
                    self.b = prev;
                    return Ok(false);
                }
            }
        }
    }

    fn find_unconsumed_consumer(&self, leader: u32) -> Option<u32> {
        for &m in self.tables.scc_members(leader).iter() {
            let f = self.tables.frame(m);
            for &cid in &f.consumers {
                let c = &self.tables.consumers[cid as usize];
                if !c.dead && (c.cursor as usize) < f.store.len() {
                    return Some(cid);
                }
            }
        }
        None
    }

    /// Switches to a suspended consumer and feeds it its next answer.
    fn schedule_consumer(
        &mut self,
        leader: u32,
        cons: u32,
        syms: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        let cp_idx = self.tables.consumers[cons as usize].cp;
        self.obs.metrics.bump(Counter::ConsumerResumptions);
        if self.obs.trace.enabled {
            self.obs.trace.push(SlgEvent::Resume {
                subgoal: self.tables.consumers[cons as usize].sub,
                consumer: cons,
            });
        }
        let cp = self.cps[cp_idx as usize].clone();
        self.switch_environments(cp.tip);
        self.e = cp.e;
        self.cont = cp.cont;
        self.b = cp_idx;
        self.tables.consumers[cons as usize].scheduled_by = leader;
        self.consumer_step(cons, syms)
    }

    /// Resumes a completed-table suspension (`tnot` succeeds on an empty
    /// table; `tfindall` builds its list). Returns true if execution
    /// resumed.
    fn resume_suspension(
        &mut self,
        leader: u32,
        neg: u32,
        syms: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        let (sub, cp_idx, mode, resume) = {
            let n = &self.tables.negs[neg as usize];
            (n.sub, n.cp, n.mode, n.resume)
        };
        self.tables.negs[neg as usize].done = true;
        self.obs.metrics.bump(Counter::NegationResumes);
        if self.obs.trace.enabled {
            self.obs.trace.push(SlgEvent::NegResume { subgoal: sub });
        }
        // The resumed branch will fail back into this leader's scheduling
        // loop (Alt::NegScheduled → return_to_leader), so the leader's
        // generator CP — and everything else currently on the stacks —
        // must survive until the drain finishes; the drain-empty branch
        // restores the saved freeze registers.
        self.freeze_now();
        match mode {
            NegMode::Tnot => {
                if self.tables.frame(sub).has_answers() {
                    return Ok(false); // negation fails: never resumed
                }
                let cp = self.cps[cp_idx as usize].clone();
                self.switch_environments(cp.tip);
                self.e = cp.e;
                self.cont = cp.cont;
                self.b = cp_idx;
                self.cps[cp_idx as usize].alt = Alt::NegScheduled { leader };
                self.p = resume;
                let _ = syms;
                Ok(true)
            }
            NegMode::Tfindall { template, result } => {
                let cp = self.cps[cp_idx as usize].clone();
                self.switch_environments(cp.tip);
                self.e = cp.e;
                self.cont = cp.cont;
                self.b = cp_idx;
                self.cps[cp_idx as usize].alt = Alt::NegScheduled { leader };
                // instantiate the template for each answer
                let subst = std::mem::take(&mut self.tables.negs[neg as usize].subst);
                let ok = self.tfindall_list(sub, &subst, template, result);
                self.tables.negs[neg as usize].subst = subst;
                if ok {
                    self.p = resume;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    fn new_consumer(
        &mut self,
        sub: u32,
        subst: Vec<u32>,
        syms: &mut SymbolTable,
    ) -> Result<Disp, EngineError> {
        self.tables.note_dependency(sub);
        let cons = self.tables.consumers.len() as u32;
        let cp = self.push_cp(0, Alt::Consumer { cons });
        self.tables.consumers.push(crate::table::Consumer {
            sub,
            cp,
            subst,
            cursor: 0,
            scheduled_by: NONE,
            dead: false,
        });
        self.tables.frame_mut(sub).consumers.push(cons);
        if self.consumer_step(cons, syms)? {
            Ok(Disp::Ok)
        } else {
            Ok(Disp::Failed)
        }
    }

    /// Feeds the consumer its next unconsumed answer, or suspends.
    /// Returns true if execution resumed with an answer.
    fn consumer_step(&mut self, cons: u32, syms: &mut SymbolTable) -> Result<bool, EngineError> {
        loop {
            let (sub, cursor) = {
                let c = &self.tables.consumers[cons as usize];
                (c.sub, c.cursor as usize)
            };
            let f = self.tables.frame(sub);
            if cursor < f.store.len() {
                let nvars = f.nvars as usize;
                let template = if f.factored {
                    None
                } else {
                    Some(f.canon.clone())
                };
                let (off, len) = f.store.span(cursor);
                self.tables.consumers[cons as usize].cursor += 1;
                // zero-copy answer return: take the frame's arena (and the
                // consumer's substitution factor) out of the table space,
                // bind the factored cells directly against the heap, then
                // put both back — no per-answer clone or allocation
                let cells = self.tables.frame_mut(sub).store.take_cells();
                let subst = std::mem::take(&mut self.tables.consumers[cons as usize].subst);
                let mut tvars = std::mem::take(&mut self.scratch_tvars);
                let ans = &cells[off as usize..(off + len) as usize];
                let ok = match &template {
                    None => self.bind_factored_answer(ans, &subst, nvars, &mut tvars),
                    Some(t) => self.bind_unfactored_answer(t, ans, &subst, &mut tvars),
                };
                self.scratch_tvars = tvars;
                self.tables.consumers[cons as usize].subst = subst;
                self.tables.frame_mut(sub).store.put_cells(cells);
                if ok {
                    self.p = self.cont;
                    return Ok(true);
                }
                // answer did not apply (cannot normally happen for variant
                // calls); undo and try the next one
                let tip = self.cps[self.tables.consumers[cons as usize].cp as usize].tip;
                self.unwind_to(tip);
                continue;
            }
            if f.state == SubgoalState::Complete || f.deleted {
                // exhausted a completed table: this consumer is dead
                self.tables.consumers[cons as usize].dead = true;
                let cp = self.tables.consumers[cons as usize].cp;
                self.b = self.cps[cp as usize].prev;
                return Ok(false);
            }
            // suspend: freeze the stacks and give control back
            self.freeze_now();
            self.obs.metrics.bump(Counter::ConsumerSuspensions);
            if self.obs.trace.enabled {
                self.obs.trace.push(SlgEvent::Suspend {
                    subgoal: sub,
                    consumer: cons,
                });
            }
            let scheduled_by = self.tables.consumers[cons as usize].scheduled_by;
            if scheduled_by != NONE {
                self.tables.consumers[cons as usize].scheduled_by = NONE;
                return self.return_to_leader(scheduled_by, syms);
            }
            let cp = self.tables.consumers[cons as usize].cp;
            self.b = self.cps[cp as usize].prev;
            return Ok(false);
        }
    }

    /// Binds one factored answer against a call's substitution factor:
    /// the k-th binding in `ans` is bound *directly* onto the saved heap
    /// address `subst[k]`, with `unify_canon_one` falling back to full
    /// unification only for cells that are already bound. No tuple is
    /// rebuilt and nothing is copied — `ans` is a slice of the frame's
    /// arena (taken out by the caller) and `tvars` is a reused scratch
    /// map for answer-local variables.
    fn bind_factored_answer(
        &mut self,
        ans: &[Cell],
        subst: &[u32],
        nvars: usize,
        tvars: &mut Vec<Option<Cell>>,
    ) -> bool {
        // flat-ground fast path: a canonical root is either atomic (one
        // cell), an answer variable (one TVAR cell), or a structure
        // (functor cell + args, always > 1 cell). `ans.len() == nvars`
        // with no TVAR therefore means every binding is one atomic cell:
        // bind it straight onto the saved slot without the canonical
        // walker or the tvars scratch. Trailing is identical to the
        // general path (same `bind` calls, same TrailOps counts).
        if ans.len() == nvars && ans.iter().all(|c| c.tag() != Tag::TVar) {
            for (k, &slot) in subst.iter().take(nvars).enumerate() {
                let c = ans[k];
                let d = self.deref(Cell::r#ref(slot as usize));
                match d.tag() {
                    Tag::Ref => self.bind(d.addr(), c),
                    _ if d == c => {}
                    _ => return false,
                }
            }
            return true;
        }
        tvars.clear();
        let mut pos = 0usize;
        for &slot in subst.iter().take(nvars) {
            if !self.unify_canon_one(ans, &mut pos, tvars, Cell::r#ref(slot as usize)) {
                return false;
            }
        }
        true
    }

    /// Unfactored-baseline answer return: walks the call template and the
    /// stored full argument tuple in lockstep — ground skeleton cells are
    /// identical by construction and just skipped; at each variable
    /// position the binding subterm is bound against `subst` like in
    /// [`Machine::bind_factored_answer`].
    fn bind_unfactored_answer(
        &mut self,
        template: &[Cell],
        ans: &[Cell],
        subst: &[u32],
        tvars: &mut Vec<Option<Cell>>,
    ) -> bool {
        tvars.clear();
        let mut a = 0usize;
        for &c in template.iter() {
            if c.tag() == Tag::TVar {
                let k = c.tvar_index();
                if !self.unify_canon_one(ans, &mut a, tvars, Cell::r#ref(subst[k] as usize)) {
                    return false;
                }
            } else {
                debug_assert_eq!(ans[a], c, "ground skeleton matches the template");
                a += 1;
            }
        }
        debug_assert_eq!(a, ans.len(), "answer tuple fully consumed");
        true
    }

    /// Restores the leader's completion context and continues its
    /// scheduling loop.
    fn return_to_leader(
        &mut self,
        leader: u32,
        syms: &mut SymbolTable,
    ) -> Result<bool, EngineError> {
        let gen_cp = self.tables.frame(leader).gen_cp;
        let tip = self.cps[gen_cp as usize].tip;
        self.switch_environments(tip);
        self.restore_cp(gen_cp);
        self.generator_step(leader, syms)
    }

    /// Answer return from a completed table (no generator involved).
    fn completed_call(&mut self, sub: u32, subst: Vec<u32>) -> Result<Disp, EngineError> {
        let f = self.tables.frame(sub);
        match f.store.len() {
            0 => Ok(Disp::Failed),
            n => {
                let subst: Rc<[u32]> = Rc::from(subst.into_boxed_slice());
                if n > 1 {
                    self.push_cp(
                        0,
                        Alt::CompletedAnswers {
                            sub,
                            idx: 1,
                            subst: subst.clone(),
                        },
                    );
                }
                if self.completed_answer(sub, 0, &subst) {
                    Ok(Disp::Ok)
                } else {
                    Ok(Disp::Failed)
                }
            }
        }
    }

    fn completed_answer(&mut self, sub: u32, idx: usize, subst: &[u32]) -> bool {
        let f = self.tables.frame(sub);
        let nvars = f.nvars as usize;
        let template = if f.factored {
            None
        } else {
            Some(f.canon.clone())
        };
        let (off, len) = f.store.span(idx);
        let cells = self.tables.frame_mut(sub).store.take_cells();
        let mut tvars = std::mem::take(&mut self.scratch_tvars);
        let ans = &cells[off as usize..(off + len) as usize];
        let ok = match &template {
            None => self.bind_factored_answer(ans, subst, nvars, &mut tvars),
            Some(t) => self.bind_unfactored_answer(t, ans, subst, &mut tvars),
        };
        self.scratch_tvars = tvars;
        self.tables.frame_mut(sub).store.put_cells(cells);
        if ok {
            self.p = self.cont;
        }
        ok
    }

    /// Records an answer for `gen` from the current bindings of its
    /// substitution factor. Returns `Ok` to continue (batched scheduling
    /// returns the answer to the caller), `Failed` on duplicates or when
    /// the generator runs in negation mode.
    fn new_answer(&mut self, gen: u32, syms: &mut SymbolTable) -> Result<Disp, EngineError> {
        let (mode, state) = {
            let f = self.tables.frame(gen);
            (f.mode, f.state)
        };
        if state == SubgoalState::Complete {
            let f = self.tables.frame(gen);
            let p = self.db.pred(f.pred);
            return Err(EngineError::NotStratified(format!(
                "{}/{}",
                syms.name(p.name),
                p.arity
            )));
        }
        // canonicalize the bindings of the substitution factor — the
        // factored answer — into reused scratch buffers (no allocation on
        // this path, and the cells are only copied into the frame's arena
        // when the answer turns out to be genuinely new)
        let mut roots = std::mem::take(&mut self.scratch_roots);
        roots.clear();
        roots.extend(
            self.tables
                .frame(gen)
                .subst
                .iter()
                .map(|&a| Cell::r#ref(a as usize)),
        );
        let mut vs = std::mem::take(&mut self.scratch_vars);
        vs.clear();
        let mut canon = std::mem::take(&mut self.scratch_canon);
        self.canonicalize_into(&roots, &mut vs, &mut canon);
        self.scratch_roots = roots;
        self.scratch_vars = vs;
        // single walk: the duplicate probe and the insert share one pass
        let is_new = if self.tables.frame(gen).factored {
            self.tables.add_answer(gen, &canon)
        } else {
            // baseline mode: expand back to the full argument tuple by
            // splicing each binding at its template positions (template
            // variables are numbered in first-occurrence order, so the
            // expansion stays canonical)
            let nvars = self.tables.frame(gen).nvars as usize;
            let template = self.tables.frame(gen).canon.clone();
            let mut spans = std::mem::take(&mut self.scratch_spans);
            crate::table::canon_root_spans(&canon, nvars, &mut spans);
            let mut full = std::mem::take(&mut self.scratch_full);
            full.clear();
            for &c in template.iter() {
                if c.tag() == Tag::TVar {
                    let (o, l) = spans[c.tvar_index()];
                    full.extend_from_slice(&canon[o as usize..(o + l) as usize]);
                } else {
                    full.push(c);
                }
            }
            let r = self.tables.add_answer(gen, &full);
            self.scratch_spans = spans;
            self.scratch_full = full;
            r
        };
        if !is_new {
            self.scratch_canon = canon;
            self.obs.metrics.bump(Counter::DuplicateAnswers);
            if self.obs.trace.enabled {
                self.obs
                    .trace
                    .push(SlgEvent::DuplicateAnswer { subgoal: gen });
            }
            return Ok(Disp::Failed);
        }
        // cell accounting: what factoring stores vs. what the same answer
        // costs as a full argument tuple (skeleton re-expanded at every
        // variable occurrence)
        let factored_cells = canon.len() as u64;
        let full_cells = {
            let mut spans = std::mem::take(&mut self.scratch_spans);
            let nvars = self.tables.frame(gen).nvars as usize;
            crate::table::canon_root_spans(&canon, nvars, &mut spans);
            let f = self.tables.frame(gen);
            let total = f.ground_cells as u64
                + f.var_occ
                    .iter()
                    .zip(spans.iter())
                    .map(|(&occ, &(_, l))| occ as u64 * l as u64)
                    .sum::<u64>();
            self.scratch_spans = spans;
            total
        };
        self.scratch_canon = canon;
        self.obs.metrics.bump(Counter::AnswersRecorded);
        self.obs
            .metrics
            .add(Counter::AnswerCellsFactored, factored_cells);
        self.obs.metrics.add(Counter::AnswerCellsFull, full_cells);
        self.obs
            .metrics
            .add(Counter::AnswerCellsSaved, full_cells - factored_cells);
        if self.obs.trace.enabled {
            let answer = self.tables.frame(gen).store.len() as u32 - 1;
            self.obs.trace.push(SlgEvent::NewAnswer {
                subgoal: gen,
                answer,
            });
        }
        match mode {
            GenMode::Positive => Ok(Disp::Ok),
            GenMode::Negation => Ok(Disp::Failed),
            GenMode::Existential => {
                // first answer: the negation is false — abort the
                // subgoal's evaluation and free its tables if safe
                // (paper §4.4: tcut). The e_tnot's own suspension (the one
                // sitting at the cut-back choice point) is not an "other
                // user".
                let own_cut = self.tables.frame(gen).exist_cut_b;
                let safe = self.tables.is_leader(gen) && !self.tables.has_other_users(gen, own_cut);
                if safe {
                    let f = self.tables.frame(gen);
                    let cut_b = f.exist_cut_b;
                    let saved = f.saved_freeze;
                    let removed = self.tables.delete_from(gen);
                    for m in removed {
                        let conss = self.tables.frame(m).consumers.clone();
                        for c in conss {
                            self.tables.consumers[c as usize].dead = true;
                        }
                        let negs = self.tables.frame(m).negs.clone();
                        for n in negs {
                            self.tables.negs[n as usize].done = true;
                        }
                    }
                    self.freeze = saved;
                    self.b = cut_b;
                }
                Ok(Disp::Failed)
            }
        }
    }

    /// `tnot/1` and `e_tnot/1` (paper §4.4).
    pub fn slg_negation(
        &mut self,
        syms: &mut SymbolTable,
        resume: CodePtr,
        is_tail: bool,
        existential: bool,
    ) -> Result<BAction, EngineError> {
        let goal = self.deref(self.x[0]);
        let (f, n) = match goal.tag() {
            Tag::Con => (goal.sym(), 0usize),
            Tag::Str => self.functor_of(goal),
            Tag::Ref => return Err(EngineError::Instantiation("tnot/1")),
            _ => {
                return Err(EngineError::Type {
                    expected: "callable",
                    found: format!("{goal:?}"),
                })
            }
        };
        let Some(pred) = self.db.lookup_pred(f, n as u16) else {
            return Err(EngineError::UndefinedPredicate(format!(
                "{}/{n}",
                syms.name(f)
            )));
        };
        if !self.db.pred(pred).tabled {
            return Err(EngineError::Other(format!(
                "tnot/1 requires a tabled predicate, {}/{n} is not tabled",
                syms.name(f)
            )));
        }
        let args: Vec<Cell> = (0..n).map(|i| self.arg_of(goal, i)).collect();
        let mut var_addrs = Vec::new();
        let canon = self.canonicalize(&args, &mut var_addrs);
        if !var_addrs.is_empty() {
            // a non-ground negative call flounders
            return Err(EngineError::Other(format!(
                "floundering: tnot of non-ground goal {}/{n}",
                syms.name(f)
            )));
        }

        if let Some(sub) = self.tables.find(pred, &canon) {
            if self.tables.frame(sub).state == SubgoalState::Complete {
                self.note_table_reuse(sub);
                return Ok(if self.tables.frame(sub).has_answers() {
                    BAction::Fail
                } else {
                    BAction::Continue
                });
            }
            // incomplete: suspend until its SCC completes
            self.tables.note_dependency(sub);
            let neg = self.tables.negs.len() as u32;
            let cp = self.push_cp(1, Alt::NegSuspend { neg });
            let _ = is_tail;
            self.obs.metrics.bump(Counter::NegationSuspends);
            if self.obs.trace.enabled {
                self.obs.trace.push(SlgEvent::NegSuspend { subgoal: sub });
            }
            self.tables.negs.push(NegSusp {
                sub,
                cp,
                mode: NegMode::Tnot,
                subst: Vec::new(),
                resume,
                done: false,
            });
            self.tables.frame_mut(sub).negs.push(neg);
            self.freeze_now();
            return Ok(BAction::Fail);
        }

        // new subgoal: evaluate it under a negation-mode generator with a
        // suspension waiting for the empty-table case. The suspension is
        // registered before the generator's first clause runs, so even an
        // immediately-completing generator schedules it.
        let neg = self.tables.negs.len() as u32;
        let cp = self.push_cp(1, Alt::NegSuspend { neg });
        self.obs.metrics.bump(Counter::NegationSuspends);
        if self.obs.trace.enabled {
            self.obs.trace.push(SlgEvent::NegSuspend { subgoal: NONE });
        }
        self.tables.negs.push(NegSusp {
            sub: NONE, // fixed up by new_generator
            cp,
            mode: NegMode::Tnot,
            subst: Vec::new(),
            resume,
            done: false,
        });
        self.freeze_now();
        let mode = if existential {
            GenMode::Existential
        } else {
            GenMode::Negation
        };
        // copy goal args into registers for the generator's clause code
        for (i, a) in args.iter().enumerate() {
            self.x[i] = *a;
        }
        match self.new_generator(pred, n as u16, canon, var_addrs, mode, cp, Some(neg), syms)? {
            Disp::Ok => Ok(BAction::Jumped),
            Disp::Failed => Ok(BAction::Fail),
        }
    }

    /// `tfindall/3`: suspends until the goal's table is complete, then
    /// builds the full answer list (paper §4.7).
    pub fn tfindall(
        &mut self,
        syms: &mut SymbolTable,
        resume: CodePtr,
        is_tail: bool,
    ) -> Result<BAction, EngineError> {
        let template = self.x[0];
        let goal = self.deref(self.x[1]);
        let result = self.x[2];
        let _ = is_tail;
        let (f, n) = match goal.tag() {
            Tag::Con => (goal.sym(), 0usize),
            Tag::Str => self.functor_of(goal),
            _ => return Err(EngineError::Instantiation("tfindall/3")),
        };
        let Some(pred) = self.db.lookup_pred(f, n as u16) else {
            return Err(EngineError::UndefinedPredicate(format!(
                "{}/{n}",
                syms.name(f)
            )));
        };
        if !self.db.pred(pred).tabled {
            return Err(EngineError::Other(
                "tfindall/3 requires a tabled predicate".into(),
            ));
        }
        let args: Vec<Cell> = (0..n).map(|i| self.arg_of(goal, i)).collect();
        let mut var_addrs = Vec::new();
        let canon = self.canonicalize(&args, &mut var_addrs);

        // already complete: build immediately
        if let Some(sub) = self.tables.find(pred, &canon) {
            if self.tables.frame(sub).state == SubgoalState::Complete {
                self.note_table_reuse(sub);
                return self.tfindall_build_now(sub, template, result, &var_addrs);
            }
            // incomplete: suspend
            self.tables.note_dependency(sub);
            let neg = self.tables.negs.len() as u32;
            let cp = self.push_cp(3, Alt::NegSuspend { neg });
            self.obs.metrics.bump(Counter::NegationSuspends);
            if self.obs.trace.enabled {
                self.obs.trace.push(SlgEvent::NegSuspend { subgoal: sub });
            }
            self.tables.negs.push(NegSusp {
                sub,
                cp,
                mode: NegMode::Tfindall { template, result },
                subst: var_addrs,
                resume,
                done: false,
            });
            self.tables.frame_mut(sub).negs.push(neg);
            self.freeze_now();
            return Ok(BAction::Fail);
        }

        // new: evaluate exhaustively under a negation-mode generator
        let neg = self.tables.negs.len() as u32;
        let cp = self.push_cp(3, Alt::NegSuspend { neg });
        self.obs.metrics.bump(Counter::NegationSuspends);
        if self.obs.trace.enabled {
            self.obs.trace.push(SlgEvent::NegSuspend { subgoal: NONE });
        }
        self.tables.negs.push(NegSusp {
            sub: NONE, // fixed up by new_generator
            cp,
            mode: NegMode::Tfindall { template, result },
            subst: var_addrs.clone(),
            resume,
            done: false,
        });
        self.freeze_now();
        for (i, a) in args.iter().enumerate() {
            self.x[i] = *a;
        }
        match self.new_generator(
            pred,
            n as u16,
            canon,
            var_addrs,
            GenMode::Negation,
            NONE,
            Some(neg),
            syms,
        )? {
            Disp::Ok => Ok(BAction::Jumped),
            Disp::Failed => Ok(BAction::Fail),
        }
    }

    fn tfindall_build_now(
        &mut self,
        sub: u32,
        template: Cell,
        result: Cell,
        subst: &[u32],
    ) -> Result<BAction, EngineError> {
        Ok(if self.tfindall_list(sub, subst, template, result) {
            BAction::Continue
        } else {
            BAction::Fail
        })
    }

    /// Instantiates `template` once per stored answer of table `sub`
    /// (binding the suspension's substitution factor directly against the
    /// factored cells, unwinding between answers), then unifies the list
    /// of collected copies with `result`.
    fn tfindall_list(&mut self, sub: u32, subst: &[u32], template: Cell, result: Cell) -> bool {
        let nvars = self.tables.frame(sub).nvars as usize;
        let factored = self.tables.frame(sub).factored;
        let call_canon = self.tables.frame(sub).canon.clone();
        let n = self.tables.frame(sub).store.len();
        let mut collected: Vec<Box<[Cell]>> = Vec::with_capacity(n);
        let mut tvars = std::mem::take(&mut self.scratch_tvars);
        for idx in 0..n {
            let mark = self.tip;
            let (off, len) = self.tables.frame(sub).store.span(idx);
            let cells = self.tables.frame_mut(sub).store.take_cells();
            let ans = &cells[off as usize..(off + len) as usize];
            let ok = if factored {
                self.bind_factored_answer(ans, subst, nvars, &mut tvars)
            } else {
                self.bind_unfactored_answer(&call_canon, ans, subst, &mut tvars)
            };
            self.tables.frame_mut(sub).store.put_cells(cells);
            if ok {
                let mut vs = Vec::new();
                collected.push(self.canonicalize(&[template], &mut vs));
            }
            self.unwind_to(mark);
        }
        self.scratch_tvars = tvars;
        let items: Vec<Cell> = collected
            .iter()
            .map(|c| self.decode_canon(c, 1)[0])
            .collect();
        let list = self.make_list(&items);
        self.unify(result, list)
    }

    // ------------------------------------------------------------------
    // backtracking (the SLG scheduler)
    // ------------------------------------------------------------------

    fn backtrack(&mut self, syms: &mut SymbolTable) -> Result<Bt, EngineError> {
        loop {
            if self.b == NONE {
                return Ok(Bt::NoMore);
            }
            let i = self.b;
            self.obs.metrics.bump(Counter::Backtracks);
            self.restore_cp(i);
            if self.obs.trace.enabled {
                let depth = self.cps.len() as u32;
                self.obs.trace.push(SlgEvent::Backtrack { depth });
            }
            let alt = self.cps[i as usize].alt.clone();
            match alt {
                Alt::Code(ptr) => {
                    self.p = ptr;
                    return Ok(Bt::Resumed);
                }
                Alt::StaticList { list, idx } => {
                    let idx = idx as usize;
                    if idx + 1 >= list.len() {
                        self.b = self.cps[i as usize].prev; // trust
                    } else {
                        self.cps[i as usize].alt = Alt::StaticList {
                            list: list.clone(),
                            idx: idx as u32 + 1,
                        };
                    }
                    self.p = list[idx];
                    return Ok(Bt::Resumed);
                }
                Alt::DynClauses { pred, list, idx } => {
                    let idx = idx as usize;
                    if idx + 1 >= list.len() {
                        self.b = self.cps[i as usize].prev;
                    } else {
                        self.cps[i as usize].alt = Alt::DynClauses {
                            pred,
                            list: list.clone(),
                            idx: idx as u32 + 1,
                        };
                    }
                    if self.try_dyn_clause(pred, list[idx], syms)? {
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::Generator { sub } => {
                    if self.generator_step(sub, syms)? {
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::Consumer { cons } => {
                    if self.consumer_step(cons, syms)? {
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::CompletedAnswers { sub, idx, subst } => {
                    let idx = idx as usize;
                    let n = self.tables.frame(sub).store.len();
                    if idx + 1 >= n {
                        self.b = self.cps[i as usize].prev;
                    } else {
                        self.cps[i as usize].alt = Alt::CompletedAnswers {
                            sub,
                            idx: idx as u32 + 1,
                            subst: subst.clone(),
                        };
                    }
                    if self.completed_answer(sub, idx, &subst) {
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::NegSuspend { .. } => {
                    // plain failure through a suspension: it stays
                    // registered for completion-time scheduling
                    self.b = self.cps[i as usize].prev;
                    continue;
                }
                Alt::NegScheduled { leader } => {
                    // a scheduled suspension returns control to its leader
                    // exactly once; afterwards the barrier is spent
                    self.cps[i as usize].alt = Alt::Dead;
                    if self.return_to_leader(leader, syms)? {
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::FindallFinish { rec, resume } => {
                    self.b = self.cps[i as usize].prev;
                    let r = self.findalls.pop().expect("findall record for its barrier");
                    debug_assert_eq!(self.findalls.len(), rec as usize);
                    let mut items: Vec<Cell> = r
                        .solutions
                        .iter()
                        .map(|c| self.decode_canon(c, 1)[0])
                        .collect();
                    if r.sort_dedup_fail_empty {
                        if items.is_empty() {
                            continue;
                        }
                        items.sort_by(|&a, &b| self.compare(a, b, syms));
                        items.dedup_by(|&mut a, &mut b| {
                            self.compare(a, b, syms) == std::cmp::Ordering::Equal
                        });
                    }
                    let list = self.make_list(&items);
                    if self.unify(r.result, list) {
                        self.p = resume;
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::NafBarrier { resume } => {
                    // the goal failed exhaustively: \+ succeeds
                    self.b = self.cps[i as usize].prev;
                    self.p = resume;
                    return Ok(Bt::Resumed);
                }
                Alt::Between { cur, hi, resume } => {
                    if cur > hi {
                        self.b = self.cps[i as usize].prev;
                        continue;
                    }
                    if cur == hi {
                        self.b = self.cps[i as usize].prev;
                    } else {
                        self.cps[i as usize].alt = Alt::Between {
                            cur: cur + 1,
                            hi,
                            resume,
                        };
                    }
                    let x = self.deref(self.x[2]);
                    debug_assert_eq!(x.tag(), Tag::Ref, "between variable restored");
                    self.bind(x.addr(), Cell::int(cur));
                    self.p = resume;
                    return Ok(Bt::Resumed);
                }
                Alt::Retract {
                    pred,
                    list,
                    idx,
                    resume,
                } => {
                    let idx = idx as usize;
                    if idx >= list.len() {
                        self.b = self.cps[i as usize].prev;
                        continue;
                    }
                    self.cps[i as usize].alt = Alt::Retract {
                        pred,
                        list: list.clone(),
                        idx: idx as u32 + 1,
                        resume,
                    };
                    let id = list[idx];
                    if !self.db.dyn_of(pred).expect("dynamic").clause(id).live {
                        continue;
                    }
                    if self.retract_match(pred, id)? {
                        // redo record before the store changes
                        let (name, arity, has_body, canon) = {
                            let p = self.db.pred(pred);
                            let c = self.db.dyn_of(pred).expect("dynamic").clause(id);
                            (p.name, p.arity, c.has_body, c.canon.clone())
                        };
                        crate::durable::log_mutation(
                            self.db,
                            syms,
                            &mut self.obs.metrics,
                            crate::durable::MutOp::Retract {
                                name,
                                arity,
                                has_body,
                                canon: &canon,
                            },
                        )?;
                        self.db.dyn_of_mut(pred).expect("dynamic").remove(id);
                        crate::durable::track_txn_mutation(
                            self.db,
                            pred,
                            crate::durable::UndoEntry::Retract { pred, clause: id },
                        );
                        self.invalidate_dependents(pred);
                        self.p = resume;
                        return Ok(Bt::Resumed);
                    }
                    continue;
                }
                Alt::Query => {
                    self.b = self.cps[i as usize].prev;
                    return Ok(Bt::NoMore);
                }
                Alt::Dead => {
                    self.b = self.cps[i as usize].prev;
                    continue;
                }
            }
        }
    }

    /// Unifies the retract pattern in `x[0]` against stored clause `id`.
    fn retract_match(&mut self, pred: PredId, id: u32) -> Result<bool, EngineError> {
        let arity = self.db.pred(pred).arity as usize;
        let (canon, has_body) = {
            let c = self.db.dyn_of(pred).expect("dynamic").clause(id);
            (c.canon.clone(), c.has_body)
        };
        let roots = self.decode_canon(&canon, arity + has_body as usize);
        // rebuild the clause term: Head or (Head :- Body)
        let head = if arity == 0 {
            Cell::con(self.db.pred(pred).name)
        } else {
            let base = self.heap.len();
            self.heap.push(Cell::fun(self.db.pred(pred).name, arity));
            for r in &roots[..arity] {
                self.heap.push(*r);
            }
            Cell::str(base)
        };
        let clause_term = if has_body {
            let base = self.heap.len();
            self.heap.push(Cell::fun(well_known::NECK, 2));
            self.heap.push(head);
            self.heap.push(roots[arity]);
            Cell::str(base)
        } else {
            head
        };
        // pattern may itself be (H :- B) or just H
        let pattern = self.x[0];
        let pat = self.deref(pattern);
        let target = if has_body {
            clause_term
        } else {
            // allow retract((H :- true))
            if pat.tag() == Tag::Str {
                let (f, n) = self.functor_of(pat);
                if f == well_known::NECK && n == 2 {
                    let base = self.heap.len();
                    self.heap.push(Cell::fun(well_known::NECK, 2));
                    self.heap.push(clause_term);
                    self.heap.push(Cell::con(well_known::TRUE));
                    Cell::str(base)
                } else {
                    clause_term
                }
            } else {
                clause_term
            }
        };
        Ok(self.unify(pattern, target))
    }
}
