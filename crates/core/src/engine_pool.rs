//! Concurrent serving: a pool of worker engines over one shared table
//! store.
//!
//! The paper positions XSB as a *server* for deductive-database workloads;
//! [`ServerPool`] is that serving layer. It owns N OS threads, each
//! running a full [`Engine`] that consulted the same program, all attached
//! to one [`SharedTableStore`]. A tabled query answered by any worker
//! publishes its completed tables into the store, so every other worker
//! serves the same subgoal as a warm hit — the table is computed once
//! pool-wide, which is what makes throughput scale with workers on warm
//! workloads instead of multiplying the evaluation cost.
//!
//! The [`Engine`] itself is single-threaded by design (`Rc`/`RefCell`
//! interior state — the WAM does not want atomics on its hot paths), so
//! engines are constructed *inside* their worker threads and never move;
//! only jobs, results, and the `Arc`-held store cross thread boundaries.
//!
//! Consistency: updates (assert/abolish/consult) are per-worker state, so
//! [`ServerPool::consult_all`] broadcasts program text to every worker.
//! Table invalidation is pool-wide automatically — a worker that asserts
//! bumps the store epoch through the dependency graph, and every other
//! worker drops the affected tables at its next query (the same call-time
//! snapshot semantics a single engine has had since cross-query caching).
//! A *non-broadcast* update (e.g. a query calling `assert/1` on one
//! worker) diverges that worker's database from the pool's common
//! program; the worker then detaches from answer sharing — it neither
//! publishes nor imports shared tables again, answering from its own EDB
//! — while the other workers keep sharing among themselves. Divergence
//! is not permanent: the next [`ServerPool::consult_all`] broadcast
//! re-establishes a common program, and the diverged worker resyncs
//! (shared-floor local tables invalidated, divergence flag cleared) and
//! rejoins sharing.
//!
//! Cold-miss coordination: when several workers race the *same* cold
//! subgoal, the store's claim/wait protocol (DESIGN.md §2.9) lets the
//! first claimant compute while the rest park and import the published
//! table — one compute pool-wide instead of N, with a bounded wait and
//! local-compute fallback so a stuck claimant can never wedge the pool.

use crate::durable::{werr, DurableLog, Record};
use crate::engine::{Engine, Solution};
use crate::error::EngineError;
use crate::shared::SharedTableStore;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use xsb_obs::{Metrics, Stopwatch};
use xsb_syntax::SymbolTable;

/// Configuration for a [`ServerPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// number of worker engines (threads)
    pub workers: usize,
    /// per-query abstract-machine step limit (None = unlimited)
    pub step_limit: Option<u64>,
    /// table budget in answer-store cells, applied to each worker *and*
    /// the shared store (None = unbounded)
    pub table_budget: Option<u64>,
    /// admission control for [`ServerPool::try_submit_stream`]: maximum
    /// streamed jobs queued-or-running pool-wide before submissions are
    /// rejected with a typed [`PoolBusy`] (None = unbounded). The plain
    /// `submit`/`query` APIs are not admission-controlled — they are the
    /// embedded, trusted path.
    pub queue_depth: Option<usize>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            step_limit: None,
            table_budget: None,
            queue_depth: None,
        }
    }
}

/// One streamed answer: the query's named variables with their bindings
/// rendered to canonical text by the worker that computed them (symbol
/// ids are engine-local, so terms must be rendered before they cross an
/// engine boundary — a wire, or another engine's symbol table).
pub type WireAnswer = Vec<(String, String)>;

/// What a streamed submission does with its goal text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Evaluate the goal and stream every solution's bindings.
    Query,
    /// Evaluate to exhaustion, report only the solution count (the
    /// fail-loop fast path — no solutions are decoded or streamed).
    Count,
}

/// One event in a streamed job's reply channel, tagged with the caller's
/// request id. Per-job event order is `Answers* (Done | Error)`: answer
/// batches (queries only), then exactly one terminal event.
#[derive(Clone, Debug)]
pub enum StreamItem {
    /// A batch of rendered solutions, in solution order.
    Answers(Vec<WireAnswer>),
    /// Terminal: the job completed. `count` is the total solutions; the
    /// two timings are the job's queue wait and on-engine run time.
    Done {
        count: u64,
        queue_wait_ns: u64,
        run_ns: u64,
    },
    /// Terminal: the engine rejected the goal/program.
    Error(String),
}

/// Typed admission-control rejection from [`ServerPool::try_submit_stream`]:
/// the pool's bounded queue is full. The caller should shed the request
/// (e.g. answer `Busy` on the wire) rather than retry in a tight loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolBusy;

impl std::fmt::Display for PoolBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool admission queue full")
    }
}

enum Job {
    /// run a query, return all solutions (the `Instant` is the submit
    /// time — the worker records the queue wait before running)
    Query(String, Instant, Sender<Result<Vec<Solution>, EngineError>>),
    /// run a query to exhaustion, return the solution count
    Count(String, Instant, Sender<Result<usize, EngineError>>),
    /// consult program text
    Consult(String, Instant, Sender<Result<(), EngineError>>),
    /// snapshot this worker's metrics (also the join barrier: a reply
    /// proves the worker drained everything submitted before it)
    Metrics(Sender<Box<Metrics>>),
    /// run a streamed job: answers go back in batches of `batch` over the
    /// shared `reply` channel, every event tagged with `tag` so many jobs
    /// can share one channel (the serving front-end's pipelining)
    Stream {
        kind: StreamKind,
        goal: String,
        tag: u64,
        batch: usize,
        submitted: Instant,
        reply: Sender<(u64, StreamItem)>,
    },
}

impl Job {
    /// Submit time for jobs that count toward queue-wait latency; `None`
    /// for the metrics barrier, which is bookkeeping rather than served
    /// work. Recording happens at exactly one site in the worker loop so
    /// no job kind can double-record or skip the sample.
    fn submitted(&self) -> Option<Instant> {
        match self {
            Job::Query(_, t, _) | Job::Count(_, t, _) | Job::Consult(_, t, _) => Some(*t),
            Job::Stream { submitted, .. } => Some(*submitted),
            Job::Metrics(_) => None,
        }
    }
}

struct Worker {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of worker engines serving queries concurrently over one shared
/// completed-table store. See the module docs for the sharing model.
pub struct ServerPool {
    workers: Vec<Worker>,
    store: Arc<SharedTableStore>,
    /// the pool's durable log, when built via the durable constructors
    log: Option<Arc<DurableLog>>,
    /// round-robin cursor for [`ServerPool::submit`]
    next: std::sync::atomic::AtomicUsize,
    /// streamed jobs currently queued or running pool-wide; workers
    /// decrement after the terminal event, so the count is the admission
    /// queue's occupancy
    inflight: Arc<std::sync::atomic::AtomicUsize>,
    /// admission bound on `inflight` (None = unbounded)
    queue_depth: Option<usize>,
}

/// A pending result from [`ServerPool::submit`] / [`ServerPool::submit_count`].
/// `wait()` blocks until the owning worker finishes the job.
pub struct Ticket<T> {
    rx: Receiver<Result<T, EngineError>>,
}

impl<T> Ticket<T> {
    /// Blocks until the job completes. If the worker thread died (engine
    /// panic), the error surfaces here rather than hanging.
    pub fn wait(self) -> Result<T, EngineError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(EngineError::Other("pool worker died".into())))
    }
}

impl ServerPool {
    /// Builds a pool of `config.workers` engines, each consulting
    /// `program`, attached to a fresh shared store. Returns an error if
    /// the program fails to consult (reported by the first worker; all
    /// workers run identical text).
    pub fn new(program: &str, config: PoolConfig) -> Result<ServerPool, EngineError> {
        Self::build(Some(program.to_string()), config, None)
    }

    /// Builds a **durable** pool: `program` is appended to the (fresh)
    /// WAL as its base `Program` record, and every worker attaches to
    /// the log before consulting anything — workers load the program by
    /// replaying the log, so a fresh pool and a reopened one take the
    /// exact same code path. Errors if the log already holds a program
    /// (use [`ServerPool::reopen_log`] for that).
    pub fn new_durable(
        program: &str,
        config: PoolConfig,
        log: Arc<DurableLog>,
    ) -> Result<ServerPool, EngineError> {
        if !log.is_fresh() {
            return Err(EngineError::Other(
                "durable log already holds a program; use ServerPool::reopen".into(),
            ));
        }
        log.append_record(
            &Record::Program {
                text: program.to_string(),
            },
            &SymbolTable::new(),
            true,
        )
        .map_err(werr)?;
        Self::build(None, config, Some(log))
    }

    /// Reopens a durable pool from the WAL at `path`: each worker
    /// replays the log (program, broadcasts, and its own worker-tagged
    /// mutations) back to the last committed state. A worker whose
    /// replay included worker-local mutations rejoins the pool already
    /// marked diverged, exactly as it was before the crash.
    pub fn reopen(path: &std::path::Path, config: PoolConfig) -> Result<ServerPool, EngineError> {
        let log = Arc::new(DurableLog::open_path(path).map_err(werr)?);
        Self::reopen_log(log, config)
    }

    /// Like [`ServerPool::reopen`] but over an already-open log (any
    /// [`xsb_storage::Vfs`] backend — used by the fault-injection tests).
    pub fn reopen_log(log: Arc<DurableLog>, config: PoolConfig) -> Result<ServerPool, EngineError> {
        if log.is_fresh() {
            return Err(EngineError::Other(
                "durable log holds no program; use ServerPool::new_durable".into(),
            ));
        }
        Self::build(None, config, Some(log))
    }

    fn build(
        program: Option<String>,
        config: PoolConfig,
        log: Option<Arc<DurableLog>>,
    ) -> Result<ServerPool, EngineError> {
        let store = Arc::new(SharedTableStore::new());
        if let Some(b) = config.table_budget {
            store.set_budget(Some(b));
        }
        let nworkers = config.workers.max(1);
        let mut workers = Vec::with_capacity(nworkers);
        let inflight = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (ready_tx, ready_rx) = channel::<Result<(), EngineError>>();
        for wid in 0..nworkers {
            let (tx, rx) = channel::<Job>();
            let program = program.clone();
            let log = log.clone();
            let config = config.clone();
            let store = store.clone();
            let ready = ready_tx.clone();
            let inflight = inflight.clone();
            let handle = std::thread::spawn(move || {
                // the engine lives entirely inside this thread: Engine is
                // intentionally !Send (Rc/RefCell on the WAM hot paths)
                let mut e = Engine::new();
                let mut recovered_local_ops = false;
                let setup = match (&log, &program) {
                    (Some(l), _) => {
                        e.attach_wal(l.clone(), wid as u16);
                        // replay consults the Program record and re-applies
                        // this worker's committed mutations (plus broadcasts)
                        e.replay_wal().map(|rep| {
                            recovered_local_ops = rep.own_worker_ops > 0;
                        })
                    }
                    (None, Some(p)) => e.consult(p),
                    (None, None) => Err(EngineError::Other("pool built with no program".into())),
                };
                let ok = setup.is_ok();
                if ok {
                    e.set_step_limit(config.step_limit);
                    e.set_table_budget(config.table_budget);
                    e.set_pool_workers(nworkers as u32);
                    // attach after consulting: everything in the program
                    // is below the sharing floors
                    e.attach_shared_store(store);
                    if recovered_local_ops {
                        // replayed worker-local mutations mean this EDB
                        // already differs from its siblings' — rejoin in
                        // the diverged state the crash interrupted
                        e.tables.force_diverge();
                    }
                }
                let _ = ready.send(setup);
                if !ok {
                    return;
                }
                while let Ok(job) = rx.recv() {
                    // single queue-wait recording site: every timed job
                    // kind samples exactly once, the metrics barrier never
                    let queue_ns = job.submitted().map(|s| s.elapsed().as_nanos() as u64);
                    if let Some(ns) = queue_ns {
                        e.note_queue_wait(ns);
                    }
                    match job {
                        Job::Query(q, _, reply) => {
                            let sw = Stopwatch::new();
                            let r = e.query(&q);
                            e.note_run_time(sw.elapsed_nanos());
                            let _ = reply.send(r);
                        }
                        Job::Count(q, _, reply) => {
                            let sw = Stopwatch::new();
                            let r = e.count(&q);
                            e.note_run_time(sw.elapsed_nanos());
                            let _ = reply.send(r);
                        }
                        Job::Consult(src, _, reply) => {
                            // consult_all is a broadcast: every worker
                            // applies the same update, so it does not
                            // diverge any worker's EDB from the pool —
                            // and it re-attaches a previously diverged
                            // worker (see `Engine::consult_broadcast`)
                            let sw = Stopwatch::new();
                            let r = e.consult_broadcast(&src);
                            e.note_run_time(sw.elapsed_nanos());
                            let _ = reply.send(r);
                        }
                        Job::Stream {
                            kind,
                            goal,
                            tag,
                            batch,
                            reply,
                            ..
                        } => {
                            let sw = Stopwatch::new();
                            let terminal = match kind {
                                StreamKind::Query => match e.query(&goal) {
                                    Ok(sols) => {
                                        let count = sols.len() as u64;
                                        let batch = batch.max(1);
                                        for chunk in sols.chunks(batch) {
                                            let rendered = chunk
                                                .iter()
                                                .map(|s| {
                                                    s.bindings
                                                        .iter()
                                                        .map(|(n, t)| {
                                                            (
                                                                n.clone(),
                                                                t.display(&e.syms).to_string(),
                                                            )
                                                        })
                                                        .collect()
                                                })
                                                .collect();
                                            let _ =
                                                reply.send((tag, StreamItem::Answers(rendered)));
                                        }
                                        Ok(count)
                                    }
                                    Err(err) => Err(err),
                                },
                                StreamKind::Count => e.count(&goal).map(|n| n as u64),
                            };
                            let run_ns = sw.elapsed_nanos();
                            e.note_run_time(run_ns);
                            let item = match terminal {
                                Ok(count) => StreamItem::Done {
                                    count,
                                    queue_wait_ns: queue_ns.unwrap_or(0),
                                    run_ns,
                                },
                                Err(err) => StreamItem::Error(err.to_string()),
                            };
                            // release the admission slot before the
                            // terminal event: a caller that sees Done must
                            // be able to submit again without a spurious Busy
                            inflight.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
                            let _ = reply.send((tag, item));
                        }
                        Job::Metrics(reply) => {
                            let _ = reply.send(Box::new(e.metrics().clone()));
                        }
                    }
                }
            });
            workers.push(Worker {
                tx,
                handle: Some(handle),
            });
        }
        drop(ready_tx);
        // surface the first consult failure (if any) as the pool's error
        for _ in 0..nworkers {
            match ready_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(EngineError::Other("pool worker died during setup".into())),
            }
        }
        Ok(ServerPool {
            workers,
            store,
            log,
            next: std::sync::atomic::AtomicUsize::new(0),
            inflight,
            queue_depth: config.queue_depth,
        })
    }

    /// The pool's durable log, if it was built with one.
    pub fn wal(&self) -> Option<&Arc<DurableLog>> {
        self.log.as_ref()
    }

    /// Number of worker engines.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's shared completed-table store.
    pub fn store(&self) -> &Arc<SharedTableStore> {
        &self.store
    }

    fn pick(&self, worker: Option<usize>) -> &Worker {
        let i = match worker {
            Some(i) => i % self.workers.len(),
            None => {
                self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % self.workers.len()
            }
        };
        &self.workers[i]
    }

    /// Submits a query round-robin (or to a specific worker) and returns
    /// a [`Ticket`] for its solutions.
    pub fn submit(&self, q: &str) -> Ticket<Vec<Solution>> {
        self.submit_to(q, None)
    }

    /// Like [`ServerPool::submit`] but pinned to worker `worker % N`.
    pub fn submit_to(&self, q: &str, worker: Option<usize>) -> Ticket<Vec<Solution>> {
        let (reply, rx) = channel();
        let _ = self
            .pick(worker)
            .tx
            .send(Job::Query(q.to_string(), Instant::now(), reply));
        Ticket { rx }
    }

    /// Submits a counting query (solutions are not decoded — the
    /// fail-loop fast path) round-robin or pinned.
    pub fn submit_count(&self, q: &str, worker: Option<usize>) -> Ticket<usize> {
        let (reply, rx) = channel();
        let _ = self
            .pick(worker)
            .tx
            .send(Job::Count(q.to_string(), Instant::now(), reply));
        Ticket { rx }
    }

    /// Submits a streamed job under admission control: if accepted, the
    /// job's events arrive on `reply` tagged with `tag` (many jobs may
    /// share one channel — per-job order is `Answers* (Done | Error)`);
    /// if the pool's bounded queue (`PoolConfig::queue_depth`) is full,
    /// returns the typed [`PoolBusy`] rejection immediately and sends
    /// nothing. This is the serving front-end's submission path: it never
    /// blocks and never wedges the caller behind a deep queue.
    pub fn try_submit_stream(
        &self,
        kind: StreamKind,
        goal: &str,
        tag: u64,
        batch: usize,
        reply: Sender<(u64, StreamItem)>,
    ) -> Result<(), PoolBusy> {
        use std::sync::atomic::Ordering;
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if let Some(depth) = self.queue_depth {
            if prev >= depth {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                return Err(PoolBusy);
            }
        }
        let job = Job::Stream {
            kind,
            goal: goal.to_string(),
            tag,
            batch,
            submitted: Instant::now(),
            reply,
        };
        if self.pick(None).tx.send(job).is_err() {
            // worker died: release the slot; the caller sees the closed
            // reply channel (no terminal event will ever arrive)
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Streamed jobs currently queued or running (admission occupancy).
    pub fn inflight(&self) -> usize {
        self.inflight.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Convenience: run a query on one worker and wait for its solutions.
    pub fn query(&self, q: &str) -> Result<Vec<Solution>, EngineError> {
        self.submit(q).wait()
    }

    /// Convenience: count solutions on one worker.
    pub fn count(&self, q: &str) -> Result<usize, EngineError> {
        self.submit_count(q, None).wait()
    }

    /// Consults program text on **every** worker (each engine owns its
    /// program database). This is the supported way to update the pool's
    /// data: as a broadcast it keeps all EDBs identical, so no worker is
    /// marked diverged (contrast a query calling `assert/1`, which
    /// detaches its worker from answer sharing). Predicates added here
    /// are evaluated per-worker but their tables stay worker-local — the
    /// sharing floors are fixed at pool construction. Returns the first
    /// error, if any.
    pub fn consult_all(&self, src: &str) -> Result<(), EngineError> {
        // durable pools log the broadcast text once at pool level; the
        // per-worker consult legs run with per-mutation logging
        // suspended (see `Engine::consult_broadcast`)
        if let Some(log) = &self.log {
            log.append_record(
                &Record::Broadcast {
                    text: src.to_string(),
                },
                &SymbolTable::new(),
                true,
            )
            .map_err(werr)?;
        }
        let mut pending = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (reply, rx) = channel();
            let _ =
                w.tx.send(Job::Consult(src.to_string(), Instant::now(), reply));
            pending.push(rx);
        }
        for rx in pending {
            rx.recv()
                .map_err(|_| EngineError::Other("pool worker died".into()))??;
        }
        Ok(())
    }

    /// Waits until every worker has drained all jobs submitted so far.
    pub fn join(&self) {
        let _ = self.metrics();
    }

    /// Aggregated metrics across all workers: counters and timers are
    /// summed, memory gauges take the pool-wide high water mark. Doubles
    /// as a barrier (each worker replies only after draining its queue).
    pub fn metrics(&self) -> Metrics {
        let mut pending = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (reply, rx) = channel();
            let _ = w.tx.send(Job::Metrics(reply));
            pending.push(rx);
        }
        let mut total = Metrics::default();
        for rx in pending {
            if let Ok(m) = rx.recv() {
                total.merge(&m);
            }
        }
        total
    }
}

impl Drop for ServerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // closing the job channel is the shutdown signal
            let (tx, _) = channel();
            drop(std::mem::replace(&mut w.tx, tx));
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        // workers have drained: push any group-commit window remainder
        // to stable storage before the log handle goes away
        if let Some(log) = &self.log {
            let _ = log.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_obs::Counter;

    const PATH: &str = r#"
        :- table path/2.
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,1).
    "#;

    fn pool(workers: usize) -> ServerPool {
        ServerPool::new(
            PATH,
            PoolConfig {
                workers,
                ..PoolConfig::default()
            },
        )
        .expect("program consults")
    }

    #[test]
    fn queries_round_robin_and_agree() {
        let p = pool(3);
        assert_eq!(p.workers(), 3);
        let tickets: Vec<_> = (0..6).map(|_| p.submit_count("path(1, X)", None)).collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), 3);
        }
    }

    #[test]
    fn table_computed_once_serves_all_workers() {
        let p = pool(4);
        // cold: one worker computes and publishes
        assert_eq!(p.submit_count("path(X, Y)", Some(0)).wait().unwrap(), 9);
        p.join();
        assert_eq!(p.store().len(), 1, "completed table published");
        // warm: every other worker imports instead of recomputing
        for w in 1..4 {
            assert_eq!(p.submit_count("path(X, Y)", Some(w)).wait().unwrap(), 9);
        }
        let m = p.metrics();
        assert_eq!(m.get(Counter::SharedTablePublishes), 1);
        assert_eq!(m.get(Counter::SharedTableHits), 3);
        // workers 1..4 never ran the generator for path/2's full variant:
        // one miss pool-wide
        assert_eq!(m.get(Counter::TableMisses), 1);
    }

    #[test]
    fn invalidation_propagates_across_workers() {
        let p = ServerPool::new(
            ":- table path/2.\n:- dynamic edge/2.\n\
             path(X,Y) :- edge(X,Y).\n\
             path(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3).",
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // worker 0 computes and publishes the table
        assert_eq!(p.submit_count("path(1, X)", Some(0)).wait().unwrap(), 2);
        p.join();
        assert_eq!(p.store().len(), 1);
        // a data update is broadcast to every worker's EDB; each broadcast
        // assert also bumps the store epoch, dropping the published table
        p.consult_all("edge(3,4).").unwrap();
        assert!(p.store().is_empty(), "stale shared table invalidated");
        // both workers recompute against the new data — including worker
        // 0, whose *published* table would otherwise have served stale
        assert_eq!(p.submit_count("path(1, X)", Some(0)).wait().unwrap(), 3);
        assert_eq!(p.submit_count("path(1, X)", Some(1)).wait().unwrap(), 3);
    }

    #[test]
    fn single_worker_assert_detaches_that_worker_from_sharing() {
        let p = ServerPool::new(
            ":- table path/2.\n:- dynamic edge/2.\n\
             path(X,Y) :- edge(X,Y).\n\
             path(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3).",
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // worker 0 computes and publishes the table
        assert_eq!(p.submit_count("path(1, X)", Some(0)).wait().unwrap(), 2);
        p.join();
        assert_eq!(p.store().len(), 1);
        // a NON-broadcast update: a query on worker 0 alone asserts a new
        // edge — its EDB now differs from worker 1's
        assert_eq!(
            p.submit_count("assert(edge(3,4))", Some(0)).wait().unwrap(),
            1
        );
        p.join();
        assert!(p.store().is_empty(), "dependent shared tables dropped");
        // worker 1 recomputes from its own (unchanged) EDB and keeps
        // sharing with the rest of the pool
        assert_eq!(p.submit_count("path(1, X)", Some(1)).wait().unwrap(), 2);
        p.join();
        assert_eq!(p.store().len(), 1, "undiverged worker still publishes");
        // worker 0 answers from its own diverged EDB: it must neither
        // import worker 1's frame (2 answers — stale relative to worker
        // 0's database) nor republish its 3-answer table into the pool
        assert_eq!(p.submit_count("path(1, X)", Some(0)).wait().unwrap(), 3);
        p.join();
        assert_eq!(p.store().len(), 1, "diverged worker published nothing");
        let m = p.metrics();
        assert_eq!(m.get(Counter::SharedTablePublishes), 2);
        assert_eq!(
            m.get(Counter::SharedTableHits),
            0,
            "diverged worker never imported the inconsistent frame"
        );
    }

    #[test]
    fn diverged_worker_rejoins_after_broadcast() {
        let p = ServerPool::new(
            ":- table path/2.\n:- dynamic edge/2.\n\
             path(X,Y) :- edge(X,Y).\n\
             path(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3).",
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // a query-level assert on worker 0 alone diverges it from the pool
        assert_eq!(
            p.submit_count("assert(edge(3,4))", Some(0)).wait().unwrap(),
            1
        );
        p.join();
        // broadcast the same fact: every worker now has edge(3,4) (worker
        // 0 holds a duplicate clause — harmless under tabled answer
        // dedup), so the pool's program is coherent again and the
        // broadcast re-attaches worker 0 to sharing
        p.consult_all("edge(3,4).").unwrap();
        // the rejoined worker publishes again ...
        assert_eq!(p.submit_count("path(1, X)", Some(0)).wait().unwrap(), 3);
        p.join();
        assert_eq!(p.store().len(), 1, "rejoined worker publishes again");
        // ... and its frame serves the other worker as a warm import
        assert_eq!(p.submit_count("path(1, X)", Some(1)).wait().unwrap(), 3);
        p.join();
        let m = p.metrics();
        assert_eq!(m.get(Counter::SharedTablePublishes), 1);
        assert_eq!(
            m.get(Counter::SharedTableHits),
            1,
            "other workers import the rejoined worker's table"
        );
    }

    #[test]
    fn queue_wait_samples_once_per_timed_job() {
        let p = pool(2);
        // 2 queries + 1 count = 3 timed jobs; consult_all broadcasts one
        // timed consult job to each of the 2 workers = 2 more; the metrics
        // barrier jobs must not sample at all
        assert_eq!(p.submit("path(1, X)").wait().unwrap().len(), 3);
        assert_eq!(p.submit("path(2, X)").wait().unwrap().len(), 3);
        assert_eq!(p.submit_count("path(3, X)", None).wait().unwrap(), 3);
        p.consult_all("extra(a).").unwrap();
        p.join();
        let m = p.metrics();
        assert_eq!(m.queue_wait.count(), 5, "3 queries + 2 consult legs");
        assert_eq!(m.run_time.count(), 5);
    }

    #[test]
    fn consult_all_reaches_every_worker() {
        let p = pool(2);
        p.consult_all("extra(a). extra(b).").unwrap();
        for w in 0..2 {
            assert_eq!(p.submit_count("extra(X)", Some(w)).wait().unwrap(), 2);
        }
    }

    #[test]
    fn pool_workers_builtin_reports_size() {
        let p = pool(3);
        let sols = p.query("pool_workers(N)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0].get("N"),
            Some(&xsb_syntax::Term::Int(3)),
            "pool_workers/1 reports the worker count"
        );
    }

    #[test]
    fn pool_metrics_include_latency_histograms() {
        let p = pool(2);
        for _ in 0..4 {
            assert_eq!(p.count("path(1, X)").unwrap(), 3);
        }
        let m = p.metrics();
        // every job passes through the queue-wait and run-time histograms
        assert_eq!(m.queue_wait.count(), 4);
        assert_eq!(m.run_time.count(), 4);
        assert_eq!(m.query_latency.count(), 4);
        assert!(m.run_time.p99() >= m.run_time.p50());
        // shared-store sync runs before (and publish after) each query
        assert_eq!(m.shared_sync.count(), 4);
        assert_eq!(m.shared_publish.count(), 4);
    }

    #[test]
    fn streamed_query_batches_and_terminates_in_order() {
        let p = pool(2);
        let (tx, rx) = channel();
        // 3 answers, batch 2 => two Answers frames then Done
        p.try_submit_stream(StreamKind::Query, "path(1, X)", 7, 2, tx)
            .unwrap();
        let mut answers = Vec::new();
        let mut done = None;
        while done.is_none() {
            let (tag, item) = rx.recv().unwrap();
            assert_eq!(tag, 7);
            match item {
                StreamItem::Answers(batch) => {
                    assert!(batch.len() <= 2, "batch bound respected");
                    answers.extend(batch);
                }
                StreamItem::Done { count, .. } => done = Some(count),
                StreamItem::Error(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(done, Some(3));
        assert_eq!(answers.len(), 3);
        // rendered bindings: the query variable X bound to each cycle node
        let mut bound: Vec<String> = answers
            .iter()
            .map(|a| {
                assert_eq!(a.len(), 1);
                assert_eq!(a[0].0, "X");
                a[0].1.clone()
            })
            .collect();
        bound.sort();
        assert_eq!(bound, ["1", "2", "3"]);
        assert_eq!(p.inflight(), 0, "terminal event released the slot");
    }

    #[test]
    fn streamed_count_reports_total_without_answers() {
        let p = pool(1);
        let (tx, rx) = channel();
        p.try_submit_stream(StreamKind::Count, "path(X, Y)", 1, 64, tx)
            .unwrap();
        match rx.recv().unwrap() {
            (1, StreamItem::Done { count, .. }) => assert_eq!(count, 9),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(rx.recv().is_err(), "count streams no answer batches");
    }

    #[test]
    fn streamed_error_is_terminal() {
        let p = pool(1);
        let (tx, rx) = channel();
        p.try_submit_stream(StreamKind::Query, "no_such_pred(X)", 9, 8, tx)
            .unwrap();
        match rx.recv().unwrap() {
            (9, StreamItem::Error(_)) => {}
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(p.inflight(), 0);
    }

    #[test]
    fn bounded_queue_rejects_overflow_with_typed_busy() {
        // a 64-node cycle: path(X,Y) computes/serves 4096 answers, so the
        // wall of gate jobs below holds the single worker busy for
        // milliseconds — submissions (microseconds) cannot race past it
        let mut heavy = String::from(
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n",
        );
        for i in 1..=64 {
            heavy.push_str(&format!("edge({i},{}).\n", if i == 64 { 1 } else { i + 1 }));
        }
        let p = ServerPool::new(
            &heavy,
            PoolConfig {
                workers: 1,
                queue_depth: Some(2),
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // stall the single worker so streamed submissions pile up
        let gates: Vec<_> = (0..8)
            .map(|_| p.submit_count("path(X, Y)", Some(0)))
            .collect();
        let (tx, rx) = channel();
        let mut accepted = 0;
        let mut busy = 0;
        for tag in 0..6 {
            match p.try_submit_stream(StreamKind::Count, "path(1, X)", tag, 8, tx.clone()) {
                Ok(()) => accepted += 1,
                Err(PoolBusy) => busy += 1,
            }
        }
        assert_eq!(accepted, 2, "exactly queue_depth submissions admitted");
        assert_eq!(busy, 4, "overflow rejected with typed Busy");
        for g in gates {
            assert_eq!(g.wait().unwrap(), 4096);
        }
        drop(tx);
        let done = rx
            .iter()
            .filter(|(_, i)| matches!(i, StreamItem::Done { .. }))
            .count();
        assert_eq!(done, 2, "admitted jobs all complete");
        assert_eq!(p.inflight(), 0, "slots all released");
    }

    #[test]
    fn consult_error_surfaces_at_construction() {
        let r = ServerPool::new(
            ":- bogus_directive(nope).",
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        );
        assert!(r.is_err());
    }
}
