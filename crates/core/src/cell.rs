//! Tagged machine words.
//!
//! The WAM represents every runtime object as a tagged word. The original
//! SLG-WAM uses untagged-union pointer tricks in C; here a [`Cell`] is a
//! `u64` with a 3-bit low tag and the payload in the upper 61 bits, and all
//! "pointers" are indices into the machine's arenas — the same flat-word
//! performance model without `unsafe`.
//!
//! | tag | name | payload |
//! |-----|------|---------|
//! | 0 | `REF` | heap index; a cell at `a` holding `REF a` is an unbound variable |
//! | 1 | `STR` | heap index of a `FUN` cell followed by the arguments |
//! | 2 | `LIS` | heap index of two consecutive cells (head, tail) |
//! | 3 | `CON` | atom symbol id |
//! | 4 | `INT` | 61-bit signed integer |
//! | 5 | `FUN` | functor: symbol id (low 32 bits of payload) and arity (next 16) |
//! | 6 | `TVAR`| canonical table variable number (table space / canonical forms only) |

use xsb_syntax::Sym;

/// A tagged 64-bit machine word.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell(pub u64);

/// Cell tag values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Tag {
    Ref = 0,
    Str = 1,
    Lis = 2,
    Con = 3,
    Int = 4,
    Fun = 5,
    TVar = 6,
}

const TAG_BITS: u32 = 3;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

impl Cell {
    #[inline]
    pub fn tag(self) -> Tag {
        match self.0 & TAG_MASK {
            0 => Tag::Ref,
            1 => Tag::Str,
            2 => Tag::Lis,
            3 => Tag::Con,
            4 => Tag::Int,
            5 => Tag::Fun,
            6 => Tag::TVar,
            _ => unreachable!("invalid cell tag"),
        }
    }

    #[inline]
    fn make(tag: Tag, payload: u64) -> Cell {
        debug_assert!(payload < (1 << (64 - TAG_BITS)), "cell payload overflow");
        Cell((payload << TAG_BITS) | tag as u64)
    }

    #[inline]
    fn payload(self) -> u64 {
        self.0 >> TAG_BITS
    }

    /// A (possibly unbound) variable reference to heap index `a`.
    #[inline]
    pub fn r#ref(a: usize) -> Cell {
        Cell::make(Tag::Ref, a as u64)
    }

    /// A structure pointer to the `FUN` cell at heap index `a`.
    #[inline]
    pub fn str(a: usize) -> Cell {
        Cell::make(Tag::Str, a as u64)
    }

    /// A list pointer to the cons pair at heap index `a`.
    #[inline]
    pub fn lis(a: usize) -> Cell {
        Cell::make(Tag::Lis, a as u64)
    }

    /// An atom.
    #[inline]
    pub fn con(s: Sym) -> Cell {
        Cell::make(Tag::Con, s.0 as u64)
    }

    /// A small integer (61-bit signed).
    #[inline]
    pub fn int(i: i64) -> Cell {
        debug_assert!(
            (-(1i64 << 60)..(1i64 << 60)).contains(&i),
            "integer out of 61-bit cell range"
        );
        Cell::make(Tag::Int, (i as u64) & ((1 << (64 - TAG_BITS)) - 1))
    }

    /// A functor cell `f/n`.
    #[inline]
    pub fn fun(f: Sym, arity: usize) -> Cell {
        debug_assert!(arity <= u16::MAX as usize);
        Cell::make(Tag::Fun, (f.0 as u64) | ((arity as u64) << 32))
    }

    /// A canonical table variable.
    #[inline]
    pub fn tvar(n: usize) -> Cell {
        Cell::make(Tag::TVar, n as u64)
    }

    /// Heap index payload of `REF`/`STR`/`LIS`.
    #[inline]
    pub fn addr(self) -> usize {
        debug_assert!(matches!(self.tag(), Tag::Ref | Tag::Str | Tag::Lis));
        self.payload() as usize
    }

    /// Atom symbol of a `CON` cell.
    #[inline]
    pub fn sym(self) -> Sym {
        debug_assert_eq!(self.tag(), Tag::Con);
        Sym(self.payload() as u32)
    }

    /// Integer value of an `INT` cell (sign-extended).
    #[inline]
    pub fn int_value(self) -> i64 {
        debug_assert_eq!(self.tag(), Tag::Int);
        // arithmetic shift sign-extends the 61-bit payload
        (self.0 as i64) >> TAG_BITS
    }

    /// Functor symbol and arity of a `FUN` cell.
    #[inline]
    pub fn functor(self) -> (Sym, usize) {
        debug_assert_eq!(self.tag(), Tag::Fun);
        let p = self.payload();
        (Sym((p & 0xFFFF_FFFF) as u32), ((p >> 32) & 0xFFFF) as usize)
    }

    /// Canonical variable number of a `TVAR` cell.
    #[inline]
    pub fn tvar_index(self) -> usize {
        debug_assert_eq!(self.tag(), Tag::TVar);
        self.payload() as usize
    }

    /// True when the cell is atomic (constant or integer).
    #[inline]
    pub fn is_atomic(self) -> bool {
        matches!(self.tag(), Tag::Con | Tag::Int)
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tag() {
            Tag::Ref => write!(f, "REF({})", self.addr()),
            Tag::Str => write!(f, "STR({})", self.addr()),
            Tag::Lis => write!(f, "LIS({})", self.addr()),
            Tag::Con => write!(f, "CON({})", self.sym().0),
            Tag::Int => write!(f, "INT({})", self.int_value()),
            Tag::Fun => {
                let (s, n) = self.functor();
                write!(f, "FUN({}/{n})", s.0)
            }
            Tag::TVar => write!(f, "TVAR({})", self.tvar_index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ref_str_lis() {
        for a in [0usize, 1, 17, 1 << 20, (1 << 32) + 5] {
            assert_eq!(Cell::r#ref(a).tag(), Tag::Ref);
            assert_eq!(Cell::r#ref(a).addr(), a);
            assert_eq!(Cell::str(a).addr(), a);
            assert_eq!(Cell::lis(a).addr(), a);
        }
    }

    #[test]
    fn roundtrip_int_including_negative() {
        for i in [
            0i64,
            1,
            -1,
            42,
            -42,
            i64::from(i32::MAX),
            -(1 << 59),
            (1 << 59),
        ] {
            assert_eq!(Cell::int(i).int_value(), i, "value {i}");
            assert_eq!(Cell::int(i).tag(), Tag::Int);
        }
    }

    #[test]
    fn roundtrip_fun() {
        let c = Cell::fun(Sym(77), 3);
        assert_eq!(c.functor(), (Sym(77), 3));
        assert_eq!(c.tag(), Tag::Fun);
    }

    #[test]
    fn roundtrip_con_and_tvar() {
        assert_eq!(Cell::con(Sym(9)).sym(), Sym(9));
        assert_eq!(Cell::tvar(12).tvar_index(), 12);
    }

    #[test]
    fn distinct_tags_distinct_cells() {
        assert_ne!(Cell::r#ref(5), Cell::str(5));
        assert_ne!(Cell::con(Sym(5)), Cell::int(5));
    }
}
