//! SLG-WAM instruction set.
//!
//! Programs compile to a flat code area of decoded instructions (the Rust
//! analogue of byte-code; [`crate::objfile`] provides the serialized form).
//! The set is the classic WAM — get/put/unify, control, try/retry/trust and
//! switch indexing — extended with the tabling instructions of the SLG-WAM:
//! [`Instr::TableCall`], [`Instr::SaveGenerator`], [`Instr::NewAnswer`] /
//! [`Instr::NewAnswerDirect`], plus the first-string-indexing dispatch
//! [`Instr::TrieDispatch`] (paper §4.5).
//!
//! A post-compile peephole pass ([`crate::program::Program::fuse_range`])
//! additionally rewrites the hottest adjacent instruction pairs of freshly
//! compiled code into *superinstructions* (the `…2`/`…Call`/`…Proceed` /
//! [`Instr::UnifyRun`] variants below): one dispatch executes the whole
//! sequence. Fusion overwrites only the **first** instruction of a fused
//! sequence — the shadowed originals stay in place, so any jump landing in
//! the middle of a sequence still executes the original tail unchanged and
//! no code address ever moves.
//!
//! `Instr` is `Copy`: every operand is a scalar (`u16`/`u32`/[`Cell`]/
//! [`Sym`]), so the emulator's fetch is a plain indexed load with no clone
//! of operand payloads.

use crate::cell::Cell;
use xsb_syntax::Sym;

/// Index into the code area.
pub type CodePtr = u32;
/// Index into the program's predicate vector.
pub type PredId = u32;

/// One decoded SLG-WAM instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    // ----- head (get) instructions -----
    /// `Xn := Ai`
    GetVariableX {
        x: u16,
        a: u16,
    },
    /// `Yn := Ai`
    GetVariableY {
        y: u16,
        a: u16,
    },
    /// unify `Xn` with `Ai`
    GetValueX {
        x: u16,
        a: u16,
    },
    /// unify `Yn` with `Ai`
    GetValueY {
        y: u16,
        a: u16,
    },
    /// unify constant (CON/INT cell) with `Ai`
    GetConstant {
        c: Cell,
        a: u16,
    },
    /// unify structure `f/n` with `Ai`, entering read or write mode
    GetStructure {
        f: Sym,
        n: u16,
        a: u16,
    },
    /// unify a list cell with `Ai`
    GetList {
        a: u16,
    },

    // ----- unify instructions (read/write mode) -----
    UnifyVariableX {
        x: u16,
    },
    UnifyVariableY {
        y: u16,
    },
    UnifyValueX {
        x: u16,
    },
    UnifyValueY {
        y: u16,
    },
    UnifyConstant {
        c: Cell,
    },
    UnifyVoid {
        n: u16,
    },

    // ----- body (put) instructions -----
    /// fresh heap variable into both `Xn` and `Ai`
    PutVariableX {
        x: u16,
        a: u16,
    },
    /// fresh heap variable into `Yn` and `Ai`
    PutVariableY {
        y: u16,
        a: u16,
    },
    PutValueX {
        x: u16,
        a: u16,
    },
    PutValueY {
        y: u16,
        a: u16,
    },
    PutConstant {
        c: Cell,
        a: u16,
    },
    PutStructure {
        f: Sym,
        n: u16,
        a: u16,
    },
    PutList {
        a: u16,
    },

    // ----- control -----
    Allocate {
        nperms: u16,
    },
    Deallocate,
    Call {
        pred: PredId,
    },
    Execute {
        pred: PredId,
    },
    Proceed,
    /// explicit failure (used in internal snippets)
    Fail,

    // ----- choice instructions -----
    /// first clause of a sequential chain; `next` is the alternative
    TryMeElse {
        next: CodePtr,
        arity: u16,
    },
    RetryMeElse {
        next: CodePtr,
    },
    TrustMe,
    /// first clause of an indexing bucket: push CP (alternative = following
    /// instruction) and jump to `target`
    Try {
        target: CodePtr,
        arity: u16,
    },
    Retry {
        target: CodePtr,
    },
    Trust {
        target: CodePtr,
    },

    // ----- indexing -----
    /// four-way dispatch on the dereferenced tag of `A1`; `con`/`str` are
    /// indices into the code area's hash tables; `u32::MAX` means "no
    /// table, fall through to `var`".
    SwitchOnTerm {
        var: CodePtr,
        con: u32,
        lis: CodePtr,
        str: u32,
    },
    /// first-string indexing: walk discrimination trie `trie` against the
    /// call's arguments, then try the matching clause chain (paper §4.5)
    TrieDispatch {
        trie: u32,
        arity: u16,
    },

    // ----- cut -----
    /// store the current choice point into `Yn` at clause entry
    GetLevel {
        y: u16,
    },
    /// cut back to the level stored in `Yn`
    CutY {
        y: u16,
    },

    // ----- tabling (SLG) -----
    /// entry point of a tabled predicate: subgoal lookup, then generator /
    /// consumer / completed-table dispatch
    TableCall {
        pred: PredId,
        arity: u16,
    },
    /// store the executing generator's id into `Yn` (first instruction of a
    /// tabled rule, immediately after `Allocate`)
    SaveGenerator {
        y: u16,
    },
    /// end of a tabled rule body: record the answer held in the current
    /// bindings of the generator's substitution factor; fail on duplicates,
    /// else continue (batched scheduling returns answers eagerly)
    NewAnswer {
        y: u16,
    },
    /// `NewAnswer` for tabled facts — uses the machine's executing-generator
    /// register directly (no environment needed)
    NewAnswerDirect,

    // ----- internal snippets -----
    /// collect one findall solution then fail to search for more
    FindallCollect,
    /// negation-as-failure: the wrapped goal succeeded — cut back to the
    /// barrier and fail
    NafCutFail,
    /// top-level query success
    HaltSolution,

    // ----- fused superinstructions (peephole pass; see module docs) -----
    /// `PutValueX; Call` — last-argument load plus the call
    PutValueXCall {
        x: u16,
        a: u16,
        pred: PredId,
    },
    /// `PutValueY; Call` — last-argument load plus the call
    PutValueYCall {
        y: u16,
        a: u16,
        pred: PredId,
    },
    /// two adjacent `PutValueY` (argument-loading runs of body goals)
    PutValueY2 {
        y1: u16,
        a1: u16,
        y2: u16,
        a2: u16,
    },
    /// `Allocate; SaveGenerator` — tabled-rule entry sequence
    AllocateSaveGenerator {
        nperms: u16,
        y: u16,
    },
    /// `Deallocate; Proceed` — the common clause epilogue
    DeallocateProceed,
    /// `GetConstant; Proceed` — last head constant of a fact
    GetConstantProceed {
        c: Cell,
        a: u16,
    },
    /// `GetStructure` followed by `len` unify instructions. The shadowed
    /// originals still sit at `p..p+len`, so the executor reads them in
    /// place (write/read mode is resolved once for the whole run).
    GetStructureUnify {
        f: Sym,
        n: u16,
        a: u16,
        len: u16,
    },
    /// `GetList` followed by `len` unify instructions — the list analogue
    /// of [`Instr::GetStructureUnify`] (and the hottest pair of all: every
    /// list cell a program walks or builds goes through it). Same shadowed
    /// in-place tail contract.
    GetListUnify {
        a: u16,
        len: u16,
    },
    /// a run of `len` unify instructions gathered into the side pool
    /// [`CodeArea::unify_runs`] at `run..run+len` (the first original op is
    /// overwritten by this instruction, so the run executes from the pool)
    UnifyRun {
        run: u32,
        len: u16,
    },
}

impl Instr {
    /// Number of distinct opcodes (the profiler's table size basis).
    pub const OPCODE_COUNT: usize = 52;

    /// Profiler mnemonics, indexed by [`Instr::opcode`].
    pub const OPCODE_NAMES: [&'static str; Instr::OPCODE_COUNT] = [
        "get_variable_x",
        "get_variable_y",
        "get_value_x",
        "get_value_y",
        "get_constant",
        "get_structure",
        "get_list",
        "unify_variable_x",
        "unify_variable_y",
        "unify_value_x",
        "unify_value_y",
        "unify_constant",
        "unify_void",
        "put_variable_x",
        "put_variable_y",
        "put_value_x",
        "put_value_y",
        "put_constant",
        "put_structure",
        "put_list",
        "allocate",
        "deallocate",
        "call",
        "execute",
        "proceed",
        "fail",
        "try_me_else",
        "retry_me_else",
        "trust_me",
        "try",
        "retry",
        "trust",
        "switch_on_term",
        "trie_dispatch",
        "get_level",
        "cut_y",
        "table_call",
        "save_generator",
        "new_answer",
        "new_answer_direct",
        "findall_collect",
        "naf_cut_fail",
        "halt_solution",
        "put_value_x_call",
        "put_value_y_call",
        "put_value_y2",
        "allocate_save_generator",
        "deallocate_proceed",
        "get_constant_proceed",
        "get_structure_unify",
        "get_list_unify",
        "unify_run",
    ];

    /// Dense opcode index for the emulator profiler, in declaration
    /// order; always below the profiler's 64-slot table size.
    #[inline]
    pub fn opcode(&self) -> u8 {
        match self {
            Instr::GetVariableX { .. } => 0,
            Instr::GetVariableY { .. } => 1,
            Instr::GetValueX { .. } => 2,
            Instr::GetValueY { .. } => 3,
            Instr::GetConstant { .. } => 4,
            Instr::GetStructure { .. } => 5,
            Instr::GetList { .. } => 6,
            Instr::UnifyVariableX { .. } => 7,
            Instr::UnifyVariableY { .. } => 8,
            Instr::UnifyValueX { .. } => 9,
            Instr::UnifyValueY { .. } => 10,
            Instr::UnifyConstant { .. } => 11,
            Instr::UnifyVoid { .. } => 12,
            Instr::PutVariableX { .. } => 13,
            Instr::PutVariableY { .. } => 14,
            Instr::PutValueX { .. } => 15,
            Instr::PutValueY { .. } => 16,
            Instr::PutConstant { .. } => 17,
            Instr::PutStructure { .. } => 18,
            Instr::PutList { .. } => 19,
            Instr::Allocate { .. } => 20,
            Instr::Deallocate => 21,
            Instr::Call { .. } => 22,
            Instr::Execute { .. } => 23,
            Instr::Proceed => 24,
            Instr::Fail => 25,
            Instr::TryMeElse { .. } => 26,
            Instr::RetryMeElse { .. } => 27,
            Instr::TrustMe => 28,
            Instr::Try { .. } => 29,
            Instr::Retry { .. } => 30,
            Instr::Trust { .. } => 31,
            Instr::SwitchOnTerm { .. } => 32,
            Instr::TrieDispatch { .. } => 33,
            Instr::GetLevel { .. } => 34,
            Instr::CutY { .. } => 35,
            Instr::TableCall { .. } => 36,
            Instr::SaveGenerator { .. } => 37,
            Instr::NewAnswer { .. } => 38,
            Instr::NewAnswerDirect => 39,
            Instr::FindallCollect => 40,
            Instr::NafCutFail => 41,
            Instr::HaltSolution => 42,
            Instr::PutValueXCall { .. } => 43,
            Instr::PutValueYCall { .. } => 44,
            Instr::PutValueY2 { .. } => 45,
            Instr::AllocateSaveGenerator { .. } => 46,
            Instr::DeallocateProceed => 47,
            Instr::GetConstantProceed { .. } => 48,
            Instr::GetStructureUnify { .. } => 49,
            Instr::GetListUnify { .. } => 50,
            Instr::UnifyRun { .. } => 51,
        }
    }

    /// `true` for the unify-group instructions a peephole pass may gather
    /// into a [`Instr::UnifyRun`] / [`Instr::GetStructureUnify`] sequence.
    #[inline]
    pub fn is_unify_op(&self) -> bool {
        matches!(
            self,
            Instr::UnifyVariableX { .. }
                | Instr::UnifyVariableY { .. }
                | Instr::UnifyValueX { .. }
                | Instr::UnifyValueY { .. }
                | Instr::UnifyConstant { .. }
                | Instr::UnifyVoid { .. }
        )
    }

    /// Expands a fused superinstruction back into the original instruction
    /// sequence it replaces (`unify_runs` is the owning code area's side
    /// pool). Plain instructions expand to themselves. This is the
    /// correctness contract of the peephole pass — fusion is semantics-
    /// preserving iff the expansion of the rewritten code equals the
    /// original code — and what the property tests check.
    pub fn expand(&self, unify_runs: &[Instr]) -> Vec<Instr> {
        match *self {
            Instr::PutValueXCall { x, a, pred } => {
                vec![Instr::PutValueX { x, a }, Instr::Call { pred }]
            }
            Instr::PutValueYCall { y, a, pred } => {
                vec![Instr::PutValueY { y, a }, Instr::Call { pred }]
            }
            Instr::PutValueY2 { y1, a1, y2, a2 } => vec![
                Instr::PutValueY { y: y1, a: a1 },
                Instr::PutValueY { y: y2, a: a2 },
            ],
            Instr::AllocateSaveGenerator { nperms, y } => {
                vec![Instr::Allocate { nperms }, Instr::SaveGenerator { y }]
            }
            Instr::DeallocateProceed => vec![Instr::Deallocate, Instr::Proceed],
            Instr::GetConstantProceed { c, a } => {
                vec![Instr::GetConstant { c, a }, Instr::Proceed]
            }
            // the shadowed unify tail still sits in the code area right
            // after the fused op — only the head is re-materialized here
            Instr::GetStructureUnify { f, n, a, .. } => vec![Instr::GetStructure { f, n, a }],
            Instr::GetListUnify { a, .. } => vec![Instr::GetList { a }],
            Instr::UnifyRun { run, len } => {
                unify_runs[run as usize..run as usize + len as usize].to_vec()
            }
            other => vec![other],
        }
    }
}

/// A static hash table for `switch_on_constant` (keys are CON/INT cells).
/// `miss` is where unmatched constants go (the variable-headed clause
/// chain, or the fail snippet).
#[derive(Debug, Default)]
pub struct ConstTable {
    pub map: std::collections::HashMap<Cell, CodePtr>,
    pub miss: CodePtr,
}

/// A static hash table for `switch_on_structure` (keys are functor/arity).
#[derive(Debug, Default)]
pub struct StructTable {
    pub map: std::collections::HashMap<(Sym, u16), CodePtr>,
    pub miss: CodePtr,
}

/// The program code area: instructions plus the compile-time hash tables
/// and discrimination tries they reference.
#[derive(Default, Debug)]
pub struct CodeArea {
    pub code: Vec<Instr>,
    pub const_tables: Vec<ConstTable>,
    pub struct_tables: Vec<StructTable>,
    pub tries: Vec<crate::compile::first_string::Trie>,
    /// Side pool of gathered unify sequences for [`Instr::UnifyRun`]: each
    /// run is a contiguous `run..run+len` slice of original unify
    /// instructions, executed in one dispatch.
    pub unify_runs: Vec<Instr>,
}

impl CodeArea {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current end of code (where the next instruction will land).
    pub fn here(&self) -> CodePtr {
        self.code.len() as CodePtr
    }

    /// Appends one instruction, returning its address.
    pub fn emit(&mut self, i: Instr) -> CodePtr {
        let at = self.here();
        self.code.push(i);
        at
    }

    /// Registers a constant table, returning its id.
    pub fn add_const_table(&mut self, t: ConstTable) -> u32 {
        self.const_tables.push(t);
        (self.const_tables.len() - 1) as u32
    }

    /// Registers a structure table, returning its id.
    pub fn add_struct_table(&mut self, t: StructTable) -> u32 {
        self.struct_tables.push(t);
        (self.struct_tables.len() - 1) as u32
    }

    /// Registers a first-string trie, returning its id.
    pub fn add_trie(&mut self, t: crate::compile::first_string::Trie) -> u32 {
        self.tries.push(t);
        (self.tries.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_returns_addresses_in_order() {
        let mut c = CodeArea::new();
        assert_eq!(c.emit(Instr::Proceed), 0);
        assert_eq!(c.emit(Instr::Fail), 1);
        assert_eq!(c.here(), 2);
    }

    #[test]
    fn opcode_indices_are_dense_and_named() {
        assert_eq!(Instr::OPCODE_NAMES.len(), Instr::OPCODE_COUNT);
        // spot-check the mapping at both ends and the tabling group
        assert_eq!(Instr::GetVariableX { x: 0, a: 0 }.opcode(), 0);
        assert_eq!(
            Instr::OPCODE_NAMES[Instr::TableCall { pred: 0, arity: 0 }.opcode() as usize],
            "table_call"
        );
        assert_eq!(
            Instr::UnifyRun { run: 0, len: 0 }.opcode() as usize,
            Instr::OPCODE_COUNT - 1
        );
        // dense: every name is distinct
        let mut names = Instr::OPCODE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Instr::OPCODE_COUNT);
    }

    /// One representative of every `Instr` variant, fused superinstructions
    /// included. Any new variant must be added here (the coverage assert
    /// below pins the count).
    fn one_of_each() -> Vec<Instr> {
        use crate::cell::Cell;
        let c = Cell::int(7);
        let s = Sym(3);
        vec![
            Instr::GetVariableX { x: 1, a: 0 },
            Instr::GetVariableY { y: 1, a: 0 },
            Instr::GetValueX { x: 1, a: 0 },
            Instr::GetValueY { y: 1, a: 0 },
            Instr::GetConstant { c, a: 0 },
            Instr::GetStructure { f: s, n: 2, a: 0 },
            Instr::GetList { a: 0 },
            Instr::UnifyVariableX { x: 1 },
            Instr::UnifyVariableY { y: 1 },
            Instr::UnifyValueX { x: 1 },
            Instr::UnifyValueY { y: 1 },
            Instr::UnifyConstant { c },
            Instr::UnifyVoid { n: 2 },
            Instr::PutVariableX { x: 1, a: 0 },
            Instr::PutVariableY { y: 1, a: 0 },
            Instr::PutValueX { x: 1, a: 0 },
            Instr::PutValueY { y: 1, a: 0 },
            Instr::PutConstant { c, a: 0 },
            Instr::PutStructure { f: s, n: 2, a: 0 },
            Instr::PutList { a: 0 },
            Instr::Allocate { nperms: 2 },
            Instr::Deallocate,
            Instr::Call { pred: 0 },
            Instr::Execute { pred: 0 },
            Instr::Proceed,
            Instr::Fail,
            Instr::TryMeElse { next: 0, arity: 0 },
            Instr::RetryMeElse { next: 0 },
            Instr::TrustMe,
            Instr::Try {
                target: 0,
                arity: 0,
            },
            Instr::Retry { target: 0 },
            Instr::Trust { target: 0 },
            Instr::SwitchOnTerm {
                var: 0,
                con: 0,
                lis: 0,
                str: 0,
            },
            Instr::TrieDispatch { trie: 0, arity: 0 },
            Instr::GetLevel { y: 0 },
            Instr::CutY { y: 0 },
            Instr::TableCall { pred: 0, arity: 0 },
            Instr::SaveGenerator { y: 0 },
            Instr::NewAnswer { y: 0 },
            Instr::NewAnswerDirect,
            Instr::FindallCollect,
            Instr::NafCutFail,
            Instr::HaltSolution,
            Instr::PutValueXCall {
                x: 1,
                a: 0,
                pred: 0,
            },
            Instr::PutValueYCall {
                y: 1,
                a: 0,
                pred: 0,
            },
            Instr::PutValueY2 {
                y1: 0,
                a1: 0,
                y2: 1,
                a2: 1,
            },
            Instr::AllocateSaveGenerator { nperms: 2, y: 0 },
            Instr::DeallocateProceed,
            Instr::GetConstantProceed { c, a: 0 },
            Instr::GetStructureUnify {
                f: s,
                n: 2,
                a: 0,
                len: 1,
            },
            Instr::GetListUnify { a: 0, len: 2 },
            Instr::UnifyRun { run: 0, len: 1 },
        ]
    }

    #[test]
    fn every_variant_has_a_unique_dense_opcode_and_name() {
        let all = one_of_each();
        assert_eq!(
            all.len(),
            Instr::OPCODE_COUNT,
            "one_of_each() must list every variant exactly once"
        );
        let mut seen = [false; Instr::OPCODE_COUNT];
        for i in &all {
            let op = i.opcode() as usize;
            assert!(op < Instr::OPCODE_COUNT, "opcode {op} out of range");
            assert!(
                op < xsb_obs::profile::MAX_OPCODES,
                "opcode {op} overflows the profiler table"
            );
            assert!(!seen[op], "duplicate opcode {op} ({:?})", i);
            seen[op] = true;
            assert!(
                !Instr::OPCODE_NAMES[op].is_empty(),
                "opcode {op} has no mnemonic"
            );
        }
        assert!(seen.iter().all(|&s| s), "opcode numbering has gaps");
    }

    #[test]
    fn fused_expansion_round_trips() {
        let pool = [Instr::UnifyVariableX { x: 3 }, Instr::UnifyVoid { n: 1 }];
        assert_eq!(
            Instr::PutValueYCall {
                y: 2,
                a: 1,
                pred: 9
            }
            .expand(&pool),
            vec![Instr::PutValueY { y: 2, a: 1 }, Instr::Call { pred: 9 }]
        );
        assert_eq!(
            Instr::UnifyRun { run: 0, len: 2 }.expand(&pool),
            pool.to_vec()
        );
        // a plain instruction expands to itself
        assert_eq!(Instr::Proceed.expand(&pool), vec![Instr::Proceed]);
    }

    #[test]
    fn tables_get_sequential_ids() {
        let mut c = CodeArea::new();
        assert_eq!(c.add_const_table(ConstTable::default()), 0);
        assert_eq!(c.add_const_table(ConstTable::default()), 1);
        assert_eq!(c.add_struct_table(StructTable::default()), 0);
    }
}
