//! SLG-WAM instruction set.
//!
//! Programs compile to a flat code area of decoded instructions (the Rust
//! analogue of byte-code; [`crate::objfile`] provides the serialized form).
//! The set is the classic WAM — get/put/unify, control, try/retry/trust and
//! switch indexing — extended with the tabling instructions of the SLG-WAM:
//! [`Instr::TableCall`], [`Instr::SaveGenerator`], [`Instr::NewAnswer`] /
//! [`Instr::NewAnswerDirect`], plus the first-string-indexing dispatch
//! [`Instr::TrieDispatch`] (paper §4.5).

use crate::cell::Cell;
use xsb_syntax::Sym;

/// Index into the code area.
pub type CodePtr = u32;
/// Index into the program's predicate vector.
pub type PredId = u32;

/// One decoded SLG-WAM instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    // ----- head (get) instructions -----
    /// `Xn := Ai`
    GetVariableX {
        x: u16,
        a: u16,
    },
    /// `Yn := Ai`
    GetVariableY {
        y: u16,
        a: u16,
    },
    /// unify `Xn` with `Ai`
    GetValueX {
        x: u16,
        a: u16,
    },
    /// unify `Yn` with `Ai`
    GetValueY {
        y: u16,
        a: u16,
    },
    /// unify constant (CON/INT cell) with `Ai`
    GetConstant {
        c: Cell,
        a: u16,
    },
    /// unify structure `f/n` with `Ai`, entering read or write mode
    GetStructure {
        f: Sym,
        n: u16,
        a: u16,
    },
    /// unify a list cell with `Ai`
    GetList {
        a: u16,
    },

    // ----- unify instructions (read/write mode) -----
    UnifyVariableX {
        x: u16,
    },
    UnifyVariableY {
        y: u16,
    },
    UnifyValueX {
        x: u16,
    },
    UnifyValueY {
        y: u16,
    },
    UnifyConstant {
        c: Cell,
    },
    UnifyVoid {
        n: u16,
    },

    // ----- body (put) instructions -----
    /// fresh heap variable into both `Xn` and `Ai`
    PutVariableX {
        x: u16,
        a: u16,
    },
    /// fresh heap variable into `Yn` and `Ai`
    PutVariableY {
        y: u16,
        a: u16,
    },
    PutValueX {
        x: u16,
        a: u16,
    },
    PutValueY {
        y: u16,
        a: u16,
    },
    PutConstant {
        c: Cell,
        a: u16,
    },
    PutStructure {
        f: Sym,
        n: u16,
        a: u16,
    },
    PutList {
        a: u16,
    },

    // ----- control -----
    Allocate {
        nperms: u16,
    },
    Deallocate,
    Call {
        pred: PredId,
    },
    Execute {
        pred: PredId,
    },
    Proceed,
    /// explicit failure (used in internal snippets)
    Fail,

    // ----- choice instructions -----
    /// first clause of a sequential chain; `next` is the alternative
    TryMeElse {
        next: CodePtr,
        arity: u16,
    },
    RetryMeElse {
        next: CodePtr,
    },
    TrustMe,
    /// first clause of an indexing bucket: push CP (alternative = following
    /// instruction) and jump to `target`
    Try {
        target: CodePtr,
        arity: u16,
    },
    Retry {
        target: CodePtr,
    },
    Trust {
        target: CodePtr,
    },

    // ----- indexing -----
    /// four-way dispatch on the dereferenced tag of `A1`; `con`/`str` are
    /// indices into the code area's hash tables; `u32::MAX` means "no
    /// table, fall through to `var`".
    SwitchOnTerm {
        var: CodePtr,
        con: u32,
        lis: CodePtr,
        str: u32,
    },
    /// first-string indexing: walk discrimination trie `trie` against the
    /// call's arguments, then try the matching clause chain (paper §4.5)
    TrieDispatch {
        trie: u32,
        arity: u16,
    },

    // ----- cut -----
    /// store the current choice point into `Yn` at clause entry
    GetLevel {
        y: u16,
    },
    /// cut back to the level stored in `Yn`
    CutY {
        y: u16,
    },

    // ----- tabling (SLG) -----
    /// entry point of a tabled predicate: subgoal lookup, then generator /
    /// consumer / completed-table dispatch
    TableCall {
        pred: PredId,
        arity: u16,
    },
    /// store the executing generator's id into `Yn` (first instruction of a
    /// tabled rule, immediately after `Allocate`)
    SaveGenerator {
        y: u16,
    },
    /// end of a tabled rule body: record the answer held in the current
    /// bindings of the generator's substitution factor; fail on duplicates,
    /// else continue (batched scheduling returns answers eagerly)
    NewAnswer {
        y: u16,
    },
    /// `NewAnswer` for tabled facts — uses the machine's executing-generator
    /// register directly (no environment needed)
    NewAnswerDirect,

    // ----- internal snippets -----
    /// collect one findall solution then fail to search for more
    FindallCollect,
    /// negation-as-failure: the wrapped goal succeeded — cut back to the
    /// barrier and fail
    NafCutFail,
    /// top-level query success
    HaltSolution,
}

impl Instr {
    /// Number of distinct opcodes (the profiler's table size basis).
    pub const OPCODE_COUNT: usize = 43;

    /// Profiler mnemonics, indexed by [`Instr::opcode`].
    pub const OPCODE_NAMES: [&'static str; Instr::OPCODE_COUNT] = [
        "get_variable_x",
        "get_variable_y",
        "get_value_x",
        "get_value_y",
        "get_constant",
        "get_structure",
        "get_list",
        "unify_variable_x",
        "unify_variable_y",
        "unify_value_x",
        "unify_value_y",
        "unify_constant",
        "unify_void",
        "put_variable_x",
        "put_variable_y",
        "put_value_x",
        "put_value_y",
        "put_constant",
        "put_structure",
        "put_list",
        "allocate",
        "deallocate",
        "call",
        "execute",
        "proceed",
        "fail",
        "try_me_else",
        "retry_me_else",
        "trust_me",
        "try",
        "retry",
        "trust",
        "switch_on_term",
        "trie_dispatch",
        "get_level",
        "cut_y",
        "table_call",
        "save_generator",
        "new_answer",
        "new_answer_direct",
        "findall_collect",
        "naf_cut_fail",
        "halt_solution",
    ];

    /// Dense opcode index for the emulator profiler, in declaration
    /// order; always below the profiler's 64-slot table size.
    #[inline]
    pub fn opcode(&self) -> u8 {
        match self {
            Instr::GetVariableX { .. } => 0,
            Instr::GetVariableY { .. } => 1,
            Instr::GetValueX { .. } => 2,
            Instr::GetValueY { .. } => 3,
            Instr::GetConstant { .. } => 4,
            Instr::GetStructure { .. } => 5,
            Instr::GetList { .. } => 6,
            Instr::UnifyVariableX { .. } => 7,
            Instr::UnifyVariableY { .. } => 8,
            Instr::UnifyValueX { .. } => 9,
            Instr::UnifyValueY { .. } => 10,
            Instr::UnifyConstant { .. } => 11,
            Instr::UnifyVoid { .. } => 12,
            Instr::PutVariableX { .. } => 13,
            Instr::PutVariableY { .. } => 14,
            Instr::PutValueX { .. } => 15,
            Instr::PutValueY { .. } => 16,
            Instr::PutConstant { .. } => 17,
            Instr::PutStructure { .. } => 18,
            Instr::PutList { .. } => 19,
            Instr::Allocate { .. } => 20,
            Instr::Deallocate => 21,
            Instr::Call { .. } => 22,
            Instr::Execute { .. } => 23,
            Instr::Proceed => 24,
            Instr::Fail => 25,
            Instr::TryMeElse { .. } => 26,
            Instr::RetryMeElse { .. } => 27,
            Instr::TrustMe => 28,
            Instr::Try { .. } => 29,
            Instr::Retry { .. } => 30,
            Instr::Trust { .. } => 31,
            Instr::SwitchOnTerm { .. } => 32,
            Instr::TrieDispatch { .. } => 33,
            Instr::GetLevel { .. } => 34,
            Instr::CutY { .. } => 35,
            Instr::TableCall { .. } => 36,
            Instr::SaveGenerator { .. } => 37,
            Instr::NewAnswer { .. } => 38,
            Instr::NewAnswerDirect => 39,
            Instr::FindallCollect => 40,
            Instr::NafCutFail => 41,
            Instr::HaltSolution => 42,
        }
    }
}

/// A static hash table for `switch_on_constant` (keys are CON/INT cells).
/// `miss` is where unmatched constants go (the variable-headed clause
/// chain, or the fail snippet).
#[derive(Debug, Default)]
pub struct ConstTable {
    pub map: std::collections::HashMap<Cell, CodePtr>,
    pub miss: CodePtr,
}

/// A static hash table for `switch_on_structure` (keys are functor/arity).
#[derive(Debug, Default)]
pub struct StructTable {
    pub map: std::collections::HashMap<(Sym, u16), CodePtr>,
    pub miss: CodePtr,
}

/// The program code area: instructions plus the compile-time hash tables
/// and discrimination tries they reference.
#[derive(Default, Debug)]
pub struct CodeArea {
    pub code: Vec<Instr>,
    pub const_tables: Vec<ConstTable>,
    pub struct_tables: Vec<StructTable>,
    pub tries: Vec<crate::compile::first_string::Trie>,
}

impl CodeArea {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current end of code (where the next instruction will land).
    pub fn here(&self) -> CodePtr {
        self.code.len() as CodePtr
    }

    /// Appends one instruction, returning its address.
    pub fn emit(&mut self, i: Instr) -> CodePtr {
        let at = self.here();
        self.code.push(i);
        at
    }

    /// Registers a constant table, returning its id.
    pub fn add_const_table(&mut self, t: ConstTable) -> u32 {
        self.const_tables.push(t);
        (self.const_tables.len() - 1) as u32
    }

    /// Registers a structure table, returning its id.
    pub fn add_struct_table(&mut self, t: StructTable) -> u32 {
        self.struct_tables.push(t);
        (self.struct_tables.len() - 1) as u32
    }

    /// Registers a first-string trie, returning its id.
    pub fn add_trie(&mut self, t: crate::compile::first_string::Trie) -> u32 {
        self.tries.push(t);
        (self.tries.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_returns_addresses_in_order() {
        let mut c = CodeArea::new();
        assert_eq!(c.emit(Instr::Proceed), 0);
        assert_eq!(c.emit(Instr::Fail), 1);
        assert_eq!(c.here(), 2);
    }

    #[test]
    fn opcode_indices_are_dense_and_named() {
        assert_eq!(Instr::OPCODE_NAMES.len(), Instr::OPCODE_COUNT);
        // spot-check the mapping at both ends and the tabling group
        assert_eq!(Instr::GetVariableX { x: 0, a: 0 }.opcode(), 0);
        assert_eq!(
            Instr::OPCODE_NAMES[Instr::TableCall { pred: 0, arity: 0 }.opcode() as usize],
            "table_call"
        );
        assert_eq!(
            Instr::HaltSolution.opcode() as usize,
            Instr::OPCODE_COUNT - 1
        );
        // dense: every name is distinct
        let mut names = Instr::OPCODE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Instr::OPCODE_COUNT);
    }

    #[test]
    fn tables_get_sequential_ids() {
        let mut c = CodeArea::new();
        assert_eq!(c.add_const_table(ConstTable::default()), 0);
        assert_eq!(c.add_const_table(ConstTable::default()), 1);
        assert_eq!(c.add_struct_table(StructTable::default()), 0);
    }
}
