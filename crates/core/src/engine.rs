//! The public engine API.
//!
//! [`Engine`] owns the symbol table, the program database, and the table
//! space; each query runs a fresh [`Machine`] over them. Completed tables
//! persist across queries and are kept consistent with the dynamic
//! database: `assert`/`retract`/`retractall` on a predicate transitively
//! invalidate the tables of every tabled predicate that depends on it
//! (via the dependency graph in [`crate::program::Program`]), so a
//! re-query recomputes exactly the stale tables and reuses the rest.
//! `abolish_table_pred/1` and `abolish_table_call/1` give manual control;
//! [`Engine::set_table_budget`] bounds the answer store, evicting
//! completed tables least-recently-hit first between queries. Incomplete
//! tables are purged when a query ends early.

use crate::cell::Cell;
use crate::compile::{compile_predicate, compile_query};
use crate::dynamic::IndexSpec;
use crate::emulate::Outcome;
use crate::error::EngineError;
use crate::instr::PredId;
use crate::machine::Machine;
use crate::program::{pred_indicator, table_all_analysis, Program, StaticIndex};
use crate::shared::SharedTableStore;
use crate::table::TableSpace;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use xsb_obs::{Counter, Json, Metrics, Obs, SlgEvent, Stopwatch, NO_ID, NO_SPAN};
use xsb_syntax::{
    parse_query, well_known, Clause, ProgramReader, ReadItem, Sym, SymbolTable, Term,
};

/// One solution: bindings of the query's named variables, decoded to AST
/// terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub bindings: Vec<(String, Term)>,
}

impl Solution {
    /// The binding of variable `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Library predicates consulted into every engine at startup.
const PRELUDE: &str = r#"
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.
reverse(L, R) :- xsb_rev_(L, [], R).
xsb_rev_([], A, A).
xsb_rev_([H|T], A, R) :- xsb_rev_(T, [H|A], R).
last([X], X).
last([_|T], X) :- last(T, X).
sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.
max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).
min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).
numlist(L, H, [L]) :- L =:= H.
numlist(L, H, [L|T]) :- L < H, L1 is L + 1, numlist(L1, H, T).
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
"#;

/// The XSB-style deductive database engine.
pub struct Engine {
    pub syms: SymbolTable,
    pub reader: ProgramReader,
    pub db: Program,
    pub tables: TableSpace,
    step_limit: Option<u64>,
    /// apply the compile-time specialization of known HiLog calls
    /// (paper §4.7); on by default, disabled for the E8 ablation
    pub hilog_specialization: bool,
    /// Observability: the metrics registry and SLG event tracer. Counters
    /// accumulate across queries until [`Engine::reset_metrics`].
    pub obs: Obs,
    /// Rendered span trees of queries that crossed the slow-query
    /// threshold, oldest first (bounded at [`SLOW_QUERY_LOG_CAP`]).
    slow_query_log: Vec<String>,
}

/// Retained slow-query log entries; older entries are dropped first.
pub const SLOW_QUERY_LOG_CAP: usize = 64;

impl Engine {
    /// A fresh engine with builtins and the library prelude loaded.
    pub fn new() -> Engine {
        Engine::with_fusion(true)
    }

    /// Like [`Engine::new`], but with superinstruction fusion set *before*
    /// the prelude is consulted — `with_fusion(false)` yields a fully
    /// unfused baseline engine (the prelude itself compiles unfused),
    /// which the fused-vs-unfused differential tests and benchmarks rely
    /// on. `set_fusion` after construction only affects code compiled
    /// later.
    pub fn with_fusion(fusion: bool) -> Engine {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        db.fusion_enabled = fusion;
        let mut e = Engine {
            syms,
            reader: ProgramReader::new(),
            db,
            tables: TableSpace::new(),
            step_limit: None,
            hilog_specialization: true,
            obs: Obs::new(),
            slow_query_log: Vec::new(),
        };
        e.consult(PRELUDE).expect("prelude compiles");
        e
    }

    /// Enables/disables the post-compile superinstruction fusion pass for
    /// code compiled from now on (matching the `set_fusion/1` builtin).
    /// Already-compiled predicates keep their current shape.
    pub fn set_fusion(&mut self, on: bool) {
        self.db.fusion_enabled = on;
    }

    /// Limits each query to at most `limit` abstract machine steps
    /// (`None` = unlimited). Useful to demonstrate non-termination of SLD
    /// where SLG terminates.
    pub fn set_step_limit(&mut self, limit: Option<u64>) {
        self.step_limit = limit;
    }

    /// Consults program text: handles directives, compiles static
    /// predicates, asserts clauses of dynamic predicates. On a durable
    /// engine the source text is logged as one Broadcast record (the text
    /// subsumes the per-clause assert records, which are suppressed).
    pub fn consult(&mut self, src: &str) -> Result<(), EngineError> {
        let logged =
            crate::durable::log_consult_text(&mut self.db, &self.syms, &mut self.obs.metrics, src)?;
        if logged {
            self.db.durable.as_mut().expect("logged").suspended += 1;
        }
        let r = self.consult_inner(src);
        if logged {
            self.db.durable.as_mut().expect("logged").suspended -= 1;
        }
        r
    }

    fn consult_inner(&mut self, src: &str) -> Result<(), EngineError> {
        let items = self.reader.read(src, &mut self.syms)?;
        let mut clauses: Vec<Clause> = Vec::new();
        let mut directives: Vec<Term> = Vec::new();
        let mut table_all = false;
        for item in items {
            match item {
                ReadItem::Directive(d) => {
                    if d == Term::Atom(well_known::TABLE_ALL) {
                        table_all = true;
                    } else {
                        directives.push(d);
                    }
                }
                ReadItem::Clause(c) => clauses.push(c),
            }
        }
        for d in &directives {
            self.apply_directive(d)?;
        }
        // compile-time specialization of known HiLog calls (paper §4.7)
        if self.hilog_specialization
            && clauses
                .iter()
                .any(|c| c.head.functor().map(|(f, _)| f) == Some(well_known::APPLY))
        {
            clauses = xsb_syntax::hilog::specialize(&clauses, &mut self.syms);
        }

        let mut groups: HashMap<(Sym, u16), Vec<Clause>> = HashMap::new();
        let mut order: Vec<(Sym, u16)> = Vec::new();
        for c in clauses {
            let (f, n) = c
                .head
                .functor()
                .ok_or_else(|| EngineError::Other("clause head must be callable".into()))?;
            let key = (f, n as u16);
            if !groups.contains_key(&key) {
                order.push(key);
            }
            groups.entry(key).or_default().push(c);
        }

        if table_all {
            for (name, arity) in table_all_analysis(&groups) {
                self.db
                    .declare_tabled(name, arity)
                    .map_err(EngineError::Other)?;
            }
        }

        for key in order {
            let clauses = groups.remove(&key).expect("group recorded");
            let pred = self.db.ensure_pred(key.0, key.1);
            // dependency graph: every body goal of every clause is a
            // potential callee of `pred` (drives table invalidation)
            for c in &clauses {
                for g in &c.body {
                    self.db.record_goal_deps(pred, g);
                }
            }
            if self.db.dyn_of(pred).is_some() {
                for c in &clauses {
                    self.assert_clause(c, false)?;
                }
            } else {
                compile_predicate(&mut self.db, &mut self.syms, key.0, key.1, &clauses)?;
            }
        }
        Ok(())
    }

    fn apply_directive(&mut self, d: &Term) -> Result<(), EngineError> {
        match d {
            // table p/2  /  table (p/2, q/3)
            Term::Compound(f, args) if *f == well_known::TABLE && args.len() == 1 => {
                for spec in flatten_commas(&args[0]) {
                    let (name, arity) = pred_indicator(spec)
                        .ok_or_else(|| EngineError::Other("table directive expects p/N".into()))?;
                    self.db
                        .declare_tabled(name, arity)
                        .map_err(EngineError::Other)?;
                }
                Ok(())
            }
            Term::Compound(f, args) if *f == well_known::DYNAMIC && args.len() == 1 => {
                for spec in flatten_commas(&args[0]) {
                    let (name, arity) = pred_indicator(spec).ok_or_else(|| {
                        EngineError::Other("dynamic directive expects p/N".into())
                    })?;
                    self.db
                        .declare_dynamic(name, arity)
                        .map_err(EngineError::Other)?;
                }
                Ok(())
            }
            Term::Compound(f, _) if *f == well_known::INDEX => {
                self.db.apply_index_directive(d).map_err(EngineError::Other)
            }
            Term::Compound(f, args) if *f == well_known::FIRST_STRING && args.len() == 1 => {
                for spec in flatten_commas(&args[0]) {
                    let (name, arity) = pred_indicator(spec).ok_or_else(|| {
                        EngineError::Other("first_string_index expects p/N".into())
                    })?;
                    let id = self.db.ensure_pred(name, arity);
                    self.db.preds[id as usize].static_index = StaticIndex::FirstString;
                }
                Ok(())
            }
            // hilog/op: already applied by the reader
            Term::Compound(f, _) if *f == well_known::HILOG || *f == well_known::OP => Ok(()),
            Term::Atom(s) if *s == well_known::HILOG => Ok(()),
            other => Err(EngineError::Other(format!(
                "unknown directive: {}",
                other.display(&self.syms)
            ))),
        }
    }

    // ------------------------------------------------------------------
    // queries
    // ------------------------------------------------------------------

    /// Runs a query, invoking `f` for each solution; `f` returns `false`
    /// to stop early.
    pub fn run_query(
        &mut self,
        q: &str,
        mut f: impl FnMut(&Solution) -> bool,
    ) -> Result<(), EngineError> {
        self.sync_shared_tables();
        let query = parse_query(q, &mut self.syms, &self.reader.ops)?;
        let goals: Vec<Term> = query
            .goals
            .iter()
            .map(|g| self.reader.hilog.encode(g))
            .collect();
        let nvars = query.var_names.len() as u32;
        let qpred = compile_query(&mut self.db, &mut self.syms, &goals, nvars)?;

        let qspan = self.obs.spans.begin("query", NO_ID);
        let mut machine = Machine::new(&mut self.db, &mut self.tables);
        machine.step_limit = self.step_limit;
        machine.obs = std::mem::take(&mut self.obs);
        let sw = Stopwatch::new();
        let vars = machine.setup_query(qpred, nvars);

        let mut nsol: u64 = 0;
        let result = (|| -> Result<(), EngineError> {
            let mut outcome = machine.run(&mut self.syms)?;
            while outcome == Outcome::Solution {
                nsol += 1;
                let mut bindings = Vec::new();
                for (i, name) in query.var_names.iter().enumerate() {
                    if name == "_" {
                        continue;
                    }
                    let mut var_out = Vec::new();
                    bindings.push((name.clone(), machine.heap_to_ast(vars[i], &mut var_out)));
                }
                if !f(&Solution { bindings }) {
                    break;
                }
                outcome = machine.next_solution(&mut self.syms)?;
            }
            Ok(())
        })();

        let elapsed_ns = sw.elapsed_nanos();
        machine.obs.metrics.query_time.record(sw);
        machine.obs.metrics.query_latency.record(elapsed_ns);
        self.obs = std::mem::take(&mut machine.obs);
        drop(machine);
        self.tables.end_query();
        self.enforce_table_budget();
        self.publish_shared_tables();
        self.finish_query_obs(qspan, elapsed_ns, nsol);
        result
    }

    /// All solutions of a query.
    pub fn query(&mut self, q: &str) -> Result<Vec<Solution>, EngineError> {
        let mut out = Vec::new();
        self.run_query(q, |s| {
            out.push(s.clone());
            true
        })?;
        Ok(out)
    }

    /// True iff the query has at least one solution.
    pub fn holds(&mut self, q: &str) -> Result<bool, EngineError> {
        Ok(self.run_counting(q, true)? > 0)
    }

    /// Number of solutions (driving the query to exhaustion, like the
    /// paper's `?- path(1,X), fail.` timing harness). Does not decode
    /// bindings — this is the tuple-at-a-time fail-loop fast path.
    pub fn count(&mut self, q: &str) -> Result<usize, EngineError> {
        self.run_counting(q, false)
    }

    /// Shared driver for [`Engine::holds`] / [`Engine::count`]: runs the
    /// query without constructing [`Solution`] values.
    fn run_counting(&mut self, q: &str, stop_at_first: bool) -> Result<usize, EngineError> {
        self.sync_shared_tables();
        let query = parse_query(q, &mut self.syms, &self.reader.ops)?;
        let goals: Vec<Term> = query
            .goals
            .iter()
            .map(|g| self.reader.hilog.encode(g))
            .collect();
        let nvars = query.var_names.len() as u32;
        let qpred = compile_query(&mut self.db, &mut self.syms, &goals, nvars)?;

        let qspan = self.obs.spans.begin("query", NO_ID);
        let mut machine = Machine::new(&mut self.db, &mut self.tables);
        machine.step_limit = self.step_limit;
        machine.obs = std::mem::take(&mut self.obs);
        let sw = Stopwatch::new();
        machine.setup_query(qpred, nvars);

        let result = (|| -> Result<usize, EngineError> {
            let mut n = 0usize;
            let mut outcome = machine.run(&mut self.syms)?;
            while outcome == Outcome::Solution {
                n += 1;
                if stop_at_first {
                    break;
                }
                outcome = machine.next_solution(&mut self.syms)?;
            }
            Ok(n)
        })();

        let elapsed_ns = sw.elapsed_nanos();
        machine.obs.metrics.query_time.record(sw);
        machine.obs.metrics.query_latency.record(elapsed_ns);
        self.obs = std::mem::take(&mut machine.obs);
        drop(machine);
        self.tables.end_query();
        self.enforce_table_budget();
        self.publish_shared_tables();
        let answers = result.as_ref().copied().unwrap_or(0) as u64;
        self.finish_query_obs(qspan, elapsed_ns, answers);
        result
    }

    /// Catches up with invalidations other pool workers pushed since this
    /// engine's last query (no-op without an attached shared store).
    fn sync_shared_tables(&mut self) {
        if self.tables.shared_handle().is_none() {
            return;
        }
        let sw = Stopwatch::new();
        let n = self.tables.sync_shared();
        let ns = sw.elapsed_nanos();
        self.obs.metrics.shared_sync.record(ns);
        if self.obs.spans.enabled {
            self.obs.spans.record("sync", NO_ID, NO_ID, ns, n as u32);
        }
        if n > 0 {
            self.obs
                .metrics
                .add(Counter::SharedTableInvalidations, n as u64);
        }
    }

    /// Promotes tables completed by the finished query into the pool's
    /// shared store (no-op without an attached shared store).
    fn publish_shared_tables(&mut self) {
        if self.tables.shared_handle().is_none() {
            return;
        }
        let sw = Stopwatch::new();
        let n = self.tables.publish_completed();
        let ns = sw.elapsed_nanos();
        self.obs.metrics.shared_publish.record(ns);
        if self.obs.spans.enabled {
            self.obs.spans.record("publish", NO_ID, NO_ID, ns, n as u32);
        }
        if n > 0 {
            self.obs
                .metrics
                .add(Counter::SharedTablePublishes, n as u64);
        }
    }

    /// Closes the per-query span (plus any subgoal spans the run left
    /// open) and feeds the slow-query log when the query's evaluation
    /// time reaches the configured threshold.
    fn finish_query_obs(&mut self, qspan: u32, elapsed_ns: u64, answers: u64) {
        if self.obs.spans.enabled || qspan != NO_SPAN {
            self.obs.spans.end_open_subgoals();
            self.obs.spans.end(qspan, answers as u32);
        }
        let Some(threshold) = self.obs.slow_query_threshold_ns else {
            return;
        };
        if elapsed_ns < threshold {
            return;
        }
        let header = format!(
            "%% slow query: {:.3} ms, {} solutions",
            elapsed_ns as f64 / 1e6,
            answers
        );
        let tree = if qspan == NO_SPAN {
            String::new()
        } else {
            let db = &self.db;
            let syms = &self.syms;
            self.obs
                .spans
                .render_tree(qspan, |p| pred_display(db, syms, p))
        };
        let entry = if tree.is_empty() {
            header
        } else {
            format!("{header}\n{tree}")
        };
        eprintln!("{entry}");
        if self.slow_query_log.len() >= SLOW_QUERY_LOG_CAP {
            self.slow_query_log.remove(0);
        }
        self.slow_query_log.push(entry);
    }

    /// Evicts completed tables (least-recently-hit first) until the
    /// answer store fits the configured budget. Runs between queries so
    /// no in-flight computation ever loses its tables.
    fn enforce_table_budget(&mut self) {
        let evicted = self.tables.enforce_budget();
        if evicted.is_empty() {
            return;
        }
        self.obs
            .metrics
            .add(Counter::TableEvictions, evicted.len() as u64);
        if self.obs.trace.enabled {
            for sub in evicted {
                self.obs.trace.push(SlgEvent::TableEvicted { subgoal: sub });
            }
        }
    }

    /// Engine-side mirror of the machine's assert/retract hook:
    /// invalidates the tables of every tabled predicate that (transitively)
    /// depends on `pred`.
    fn invalidate_dependents(&mut self, pred: PredId) {
        let deps = self.db.tabled_dependents(pred);
        // unless this is a pool broadcast (`consult_broadcast`), a
        // mutation reaching a shared-floor predicate diverges this
        // worker's EDB and detaches it from answer sharing
        self.tables.note_local_mutation(pred, &deps);
        for &dep in &deps {
            let n = self.tables.invalidate_pred(dep);
            if n > 0 {
                self.obs.metrics.add(Counter::TableInvalidations, n as u64);
                if self.obs.trace.enabled {
                    self.obs
                        .trace
                        .push(SlgEvent::TableInvalidated { pred: dep });
                }
            }
        }
        let shared = self.tables.shared_invalidate(&deps);
        if shared > 0 {
            self.obs
                .metrics
                .add(Counter::SharedTableInvalidations, shared as u64);
        }
    }

    // ------------------------------------------------------------------
    // programmatic EDB access (fast paths for workload generators)
    // ------------------------------------------------------------------

    /// Asserts a clause (fact or rule) built as an AST term, without going
    /// through the parser. The head predicate is auto-declared dynamic.
    pub fn assert_term(&mut self, t: &Term) -> Result<(), EngineError> {
        let (head, body) = match t {
            Term::Compound(f, args) if *f == well_known::NECK && args.len() == 2 => {
                (args[0].clone(), Some(args[1].clone()))
            }
            other => (other.clone(), None),
        };
        let head = self.reader.hilog.encode(&head);
        let body = body.map(|b| self.reader.hilog.encode(&b));
        let c = Clause {
            head,
            body: body.into_iter().collect(),
            var_names: Vec::new(),
        };
        self.assert_clause(&c, false)
    }

    fn assert_clause(&mut self, c: &Clause, at_front: bool) -> Result<(), EngineError> {
        let (f, n) = c
            .head
            .functor()
            .ok_or_else(|| EngineError::Other("assert: head must be callable".into()))?;
        let pred = self
            .db
            .declare_dynamic(f, n as u16)
            .map_err(EngineError::Other)?;
        if c.body.len() > 1 {
            return Err(EngineError::Other(
                "dynamic clauses support a single body goal (XSB compiles each dynamic \
                 clause as a rule with one literal); conjoin goals with ','"
                    .into(),
            ));
        }
        let (tokens, canon, has_body) = ast_clause_to_canon(&c.head, c.body.first());
        crate::durable::log_mutation(
            &mut self.db,
            &self.syms,
            &mut self.obs.metrics,
            crate::durable::MutOp::Assert {
                name: f,
                arity: n as u16,
                at_front,
                has_body,
                canon: &canon,
            },
        )?;
        let id = self
            .db
            .dyn_of_mut(pred)
            .expect("declared dynamic")
            .insert(tokens, canon, has_body, at_front);
        crate::durable::track_txn_mutation(
            &mut self.db,
            pred,
            crate::durable::UndoEntry::Assert { pred, clause: id },
        );
        if let Some(b) = c.body.first() {
            self.db.record_goal_deps(pred, b);
        }
        self.invalidate_dependents(pred);
        Ok(())
    }

    /// Declares `name/arity` tabled (programmatic `:- table`).
    pub fn declare_table(&mut self, name: &str, arity: u16) -> Result<(), EngineError> {
        let s = self.syms.intern(name);
        self.db.declare_tabled(s, arity).map_err(EngineError::Other)
    }

    /// Declares `name/arity` dynamic.
    pub fn declare_dynamic(&mut self, name: &str, arity: u16) -> Result<(), EngineError> {
        let s = self.syms.intern(name);
        self.db
            .declare_dynamic(s, arity)
            .map(|_| ())
            .map_err(EngineError::Other)
    }

    /// Sets the index specs of a dynamic predicate (0-based fields).
    pub fn set_indexes(
        &mut self,
        name: &str,
        arity: u16,
        specs: Vec<IndexSpec>,
    ) -> Result<(), EngineError> {
        let s = self.syms.intern(name);
        let pred = self
            .db
            .declare_dynamic(s, arity)
            .map_err(EngineError::Other)?;
        self.db
            .dyn_of_mut(pred)
            .expect("dynamic")
            .set_indexes(specs)
            .map_err(EngineError::Other)
    }

    /// Number of live tables (for tests and the harness).
    pub fn table_count(&self) -> usize {
        self.tables.live_tables()
    }

    /// Forgets every table — pool-wide when a shared store is attached
    /// (every worker fully invalidates at its next query).
    pub fn abolish_all_tables(&mut self) {
        self.tables.abolish_all();
        self.tables.shared_clear();
    }

    /// Selectively forgets the tables of one predicate (programmatic
    /// `abolish_table_pred/1`). Returns the number of tables removed;
    /// unknown or untabled predicates remove nothing.
    pub fn abolish_table_pred(&mut self, name: &str, arity: u16) -> usize {
        let Some(s) = self.syms.lookup(name) else {
            return 0;
        };
        let Some(pred) = self.db.lookup_pred(s, arity) else {
            return 0;
        };
        let n = self.tables.abolish_pred(pred);
        if n > 0 {
            self.obs.metrics.add(Counter::TableInvalidations, n as u64);
            if self.obs.trace.enabled {
                self.obs.trace.push(SlgEvent::TableInvalidated { pred });
            }
        }
        // other workers may hold tables for this predicate even when this
        // one does not: always push the abolish pool-wide
        let shared = self.tables.shared_invalidate(&[pred]);
        if shared > 0 {
            self.obs
                .metrics
                .add(Counter::SharedTableInvalidations, shared as u64);
        }
        n
    }

    /// Sets the table-space answer-store budget in cells (`None` =
    /// unbounded). When a finished query leaves the store over budget,
    /// completed tables are evicted least-recently-hit first. With a
    /// shared store attached, the same budget governs the pool-wide store
    /// (enforced immediately there, since no query is mid-flight in it).
    pub fn set_table_budget(&mut self, cells: Option<u64>) {
        self.tables.set_budget(cells);
        if let Some(h) = self.tables.shared_handle() {
            h.store.set_budget(cells);
        }
    }

    /// Switches the table-space index representation (paper §4.5: hash
    /// indexes, or the in-development trie indexing integrated with answer
    /// storage). Clears existing tables; keeps the memory budget and the
    /// pool-shared store connection.
    pub fn set_table_index(&mut self, index: crate::table::TableIndex) {
        let budget = self.tables.budget();
        let factored = self.tables.factored();
        let shared = self.tables.take_shared();
        self.tables = TableSpace::with_index(index);
        self.tables.set_budget(budget);
        self.tables.set_factored(factored);
        self.tables.restore_shared(shared);
    }

    /// Connects this engine to a pool-wide shared table store. The
    /// symbol/predicate floors are fixed *now*: every predicate consulted
    /// so far is shareable with other workers attached at the same point;
    /// predicates or symbols interned later (e.g. by this engine's own
    /// queries) stay engine-local. Used by [`crate::engine_pool::ServerPool`].
    pub fn attach_shared_store(&mut self, store: Arc<SharedTableStore>) {
        let sym_floor = self.syms.len() as u32;
        let pred_floor = self.db.preds.len() as PredId;
        self.tables.attach_shared(store, sym_floor, pred_floor);
    }

    /// Consults program text as one leg of a pool-wide broadcast
    /// (`ServerPool::consult_all`): every worker applies the same update,
    /// so the mutation does not mark this worker's EDB as diverged from
    /// the pool's common program. Identical to [`Engine::consult`] for a
    /// standalone engine.
    pub fn consult_broadcast(&mut self, src: &str) -> Result<(), EngineError> {
        // the pool logs the broadcast text once at pool level; a worker
        // leg must not re-log it (or its interior asserts)
        if let Some(c) = self.db.durable.as_mut() {
            c.suspended += 1;
        }
        self.tables.set_shared_broadcast(true);
        let r = self.consult(src);
        self.tables.set_shared_broadcast(false);
        if let Some(c) = self.db.durable.as_mut() {
            c.suspended -= 1;
        }
        // a broadcast re-establishes the pool's common program: a worker
        // that had diverged via a query-level assert is coherent again
        // once the same update reached everyone, so re-attach it to
        // answer sharing instead of leaving it detached forever
        if r.is_ok() && self.tables.shared_diverged() {
            self.resync();
        }
        r
    }

    /// Re-attaches a diverged pooled engine to answer sharing: clears
    /// the divergence flag, invalidates every shared-floor local table
    /// (they were computed against the private EDB), and fast-forwards
    /// the sync watermark to the store's current epoch. Call once the
    /// worker's program is coherent with the pool again — the pool's
    /// blessed path is [`Engine::consult_broadcast`], which resyncs
    /// automatically; this entry point covers callers that restored
    /// coherence some other way (e.g. retracting the stray fact).
    pub fn resync(&mut self) {
        let n = self.tables.resync_shared();
        if n > 0 {
            self.obs.metrics.add(Counter::TableInvalidations, n as u64);
        }
    }

    /// True when a non-broadcast update detached this pooled engine from
    /// answer sharing (its EDB diverged from the pool's common program;
    /// it still answers correctly from its own database). No longer
    /// permanent: a later [`Engine::consult_broadcast`] or explicit
    /// [`Engine::resync`] re-attaches the worker.
    pub fn shared_diverged(&self) -> bool {
        self.tables.shared_diverged()
    }

    /// Records the worker count of the pool this engine belongs to
    /// (reported by the `pool_workers/1` builtin; 0 = standalone engine).
    pub fn set_pool_workers(&mut self, n: u32) {
        self.db.pool_workers = n;
    }

    // ------------------------------------------------------------------
    // durability (WAL attachment, transactions, recovery) — paper §4.6
    // extended with ARIES-style logging; see DESIGN.md §2.11
    // ------------------------------------------------------------------

    /// Attaches a write-ahead log: every later EDB mutation is logged
    /// before it is applied. `worker` is this engine's pool worker id
    /// ([`crate::durable::WORKER_ALL`] for standalone engines).
    pub fn attach_wal(&mut self, log: Arc<crate::durable::DurableLog>, worker: u16) {
        self.db.durable = Some(crate::durable::DurableConn {
            log,
            worker,
            enabled: true,
            suspended: 0,
            applied_lsn: 0,
        });
    }

    /// The attached durable log, if any.
    pub fn wal(&self) -> Option<&Arc<crate::durable::DurableLog>> {
        self.db.durable.as_ref().map(|c| &c.log)
    }

    /// `set_durability(on/off)`: toggles mutation logging without
    /// detaching the log. No-op on engines with no WAL attached.
    pub fn set_durability(&mut self, on: bool) {
        if let Some(c) = self.db.durable.as_mut() {
            c.enabled = on;
        }
    }

    /// Sets the group-commit window in microseconds (0 = fsync at every
    /// commit point). No-op with no WAL attached.
    pub fn set_group_commit_window_us(&mut self, us: u64) {
        if let Some(c) = self.db.durable.as_ref() {
            c.log.set_group_window_us(us);
        }
    }

    /// Forces any deferred group-commit fsync to disk.
    pub fn wal_flush(&mut self) -> Result<(), EngineError> {
        if let Some(conn) = self.db.durable.as_ref() {
            let (synced, batched) = conn.log.flush().map_err(crate::durable::werr)?;
            if synced {
                self.obs.metrics.bump(Counter::WalFsyncs);
                self.obs.metrics.add(Counter::GroupCommitBatch, batched);
            }
        }
        Ok(())
    }

    /// Creates a durable standalone engine over a fresh log: consults
    /// `program`, attaches the log, and writes the Program record the
    /// next [`Engine::open_durable`] will replay from.
    pub fn create_durable(
        program: &str,
        log: Arc<crate::durable::DurableLog>,
    ) -> Result<Engine, EngineError> {
        if !log.is_fresh() {
            return Err(EngineError::Other(
                "create_durable: log already holds a program; use open_durable".into(),
            ));
        }
        let mut e = Engine::new();
        e.consult(program)?;
        e.attach_wal(log, crate::durable::WORKER_ALL);
        crate::durable::log_program(&mut e.db, &e.syms, &mut e.obs.metrics, program)?;
        Ok(e)
    }

    /// Reopens a durable engine from its log: replays the Program record,
    /// every surviving committed mutation, and undoes loser transactions.
    pub fn open_durable(
        log: Arc<crate::durable::DurableLog>,
    ) -> Result<(Engine, crate::durable::RecoveryReport), EngineError> {
        let mut e = Engine::new();
        e.attach_wal(log, crate::durable::WORKER_ALL);
        let report = e.replay_wal()?;
        Ok((e, report))
    }

    /// ARIES-style recovery over the attached log: an analysis pass
    /// classifies transactions as winners (Commit record on the surviving
    /// log) or losers, a redo pass repeats history in LSN order (filtered
    /// to records addressed to this worker), and an undo pass rolls the
    /// losers back in reverse. Records below the connection's
    /// `applied_lsn` high-water mark are skipped, so calling this twice
    /// replays nothing the second time (duplicate-replay idempotence).
    pub fn replay_wal(&mut self) -> Result<crate::durable::RecoveryReport, EngineError> {
        use crate::durable::{self as dur, Record, UndoEntry};
        let (log, worker, floor) = {
            let c = self
                .db
                .durable
                .as_ref()
                .ok_or_else(|| EngineError::Other("replay_wal: no WAL attached".into()))?;
            (Arc::clone(&c.log), c.worker, c.applied_lsn)
        };
        let raw = log.raw_records().map_err(dur::werr)?;
        // analysis: which explicit transactions won
        let mut committed: HashSet<u64> = HashSet::new();
        for (_, p) in &raw {
            if let Some((dur::KIND_COMMIT, tx)) = dur::record_header(p) {
                committed.insert(tx);
            }
        }
        let mut report = dur::RecoveryReport {
            committed_txns: committed.len() as u64,
            ..Default::default()
        };
        // redo: repeat history in LSN order, logging suppressed
        self.db.durable.as_mut().expect("attached").suspended += 1;
        let mut loser_ops: Vec<UndoEntry> = Vec::new();
        let mut applied_end = floor;
        let redo = (|| -> Result<(), EngineError> {
            for (lsn, payload) in &raw {
                let end = lsn + (payload.len() + xsb_storage::log::FRAME_OVERHEAD) as u64;
                applied_end = applied_end.max(end);
                if *lsn < floor {
                    continue;
                }
                report.scanned += 1;
                let rec = Record::decode(payload, &mut self.syms).map_err(EngineError::Other)?;
                match rec {
                    Record::Begin { .. } | Record::Commit { .. } | Record::Abort { .. } => {}
                    Record::Program { text } | Record::Broadcast { text } => {
                        self.consult(&text)?;
                        report.replayed += 1;
                    }
                    Record::Assert {
                        tx,
                        worker: w,
                        name,
                        arity,
                        at_front,
                        has_body,
                        canon,
                    } => {
                        if w != dur::WORKER_ALL && w != worker {
                            continue;
                        }
                        let pred = self
                            .db
                            .declare_dynamic(name, arity)
                            .map_err(EngineError::Other)?;
                        let tokens = dur::canon_tokens(&canon, arity);
                        let id = self.db.dyn_of_mut(pred).expect("dynamic").insert(
                            tokens,
                            Rc::from(canon),
                            has_body,
                            at_front,
                        );
                        self.invalidate_dependents(pred);
                        report.replayed += 1;
                        if w == worker && worker != dur::WORKER_ALL {
                            report.own_worker_ops += 1;
                        }
                        if tx != 0 && !committed.contains(&tx) {
                            loser_ops.push(UndoEntry::Assert { pred, clause: id });
                        }
                    }
                    Record::Retract {
                        tx,
                        worker: w,
                        name,
                        arity,
                        has_body,
                        canon,
                    } => {
                        if w != dur::WORKER_ALL && w != worker {
                            continue;
                        }
                        let pred = self
                            .db
                            .declare_dynamic(name, arity)
                            .map_err(EngineError::Other)?;
                        let found = {
                            let dp = self.db.dyn_of(pred).expect("dynamic");
                            dp.all_live().into_iter().find(|&id| {
                                let c = dp.clause(id);
                                c.has_body == has_body && c.canon[..] == canon[..]
                            })
                        };
                        if let Some(id) = found {
                            self.db.dyn_of_mut(pred).expect("dynamic").remove(id);
                            self.invalidate_dependents(pred);
                            report.replayed += 1;
                            if w == worker && worker != dur::WORKER_ALL {
                                report.own_worker_ops += 1;
                            }
                            if tx != 0 && !committed.contains(&tx) {
                                loser_ops.push(UndoEntry::Retract { pred, clause: id });
                            }
                        }
                    }
                    Record::Checkpoint { preds } => {
                        for sp in preds {
                            let pred = self
                                .db
                                .declare_dynamic(sp.name, sp.arity)
                                .map_err(EngineError::Other)?;
                            let dp = self.db.dyn_of_mut(pred).expect("dynamic");
                            dp.retract_all();
                            for (has_body, canon) in sp.clauses {
                                let tokens = dur::canon_tokens(&canon, sp.arity);
                                dp.insert(tokens, Rc::from(canon), has_body, false);
                            }
                            self.invalidate_dependents(pred);
                        }
                        report.checkpoint_restored = true;
                        report.replayed += 1;
                    }
                }
            }
            Ok(())
        })();
        self.db.durable.as_mut().expect("attached").suspended -= 1;
        redo?;
        // undo: roll loser transactions back, newest op first
        for u in loser_ops.into_iter().rev() {
            match u {
                UndoEntry::Assert { pred, clause } => {
                    if let Some(dp) = self.db.dyn_of_mut(pred) {
                        dp.remove(clause);
                    }
                    self.invalidate_dependents(pred);
                }
                UndoEntry::Retract { pred, clause } => {
                    if let Some(dp) = self.db.dyn_of_mut(pred) {
                        dp.revive(clause);
                    }
                    self.invalidate_dependents(pred);
                }
            }
            report.losers_undone += 1;
        }
        self.obs
            .metrics
            .add(Counter::RecoveryReplayed, report.replayed);
        self.db.durable.as_mut().expect("attached").applied_lsn = applied_end;
        Ok(report)
    }

    /// Fuzzy checkpoint (`checkpoint/0`): snapshots every dynamic
    /// predicate and atomically truncates the log to
    /// `[Program, Broadcast…, Checkpoint]`. Refused inside a transaction
    /// and on pool workers (a worker's snapshot cannot speak for its
    /// siblings' worker-tagged records). Returns log bytes
    /// `(before, after)`.
    pub fn checkpoint(&mut self) -> Result<(u64, u64), EngineError> {
        crate::durable::checkpoint(&mut self.db, &self.syms, &mut self.obs.metrics)
    }

    /// Switches substitution factoring for *new* tables: `true` (the
    /// default) stores answers as bindings of the call's distinct
    /// variables; `false` stores full argument tuples (the paper's
    /// pre-factoring baseline, kept for the `factoring` ablation). Frames
    /// already created keep the representation they were built with.
    pub fn set_answer_factoring(&mut self, on: bool) {
        self.tables.set_factored(on);
    }

    // ------------------------------------------------------------------
    // observability
    // ------------------------------------------------------------------

    /// The metrics registry (cumulative since construction or the last
    /// [`Engine::reset_metrics`]).
    pub fn metrics(&self) -> &Metrics {
        &self.obs.metrics
    }

    /// Zeroes all counters, gauges, timers, and buffered trace events.
    pub fn reset_metrics(&mut self) {
        self.obs.reset();
    }

    /// Enables/disables SLG event tracing and span collection (disabled
    /// cost: one branch per traced operation).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.obs.trace.enabled = enabled;
        self.obs.spans.enabled = enabled || self.obs.slow_query_threshold_ns.is_some();
    }

    /// Resizes the trace ring buffer (discards buffered events).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.obs.trace.set_capacity(capacity);
    }

    /// Buffered SLG trace events, oldest first.
    pub fn trace_events(&self) -> Vec<SlgEvent> {
        self.obs.trace.events().copied().collect()
    }

    /// Events overwritten because the trace ring was full.
    pub fn trace_dropped(&self) -> u64 {
        self.obs.trace.dropped()
    }

    /// The `statistics/0` report text.
    pub fn statistics_report(&self) -> String {
        let mut s = self.obs.metrics.report();
        s.push_str(&format!(
            "  {:<28}{}\n  {:<28}{}\n",
            "trace_events_total",
            self.obs.trace.total(),
            "trace_events_dropped",
            self.obs.trace.dropped(),
        ));
        s
    }

    /// Snapshot of every scalar metric as a JSON object (the harness
    /// `--json` payload), plus the trace ring's truncation counters:
    /// `trace_events_total` is every event ever pushed,
    /// `trace_events_dropped` the oldest ones overwritten because the
    /// ring was full (the buffer keeps the most recent `capacity`).
    pub fn metrics_json(&self) -> Json {
        let mut j = self.obs.metrics.to_json();
        if let Json::Obj(fields) = &mut j {
            fields.push((
                "trace_events_total".into(),
                Json::Int(self.obs.trace.total() as i64),
            ));
            fields.push((
                "trace_events_dropped".into(),
                Json::Int(self.obs.trace.dropped() as i64),
            ));
        }
        j
    }

    /// Enables/disables the emulator opcode profiler (disabled cost: one
    /// predicted branch per dispatched instruction).
    pub fn set_profiling(&mut self, on: bool) {
        self.obs.metrics.profile.enabled = on;
    }

    /// The `profile/0` report: hottest opcodes and adjacent dispatch
    /// pairs since the last [`Engine::reset_profile`].
    pub fn profile_report(&self) -> String {
        self.obs
            .metrics
            .profile
            .report(&crate::instr::Instr::OPCODE_NAMES)
    }

    /// Opcode profile as JSON (the harness `--json` payload).
    pub fn profile_json(&self) -> Json {
        self.obs
            .metrics
            .profile
            .to_json(&crate::instr::Instr::OPCODE_NAMES)
    }

    /// Zeroes profile samples, keeping the toggle (`profile_reset/0`).
    pub fn reset_profile(&mut self) {
        self.obs.metrics.profile.reset();
    }

    /// Sets the slow-query threshold (`None` disables, `Some(0)` logs
    /// every query). A set threshold implies span collection even with
    /// tracing off.
    pub fn set_slow_query_threshold_ns(&mut self, t: Option<u64>) {
        self.obs.slow_query_threshold_ns = t;
        self.obs.spans.enabled = self.obs.trace.enabled || t.is_some();
    }

    /// Rendered span trees of queries that crossed the slow-query
    /// threshold, oldest first (bounded; oldest entries dropped).
    pub fn slow_query_log(&self) -> &[String] {
        &self.slow_query_log
    }

    /// Recorded spans as Chrome trace-event JSON — write to a file and
    /// load in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> Json {
        let db = &self.db;
        let syms = &self.syms;
        self.obs.spans.chrome_trace(|p| pred_display(db, syms, p))
    }

    /// Records one pool job's queue wait (submit → worker pickup) in this
    /// engine's metrics. Instrumentation hook for
    /// [`crate::engine_pool::ServerPool`].
    pub fn note_queue_wait(&mut self, ns: u64) {
        self.obs.metrics.queue_wait.record(ns);
    }

    /// Records one pool job's execution time in this engine's metrics.
    pub fn note_run_time(&mut self, ns: u64) {
        self.obs.metrics.run_time.record(ns);
    }

    /// Calls dispatched to `name/arity` (cumulative) — the instrumentation
    /// behind the Figure 2 reproduction.
    pub fn call_count(&self, name: &str, arity: u16) -> u64 {
        self.pred_counters(name, arity)
            .map(|c| c.calls)
            .unwrap_or(0)
    }

    /// Tabled subgoals created for `name/arity` (cumulative) — Figure 2's
    /// SLG subgoal counts, per predicate.
    pub fn subgoal_count(&self, name: &str, arity: u16) -> u64 {
        self.pred_counters(name, arity)
            .map(|c| c.subgoals)
            .unwrap_or(0)
    }

    fn pred_counters(&self, name: &str, arity: u16) -> Option<xsb_obs::metrics::PredCounters> {
        let s = self.syms.lookup(name)?;
        let id = self.db.lookup_pred(s, arity)?;
        Some(self.obs.metrics.pred(id as usize))
    }

    /// One line per live subgoal table: predicate, canonical call, answer
    /// count, completion state — the `tables/0` listing.
    pub fn table_listing(&self) -> String {
        crate::table::table_listing(&self.tables, &self.db, &self.syms)
    }

    /// Serializes the facts of a dynamic predicate as an object file.
    pub fn save_object(&self, name: &str, arity: u16) -> Result<Vec<u8>, EngineError> {
        let s = self
            .syms
            .lookup(name)
            .ok_or_else(|| EngineError::Other(format!("unknown predicate {name}")))?;
        crate::objfile::encode(&self.db, &self.syms, s, arity)
    }

    /// Loads an object file produced by [`Engine::save_object`].
    pub fn load_object(&mut self, data: &[u8]) -> Result<usize, EngineError> {
        let (_, _, n) = crate::objfile::decode(&mut self.db, &mut self.syms, data)?;
        Ok(n)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

fn flatten_commas(t: &Term) -> Vec<&Term> {
    t.conjuncts()
}

/// `name/arity` display of a predicate id for span rendering (`NO_ID`
/// and out-of-range ids have no name).
fn pred_display(db: &Program, syms: &SymbolTable, pred: u32) -> Option<String> {
    if pred == NO_ID || pred as usize >= db.preds.len() {
        return None;
    }
    let p = db.pred(pred);
    Some(format!("{}/{}", syms.name(p.name), p.arity))
}

/// Converts an AST clause directly to its canonical cell run plus index
/// tokens — the machinery behind `Engine::assert_term` and consult-time
/// asserts (no WAM heap needed).
fn ast_clause_to_canon(head: &Term, body: Option<&Term>) -> (Vec<Option<Cell>>, Rc<[Cell]>, bool) {
    let mut canon: Vec<Cell> = Vec::new();
    let mut varmap: Vec<u32> = Vec::new();
    let args = head.args();
    for a in args {
        ast_to_canon(a, &mut canon, &mut varmap);
    }
    let has_body = body.is_some();
    if let Some(b) = body {
        ast_to_canon(b, &mut canon, &mut varmap);
    }
    let tokens: Vec<Option<Cell>> = args.iter().map(ast_token).collect();
    (tokens, Rc::from(canon.into_boxed_slice()), has_body)
}

fn ast_to_canon(t: &Term, out: &mut Vec<Cell>, varmap: &mut Vec<u32>) {
    match t {
        Term::Var(v) => {
            let idx = match varmap.iter().position(|&x| x == *v) {
                Some(i) => i,
                None => {
                    varmap.push(*v);
                    varmap.len() - 1
                }
            };
            out.push(Cell::tvar(idx));
        }
        Term::Atom(s) => out.push(Cell::con(*s)),
        Term::Int(i) => out.push(Cell::int(*i)),
        Term::Compound(f, args) => {
            out.push(Cell::fun(*f, args.len()));
            for a in args {
                ast_to_canon(a, out, varmap);
            }
        }
        Term::HiLog(..) => unreachable!("HiLog encoded before assert"),
    }
}

fn ast_token(t: &Term) -> Option<Cell> {
    match t {
        Term::Var(_) => None,
        Term::Atom(s) => Some(Cell::con(*s)),
        Term::Int(i) => Some(Cell::int(*i)),
        Term::Compound(f, args) => Some(Cell::fun(*f, args.len())),
        Term::HiLog(..) => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_simple_query() {
        let mut e = Engine::new();
        e.consult("edge(1,2). edge(2,3). edge(1,3).").unwrap();
        let sols = e.query("edge(1, X)").unwrap();
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0].get("X"), Some(&Term::Int(2)));
        assert_eq!(sols[1].get("X"), Some(&Term::Int(3)));
    }

    #[test]
    fn conjunction_and_join() {
        let mut e = Engine::new();
        e.consult("edge(1,2). edge(2,3). edge(3,4).").unwrap();
        let sols = e.query("edge(X, Y), edge(Y, Z)").unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn rule_evaluation() {
        let mut e = Engine::new();
        e.consult(
            "parent(tom, bob). parent(bob, ann).\n\
             grandparent(X, Z) :- parent(X, Y), parent(Y, Z).",
        )
        .unwrap();
        let sols = e.query("grandparent(tom, W)").unwrap();
        assert_eq!(sols.len(), 1);
        let ann = Term::Atom(e.syms.lookup("ann").unwrap());
        assert_eq!(sols[0].get("W"), Some(&ann));
    }

    #[test]
    fn arithmetic_and_prelude() {
        let mut e = Engine::new();
        let sols = e.query("X is 3 * 4 + 1").unwrap();
        assert_eq!(sols[0].get("X"), Some(&Term::Int(13)));
        let sols = e.query("append([1,2], [3], L)").unwrap();
        assert_eq!(sols.len(), 1);
        let sols = e.query("length([a,b,c], N)").unwrap();
        assert_eq!(sols[0].get("N"), Some(&Term::Int(3)));
    }

    #[test]
    fn tabled_transitive_closure_on_cycle() {
        let mut e = Engine::new();
        e.consult(
            ":- table path/2.\n\
             path(X,Y) :- edge(X,Y).\n\
             path(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3). edge(3,1).",
        )
        .unwrap();
        // SLD would loop forever on the cycle; SLG terminates with all 9 pairs
        let n = e.count("path(X, Y)").unwrap();
        assert_eq!(n, 9);
        // goal-directed variant
        let n = e.count("path(1, X)").unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn sld_on_cycle_hits_step_limit_but_slg_does_not() {
        let mut e = Engine::new();
        e.consult(
            "path2(X,Y) :- edge(X,Y).\n\
             path2(X,Y) :- edge(X,Z), path2(Z,Y).\n\
             edge(1,2). edge(2,3). edge(3,1).",
        )
        .unwrap();
        e.set_step_limit(Some(200_000));
        let r = e.count("path2(1, X), fail");
        assert_eq!(r, Err(EngineError::StepLimit), "SLD loops on the cycle");
        e.set_step_limit(None);
    }
}
