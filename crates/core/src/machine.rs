//! SLG-WAM machine state.
//!
//! Holds the classic WAM register file and memory areas — heap, environment
//! stack, choice-point stack, trail — plus the SLG extensions (paper §3.2):
//!
//! * **freeze registers** ([`Freeze`]) that protect stack segments belonging
//!   to suspended consumers from reclamation on backtracking;
//! * a **forward trail**: trail entries record the bound value and a parent
//!   link, forming a tree, so [`Machine::switch_environments`] can restore a
//!   suspended consumer's bindings by unwinding to the common ancestor and
//!   rewinding down;
//! * canonical term copy-in/copy-out between the WAM heap and table space.
//!
//! All areas are `Vec` arenas addressed by index; "stack" discipline is
//! recovered by truncating on backtracking, never below the freeze line.

use crate::cell::{Cell, Tag};
use crate::instr::{CodePtr, PredId};
use crate::program::Program;
use crate::table::TableSpace;
use std::cmp::Ordering;
use std::rc::Rc;
use xsb_obs::{Counter, Obs};
use xsb_syntax::{well_known, Sym, SymbolTable, Term};

/// Sentinel for "no index" in `u32` arena links.
pub const NONE: u32 = u32::MAX;

/// Size of the X register file (bounds compiler temporaries per clause).
pub const MAX_X: usize = 8192;

/// An environment frame. Permanent variables live in the shared `perm`
/// arena at `pbase .. pbase + plen`.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// continuation environment (index into `frames`, or `NONE`)
    pub ce: u32,
    /// continuation code pointer
    pub cp: CodePtr,
    pub pbase: u32,
    pub plen: u16,
}

/// One forward-trail node: which heap cell was bound, to what, and the
/// previous trail node on this branch.
#[derive(Clone, Copy, Debug)]
pub struct TrailNode {
    pub addr: u32,
    pub val: Cell,
    pub parent: u32,
}

/// Freeze registers: nothing below these arena marks is reclaimed on
/// backtracking while consumers are suspended.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Freeze {
    pub heap: u32,
    pub frames: u32,
    pub perms: u32,
    pub cps: u32,
    pub cp_args: u32,
    pub trail: u32,
}

/// The alternative a choice point takes on backtracking.
#[derive(Clone, Debug)]
pub enum Alt {
    /// jump to a retry/trust address (sequential clause chains)
    Code(CodePtr),
    /// iterate a static candidate list (first-string trie dispatch)
    StaticList { list: Rc<[CodePtr]>, idx: u32 },
    /// iterate dynamic clause candidates
    DynClauses {
        pred: PredId,
        list: Rc<[u32]>,
        idx: u32,
    },
    /// SLG generator: run remaining program clauses, then check-complete
    Generator { sub: u32 },
    /// SLG consumer: return the next unconsumed answer or suspend
    Consumer { cons: u32 },
    /// iterate the answers of a completed table
    CompletedAnswers {
        sub: u32,
        idx: u32,
        subst: Rc<[u32]>,
    },
    /// a `tnot`/`e_tnot`/`tfindall` suspension waiting on completion of
    /// subgoal `sub`; plain backtracking fails through it
    NegSuspend { neg: u32 },
    /// a resumed suspension whose branch has exhausted: control returns to
    /// the completing leader's scheduling loop
    NegScheduled { leader: u32 },
    /// findall barrier: on backtrack, all solutions are in; build the list
    FindallFinish { rec: u32, resume: CodePtr },
    /// `\+` barrier: the goal failed exhaustively, so the negation succeeds
    NafBarrier { resume: CodePtr },
    /// `between/3` iteration
    Between { cur: i64, hi: i64, resume: CodePtr },
    /// `retract/1` candidate iteration
    Retract {
        pred: PredId,
        list: Rc<[u32]>,
        idx: u32,
        resume: CodePtr,
    },
    /// bottom of a query: no more solutions
    Query,
    /// exhausted; fail straight through
    Dead,
}

/// A choice point. `abase`/`alen` locate saved argument registers in the
/// `cp_args` arena.
#[derive(Clone, Debug)]
pub struct ChoicePoint {
    pub prev: u32,
    pub e: u32,
    pub cont: CodePtr,
    pub h: u32,
    pub frames_len: u32,
    pub perms_len: u32,
    pub cps_len: u32,
    pub cp_args_len: u32,
    pub trail_len: u32,
    pub tip: u32,
    pub abase: u32,
    pub alen: u16,
    pub alt: Alt,
}

/// A pending findall collection.
#[derive(Debug)]
pub struct FindallRecord {
    /// template term (heap cell, protected by the barrier CP's heap mark)
    pub template: Cell,
    /// result-list argument to unify at the end
    pub result: Cell,
    /// canonicalized collected solutions
    pub solutions: Vec<Box<[Cell]>>,
    /// `setof/3`: sort, remove duplicates, and fail on an empty list
    pub sort_dedup_fail_empty: bool,
}

/// The SLG-WAM machine. Borrows the program (mutably, for `assert`) and the
/// table space for the duration of one query.
pub struct Machine<'p> {
    pub db: &'p mut Program,
    pub tables: &'p mut TableSpace,

    pub heap: Vec<Cell>,
    pub frames: Vec<Frame>,
    pub perm: Vec<Cell>,
    pub cps: Vec<ChoicePoint>,
    pub cp_args: Vec<Cell>,
    pub trail: Vec<TrailNode>,
    pub x: Vec<Cell>,

    /// current environment (`NONE` if none)
    pub e: u32,
    /// continuation code pointer (the WAM CP register)
    pub cont: CodePtr,
    /// current choice point (`NONE` if none)
    pub b: u32,
    /// program counter
    pub p: CodePtr,
    /// current trail tip (`NONE` = root)
    pub tip: u32,
    /// freeze registers
    pub freeze: Freeze,
    /// unify read-mode cursor
    pub s: usize,
    /// unify write mode flag
    pub write_mode: bool,
    /// generator whose clause code is currently being entered (valid
    /// between generator dispatch and the first call; captured by
    /// `SaveGenerator` / used directly by `NewAnswerDirect`)
    pub executing_gen: u32,
    /// choice point at predicate entry, captured by `GetLevel` for cut
    pub b0: u32,

    pub findalls: Vec<FindallRecord>,
    /// Metrics registry + SLG event tracer (swapped in/out by the engine
    /// so counters accumulate across queries).
    pub obs: Obs,
    pub step_limit: Option<u64>,
    /// instructions dispatched by this machine (the step-limit basis).
    /// Block-granular: the hot loop spends `fuel` and the spent part is
    /// folded in by [`Machine::flush_steps`] — accurate at every refill,
    /// builtin call, and run-loop exit.
    pub steps: u64,
    /// dispatches left in the current accounting block
    pub(crate) fuel: u64,
    /// size the current block was issued at (`fuel_block - fuel` = spent
    /// dispatches not yet folded into `steps`/the metrics counter)
    pub(crate) fuel_block: u64,
    scratch_pdl: Vec<(Cell, Cell)>,
    /// reusable buffers for dynamic-predicate dispatch
    pub(crate) scratch_tokens: Vec<Option<Cell>>,
    pub(crate) scratch_cands: Vec<u32>,
    /// reusable buffer for call/answer canonicalization
    pub(crate) scratch_canon: Vec<Cell>,
    /// reusable tvar map for answer return (`unify_canon_one` binding
    /// loops) — consumed answers never allocate a fresh map
    pub(crate) scratch_tvars: Vec<Option<Cell>>,
    /// reusable root buffer for `new_answer`'s substitution-factor walk
    pub(crate) scratch_roots: Vec<Cell>,
    /// reusable var-address buffer for `new_answer` canonicalization
    pub(crate) scratch_vars: Vec<u32>,
    /// reusable buffer for expanding a factored answer into a full tuple
    /// (unfactored-store baseline) and for its root spans
    pub(crate) scratch_full: Vec<Cell>,
    pub(crate) scratch_spans: Vec<(u32, u32)>,
}

impl<'p> Machine<'p> {
    pub fn new(db: &'p mut Program, tables: &'p mut TableSpace) -> Self {
        Machine {
            db,
            tables,
            heap: Vec::with_capacity(4096),
            frames: Vec::with_capacity(256),
            perm: Vec::with_capacity(1024),
            cps: Vec::with_capacity(128),
            cp_args: Vec::with_capacity(512),
            trail: Vec::with_capacity(1024),
            x: vec![Cell::int(0); MAX_X],
            e: NONE,
            cont: 0,
            b: NONE,
            p: 0,
            tip: NONE,
            freeze: Freeze::default(),
            s: 0,
            write_mode: false,
            executing_gen: NONE,
            b0: NONE,
            findalls: Vec::new(),
            obs: Obs::new(),
            step_limit: None,
            steps: 0,
            fuel: 0,
            fuel_block: 0,
            scratch_pdl: Vec::new(),
            scratch_tokens: Vec::new(),
            scratch_cands: Vec::new(),
            scratch_canon: Vec::new(),
            scratch_tvars: Vec::new(),
            scratch_roots: Vec::new(),
            scratch_vars: Vec::new(),
            scratch_full: Vec::new(),
            scratch_spans: Vec::new(),
        }
    }

    // ---------------- heap & binding ----------------

    /// Pushes a cell, returning its address.
    #[inline]
    pub fn push_heap(&mut self, c: Cell) -> usize {
        self.heap.push(c);
        self.heap.len() - 1
    }

    /// Allocates a fresh unbound variable on the heap.
    #[inline]
    pub fn new_var(&mut self) -> Cell {
        let a = self.heap.len();
        self.heap.push(Cell::r#ref(a));
        Cell::r#ref(a)
    }

    /// Dereferences through bound REF chains.
    #[inline]
    pub fn deref(&self, mut c: Cell) -> Cell {
        loop {
            if c.tag() != Tag::Ref {
                return c;
            }
            let a = c.addr();
            let v = self.heap[a];
            if v == c {
                return c; // unbound
            }
            c = v;
        }
    }

    /// Binds the unbound variable at `addr` to `val`, recording a forward
    /// trail node.
    #[inline]
    pub fn bind(&mut self, addr: usize, val: Cell) {
        debug_assert_eq!(self.heap[addr], Cell::r#ref(addr), "binding a bound cell");
        self.obs.metrics.bump(Counter::TrailOps);
        self.heap[addr] = val;
        self.trail.push(TrailNode {
            addr: addr as u32,
            val,
            parent: self.tip,
        });
        self.tip = (self.trail.len() - 1) as u32;
    }

    /// Unifies two cells. On failure the partial bindings remain trailed
    /// (the caller backtracks, which unwinds them).
    pub fn unify(&mut self, a: Cell, b: Cell) -> bool {
        self.obs.metrics.bump(Counter::Unifications);
        let mut pdl = std::mem::take(&mut self.scratch_pdl);
        pdl.clear();
        pdl.push((a, b));
        let mut ok = true;
        while let Some((a, b)) = pdl.pop() {
            let a = self.deref(a);
            let b = self.deref(b);
            if a == b {
                continue;
            }
            match (a.tag(), b.tag()) {
                (Tag::Ref, Tag::Ref) => {
                    // bind younger to older to keep chains short
                    if a.addr() < b.addr() {
                        self.bind(b.addr(), a);
                    } else {
                        self.bind(a.addr(), b);
                    }
                }
                (Tag::Ref, _) => self.bind(a.addr(), b),
                (_, Tag::Ref) => self.bind(b.addr(), a),
                (Tag::Con, Tag::Con) | (Tag::Int, Tag::Int) => {
                    ok = false;
                    break;
                }
                (Tag::Lis, Tag::Lis) => {
                    let (pa, pb) = (a.addr(), b.addr());
                    pdl.push((self.heap[pa], self.heap[pb]));
                    pdl.push((self.heap[pa + 1], self.heap[pb + 1]));
                }
                (Tag::Str, Tag::Str) => {
                    let (pa, pb) = (a.addr(), b.addr());
                    let fa = self.heap[pa];
                    let fb = self.heap[pb];
                    if fa != fb {
                        ok = false;
                        break;
                    }
                    let (_, n) = fa.functor();
                    for i in 1..=n {
                        pdl.push((self.heap[pa + i], self.heap[pb + i]));
                    }
                }
                // STR('.'/2) vs LIS: normalize
                (Tag::Str, Tag::Lis) | (Tag::Lis, Tag::Str) => {
                    let (s, l) = if a.tag() == Tag::Str { (a, b) } else { (b, a) };
                    let ps = s.addr();
                    if self.heap[ps] != Cell::fun(well_known::DOT, 2) {
                        ok = false;
                        break;
                    }
                    let pl = l.addr();
                    pdl.push((self.heap[ps + 1], self.heap[pl]));
                    pdl.push((self.heap[ps + 2], self.heap[pl + 1]));
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        self.scratch_pdl = pdl;
        ok
    }

    // ---------------- trail ----------------

    /// Unwinds bindings from the current tip back to (and excluding)
    /// `target`, which must be an ancestor of the current tip.
    pub fn unwind_to(&mut self, target: u32) {
        let mut n = self.tip;
        while n != target {
            debug_assert_ne!(n, NONE, "unwind target not an ancestor");
            let node = self.trail[n as usize];
            self.heap[node.addr as usize] = Cell::r#ref(node.addr as usize);
            n = node.parent;
        }
        self.tip = target;
    }

    /// Switches the binding environment from the current trail tip to
    /// `target_tip` (the tip of a suspended consumer): unwind to the common
    /// ancestor, then rewind — re-installing recorded values — down to the
    /// target. This is the SLG-WAM's forward-trail walk.
    pub fn switch_environments(&mut self, target_tip: u32) {
        let mut a = self.tip;
        let mut b = target_tip;
        let mut redo: Vec<u32> = Vec::new();
        while a != b {
            // node indices grow monotonically, so the larger index is deeper
            let step_a = match (a, b) {
                (NONE, _) => false,
                (_, NONE) => true,
                (a_, b_) => a_ > b_,
            };
            if step_a {
                let node = self.trail[a as usize];
                self.heap[node.addr as usize] = Cell::r#ref(node.addr as usize);
                a = node.parent;
            } else {
                redo.push(b);
                b = self.trail[b as usize].parent;
            }
        }
        for &n in redo.iter().rev() {
            let node = self.trail[n as usize];
            self.heap[node.addr as usize] = node.val;
        }
        self.tip = target_tip;
    }

    // ---------------- choice points ----------------

    /// Pushes a choice point saving the first `alen` argument registers.
    pub fn push_cp(&mut self, alen: u16, alt: Alt) -> u32 {
        let abase = self.cp_args.len() as u32;
        self.cp_args.extend_from_slice(&self.x[..alen as usize]);
        let cp = ChoicePoint {
            prev: self.b,
            e: self.e,
            cont: self.cont,
            h: self.heap.len() as u32,
            frames_len: self.frames.len() as u32,
            perms_len: self.perm.len() as u32,
            cps_len: self.cps.len() as u32,
            cp_args_len: abase,
            trail_len: self.trail.len() as u32,
            tip: self.tip,
            abase,
            alen,
            alt,
        };
        self.cps.push(cp);
        self.b = (self.cps.len() - 1) as u32;
        self.obs.metrics.bump(Counter::ChoicePoints);
        self.sample_gauges();
        self.b
    }

    /// Samples arena depths into the high-water gauges. Called at choice
    /// points, suspensions, and backtracking — the moments the stacks peak.
    #[inline]
    pub fn sample_gauges(&mut self) {
        let m = &mut self.obs.metrics;
        m.heap.set(self.heap.len() as u64);
        m.trail.set(self.trail.len() as u64);
        m.choice_points.set(self.cps.len() as u64);
        m.frames.set(self.frames.len() as u64);
    }

    /// Restores machine state from choice point `i` (without consuming its
    /// alternative): unwind trail, truncate arenas to the freeze-protected
    /// marks, restore E/CP/args.
    pub fn restore_cp(&mut self, i: u32) {
        self.sample_gauges();
        let cp = self.cps[i as usize].clone();
        self.unwind_to(cp.tip);
        self.heap.truncate((cp.h.max(self.freeze.heap)) as usize);
        self.frames
            .truncate((cp.frames_len.max(self.freeze.frames)) as usize);
        self.perm
            .truncate((cp.perms_len.max(self.freeze.perms)) as usize);
        self.trail
            .truncate((cp.trail_len.max(self.freeze.trail)) as usize);
        // keep this CP itself plus frozen ones
        self.cps.truncate(((i + 1).max(self.freeze.cps)) as usize);
        self.cp_args
            .truncate(((cp.abase + cp.alen as u32).max(self.freeze.cp_args)) as usize);
        self.e = cp.e;
        self.cont = cp.cont;
        for i in 0..cp.alen as usize {
            self.x[i] = self.cp_args[cp.abase as usize + i];
        }
        self.b = i;
        // the high-water marks must never regress across a table retry:
        // truncation lowers current values only
        debug_assert!(self.obs.metrics.trail.high_water >= self.trail.len() as u64);
        debug_assert!(self.obs.metrics.choice_points.high_water >= self.cps.len() as u64);
    }

    /// Marks all stack tops as frozen (called when a consumer suspends).
    pub fn freeze_now(&mut self) {
        self.sample_gauges();
        self.freeze = Freeze {
            heap: self.heap.len() as u32,
            frames: self.frames.len() as u32,
            perms: self.perm.len() as u32,
            cps: self.cps.len() as u32,
            cp_args: self.cp_args.len() as u32,
            trail: self.trail.len() as u32,
        };
    }

    /// Snapshot of the current freeze registers.
    pub fn freeze_state(&self) -> Freeze {
        self.freeze
    }

    // ---------------- environments ----------------

    pub fn allocate(&mut self, nperms: u16) {
        let pbase = self.perm.len() as u32;
        for i in 0..nperms {
            // permanent slots start as fresh heap variables only when first
            // written; initialize to self-contained dummy ints
            let _ = i;
            self.perm.push(Cell::int(0));
        }
        self.frames.push(Frame {
            ce: self.e,
            cp: self.cont,
            pbase,
            plen: nperms,
        });
        self.e = (self.frames.len() - 1) as u32;
    }

    pub fn deallocate(&mut self) {
        let f = self.frames[self.e as usize];
        self.cont = f.cp;
        self.e = f.ce;
        // frame storage is reclaimed on backtracking, not here (the SLG-WAM
        // cannot pop: the frame may be frozen by a suspended consumer)
    }

    #[inline]
    pub fn perm_slot(&self, y: u16) -> usize {
        let f = &self.frames[self.e as usize];
        debug_assert!(y < f.plen);
        f.pbase as usize + y as usize
    }

    #[inline]
    pub fn get_y(&self, y: u16) -> Cell {
        self.perm[self.perm_slot(y)]
    }

    #[inline]
    pub fn set_y(&mut self, y: u16, c: Cell) {
        let s = self.perm_slot(y);
        self.perm[s] = c;
    }

    // ---------------- canonical copy (heap <-> table space) ----------------

    /// Flattens the dereferenced terms rooted at `roots` into a canonical
    /// pre-order cell sequence. Unbound variables become `TVAR(k)` numbered
    /// by first occurrence; their heap addresses are appended to `var_addrs`
    /// in the same order (the substitution factor).
    pub fn canonicalize(&self, roots: &[Cell], var_addrs: &mut Vec<u32>) -> Box<[Cell]> {
        let mut out = Vec::with_capacity(roots.len() * 2);
        self.canonicalize_into(roots, var_addrs, &mut out);
        out.into_boxed_slice()
    }

    /// Allocation-reusing variant of [`Machine::canonicalize`]: flattens
    /// into `out` (cleared first). The SLG hot path canonicalizes every
    /// call and every derived answer; duplicates never allocate.
    pub fn canonicalize_into(&self, roots: &[Cell], var_addrs: &mut Vec<u32>, out: &mut Vec<Cell>) {
        out.clear();
        let mut stack: Vec<Cell> = roots.iter().rev().copied().collect();
        while let Some(c) = stack.pop() {
            let c = self.deref(c);
            match c.tag() {
                Tag::Ref => {
                    let a = c.addr() as u32;
                    let idx = match var_addrs.iter().position(|&v| v == a) {
                        Some(i) => i,
                        None => {
                            var_addrs.push(a);
                            var_addrs.len() - 1
                        }
                    };
                    out.push(Cell::tvar(idx));
                }
                Tag::Con | Tag::Int => out.push(c),
                Tag::Str => {
                    let pa = c.addr();
                    let f = self.heap[pa];
                    let (_, n) = f.functor();
                    out.push(f);
                    for i in (1..=n).rev() {
                        stack.push(self.heap[pa + i]);
                    }
                }
                Tag::Lis => {
                    let pa = c.addr();
                    out.push(Cell::fun(well_known::DOT, 2));
                    stack.push(self.heap[pa + 1]);
                    stack.push(self.heap[pa]);
                }
                Tag::Fun | Tag::TVar => unreachable!("bare {:?} on heap", c.tag()),
            }
        }
    }

    /// Rebuilds `count` terms from a canonical sequence onto the heap.
    /// `TVAR(k)` becomes a fresh heap variable shared across the whole
    /// sequence. Returns the root cells.
    pub fn decode_canon(&mut self, canon: &[Cell], count: usize) -> Vec<Cell> {
        let mut tvars: Vec<Option<Cell>> = Vec::new();
        let mut pos = 0usize;
        let mut roots = Vec::with_capacity(count);
        for _ in 0..count {
            let c = self.decode_one(canon, &mut pos, &mut tvars);
            roots.push(c);
        }
        debug_assert_eq!(pos, canon.len(), "canonical sequence fully consumed");
        roots
    }

    pub fn decode_one(
        &mut self,
        canon: &[Cell],
        pos: &mut usize,
        tvars: &mut Vec<Option<Cell>>,
    ) -> Cell {
        let c = canon[*pos];
        *pos += 1;
        match c.tag() {
            Tag::Con | Tag::Int => c,
            Tag::TVar => {
                let k = c.tvar_index();
                if tvars.len() <= k {
                    tvars.resize(k + 1, None);
                }
                match tvars[k] {
                    Some(v) => v,
                    None => {
                        let v = self.new_var();
                        tvars[k] = Some(v);
                        v
                    }
                }
            }
            Tag::Fun => {
                let (f, n) = c.functor();
                if f == well_known::DOT && n == 2 {
                    // build children first, then the contiguous pair
                    let h = self.decode_one(canon, pos, tvars);
                    let t = self.decode_one(canon, pos, tvars);
                    let base = self.heap.len();
                    self.heap.push(h);
                    self.heap.push(t);
                    Cell::lis(base)
                } else {
                    let mut kids = Vec::with_capacity(n);
                    for _ in 0..n {
                        kids.push(self.decode_one(canon, pos, tvars));
                    }
                    let base = self.heap.len();
                    self.heap.push(Cell::fun(f, n));
                    for k in kids {
                        self.heap.push(k);
                    }
                    Cell::str(base)
                }
            }
            _ => unreachable!("invalid canonical cell {c:?}"),
        }
    }

    /// Unifies one canonical subterm against `target` *without*
    /// materializing matched structure on the heap — the dynamic-clause
    /// fast path that makes asserted facts "execute at essentially the
    /// same speed" as compiled ones (paper §4.2). Structure is built only
    /// when the target is an unbound variable.
    pub fn unify_canon_one(
        &mut self,
        canon: &[Cell],
        pos: &mut usize,
        tvars: &mut Vec<Option<Cell>>,
        target: Cell,
    ) -> bool {
        let c = canon[*pos];
        match c.tag() {
            Tag::Con | Tag::Int => {
                *pos += 1;
                let d = self.deref(target);
                match d.tag() {
                    Tag::Ref => {
                        self.bind(d.addr(), c);
                        true
                    }
                    _ => d == c,
                }
            }
            Tag::TVar => {
                *pos += 1;
                let k = c.tvar_index();
                if tvars.len() <= k {
                    tvars.resize(k + 1, None);
                }
                match tvars[k] {
                    Some(v) => self.unify(v, target),
                    None => {
                        tvars[k] = Some(target);
                        true
                    }
                }
            }
            Tag::Fun => {
                let (f, n) = c.functor();
                let d = self.deref(target);
                match d.tag() {
                    Tag::Ref => {
                        // build the whole subterm and bind
                        let built = self.decode_one(canon, pos, tvars);
                        self.bind(d.addr(), built);
                        true
                    }
                    Tag::Str => {
                        let pa = d.addr();
                        if self.heap[pa] != c {
                            return false;
                        }
                        *pos += 1;
                        for i in 1..=n {
                            let child = self.heap[pa + i];
                            if !self.unify_canon_one(canon, pos, tvars, child) {
                                return false;
                            }
                        }
                        true
                    }
                    Tag::Lis if f == well_known::DOT && n == 2 => {
                        let pa = d.addr();
                        *pos += 1;
                        let h = self.heap[pa];
                        if !self.unify_canon_one(canon, pos, tvars, h) {
                            return false;
                        }
                        let t = self.heap[pa + 1];
                        self.unify_canon_one(canon, pos, tvars, t)
                    }
                    _ => false,
                }
            }
            _ => unreachable!("invalid canonical cell"),
        }
    }

    // ---------------- AST bridge ----------------

    /// Builds an AST term on the heap. `varmap[i]` caches the heap variable
    /// for AST variable `i`.
    pub fn term_to_heap(&mut self, t: &Term, varmap: &mut Vec<Option<Cell>>) -> Cell {
        match t {
            Term::Var(v) => {
                let v = *v as usize;
                if varmap.len() <= v {
                    varmap.resize(v + 1, None);
                }
                match varmap[v] {
                    Some(c) => c,
                    None => {
                        let c = self.new_var();
                        varmap[v] = Some(c);
                        c
                    }
                }
            }
            Term::Atom(s) => Cell::con(*s),
            Term::Int(i) => Cell::int(*i),
            Term::Compound(f, args) if *f == well_known::DOT && args.len() == 2 => {
                let h = self.term_to_heap(&args[0], varmap);
                let t = self.term_to_heap(&args[1], varmap);
                let base = self.heap.len();
                self.heap.push(h);
                self.heap.push(t);
                Cell::lis(base)
            }
            Term::Compound(f, args) => {
                let kids: Vec<Cell> = args.iter().map(|a| self.term_to_heap(a, varmap)).collect();
                let base = self.heap.len();
                self.heap.push(Cell::fun(*f, args.len()));
                for k in kids {
                    self.heap.push(k);
                }
                Cell::str(base)
            }
            Term::HiLog(..) => {
                unreachable!("HiLog terms are apply-encoded before reaching the machine")
            }
        }
    }

    /// Decodes a heap term to an AST term. Unbound variables are numbered
    /// via `var_out` (heap address → AST var id).
    pub fn heap_to_ast(&self, c: Cell, var_out: &mut Vec<u32>) -> Term {
        let c = self.deref(c);
        match c.tag() {
            Tag::Ref => {
                let a = c.addr() as u32;
                let id = match var_out.iter().position(|&v| v == a) {
                    Some(i) => i,
                    None => {
                        var_out.push(a);
                        var_out.len() - 1
                    }
                };
                Term::Var(id as u32)
            }
            Tag::Con => Term::Atom(c.sym()),
            Tag::Int => Term::Int(c.int_value()),
            Tag::Lis => {
                let pa = c.addr();
                Term::Compound(
                    well_known::DOT,
                    vec![
                        self.heap_to_ast(self.heap[pa], var_out),
                        self.heap_to_ast(self.heap[pa + 1], var_out),
                    ],
                )
            }
            Tag::Str => {
                let pa = c.addr();
                let (f, n) = self.heap[pa].functor();
                let args = (1..=n)
                    .map(|i| self.heap_to_ast(self.heap[pa + i], var_out))
                    .collect();
                Term::Compound(f, args)
            }
            Tag::Fun | Tag::TVar => unreachable!(),
        }
    }

    // ---------------- standard order & copy ----------------

    /// ISO standard order: Var < Int < Atom < Compound.
    pub fn compare(&self, a: Cell, b: Cell, syms: &SymbolTable) -> Ordering {
        let a = self.deref(a);
        let b = self.deref(b);
        fn rank(t: Tag) -> u8 {
            match t {
                Tag::Ref => 0,
                Tag::Int => 1,
                Tag::Con => 2,
                Tag::Lis | Tag::Str => 3,
                _ => 4,
            }
        }
        let (ra, rb) = (rank(a.tag()), rank(b.tag()));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match a.tag() {
            Tag::Ref => a.addr().cmp(&b.addr()),
            Tag::Int => a.int_value().cmp(&b.int_value()),
            Tag::Con => syms.name(a.sym()).cmp(syms.name(b.sym())),
            Tag::Lis | Tag::Str => {
                let (fa, aa) = self.functor_of(a);
                let (fb, ab) = self.functor_of(b);
                aa.cmp(&ab)
                    .then_with(|| syms.name(fa).cmp(syms.name(fb)))
                    .then_with(|| {
                        for i in 0..aa {
                            let o = self.compare(self.arg_of(a, i), self.arg_of(b, i), syms);
                            if o != Ordering::Equal {
                                return o;
                            }
                        }
                        Ordering::Equal
                    })
            }
            _ => Ordering::Equal,
        }
    }

    /// Functor symbol and arity of a compound (LIS counts as `'.'/2`).
    pub fn functor_of(&self, c: Cell) -> (Sym, usize) {
        match c.tag() {
            Tag::Lis => (well_known::DOT, 2),
            Tag::Str => self.heap[c.addr()].functor(),
            _ => unreachable!("functor_of on non-compound"),
        }
    }

    /// The `i`-th (0-based) argument of a compound.
    pub fn arg_of(&self, c: Cell, i: usize) -> Cell {
        match c.tag() {
            Tag::Lis => self.heap[c.addr() + i],
            Tag::Str => self.heap[c.addr() + 1 + i],
            _ => unreachable!("arg_of on non-compound"),
        }
    }

    /// Structurally copies a term with fresh variables (`copy_term/2`).
    pub fn copy_term(&mut self, c: Cell) -> Cell {
        let mut vars = Vec::new();
        let canon = self.canonicalize(&[c], &mut vars);
        self.decode_canon(&canon, 1)[0]
    }

    /// Builds a proper list on the heap from `items`.
    pub fn make_list(&mut self, items: &[Cell]) -> Cell {
        let mut tail = Cell::con(well_known::NIL);
        for &it in items.iter().rev() {
            let base = self.heap.len();
            self.heap.push(it);
            self.heap.push(tail);
            tail = Cell::lis(base);
        }
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn with_machine<R>(f: impl FnOnce(&mut Machine) -> R) -> R {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let mut tables = TableSpace::new();
        let mut m = Machine::new(&mut db, &mut tables);
        f(&mut m)
    }

    #[test]
    fn bind_and_deref() {
        with_machine(|m| {
            let v = m.new_var();
            assert_eq!(m.deref(v), v);
            m.bind(v.addr(), Cell::int(7));
            assert_eq!(m.deref(v), Cell::int(7));
        });
    }

    #[test]
    fn unify_structures() {
        with_machine(|m| {
            // f(X, 1) = f(a, Y)
            let f = Sym(100);
            let x = m.new_var();
            let base1 = m.heap.len();
            m.heap.push(Cell::fun(f, 2));
            m.heap.push(x);
            m.heap.push(Cell::int(1));
            let y = m.new_var();
            let base2 = m.heap.len();
            m.heap.push(Cell::fun(f, 2));
            m.heap.push(Cell::con(Sym(5)));
            m.heap.push(y);
            assert!(m.unify(Cell::str(base1), Cell::str(base2)));
            assert_eq!(m.deref(x), Cell::con(Sym(5)));
            assert_eq!(m.deref(y), Cell::int(1));
        });
    }

    #[test]
    fn unify_failure_distinct_functors() {
        with_machine(|m| {
            let base1 = m.heap.len();
            m.heap.push(Cell::fun(Sym(100), 1));
            m.heap.push(Cell::int(1));
            let base2 = m.heap.len();
            m.heap.push(Cell::fun(Sym(101), 1));
            m.heap.push(Cell::int(1));
            assert!(!m.unify(Cell::str(base1), Cell::str(base2)));
        });
    }

    #[test]
    fn unwind_restores_bindings() {
        with_machine(|m| {
            let v1 = m.new_var();
            let mark = m.tip;
            m.bind(v1.addr(), Cell::int(3));
            assert_eq!(m.deref(v1), Cell::int(3));
            m.unwind_to(mark);
            assert_eq!(m.deref(v1), v1);
        });
    }

    #[test]
    fn switch_environments_restores_other_branch() {
        with_machine(|m| {
            let v = m.new_var();
            let root = m.tip;
            // branch A: v = 1
            m.bind(v.addr(), Cell::int(1));
            let tip_a = m.tip;
            // back to root, branch B: v = 2
            m.unwind_to(root);
            m.bind(v.addr(), Cell::int(2));
            assert_eq!(m.deref(v), Cell::int(2));
            // switch to branch A's environment
            m.switch_environments(tip_a);
            assert_eq!(m.deref(v), Cell::int(1));
            // and back to B
            let tip_b_gone = m.tip; // tip is now A's
            assert_eq!(tip_b_gone, tip_a);
        });
    }

    #[test]
    fn canonicalize_numbers_variables_in_order() {
        with_machine(|m| {
            // f(X, g(Y, X))
            let x = m.new_var();
            let y = m.new_var();
            let g = Sym(101);
            let f = Sym(100);
            let gb = m.heap.len();
            m.heap.push(Cell::fun(g, 2));
            m.heap.push(y);
            m.heap.push(x);
            let fb = m.heap.len();
            m.heap.push(Cell::fun(f, 2));
            m.heap.push(x);
            m.heap.push(Cell::str(gb));
            let mut vars = Vec::new();
            let canon = m.canonicalize(&[Cell::str(fb)], &mut vars);
            assert_eq!(
                canon.as_ref(),
                &[
                    Cell::fun(f, 2),
                    Cell::tvar(0),
                    Cell::fun(g, 2),
                    Cell::tvar(1),
                    Cell::tvar(0),
                ]
            );
            assert_eq!(vars, vec![x.addr() as u32, y.addr() as u32]);
        });
    }

    #[test]
    fn canonical_roundtrip_through_decode() {
        with_machine(|m| {
            // build [1, a, X] and round-trip it
            let x = m.new_var();
            let items = [Cell::int(1), Cell::con(Sym(50)), x];
            let l = m.make_list(&items);
            let mut vars = Vec::new();
            let canon = m.canonicalize(&[l], &mut vars);
            let rebuilt = m.decode_canon(&canon, 1)[0];
            let mut vars2 = Vec::new();
            let canon2 = m.canonicalize(&[rebuilt], &mut vars2);
            assert_eq!(canon, canon2);
        });
    }

    #[test]
    fn variant_calls_share_canonical_form() {
        with_machine(|m| {
            // p(X, Y) and p(A, B) canonicalize identically
            let x = m.new_var();
            let y = m.new_var();
            let mut v1 = Vec::new();
            let c1 = m.canonicalize(&[x, y], &mut v1);
            let a = m.new_var();
            let b = m.new_var();
            let mut v2 = Vec::new();
            let c2 = m.canonicalize(&[a, b], &mut v2);
            assert_eq!(c1, c2);
            // but p(X, X) differs
            let w = m.new_var();
            let mut v3 = Vec::new();
            let c3 = m.canonicalize(&[w, w], &mut v3);
            assert_ne!(c1, c3);
        });
    }

    #[test]
    fn term_ast_roundtrip() {
        let mut syms = SymbolTable::new();
        let f = syms.intern("f");
        let a = syms.intern("a");
        let mut db = Program::new(&mut syms);
        let mut tables = TableSpace::new();
        let mut m = Machine::new(&mut db, &mut tables);
        let t = Term::Compound(
            f,
            vec![
                Term::Atom(a),
                Term::Var(0),
                Term::list(vec![Term::Int(1)], Term::nil()),
            ],
        );
        let mut varmap = Vec::new();
        let c = m.term_to_heap(&t, &mut varmap);
        let mut var_out = Vec::new();
        let back = m.heap_to_ast(c, &mut var_out);
        assert_eq!(back, t);
    }

    #[test]
    fn compare_standard_order() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let mut db = Program::new(&mut syms);
        let mut tables = TableSpace::new();
        let mut m = Machine::new(&mut db, &mut tables);
        let v = m.new_var();
        assert_eq!(m.compare(v, Cell::int(1), &syms), Ordering::Less);
        assert_eq!(m.compare(Cell::int(5), Cell::con(a), &syms), Ordering::Less);
        assert_eq!(
            m.compare(Cell::con(b), Cell::con(a), &syms),
            Ordering::Greater
        );
        let l = m.make_list(&[Cell::int(1)]);
        assert_eq!(m.compare(Cell::con(a), l, &syms), Ordering::Less);
    }

    #[test]
    fn copy_term_makes_fresh_variables() {
        with_machine(|m| {
            let x = m.new_var();
            let base = m.heap.len();
            m.heap.push(Cell::fun(Sym(100), 2));
            m.heap.push(x);
            m.heap.push(x);
            let copy = m.copy_term(Cell::str(base));
            // copy shares structure shape but not the variable
            let ca = m.arg_of(copy, 0);
            let cb = m.arg_of(copy, 1);
            assert_eq!(m.deref(ca), m.deref(cb));
            assert_ne!(m.deref(ca), m.deref(x));
        });
    }

    #[test]
    fn push_cp_and_restore() {
        with_machine(|m| {
            let v = m.new_var();
            m.x[0] = Cell::int(42);
            let cp = m.push_cp(1, Alt::Dead);
            m.x[0] = Cell::int(0);
            m.bind(v.addr(), Cell::int(9));
            let h_marker = m.heap.len();
            m.new_var();
            assert!(m.heap.len() > h_marker);
            m.restore_cp(cp);
            assert_eq!(m.x[0], Cell::int(42));
            assert_eq!(m.deref(v), v, "binding unwound");
            assert_eq!(m.heap.len(), h_marker, "heap truncated to CP mark");
        });
    }
}
