//! Shared read-only table store for the engine pool.
//!
//! Completed tables are immutable by construction (incremental
//! completion, paper §3.3): once an SCC completes, its answer arena never
//! changes. That makes a completed table the perfect artifact to share
//! across worker engines — a [`SharedFrame`] is a frozen snapshot of a
//! completed subgoal (canonical call, factored answer arena, spans) held
//! behind an `Arc`, so a table computed once by any worker serves warm
//! hits on every worker without recomputation and without copying cells.
//!
//! Consistency is epoch-based. The store keeps a generation counter that
//! every invalidation (assert/retract through the dependency graph,
//! `abolish_*`) bumps under the write lock, plus a log of `(epoch, pred)`
//! invalidation records. Each worker remembers the last epoch it
//! observed; before a query it replays the log suffix to invalidate its
//! *local* tables for the same predicates, and after a query it publishes
//! its freshly completed tables only if the epoch is still the one it
//! observed at query start. A worker that imported a shared frame
//! mid-query keeps serving from its local copy even if the store frame is
//! invalidated concurrently — the same call-time-view semantics local
//! invalidation has had since the cross-query cache landed. Budget
//! eviction removes frames *without* touching the epoch: an evicted frame
//! was valid data, so local copies may keep serving and in-flight
//! publishes need not be rejected (the cell accounting is already
//! serialized by the write lock).
//!
//! Safety of the sharing itself is structural: frames are never mutated
//! after publication, readers hold `Arc`s, and removal from the map only
//! drops the store's reference. A reader can observe a frame or not
//! observe it; there is no intermediate state to tear.
//!
//! Cold misses are coordinated, not just deduplicated after the fact. A
//! worker that misses both locally and in the store *claims* the
//! `(pred, call)` variant in an in-progress registry; concurrent workers
//! that miss on the same variant park on a condition variable instead of
//! recomputing the table N times, and import the frame the claimant
//! publishes. Claims are epoch-stamped — an invalidation voids every
//! older claim (the claimant's publish would be rejected anyway) and
//! wakes the waiters, one of which re-claims under the new epoch. The
//! wait is bounded ([`SharedTableStore::set_claim_wait_timeout`]): a
//! claimant that errors, diverges, or simply never publishes the variant
//! releases its claims at the end of its query, and a claimant that is
//! stuck (or whose thread died) is waited out, after which the waiter
//! computes the table itself — the pool can stall behind a claim for at
//! most the bounded wait, never deadlock.

use crate::cell::{Cell, Tag};
use crate::instr::PredId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// An immutable completed table: the publishable subset of a
/// `SubgoalFrame`, with the answer arena frozen behind an `Arc` so local
/// imports are zero-copy.
#[derive(Debug)]
pub struct SharedFrame {
    pub pred: PredId,
    /// canonical call-argument tuple (variant key)
    pub canon: Arc<[Cell]>,
    /// number of distinct variables in the call
    pub nvars: u32,
    /// whether `cells` holds factored bindings or full tuples
    pub factored: bool,
    /// non-variable cells in `canon` (full-size accounting)
    pub ground_cells: u32,
    /// occurrences of each distinct call variable in `canon`
    pub var_occ: Vec<u32>,
    /// the frozen answer arena
    pub cells: Arc<[Cell]>,
    /// `(offset, len)` of each answer in `cells`
    pub spans: Vec<(u32, u32)>,
    /// store epoch this frame was computed under
    pub epoch: u64,
    /// monotone hit stamp for least-recently-hit eviction
    last_hit: AtomicU64,
}

impl SharedFrame {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pred: PredId,
        canon: Arc<[Cell]>,
        nvars: u32,
        factored: bool,
        ground_cells: u32,
        var_occ: Vec<u32>,
        cells: Arc<[Cell]>,
        spans: Vec<(u32, u32)>,
        epoch: u64,
    ) -> SharedFrame {
        SharedFrame {
            pred,
            canon,
            nvars,
            factored,
            ground_cells,
            var_occ,
            cells,
            spans,
            epoch,
            last_hit: AtomicU64::new(0),
        }
    }

    /// Arena cells held (budget accounting unit).
    pub fn cells_len(&self) -> u64 {
        self.cells.len() as u64
    }
}

/// True iff every `Con`/`Fun` cell of `seq` names a symbol below `floor`.
/// Workers intern identically only for the program text they all
/// consulted; symbols created later (by per-worker queries) may mean
/// different names on different workers, so frames mentioning them must
/// stay worker-local.
pub fn cells_below_sym_floor(seq: &[Cell], floor: u32) -> bool {
    seq.iter().all(|c| match c.tag() {
        Tag::Con => c.sym().0 < floor,
        Tag::Fun => c.functor().0 .0 < floor,
        _ => true,
    })
}

struct Inner {
    /// current generation; bumped by every invalidation
    epoch: u64,
    /// pred → variant → frame
    frames: HashMap<PredId, HashMap<Arc<[Cell]>, Arc<SharedFrame>>>,
    /// invalidation records `(epoch-after-bump, pred)`, oldest first
    log: Vec<(u64, PredId)>,
    /// epochs at or below this are no longer covered by `log` (the log is
    /// compacted); a worker that far behind must invalidate everything
    log_floor: u64,
    /// answer cells currently held across all frames
    total_cells: u64,
    /// answer-store budget in cells; `None` = unbounded
    budget_cells: Option<u64>,
}

const LOG_CAP: usize = 4096;

/// Default bound on how long a worker parks behind another worker's
/// in-progress claim before falling back to computing the table itself.
/// Generous because the fallback duplicates a whole table computation;
/// bounded because a wedged claimant must never wedge the pool.
const DEFAULT_CLAIM_WAIT: Duration = Duration::from_secs(5);

/// Result of [`SharedTableStore::claim_or_wait`] — the cold-miss
/// coordination verdict for one `(pred, call)` variant.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// The caller owns the in-progress claim: it computes the table and
    /// must end the claim with a publish or a
    /// [`SharedTableStore::release_claims`] quoting the `epoch` stamp the
    /// claim was granted under. `parked` is true when the claim was
    /// acquired after waiting out a previous claimant that released (or
    /// was voided) without publishing.
    Claimed { parked: bool, epoch: u64 },
    /// The variant's completed frame is available — published before the
    /// call or by the claimant while the caller was parked.
    Published {
        frame: Arc<SharedFrame>,
        parked: bool,
    },
    /// The bounded wait expired without a frame; the caller computes the
    /// table locally *without* a claim (its publish attempt at end of
    /// query still dedups against the store as usual).
    TimedOut { parked: bool },
}

/// In-progress cold-subgoal claims: `pred → variant → epoch stamp`. A
/// claim stamped under a superseded epoch is void — the claimant's
/// publish would be rejected anyway, so waiters take the claim over (or
/// invalidation clears it wholesale) instead of parking behind it.
type ClaimMap = HashMap<PredId, HashMap<Arc<[Cell]>, u64>>;

/// The pool-wide store of completed tables. All methods are safe to call
/// from any thread; the store itself holds no interior `Rc`/`Cell` state.
///
/// Lock order: the claim mutex may be taken and *then* `inner` (the
/// claim/wait loop probes while holding the registry so a publish cannot
/// slip between its probe and its park). No path acquires the claim
/// mutex while holding `inner` — writers finish their `inner` critical
/// section first and touch the registry after.
pub struct SharedTableStore {
    inner: RwLock<Inner>,
    /// monotone probe counter feeding `SharedFrame::last_hit`
    hit_seq: AtomicU64,
    /// in-progress subgoal registry (cold-miss claim/wait coordination)
    claims: Mutex<ClaimMap>,
    /// parked cold-miss waiters; notified on publish, claim release,
    /// invalidation (claims voided), and budget eviction
    claims_cv: Condvar,
    /// bounded park duration in nanoseconds
    claim_wait_ns: AtomicU64,
}

impl Default for SharedTableStore {
    fn default() -> Self {
        SharedTableStore {
            inner: RwLock::new(Inner {
                epoch: 0,
                frames: HashMap::new(),
                log: Vec::new(),
                log_floor: 0,
                total_cells: 0,
                budget_cells: None,
            }),
            hit_seq: AtomicU64::new(1),
            claims: Mutex::new(HashMap::new()),
            claims_cv: Condvar::new(),
            claim_wait_ns: AtomicU64::new(DEFAULT_CLAIM_WAIT.as_nanos() as u64),
        }
    }
}

/// What [`SharedTableStore::sync_from`] tells a worker to invalidate
/// locally.
#[derive(Debug, PartialEq, Eq)]
pub enum SyncAction {
    /// Nothing changed since the worker's last sync.
    UpToDate,
    /// Invalidate the local tables of exactly these predicates.
    Preds(Vec<PredId>),
    /// The worker is too far behind the compacted log (or the store was
    /// cleared): invalidate every local table.
    All,
}

impl SharedTableStore {
    pub fn new() -> SharedTableStore {
        SharedTableStore::default()
    }

    /// Current generation counter.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("store lock").epoch
    }

    /// Looks up a completed table for this variant call and stamps it for
    /// the eviction policy. The returned `Arc` stays valid regardless of
    /// concurrent invalidation or eviction.
    pub fn probe(&self, pred: PredId, canon: &[Cell]) -> Option<Arc<SharedFrame>> {
        let inner = self.inner.read().expect("store lock");
        let f = inner.frames.get(&pred)?.get(canon)?;
        f.last_hit.store(
            self.hit_seq.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Some(f.clone())
    }

    /// Existence check without stamping the eviction clock (used by
    /// publishers to skip variants already in the store).
    pub fn contains(&self, pred: PredId, canon: &[Cell]) -> bool {
        let inner = self.inner.read().expect("store lock");
        inner
            .frames
            .get(&pred)
            .is_some_and(|m| m.contains_key(canon))
    }

    /// Publishes a completed table. The first publisher of a variant wins
    /// — concurrent workers that computed the same table keep their local
    /// copies, which is the safe form of deduplication. The publish is
    /// rejected (returns `false`) when the store's epoch moved past
    /// `frame.epoch`, i.e. an invalidation landed while the frame was
    /// being computed, or when the variant is already present. Either way
    /// the frame now exists in the store, so any in-progress claim on the
    /// variant is ended and parked waiters are woken to import it; on a
    /// stale-epoch rejection the claim was already voided by the
    /// invalidation that moved the epoch.
    pub fn publish(&self, frame: Arc<SharedFrame>) -> bool {
        let (pred, canon) = (frame.pred, frame.canon.clone());
        let published = {
            let mut inner = self.inner.write().expect("store lock");
            if inner.epoch != frame.epoch {
                return false;
            }
            let by_canon = inner.frames.entry(frame.pred).or_default();
            if by_canon.contains_key(frame.canon.as_ref()) {
                false
            } else {
                let cells = frame.cells_len();
                by_canon.insert(frame.canon.clone(), frame);
                inner.total_cells += cells;
                self.enforce_budget_locked(&mut inner);
                true
            }
        };
        // the variant is in the store (inserted now or already there):
        // end its claim regardless of who stamped it and wake waiters
        let mut removed = false;
        let mut claims = self.claims.lock().expect("claim lock");
        if let Some(by_canon) = claims.get_mut(&pred) {
            removed = by_canon.remove(canon.as_ref()).is_some();
            if by_canon.is_empty() {
                claims.remove(&pred);
            }
        }
        drop(claims);
        if removed {
            self.claims_cv.notify_all();
        }
        published
    }

    /// Claim/wait coordination for a shared-floor cold miss: either the
    /// frame is already published (import it), or the caller becomes the
    /// claimant for the variant (compute it once pool-wide), or another
    /// worker holds a live claim — then park until the claimant publishes
    /// (wake → import), releases or is voided (wake → take the claim
    /// over), or the bounded wait expires (compute locally; the pool can
    /// never wedge behind a stuck claimant). Claims are epoch-stamped:
    /// a claim from before a mid-query invalidation is void, because its
    /// publish would be rejected — waiters do not honor it.
    pub fn claim_or_wait(&self, pred: PredId, canon: &[Cell]) -> ClaimOutcome {
        let deadline =
            Instant::now() + Duration::from_nanos(self.claim_wait_ns.load(Ordering::Relaxed));
        let mut parked = false;
        let mut claims = self.claims.lock().expect("claim lock");
        loop {
            // probe while holding the registry (claims → inner nesting,
            // see the struct docs) so a publish cannot land unseen
            // between this check and the park below
            if let Some(frame) = self.probe(pred, canon) {
                return ClaimOutcome::Published { frame, parked };
            }
            let epoch = self.epoch();
            match claims.get(&pred).and_then(|m| m.get(canon)).copied() {
                None => {
                    claims
                        .entry(pred)
                        .or_default()
                        .insert(Arc::from(canon), epoch);
                    return ClaimOutcome::Claimed { parked, epoch };
                }
                // a claim stamped under a superseded epoch is void (its
                // publish would be rejected): take it over
                Some(stamp) if stamp != epoch => {
                    claims
                        .entry(pred)
                        .or_default()
                        .insert(Arc::from(canon), epoch);
                    return ClaimOutcome::Claimed { parked, epoch };
                }
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return ClaimOutcome::TimedOut { parked };
                    }
                    parked = true;
                    let (guard, _) = self
                        .claims_cv
                        .wait_timeout(claims, deadline - now)
                        .expect("claim lock");
                    claims = guard;
                }
            }
        }
    }

    /// Releases claims a worker still holds at the end of its query (a
    /// claimed variant it never published: the query failed, diverged,
    /// the frame stayed incomplete, or it flunked a publish guard). Each
    /// claim is removed only when its epoch stamp matches — a voided
    /// claim that another worker took over is theirs now. Waiters are
    /// woken so one of them claims the variant and computes it.
    pub fn release_claims(&self, held: &[(PredId, Arc<[Cell]>, u64)]) {
        if held.is_empty() {
            return;
        }
        let mut removed = false;
        let mut claims = self.claims.lock().expect("claim lock");
        for (pred, canon, stamp) in held {
            if let Some(by_canon) = claims.get_mut(pred) {
                if by_canon.get(canon.as_ref()) == Some(stamp) {
                    by_canon.remove(canon.as_ref());
                    if by_canon.is_empty() {
                        claims.remove(pred);
                    }
                    removed = true;
                }
            }
        }
        drop(claims);
        if removed {
            self.claims_cv.notify_all();
        }
    }

    /// Bounds how long [`SharedTableStore::claim_or_wait`] parks behind
    /// an in-progress claim before falling back to local computation.
    /// `Duration::ZERO` disables parking entirely (cold misses behind a
    /// claim compute immediately).
    pub fn set_claim_wait_timeout(&self, d: Duration) {
        self.claim_wait_ns
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    pub fn claim_wait_timeout(&self) -> Duration {
        Duration::from_nanos(self.claim_wait_ns.load(Ordering::Relaxed))
    }

    /// Number of live in-progress claims (tests / introspection).
    pub fn claims_len(&self) -> usize {
        let claims = self.claims.lock().expect("claim lock");
        claims.values().map(|m| m.len()).sum()
    }

    /// Removes every frame of the given predicates, bumps the epoch once,
    /// and records one log entry per predicate — whether or not any frame
    /// existed, because other workers may hold *local* tables for them.
    /// Returns `(previous_epoch, new_epoch)`: the caller may fast-forward
    /// its sync watermark to `new_epoch` only when `previous_epoch`
    /// matches the watermark, otherwise other workers logged entries in
    /// between that its next sync must still replay.
    pub fn invalidate_preds(&self, preds: &[PredId]) -> (u64, u64) {
        let (prev, epoch) = {
            let mut inner = self.inner.write().expect("store lock");
            let prev = inner.epoch;
            if preds.is_empty() {
                return (prev, prev);
            }
            inner.epoch += 1;
            let epoch = inner.epoch;
            for &p in preds {
                if let Some(by_canon) = inner.frames.remove(&p) {
                    let freed: u64 = by_canon.values().map(|f| f.cells_len()).sum();
                    inner.total_cells -= freed;
                }
                inner.log.push((epoch, p));
            }
            Self::compact_log(&mut inner);
            (prev, epoch)
        };
        self.void_stale_claims(epoch);
        (prev, epoch)
    }

    /// Drops every claim stamped before `epoch` and wakes parked waiters:
    /// those claimants' publishes will be rejected by the epoch guard, so
    /// waiting on them is waiting for nothing — a woken waiter re-claims
    /// under the new epoch and computes the post-invalidation table.
    fn void_stale_claims(&self, epoch: u64) {
        let mut voided = false;
        let mut claims = self.claims.lock().expect("claim lock");
        claims.retain(|_, by_canon| {
            by_canon.retain(|_, &mut stamp| {
                let keep = stamp >= epoch;
                voided |= !keep;
                keep
            });
            !by_canon.is_empty()
        });
        drop(claims);
        if voided {
            self.claims_cv.notify_all();
        }
    }

    /// Drops every frame and forces a full local invalidation on every
    /// worker at its next sync (the `abolish_all_tables/0` path).
    pub fn clear(&self) -> u64 {
        let epoch = {
            let mut inner = self.inner.write().expect("store lock");
            inner.epoch += 1;
            inner.frames.clear();
            inner.total_cells = 0;
            inner.log.clear();
            inner.log_floor = inner.epoch;
            inner.epoch
        };
        self.void_stale_claims(epoch);
        epoch
    }

    /// What a worker that last synced at `seen` must invalidate locally.
    /// Returns the current epoch alongside the action; the worker stores
    /// that epoch as its new watermark.
    pub fn sync_from(&self, seen: u64) -> (u64, SyncAction) {
        let inner = self.inner.read().expect("store lock");
        if inner.epoch == seen {
            return (seen, SyncAction::UpToDate);
        }
        if seen < inner.log_floor {
            return (inner.epoch, SyncAction::All);
        }
        let mut preds: Vec<PredId> = inner
            .log
            .iter()
            .filter(|&&(e, _)| e > seen)
            .map(|&(_, p)| p)
            .collect();
        preds.sort_unstable();
        preds.dedup();
        (inner.epoch, SyncAction::Preds(preds))
    }

    /// Sets the shared answer-store budget in cells (`None` = unbounded)
    /// and enforces it immediately.
    pub fn set_budget(&self, cells: Option<u64>) {
        {
            let mut inner = self.inner.write().expect("store lock");
            inner.budget_cells = cells;
            self.enforce_budget_locked(&mut inner);
        }
        // an eviction may have removed a frame a parked waiter was about
        // to be woken for; wake everyone so they re-probe (a waiter that
        // finds neither frame nor claim re-claims and computes)
        self.claims_cv.notify_all();
    }

    pub fn budget(&self) -> Option<u64> {
        self.inner.read().expect("store lock").budget_cells
    }

    /// Answer cells currently held across all shared frames.
    pub fn total_cells(&self) -> u64 {
        self.inner.read().expect("store lock").total_cells
    }

    /// Number of shared frames.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().expect("store lock");
        inner.frames.values().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts least-recently-hit frames until the store fits its budget.
    /// Workers that already imported an evicted frame keep serving from
    /// their local copies: the data is still valid — eviction is a memory
    /// decision, not a correctness event — so the epoch is deliberately
    /// not bumped. Bumping it would reject every in-flight publish
    /// pool-wide after each eviction; the accounting an eviction changes
    /// (`total_cells`) is already serialized by the write lock, and a
    /// publish that re-adds an evicted variant just triggers another
    /// round of eviction.
    fn enforce_budget_locked(&self, inner: &mut Inner) {
        let Some(budget) = inner.budget_cells else {
            return;
        };
        if inner.total_cells <= budget {
            return;
        }
        let mut candidates: Vec<(u64, PredId, Arc<[Cell]>, u64)> = inner
            .frames
            .iter()
            .flat_map(|(&p, by_canon)| {
                by_canon.values().map(move |f| {
                    (
                        f.last_hit.load(Ordering::Relaxed),
                        p,
                        f.canon.clone(),
                        f.cells_len(),
                    )
                })
            })
            .collect();
        candidates.sort_unstable_by_key(|c| (c.0, c.1));
        for (_, pred, canon, cells) in candidates {
            if inner.total_cells <= budget {
                break;
            }
            if let Some(by_canon) = inner.frames.get_mut(&pred) {
                if by_canon.remove(canon.as_ref()).is_some() {
                    inner.total_cells -= cells;
                }
            }
        }
    }

    fn compact_log(inner: &mut Inner) {
        if inner.log.len() > LOG_CAP {
            let drop = inner.log.len() - LOG_CAP;
            inner.log_floor = inner.log[drop - 1].0;
            inner.log.drain(..drop);
        }
    }
}

impl std::fmt::Debug for SharedTableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().expect("store lock");
        f.debug_struct("SharedTableStore")
            .field("epoch", &inner.epoch)
            .field(
                "frames",
                &inner.frames.values().map(|m| m.len()).sum::<usize>(),
            )
            .field("total_cells", &inner.total_cells)
            .field("budget_cells", &inner.budget_cells)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(pred: PredId, key: &[Cell], cells: &[Cell], epoch: u64) -> Arc<SharedFrame> {
        Arc::new(SharedFrame::new(
            pred,
            Arc::from(key),
            1,
            true,
            0,
            vec![1],
            Arc::from(cells),
            cells
                .iter()
                .enumerate()
                .map(|(i, _)| (i as u32, 1))
                .collect(),
            epoch,
        ))
    }

    #[test]
    fn publish_then_probe_roundtrip() {
        let s = SharedTableStore::new();
        let key = [Cell::tvar(0), Cell::int(1)];
        assert!(s.probe(3, &key).is_none());
        assert!(s.publish(frame(3, &key, &[Cell::int(7)], 0)));
        let f = s.probe(3, &key).expect("published frame found");
        assert_eq!(f.cells.as_ref(), &[Cell::int(7)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_cells(), 1);
    }

    #[test]
    fn first_publisher_wins() {
        let s = SharedTableStore::new();
        let key = [Cell::tvar(0)];
        assert!(s.publish(frame(0, &key, &[Cell::int(1)], 0)));
        assert!(!s.publish(frame(0, &key, &[Cell::int(2)], 0)), "duplicate");
        assert_eq!(s.probe(0, &key).unwrap().cells.as_ref(), &[Cell::int(1)]);
        assert_eq!(s.total_cells(), 1, "loser's cells not double-counted");
    }

    #[test]
    fn stale_epoch_publish_rejected() {
        let s = SharedTableStore::new();
        s.invalidate_preds(&[9]);
        assert_eq!(s.epoch(), 1);
        assert!(!s.publish(frame(0, &[Cell::tvar(0)], &[Cell::int(1)], 0)));
        assert!(s.publish(frame(0, &[Cell::tvar(0)], &[Cell::int(1)], 1)));
    }

    #[test]
    fn invalidate_removes_frames_and_logs_preds() {
        let s = SharedTableStore::new();
        assert!(s.publish(frame(3, &[Cell::tvar(0)], &[Cell::int(1)], 0)));
        assert!(s.publish(frame(4, &[Cell::tvar(0)], &[Cell::int(2)], 0)));
        let (prev, e) = s.invalidate_preds(&[3, 9]);
        assert_eq!((prev, e), (0, 1));
        assert!(s.probe(3, &[Cell::tvar(0)]).is_none());
        assert!(s.probe(4, &[Cell::tvar(0)]).is_some());
        assert_eq!(s.total_cells(), 1);
        // a worker that synced at epoch 0 learns both preds, including the
        // one that had no shared frame (it may hold local tables for it)
        let (epoch, action) = s.sync_from(0);
        assert_eq!(epoch, 1);
        assert_eq!(action, SyncAction::Preds(vec![3, 9]));
        // an up-to-date worker gets nothing
        assert_eq!(s.sync_from(1).1, SyncAction::UpToDate);
    }

    #[test]
    fn clear_forces_full_invalidation() {
        let s = SharedTableStore::new();
        assert!(s.publish(frame(3, &[Cell::tvar(0)], &[Cell::int(1)], 0)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.sync_from(0).1, SyncAction::All);
        assert_eq!(s.sync_from(s.epoch()).1, SyncAction::UpToDate);
    }

    #[test]
    fn budget_evicts_least_recently_hit_without_epoch_bump() {
        let s = SharedTableStore::new();
        let cells: Vec<Cell> = (0..4).map(Cell::int).collect();
        assert!(s.publish(frame(1, &[Cell::tvar(0)], &cells, 0)));
        assert!(s.publish(frame(2, &[Cell::tvar(0)], &cells, 0)));
        s.probe(2, &[Cell::tvar(0)]).unwrap(); // 2 is hot, 1 is cold
        let before = s.epoch();
        s.set_budget(Some(6));
        assert!(s.probe(1, &[Cell::tvar(0)]).is_none(), "cold frame evicted");
        assert!(s.probe(2, &[Cell::tvar(0)]).is_some());
        assert!(s.total_cells() <= 6);
        // eviction is a memory decision, not a correctness event: the
        // epoch and the log are untouched, so worker watermarks stay
        // valid and nothing resyncs
        assert_eq!(s.epoch(), before);
        assert_eq!(s.sync_from(before).1, SyncAction::UpToDate);
        // an in-flight publish computed before the eviction still lands
        assert!(s.publish(frame(3, &[Cell::tvar(0)], &[Cell::int(9)], before)));
    }

    #[test]
    fn sym_floor_guard() {
        let hi = xsb_syntax::Sym(50);
        let seq = [Cell::con(hi), Cell::int(1)];
        assert!(cells_below_sym_floor(&seq, 51));
        assert!(!cells_below_sym_floor(&seq, 50));
        assert!(cells_below_sym_floor(&[Cell::int(9), Cell::tvar(0)], 0));
        assert!(!cells_below_sym_floor(&[Cell::fun(hi, 2)], 10));
    }

    #[test]
    fn log_compaction_degrades_to_full_invalidation() {
        let s = SharedTableStore::new();
        for i in 0..(LOG_CAP as u32 + 10) {
            s.invalidate_preds(&[i]);
        }
        // a worker at epoch 0 is behind the compacted floor
        assert_eq!(s.sync_from(0).1, SyncAction::All);
        // a recent worker still gets a precise pred list
        let recent = s.epoch() - 2;
        match s.sync_from(recent).1 {
            SyncAction::Preds(p) => assert_eq!(p.len(), 2),
            other => panic!("expected precise sync, got {other:?}"),
        }
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTableStore>();
        assert_send_sync::<SharedFrame>();
    }

    #[test]
    fn first_claimant_wins_and_publish_wakes_the_waiter() {
        let s = Arc::new(SharedTableStore::new());
        let key = [Cell::tvar(0)];
        let ClaimOutcome::Claimed {
            parked: false,
            epoch: 0,
        } = s.claim_or_wait(3, &key)
        else {
            panic!("empty store: first caller claims without parking");
        };
        assert_eq!(s.claims_len(), 1);
        // a second worker parks on the claim and imports the published
        // frame the moment it lands
        let waiter = {
            let s = s.clone();
            std::thread::spawn(move || s.claim_or_wait(3, &[Cell::tvar(0)]))
        };
        // give the waiter time to park (not load-bearing: the claim/wait
        // loop is correct whether or not it parked before the publish)
        std::thread::sleep(Duration::from_millis(20));
        assert!(s.publish(frame(3, &key, &[Cell::int(7)], 0)));
        assert_eq!(s.claims_len(), 0, "publish ends the claim");
        match waiter.join().unwrap() {
            ClaimOutcome::Published { frame, .. } => {
                assert_eq!(frame.cells.as_ref(), &[Cell::int(7)]);
            }
            other => panic!("waiter should import the published frame, got {other:?}"),
        }
    }

    #[test]
    fn stuck_claimant_is_waited_out_bounded() {
        let s = SharedTableStore::new();
        s.set_claim_wait_timeout(Duration::from_millis(30));
        let key = [Cell::tvar(0)];
        assert!(matches!(
            s.claim_or_wait(3, &key),
            ClaimOutcome::Claimed { .. }
        ));
        // the claimant never publishes (wedged / thread died): a waiter
        // parks for the bounded duration, then falls back
        let t0 = Instant::now();
        match s.claim_or_wait(3, &key) {
            ClaimOutcome::TimedOut { parked } => assert!(parked),
            other => panic!("expected bounded-wait fallback, got {other:?}"),
        }
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(30), "{waited:?}");
        assert!(waited < DEFAULT_CLAIM_WAIT, "wait is bounded: {waited:?}");
        // the fallback's own publish heals the leaked claim
        assert!(s.publish(frame(3, &key, &[Cell::int(1)], 0)));
        assert_eq!(s.claims_len(), 0);
    }

    #[test]
    fn zero_timeout_disables_parking() {
        let s = SharedTableStore::new();
        s.set_claim_wait_timeout(Duration::ZERO);
        let key = [Cell::tvar(0)];
        assert!(matches!(
            s.claim_or_wait(3, &key),
            ClaimOutcome::Claimed { .. }
        ));
        assert!(matches!(
            s.claim_or_wait(3, &key),
            ClaimOutcome::TimedOut { parked: false }
        ));
    }

    #[test]
    fn released_claim_is_taken_over_by_a_waiter() {
        let s = Arc::new(SharedTableStore::new());
        let key = [Cell::tvar(0)];
        let ClaimOutcome::Claimed { .. } = s.claim_or_wait(3, &key) else {
            panic!("first claim");
        };
        let waiter = {
            let s = s.clone();
            std::thread::spawn(move || s.claim_or_wait(3, &[Cell::tvar(0)]))
        };
        std::thread::sleep(Duration::from_millis(20));
        // the claimant finishes its query without publishing the variant
        // (failed guard / divergence): the release hands the claim over
        s.release_claims(&[(3, Arc::from(&key[..]), 0)]);
        match waiter.join().unwrap() {
            ClaimOutcome::Claimed { .. } => {}
            other => panic!("waiter should take over the claim, got {other:?}"),
        }
        assert_eq!(s.claims_len(), 1, "the taken-over claim is live");
    }

    #[test]
    fn invalidation_voids_stale_claims() {
        let s = SharedTableStore::new();
        let key = [Cell::tvar(0)];
        assert!(matches!(
            s.claim_or_wait(3, &key),
            ClaimOutcome::Claimed { .. }
        ));
        s.invalidate_preds(&[9]); // epoch bump voids the epoch-0 claim
        assert_eq!(s.claims_len(), 0);
        // a new caller claims immediately under the new epoch...
        assert!(matches!(
            s.claim_or_wait(3, &key),
            ClaimOutcome::Claimed {
                parked: false,
                epoch: 1
            }
        ));
        // ...and the stale claimant's release does not clobber it
        s.release_claims(&[(3, Arc::from(&key[..]), 0)]);
        assert_eq!(s.claims_len(), 1);
        // nor does its stale-epoch publish (rejected before touching
        // the new claim)
        assert!(!s.publish(frame(3, &key, &[Cell::int(1)], 0)));
        assert_eq!(s.claims_len(), 1);
    }

    #[test]
    fn probe_beats_claim_when_frame_already_published() {
        let s = SharedTableStore::new();
        let key = [Cell::tvar(0)];
        assert!(s.publish(frame(3, &key, &[Cell::int(7)], 0)));
        match s.claim_or_wait(3, &key) {
            ClaimOutcome::Published { frame, parked } => {
                assert!(!parked);
                assert_eq!(frame.cells.as_ref(), &[Cell::int(7)]);
            }
            other => panic!("expected immediate import, got {other:?}"),
        }
    }
}
