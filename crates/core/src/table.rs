//! Table space (paper §3, §4.5).
//!
//! A separate memory area holding, per tabled subgoal: the canonicalized
//! call (the *variant* key), the answer list with a full-argument hash index
//! for duplicate elimination, the SLG bookkeeping for incremental completion
//! (depth-first number and `dir_link`), the suspended consumers, and any
//! negation suspensions waiting on the subgoal's completion.
//!
//! Subgoal lookup is a hash on the canonical call; answer lookup hashes all
//! arguments of the canonical answer — exactly the two table indexes §4.5
//! describes.

use crate::cell::Cell;
use crate::instr::{CodePtr, PredId};
use crate::machine::{Freeze, NONE};
use crate::table_trie::TermTrie;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use xsb_syntax::sym::SymbolTable;

/// How subgoal and answer tables are indexed. `Hash` is XSB v1.3's design
/// (§4.5: hash on the canonical call; hash on all answer arguments);
/// `Trie` is the paper's in-development trie indexing, where the index is
/// integrated with the storage (see [`crate::table_trie`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TableIndex {
    #[default]
    Hash,
    Trie,
}

pub type SubgoalId = u32;

/// Completion state of a tabled subgoal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubgoalState {
    Incomplete,
    Complete,
}

/// How the generator treats a newly derived answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenMode {
    /// batched scheduling: record and *proceed* (return the answer eagerly)
    Positive,
    /// called from `tnot`: record and fail (exhaustive search to completion)
    Negation,
    /// called from `e_tnot`: the first answer aborts the evaluation and
    /// frees the table if no one else uses it (paper §4.4)
    Existential,
}

/// One tabled subgoal.
#[derive(Debug)]
pub struct SubgoalFrame {
    pub pred: PredId,
    /// canonical call-argument tuple (variant key)
    pub canon: Rc<[Cell]>,
    /// number of distinct variables in the call (answer tuple width)
    pub nvars: u32,
    /// answers in derivation order (canonical tuples)
    pub answers: Vec<Rc<[Cell]>>,
    /// full-argument hash index for duplicate checking
    pub answer_set: HashSet<Rc<[Cell]>>,
    pub state: SubgoalState,
    pub mode: GenMode,
    /// generator's substitution factor: heap addresses of the call's
    /// distinct variables (valid only while the generator is live)
    pub subst: Vec<u32>,
    /// generator choice point index (machine-local)
    pub gen_cp: u32,
    /// SLG incremental-completion bookkeeping
    pub dfn: u32,
    pub dir_link: u32,
    /// next program clause to run (cursor into `clauses`)
    pub clause_cursor: u32,
    pub clauses: Rc<[CodePtr]>,
    /// consumer ids suspended on this subgoal
    pub consumers: Vec<u32>,
    /// negation/tfindall suspension ids waiting on completion
    pub negs: Vec<u32>,
    /// freeze registers at generator creation (restored at completion)
    pub saved_freeze: Freeze,
    /// position in the completion stack while incomplete
    pub compl_pos: u32,
    /// for `Existential` mode: the choice point to cut back to when the
    /// first answer arrives
    pub exist_cut_b: u32,
    /// true when the table was freed (`tcut` / existential negation /
    /// invalidation / eviction)
    pub deleted: bool,
    /// query-clock value when this table was created (see
    /// [`TableSpace::clock`]); `born < clock` means the table is being
    /// reused by a later query (a cross-query warm hit)
    pub born: u64,
    /// query-clock value of the most recent completed-table reuse; the
    /// eviction policy removes least-recently-hit tables first
    pub last_hit: u64,
    /// suspensions queued for scheduling after this (leader) subgoal's SCC
    /// completed; drained by the generator choice point's handler
    pub pending_negs: Vec<u32>,
    /// trie-integrated answer store (when [`TableIndex::Trie`] is active);
    /// `answer_set` stays empty in that mode
    pub answer_trie: Option<TermTrie>,
}

impl SubgoalFrame {
    pub fn has_answers(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// A suspended consumer of an incomplete table.
#[derive(Debug)]
pub struct Consumer {
    pub sub: SubgoalId,
    /// its choice point index
    pub cp: u32,
    /// the consumer call's substitution factor (heap addresses)
    pub subst: Vec<u32>,
    /// how many answers it has consumed
    pub cursor: u32,
    /// subgoal id of the leader currently scheduling this consumer
    /// (`NONE` when not scheduled)
    pub scheduled_by: u32,
    pub dead: bool,
}

/// What a completion-time suspension does when its subgoal completes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NegMode {
    /// `tnot`/`e_tnot`: resume (succeed) iff the completed table is empty
    Tnot,
    /// `tfindall/3`: resume unconditionally and build the answer list
    Tfindall { template: Cell, result: Cell },
}

/// A suspension waiting on subgoal completion (negation or tfindall).
#[derive(Debug)]
pub struct NegSusp {
    pub sub: SubgoalId,
    pub cp: u32,
    pub mode: NegMode,
    /// substitution factor of the suspended call (for tfindall decoding)
    pub subst: Vec<u32>,
    /// where execution continues if the suspension succeeds
    pub resume: crate::instr::CodePtr,
    pub done: bool,
}

/// The global table space. Completed tables persist across queries;
/// consumers, suspensions and the completion stack are per-query.
#[derive(Default, Debug)]
pub struct TableSpace {
    pub subgoals: Vec<SubgoalFrame>,
    lookup: HashMap<PredId, HashMap<Rc<[Cell]>, SubgoalId>>,
    /// per-predicate subgoal tries (when `index == Trie`); the vector maps
    /// trie entry ids to subgoal ids (refreshed when a freed table's
    /// variant is re-created)
    subgoal_tries: HashMap<PredId, (TermTrie, Vec<SubgoalId>)>,
    pub consumers: Vec<Consumer>,
    pub negs: Vec<NegSusp>,
    /// incomplete generators, oldest first (DFN order)
    pub completion_stack: Vec<SubgoalId>,
    dfn_counter: u32,
    pub index: TableIndex,
    /// frames invalidated while still incomplete: the running query keeps
    /// its call-time view (logical-update semantics); the frames are freed
    /// at [`TableSpace::end_query`] so the *next* query recomputes them
    pending_invalidation: Vec<SubgoalId>,
    /// answer-store budget in cells; `None` = unbounded
    budget_cells: Option<u64>,
    /// query clock: bumped once per `end_query`, stamped into frames at
    /// creation (`born`) and on completed-table reuse (`last_hit`)
    clock: u64,
}

impl TableSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// A table space using the given index representation.
    pub fn with_index(index: TableIndex) -> Self {
        TableSpace {
            index,
            ..Self::default()
        }
    }

    /// Finds an existing (non-deleted) table for this variant call.
    /// (`Rc<[Cell]>: Borrow<[Cell]>`, so no allocation per probe.)
    pub fn find(&self, pred: PredId, canon: &[Cell]) -> Option<SubgoalId> {
        match self.index {
            TableIndex::Hash => self
                .lookup
                .get(&pred)
                .and_then(|m| m.get(canon))
                .copied()
                .filter(|&id| !self.subgoals[id as usize].deleted),
            TableIndex::Trie => self
                .subgoal_tries
                .get(&pred)
                .and_then(|(t, ids)| t.find(canon).map(|tid| ids[tid as usize]))
                .filter(|&id| !self.subgoals[id as usize].deleted),
        }
    }

    /// Creates a new subgoal table (generator side) and pushes it on the
    /// completion stack.
    #[allow(clippy::too_many_arguments)]
    pub fn new_subgoal(
        &mut self,
        pred: PredId,
        canon: Rc<[Cell]>,
        subst: Vec<u32>,
        clauses: Rc<[CodePtr]>,
        mode: GenMode,
        saved_freeze: Freeze,
        exist_cut_b: u32,
    ) -> SubgoalId {
        let id = self.subgoals.len() as SubgoalId;
        self.dfn_counter += 1;
        let dfn = self.dfn_counter;
        let compl_pos = self.completion_stack.len() as u32;
        self.subgoals.push(SubgoalFrame {
            pred,
            canon: canon.clone(),
            nvars: subst.len() as u32,
            answers: Vec::new(),
            answer_set: HashSet::new(),
            state: SubgoalState::Incomplete,
            mode,
            subst,
            gen_cp: NONE,
            dfn,
            dir_link: dfn,
            clause_cursor: 0,
            clauses,
            consumers: Vec::new(),
            negs: Vec::new(),
            saved_freeze,
            compl_pos,
            exist_cut_b,
            deleted: false,
            born: self.clock,
            last_hit: self.clock,
            pending_negs: Vec::new(),
            answer_trie: matches!(self.index, TableIndex::Trie).then(TermTrie::new),
        });
        match self.index {
            TableIndex::Hash => {
                self.lookup.entry(pred).or_default().insert(canon, id);
            }
            TableIndex::Trie => {
                let (trie, ids) = self
                    .subgoal_tries
                    .entry(pred)
                    .or_insert_with(|| (TermTrie::new(), Vec::new()));
                let (tid, fresh) = trie.insert(&canon);
                if fresh {
                    debug_assert_eq!(tid as usize, ids.len());
                    ids.push(id);
                } else {
                    // a freed table's variant re-created: remap the entry
                    ids[tid as usize] = id;
                }
            }
        }
        self.completion_stack.push(id);
        id
    }

    /// Records an answer; returns `true` if it is new.
    pub fn add_answer(&mut self, sub: SubgoalId, canon: Rc<[Cell]>) -> bool {
        let f = &mut self.subgoals[sub as usize];
        if let Some(trie) = &mut f.answer_trie {
            let (_, fresh) = trie.insert(&canon);
            if fresh {
                f.answers.push(canon);
            }
            fresh
        } else if f.answer_set.insert(canon.clone()) {
            f.answers.push(canon);
            true
        } else {
            false
        }
    }

    /// Duplicate check without allocating (the common case on recursive
    /// workloads; paper §4.5's full-argument answer index).
    pub fn has_answer(&self, sub: SubgoalId, canon: &[Cell]) -> bool {
        let f = &self.subgoals[sub as usize];
        match &f.answer_trie {
            Some(trie) => trie.find(canon).is_some(),
            None => f.answer_set.contains(canon),
        }
    }

    pub fn frame(&self, sub: SubgoalId) -> &SubgoalFrame {
        &self.subgoals[sub as usize]
    }

    pub fn frame_mut(&mut self, sub: SubgoalId) -> &mut SubgoalFrame {
        &mut self.subgoals[sub as usize]
    }

    /// The youngest incomplete generator (top of the completion stack) —
    /// the frame whose `dir_link` absorbs new dependencies.
    pub fn youngest(&self) -> Option<SubgoalId> {
        self.completion_stack.last().copied()
    }

    /// Registers a positive dependency of the current computation on `sub`
    /// (a consumer call or negation suspension on an incomplete table).
    pub fn note_dependency(&mut self, on: SubgoalId) {
        let dfn = self.subgoals[on as usize].dfn;
        if let Some(top) = self.youngest() {
            let f = &mut self.subgoals[top as usize];
            if dfn < f.dir_link {
                f.dir_link = dfn;
            }
        }
    }

    /// True iff `sub` is the leader of its SCC (its region can complete).
    pub fn is_leader(&self, sub: SubgoalId) -> bool {
        let f = &self.subgoals[sub as usize];
        f.dir_link == f.dfn
    }

    /// Propagates a non-leader's `dir_link` to the generator below it on
    /// the completion stack.
    pub fn propagate_dir_link(&mut self, sub: SubgoalId) {
        let f = &self.subgoals[sub as usize];
        let pos = f.compl_pos as usize;
        let dl = f.dir_link;
        if pos > 0 {
            let below = self.completion_stack[pos - 1];
            let g = &mut self.subgoals[below as usize];
            if dl < g.dir_link {
                g.dir_link = dl;
            }
        }
    }

    /// Subgoals of the SCC led by `leader`: the completion-stack segment
    /// from the leader to the top.
    pub fn scc_members(&self, leader: SubgoalId) -> Vec<SubgoalId> {
        let pos = self.subgoals[leader as usize].compl_pos as usize;
        self.completion_stack[pos..].to_vec()
    }

    /// Marks the SCC led by `leader` complete, pops it from the completion
    /// stack, and returns its members.
    pub fn complete_scc(&mut self, leader: SubgoalId) -> Vec<SubgoalId> {
        let members = self.scc_members(leader);
        for &m in &members {
            let f = &mut self.subgoals[m as usize];
            f.state = SubgoalState::Complete;
            f.subst.clear();
            // gen_cp stays: the generator choice point schedules this
            // frame's suspensions post-completion; end_query clears it
        }
        let pos = self.subgoals[leader as usize].compl_pos as usize;
        self.completion_stack.truncate(pos);
        members
    }

    /// Deletes the completion-stack segment from `sub` upward — the
    /// `tcut`/existential-negation table-freeing operation (paper §4.4).
    /// Completed inner tables are kept; incomplete ones are removed so
    /// later calls recompute them.
    pub fn delete_from(&mut self, sub: SubgoalId) -> Vec<SubgoalId> {
        let pos = self.subgoals[sub as usize].compl_pos as usize;
        let removed: Vec<SubgoalId> = self.completion_stack[pos..].to_vec();
        for &m in &removed {
            let f = &mut self.subgoals[m as usize];
            if f.state == SubgoalState::Incomplete {
                f.deleted = true;
                if let Some(m) = self.lookup.get_mut(&f.pred) {
                    m.remove(&f.canon);
                }
                // trie mode: `find` filters on `deleted`, and re-creation
                // remaps the trie entry, so no trie surgery is needed
            }
        }
        self.completion_stack.truncate(pos);
        removed
    }

    /// True when `sub` has users other than the suspension anchored at
    /// choice point `excluded_cp` — the existential-negation/`tcut`
    /// table-freeing safety check (paper §4.4: "are there other users of
    /// the table?"). The emulator may only free the table when no live
    /// consumer and no *other* pending suspension still depends on it.
    pub fn has_other_users(&self, sub: SubgoalId, excluded_cp: u32) -> bool {
        let f = &self.subgoals[sub as usize];
        f.consumers
            .iter()
            .any(|&c| !self.consumers[c as usize].dead)
            || f.negs.iter().any(|&n| {
                let ns = &self.negs[n as usize];
                !ns.done && ns.cp != excluded_cp
            })
    }

    /// Hides a frame from future calls: marks it deleted and unlinks it
    /// from the hash subgoal index. The answer store is NOT released —
    /// in-flight choice points (`Alt::CompletedAnswers`) may still be
    /// iterating it. Trie-mode call entries need no surgery: `find`
    /// filters on `deleted` and re-creation remaps the trie entry.
    fn unlink_frame(&mut self, id: SubgoalId) {
        let (pred, canon) = {
            let f = &mut self.subgoals[id as usize];
            f.deleted = true;
            (f.pred, f.canon.clone())
        };
        // the lookup entry may already point at a younger frame for the
        // same variant; only remove it when it is really ours
        if let Some(m) = self.lookup.get_mut(&pred) {
            if m.get(canon.as_ref()).copied() == Some(id) {
                m.remove(canon.as_ref());
            }
        }
    }

    /// Releases a frame's answer store so [`TableSpace::answer_store_cells`]
    /// shrinks. Only safe when no choice point can still reach the answers.
    fn free_frame_memory(&mut self, id: SubgoalId) {
        let f = &mut self.subgoals[id as usize];
        f.answers = Vec::new();
        f.answer_set = HashSet::new();
        f.answer_trie = None;
        f.subst = Vec::new();
    }

    /// Fully frees one frame: unlink + release memory. Only safe between
    /// queries (eviction, end-of-query sweeps).
    fn kill_frame(&mut self, id: SubgoalId) {
        self.unlink_frame(id);
        self.free_frame_memory(id);
    }

    /// Invalidates `id`. Completed frames are hidden from new calls right
    /// away (a re-call recomputes) but keep their answer store until
    /// [`TableSpace::end_query`], since the running query may hold choice
    /// points into it. Incomplete frames stay fully visible — the running
    /// query keeps its call-time view — and die at `end_query`. Returns
    /// `true` if the frame was newly invalidated.
    fn invalidate_frame(&mut self, id: SubgoalId) -> bool {
        let f = &self.subgoals[id as usize];
        if f.deleted || self.pending_invalidation.contains(&id) {
            return false;
        }
        if f.state == SubgoalState::Complete {
            self.unlink_frame(id);
        }
        self.pending_invalidation.push(id);
        true
    }

    /// Invalidates every table of predicate `pred` (because a dynamic
    /// predicate it depends on changed). Completed tables are hidden
    /// immediately (new calls recompute); incomplete ones keep serving the
    /// running query; both release memory at `end_query`. Returns the
    /// number of frames invalidated.
    pub fn invalidate_pred(&mut self, pred: PredId) -> usize {
        let mut n = 0;
        for id in 0..self.subgoals.len() as SubgoalId {
            if self.subgoals[id as usize].pred == pred && self.invalidate_frame(id) {
                n += 1;
            }
        }
        n
    }

    /// Selectively abolishes every table of predicate `pred` (the
    /// `abolish_table_pred/1` builtin). Beyond [`TableSpace::invalidate_pred`],
    /// this also drops the predicate's whole subgoal trie once no live
    /// frame remains, so trie mode holds no dangling entries that could
    /// outlive the deleted frames.
    pub fn abolish_pred(&mut self, pred: PredId) -> usize {
        let n = self.invalidate_pred(pred);
        let any_live = self.subgoals.iter().any(|f| f.pred == pred && !f.deleted);
        if !any_live {
            self.subgoal_tries.remove(&pred);
        }
        n
    }

    /// Abolishes the single table for one variant call (the
    /// `abolish_table_call/1` builtin). Returns `true` if such a table
    /// existed.
    pub fn abolish_call(&mut self, pred: PredId, canon: &[Cell]) -> bool {
        match self.find(pred, canon) {
            Some(id) => self.invalidate_frame(id),
            None => false,
        }
    }

    /// Records a completed-table reuse for the LRU eviction policy.
    pub fn touch(&mut self, sub: SubgoalId) {
        self.subgoals[sub as usize].last_hit = self.clock;
    }

    /// Current query-clock value (bumped once per [`TableSpace::end_query`]).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Sets the answer-store budget in cells (`None` = unbounded).
    /// Enforced between queries by [`TableSpace::enforce_budget`].
    pub fn set_budget(&mut self, cells: Option<u64>) {
        self.budget_cells = cells;
    }

    pub fn budget(&self) -> Option<u64> {
        self.budget_cells
    }

    /// Answer-store cells held by one frame.
    fn frame_cells(f: &SubgoalFrame) -> u64 {
        match &f.answer_trie {
            Some(t) => t.stored_cells(),
            None => f.answers.iter().map(|a| a.len() as u64).sum(),
        }
    }

    /// Evicts completed tables, least-recently-hit first (ties broken by
    /// age, oldest first), until the answer store fits the budget. Returns
    /// the evicted subgoal ids so the caller can record metrics.
    pub fn enforce_budget(&mut self) -> Vec<SubgoalId> {
        let Some(budget) = self.budget_cells else {
            return Vec::new();
        };
        let mut total = self.answer_store_cells();
        if total <= budget {
            return Vec::new();
        }
        let mut candidates: Vec<(u64, SubgoalId, u64)> = self
            .subgoals
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.deleted && f.state == SubgoalState::Complete)
            .map(|(id, f)| (f.last_hit, id as SubgoalId, Self::frame_cells(f)))
            .collect();
        candidates.sort_unstable();
        let mut evicted = Vec::new();
        for (_, id, cells) in candidates {
            if total <= budget {
                break;
            }
            self.kill_frame(id);
            total = total.saturating_sub(cells);
            evicted.push(id);
        }
        evicted
    }

    /// Clears per-query state: consumers, suspensions, completion stack,
    /// and any tables left incomplete (e.g. the user stopped after the
    /// first solution). Tables invalidated mid-query while incomplete are
    /// freed here, and the query clock advances so the next query's
    /// completed-table reuses count as cross-query hits.
    pub fn end_query(&mut self) {
        self.consumers.clear();
        self.negs.clear();
        self.completion_stack.clear();
        for f in &mut self.subgoals {
            if f.state == SubgoalState::Incomplete && !f.deleted {
                f.deleted = true;
                if let Some(m) = self.lookup.get_mut(&f.pred) {
                    m.remove(&f.canon);
                }
            }
            f.subst.clear();
            f.consumers.clear();
            f.negs.clear();
            f.gen_cp = NONE;
        }
        let pending = std::mem::take(&mut self.pending_invalidation);
        for id in pending {
            self.kill_frame(id);
        }
        self.clock += 1;
    }

    /// Removes every table (the `abolish_all_tables/0` builtin).
    pub fn abolish_all(&mut self) {
        self.subgoals.clear();
        self.lookup.clear();
        self.subgoal_tries.clear();
        self.consumers.clear();
        self.negs.clear();
        self.completion_stack.clear();
        self.dfn_counter = 0;
        self.pending_invalidation.clear();
    }

    /// Total cells held by the answer stores — tries share prefixes, so in
    /// trie mode this is at most (and usually below) the flat total.
    pub fn answer_store_cells(&self) -> u64 {
        self.subgoals
            .iter()
            .map(|f| match &f.answer_trie {
                Some(t) => t.stored_cells(),
                None => f.answers.iter().map(|a| a.len() as u64).sum(),
            })
            .sum()
    }

    /// Number of live (non-deleted) tables.
    pub fn live_tables(&self) -> usize {
        self.subgoals.iter().filter(|f| !f.deleted).count()
    }
}

/// Renders one canonical term from the flattened pre-order cell sequence
/// starting at `pos`; returns the position after it. Canonical cells are
/// only `Con`/`Int`/`TVar`/`Fun` (lists appear as `'.'/2`).
fn format_canon_at(canon: &[Cell], pos: usize, syms: &SymbolTable, out: &mut String) -> usize {
    use crate::cell::Tag;
    let Some(&c) = canon.get(pos) else {
        out.push('?');
        return pos + 1;
    };
    match c.tag() {
        Tag::Con => {
            out.push_str(syms.name(c.sym()));
            pos + 1
        }
        Tag::Int => {
            out.push_str(&c.int_value().to_string());
            pos + 1
        }
        Tag::TVar => {
            out.push('_');
            out.push_str(&c.tvar_index().to_string());
            pos + 1
        }
        Tag::Fun => {
            let (f, arity) = c.functor();
            out.push_str(syms.name(f));
            out.push('(');
            let mut p = pos + 1;
            for i in 0..arity {
                if i > 0 {
                    out.push(',');
                }
                p = format_canon_at(canon, p, syms, out);
            }
            out.push(')');
            p
        }
        // Ref/Str/Lis never occur in canonical form
        _ => {
            out.push('?');
            pos + 1
        }
    }
}

/// Renders a canonical argument tuple as `(a1,...,an)` (or `` for arity 0).
pub fn format_canon(canon: &[Cell], syms: &SymbolTable) -> String {
    let mut out = String::new();
    let mut pos = 0;
    let mut first = true;
    while pos < canon.len() {
        out.push(if first { '(' } else { ',' });
        first = false;
        pos = format_canon_at(canon, pos, syms, &mut out);
    }
    if !first {
        out.push(')');
    }
    out
}

/// One line per live subgoal table: predicate, canonical call, answer
/// count, completion state. The body of the `tables/0` builtin.
pub fn table_listing(
    tables: &TableSpace,
    db: &crate::program::Program,
    syms: &SymbolTable,
) -> String {
    let mut out = String::new();
    for f in tables.subgoals.iter().filter(|f| !f.deleted) {
        let pred = db.pred(f.pred);
        let state = match f.state {
            SubgoalState::Complete => "complete",
            SubgoalState::Incomplete => "incomplete",
        };
        out.push_str(&format!(
            "{}/{}{}: {} answers, {}\n",
            syms.name(pred.name),
            pred.arity,
            format_canon(&f.canon, syms),
            f.answers.len(),
            state,
        ));
    }
    if out.is_empty() {
        out.push_str("no tables\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(cells: &[Cell]) -> Rc<[Cell]> {
        Rc::from(cells)
    }

    fn mk(ts: &mut TableSpace, pred: PredId, key: &[Cell]) -> SubgoalId {
        ts.new_subgoal(
            pred,
            canon(key),
            vec![],
            Rc::from(&[][..]),
            GenMode::Positive,
            Freeze::default(),
            NONE,
        )
    }

    #[test]
    fn subgoal_variant_lookup() {
        let mut ts = TableSpace::new();
        let key = [Cell::tvar(0), Cell::int(1)];
        let id = mk(&mut ts, 3, &key);
        assert_eq!(ts.find(3, &key), Some(id));
        assert_eq!(ts.find(4, &key), None);
        assert_eq!(ts.find(3, &[Cell::int(1), Cell::tvar(0)]), None);
    }

    #[test]
    fn answer_dedup() {
        let mut ts = TableSpace::new();
        let id = mk(&mut ts, 0, &[Cell::tvar(0)]);
        assert!(ts.add_answer(id, canon(&[Cell::int(1)])));
        assert!(ts.add_answer(id, canon(&[Cell::int(2)])));
        assert!(!ts.add_answer(id, canon(&[Cell::int(1)])), "duplicate");
        assert_eq!(ts.frame(id).answers.len(), 2);
    }

    #[test]
    fn dfn_and_leader_detection() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        assert!(ts.is_leader(a));
        assert!(ts.is_leader(b));
        // b consumes a → b's SCC merges downward
        // youngest is b; note dependency on a
        ts.note_dependency(a);
        assert!(!ts.is_leader(b));
        ts.propagate_dir_link(b);
        assert!(ts.is_leader(a), "a still its own leader");
        assert_eq!(ts.scc_members(a), vec![a, b]);
    }

    #[test]
    fn completion_marks_and_pops() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        ts.note_dependency(a);
        let done = ts.complete_scc(a);
        assert_eq!(done, vec![a, b]);
        assert_eq!(ts.frame(a).state, SubgoalState::Complete);
        assert_eq!(ts.frame(b).state, SubgoalState::Complete);
        assert!(ts.completion_stack.is_empty());
    }

    #[test]
    fn delete_from_removes_incomplete_only() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        // complete b first (inner SCC)
        ts.complete_scc(b);
        let removed = ts.delete_from(a);
        assert_eq!(removed, vec![a]);
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted, "completed table survives tcut");
        assert_eq!(ts.find(0, &[Cell::int(2)]), Some(b));
        assert_eq!(ts.find(0, &[Cell::int(1)]), None);
    }

    #[test]
    fn end_query_purges_incomplete() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        ts.complete_scc(b);
        ts.end_query();
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted);
        assert_eq!(ts.live_tables(), 1);
    }

    #[test]
    fn invalidate_pred_frees_completed_and_defers_incomplete() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 7, &[Cell::int(1)]);
        ts.add_answer(a, canon(&[Cell::int(9)]));
        ts.complete_scc(a);
        let b = mk(&mut ts, 7, &[Cell::int(2)]); // still incomplete
        let other = mk(&mut ts, 8, &[Cell::int(1)]);
        ts.complete_scc(other);
        assert_eq!(ts.invalidate_pred(7), 2);
        assert!(ts.frame(a).deleted, "completed table hidden immediately");
        assert!(
            !ts.frame(a).answers.is_empty(),
            "answer store kept for in-flight choice points until end_query"
        );
        assert!(
            !ts.frame(b).deleted,
            "incomplete table survives until end_query"
        );
        assert!(!ts.frame(other).deleted, "independent predicate untouched");
        assert_eq!(ts.find(7, &[Cell::int(1)]), None);
        ts.end_query();
        assert!(ts.frame(b).deleted, "deferred invalidation lands");
        assert_eq!(ts.frame(a).answers.len(), 0, "answer store released");
        // double invalidation is a no-op
        assert_eq!(ts.invalidate_pred(7), 0);
    }

    #[test]
    fn abolish_pred_drops_trie_entries() {
        let mut ts = TableSpace::with_index(TableIndex::Trie);
        let a = mk(&mut ts, 3, &[Cell::int(1)]);
        let _b = mk(&mut ts, 3, &[Cell::int(2)]);
        ts.complete_scc(a); // completes the whole stack segment: a and b
        assert_eq!(ts.abolish_pred(3), 2);
        assert!(!ts.subgoal_tries.contains_key(&3), "subgoal trie dropped");
        assert_eq!(ts.find(3, &[Cell::int(1)]), None);
        // re-creating the variant builds a fresh frame, not a resurrection
        let c = mk(&mut ts, 3, &[Cell::int(1)]);
        assert_ne!(c, a);
        assert_eq!(ts.find(3, &[Cell::int(1)]), Some(c));
    }

    #[test]
    fn abolish_call_is_per_variant() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 3, &[Cell::int(1)]);
        let b = mk(&mut ts, 3, &[Cell::int(2)]);
        ts.complete_scc(a); // completes the whole stack segment: a and b
        assert!(ts.abolish_call(3, &[Cell::int(1)]));
        assert!(!ts.abolish_call(3, &[Cell::int(1)]), "already gone");
        assert_eq!(ts.find(3, &[Cell::int(1)]), None);
        assert_eq!(ts.find(3, &[Cell::int(2)]), Some(b));
    }

    #[test]
    fn budget_evicts_least_recently_hit_first() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        for i in 0..4 {
            ts.add_answer(a, canon(&[Cell::int(i)]));
        }
        ts.complete_scc(a);
        ts.end_query();
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        for i in 0..4 {
            ts.add_answer(b, canon(&[Cell::int(i)]));
        }
        ts.complete_scc(b);
        ts.touch(b); // b hit in the current query epoch; a never re-hit
        ts.end_query();
        assert_eq!(ts.answer_store_cells(), 8);
        ts.set_budget(Some(6));
        let evicted = ts.enforce_budget();
        assert_eq!(evicted, vec![a], "least-recently-hit table goes first");
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted);
        assert!(ts.answer_store_cells() <= 6);
        // already under budget: nothing more to do
        assert!(ts.enforce_budget().is_empty());
    }

    #[test]
    fn clock_advances_per_query_and_marks_cross_query_reuse() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        ts.complete_scc(a);
        assert_eq!(ts.frame(a).born, ts.clock(), "same-query: born == clock");
        ts.end_query();
        assert!(
            ts.frame(a).born < ts.clock(),
            "next query sees an older table"
        );
    }
}
