//! Table space (paper §3, §4.5).
//!
//! A separate memory area holding, per tabled subgoal: the canonicalized
//! call (the *variant* key), the answer store with a hash index for
//! duplicate elimination, the SLG bookkeeping for incremental completion
//! (depth-first number and `dir_link`), the suspended consumers, and any
//! negation suspensions waiting on the subgoal's completion.
//!
//! Answers are **substitution factored** (§4.5's promised integration of
//! indexing with answer storage, realized in Swift & Warren's follow-up
//! system): an answer is stored as the canonical bindings of the call's
//! distinct free variables only, never as the full argument tuple — the
//! ground skeleton of the call lives once in the frame's `canon` template.
//! A ground call degenerates to a single 0-width boolean answer with an
//! O(1) fast path. All answers of one subgoal share a bump arena of cells
//! ([`AnswerStore`]); an answer is a `(offset, len)` span, so recording an
//! answer costs one `extend_from_slice` and no per-answer allocation.
//!
//! Subgoal lookup is a hash on the canonical call; answer lookup hashes
//! the factored sequence — the two table indexes §4.5 describes (or, with
//! [`TableIndex::Trie`], the in-development trie index integrated with
//! the storage).

use crate::cell::{Cell, Tag};
use crate::instr::{CodePtr, PredId};
use crate::machine::{Freeze, NONE};
use crate::shared::{
    cells_below_sym_floor, ClaimOutcome, SharedFrame, SharedTableStore, SyncAction,
};
use crate::table_trie::TermTrie;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;
use xsb_syntax::sym::SymbolTable;

/// How subgoal and answer tables are indexed. `Hash` is XSB v1.3's design
/// (§4.5: hash on the canonical call; hash on all answer arguments);
/// `Trie` is the paper's in-development trie indexing, where the index is
/// integrated with the storage (see [`crate::table_trie`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TableIndex {
    #[default]
    Hash,
    Trie,
}

pub type SubgoalId = u32;

/// Backing storage of an answer arena. A table built by this engine owns
/// its cells (`Local`); a completed table imported from (or published to)
/// the pool's shared store borrows the pool-wide `Arc` instead
/// (`Shared`), so cross-worker warm hits copy no answer cells and a
/// published table's arena is held in memory once. Derefs to `[Cell]`, so
/// every span-slicing call site works identically on both.
#[derive(Debug)]
pub enum Arena {
    Local(Vec<Cell>),
    Shared(Arc<[Cell]>),
}

impl Default for Arena {
    fn default() -> Self {
        Arena::Local(Vec::new())
    }
}

impl std::ops::Deref for Arena {
    type Target = [Cell];
    fn deref(&self) -> &[Cell] {
        match self {
            Arena::Local(v) => v,
            Arena::Shared(a) => a,
        }
    }
}

/// Bump-arena answer store (substitution factoring). Every answer's
/// canonical cells live in one contiguous vector; each answer is an
/// `(offset, len)` span into it. Duplicate detection in hash-index mode
/// is a sequence-hash index over the spans; in trie mode the frame's
/// `answer_trie` discovers duplicates on its insertion walk and the arena
/// only keeps derivation order.
#[derive(Debug, Default)]
pub struct AnswerStore {
    cells: Arena,
    spans: Vec<(u32, u32)>,
    /// sequence hash → answer ids with that hash (hash-index mode only)
    index: HashMap<u64, Vec<u32>>,
}

impl AnswerStore {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The factored cell sequence of answer `i`.
    pub fn get(&self, i: usize) -> &[Cell] {
        let (off, len) = self.spans[i];
        &self.cells[off as usize..(off + len) as usize]
    }

    /// `(offset, len)` of answer `i` in the arena — callers that take the
    /// arena out (zero-copy answer return) slice it themselves.
    pub fn span(&self, i: usize) -> (u32, u32) {
        self.spans[i]
    }

    /// FNV-1a over the raw cell words (canonical cells are value cells;
    /// bitwise equality is term equality).
    fn hash_seq(seq: &[Cell]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for c in seq {
            h ^= c.0;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Hash-index duplicate probe without copying anything.
    pub fn contains(&self, seq: &[Cell]) -> bool {
        match self.index.get(&Self::hash_seq(seq)) {
            Some(ids) => ids.iter().any(|&i| self.get(i as usize) == seq),
            None => false,
        }
    }

    /// Appends an answer known to be new (trie mode and the ground fast
    /// path, where duplicate detection happened elsewhere). Only tables
    /// this engine is computing receive answers; shared-backed arenas are
    /// complete by construction.
    fn push_unchecked(&mut self, seq: &[Cell]) {
        let Arena::Local(cells) = &mut self.cells else {
            unreachable!("shared-backed stores are complete and never receive answers");
        };
        let off = cells.len() as u32;
        cells.extend_from_slice(seq);
        self.spans.push((off, seq.len() as u32));
    }

    /// Single-walk probe + insert: hashes once, compares only hash-equal
    /// candidates, and copies into the arena only when genuinely new.
    fn insert_if_new(&mut self, seq: &[Cell]) -> bool {
        let h = Self::hash_seq(seq);
        if let Some(ids) = self.index.get(&h) {
            if ids.iter().any(|&i| {
                let (off, len) = self.spans[i as usize];
                &self.cells[off as usize..(off + len) as usize] == seq
            }) {
                return false;
            }
        }
        let id = self.spans.len() as u32;
        self.push_unchecked(seq);
        self.index.entry(h).or_default().push(id);
        true
    }

    /// Arena cells held (the budget accounting unit in hash-index mode).
    pub fn cells_len(&self) -> u64 {
        self.cells.len() as u64
    }

    /// Takes the arena out so the emulator can bind answers against the
    /// heap without holding a borrow of the table space. Must be paired
    /// with [`AnswerStore::put_cells`].
    pub fn take_cells(&mut self) -> Arena {
        std::mem::take(&mut self.cells)
    }

    pub fn put_cells(&mut self, cells: Arena) {
        debug_assert!(self.cells.is_empty(), "arena restored exactly once");
        self.cells = cells;
    }

    /// An answer store over a pool-shared arena (completed-table import).
    /// The duplicate index is not rebuilt: imported tables are complete,
    /// so they never receive or probe for new answers.
    fn from_shared(cells: Arc<[Cell]>, spans: Vec<(u32, u32)>) -> AnswerStore {
        AnswerStore {
            cells: Arena::Shared(cells),
            spans,
            index: HashMap::new(),
        }
    }

    /// Swaps the local arena for the identical pool-shared copy after a
    /// successful publish, so the cells live in memory once.
    fn back_with(&mut self, cells: Arc<[Cell]>) {
        debug_assert_eq!(&self.cells[..], &cells[..], "shared backing is identical");
        self.cells = Arena::Shared(cells);
    }
}

/// Completion state of a tabled subgoal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubgoalState {
    Incomplete,
    Complete,
}

/// How the generator treats a newly derived answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenMode {
    /// batched scheduling: record and *proceed* (return the answer eagerly)
    Positive,
    /// called from `tnot`: record and fail (exhaustive search to completion)
    Negation,
    /// called from `e_tnot`: the first answer aborts the evaluation and
    /// frees the table if no one else uses it (paper §4.4)
    Existential,
}

/// One tabled subgoal.
#[derive(Debug)]
pub struct SubgoalFrame {
    pub pred: PredId,
    /// canonical call-argument tuple (variant key); `Arc` so a completed
    /// frame's key can be published to the pool-shared store as-is
    pub canon: Arc<[Cell]>,
    /// number of distinct variables in the call (factored answer width)
    pub nvars: u32,
    /// answers in derivation order, substitution factored: each entry is
    /// the canonical bindings of the call's distinct variables only
    pub store: AnswerStore,
    /// whether this frame's answers are substitution factored (recorded
    /// at creation; the unfactored store is the bench baseline)
    pub factored: bool,
    /// non-variable cells in `canon` — the ground skeleton a full answer
    /// tuple would repeat (full-size accounting)
    pub ground_cells: u32,
    /// occurrences of each distinct call variable in `canon` (len ==
    /// `nvars`; repeated variables make factoring save even more)
    pub var_occ: Vec<u32>,
    pub state: SubgoalState,
    pub mode: GenMode,
    /// generator's substitution factor: heap addresses of the call's
    /// distinct variables (valid only while the generator is live)
    pub subst: Vec<u32>,
    /// generator choice point index (machine-local)
    pub gen_cp: u32,
    /// SLG incremental-completion bookkeeping
    pub dfn: u32,
    pub dir_link: u32,
    /// next program clause to run (cursor into `clauses`)
    pub clause_cursor: u32,
    pub clauses: Rc<[CodePtr]>,
    /// consumer ids suspended on this subgoal
    pub consumers: Vec<u32>,
    /// negation/tfindall suspension ids waiting on completion
    pub negs: Vec<u32>,
    /// freeze registers at generator creation (restored at completion)
    pub saved_freeze: Freeze,
    /// position in the completion stack while incomplete
    pub compl_pos: u32,
    /// for `Existential` mode: the choice point to cut back to when the
    /// first answer arrives
    pub exist_cut_b: u32,
    /// true when the table was freed (`tcut` / existential negation /
    /// invalidation / eviction)
    pub deleted: bool,
    /// query-clock value when this table was created (see
    /// [`TableSpace::clock`]); `born < clock` means the table is being
    /// reused by a later query (a cross-query warm hit)
    pub born: u64,
    /// query-clock value of the most recent completed-table reuse; the
    /// eviction policy removes least-recently-hit tables first
    pub last_hit: u64,
    /// suspensions queued for scheduling after this (leader) subgoal's SCC
    /// completed; drained by the generator choice point's handler
    pub pending_negs: Vec<u32>,
    /// trie-integrated answer store (when [`TableIndex::Trie`] is active);
    /// `answer_set` stays empty in that mode
    pub answer_trie: Option<TermTrie>,
}

impl SubgoalFrame {
    pub fn has_answers(&self) -> bool {
        !self.store.is_empty()
    }

    /// Number of recorded answers.
    pub fn answer_count(&self) -> usize {
        self.store.len()
    }
}

/// A suspended consumer of an incomplete table.
#[derive(Debug)]
pub struct Consumer {
    pub sub: SubgoalId,
    /// its choice point index
    pub cp: u32,
    /// the consumer call's substitution factor (heap addresses)
    pub subst: Vec<u32>,
    /// how many answers it has consumed
    pub cursor: u32,
    /// subgoal id of the leader currently scheduling this consumer
    /// (`NONE` when not scheduled)
    pub scheduled_by: u32,
    pub dead: bool,
}

/// What a completion-time suspension does when its subgoal completes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NegMode {
    /// `tnot`/`e_tnot`: resume (succeed) iff the completed table is empty
    Tnot,
    /// `tfindall/3`: resume unconditionally and build the answer list
    Tfindall { template: Cell, result: Cell },
}

/// A suspension waiting on subgoal completion (negation or tfindall).
#[derive(Debug)]
pub struct NegSusp {
    pub sub: SubgoalId,
    pub cp: u32,
    pub mode: NegMode,
    /// substitution factor of the suspended call (for tfindall decoding)
    pub subst: Vec<u32>,
    /// where execution continues if the suspension succeeds
    pub resume: crate::instr::CodePtr,
    pub done: bool,
}

/// The global table space. Completed tables persist across queries;
/// consumers, suspensions and the completion stack are per-query.
#[derive(Debug)]
pub struct TableSpace {
    pub subgoals: Vec<SubgoalFrame>,
    lookup: HashMap<PredId, HashMap<Arc<[Cell]>, SubgoalId>>,
    /// per-predicate subgoal tries (when `index == Trie`); the vector maps
    /// trie entry ids to subgoal ids (refreshed when a freed table's
    /// variant is re-created)
    subgoal_tries: HashMap<PredId, (TermTrie, Vec<SubgoalId>)>,
    pub consumers: Vec<Consumer>,
    pub negs: Vec<NegSusp>,
    /// incomplete generators, oldest first (DFN order)
    pub completion_stack: Vec<SubgoalId>,
    dfn_counter: u32,
    pub index: TableIndex,
    /// whether new frames store answers substitution factored (the
    /// default) or as full argument tuples (the E14 bench baseline);
    /// existing frames keep the mode they were created with
    factored: bool,
    /// frames invalidated while still incomplete: the running query keeps
    /// its call-time view (logical-update semantics); the frames are freed
    /// at [`TableSpace::end_query`] so the *next* query recomputes them
    pending_invalidation: Vec<SubgoalId>,
    /// answer-store budget in cells; `None` = unbounded
    budget_cells: Option<u64>,
    /// query clock: bumped once per `end_query`, stamped into frames at
    /// creation (`born`) and on completed-table reuse (`last_hit`)
    clock: u64,
    /// connection to the pool-wide shared table store (engine pool only)
    shared: Option<SharedHandle>,
}

/// A worker engine's view of the pool's [`SharedTableStore`]: the store
/// itself, the symbol/predicate floors fixed when the worker attached
/// (only ids below the floors mean the same thing on every worker — ids
/// interned later, e.g. by per-worker queries, are worker-local), and the
/// last store epoch this worker synchronized with.
#[derive(Debug)]
pub struct SharedHandle {
    pub store: Arc<SharedTableStore>,
    pub sym_floor: u32,
    pub pred_floor: PredId,
    /// sync watermark: invalidation-log entries at or below this epoch
    /// have been replayed against this worker's local tables
    pub epoch_seen: u64,
    /// store epoch observed at the start of the current query; published
    /// frames are stamped with it, so a frame computed while *any*
    /// invalidation landed mid-query (even this worker's own) is rejected
    /// by the store's epoch guard instead of entering at the new epoch
    pub query_epoch: u64,
    /// true while applying a pool-broadcast update (`consult_all`): every
    /// worker applies the same mutation, so it diverges nobody's EDB
    pub broadcast: bool,
    /// set when a non-broadcast mutation touched a shared-floor
    /// predicate: this worker's EDB no longer matches the program the
    /// pool consulted, so tables it computes (or imports) would be
    /// inconsistent with one side — it detaches from answer sharing
    /// until a broadcast (or explicit resync) restores a coherent view
    /// (see [`TableSpace::resync_shared`])
    pub diverged: bool,
    /// in-progress claims this worker holds (`pred`, variant, epoch
    /// stamp); every claim is ended within the query that acquired it —
    /// by the publish of its variant or by the release sweep in
    /// [`TableSpace::publish_completed`] — so parked waiters on other
    /// workers never outwait a finished query
    pub claims: Vec<(PredId, Arc<[Cell]>, u64)>,
}

/// What [`TableSpace::shared_claim_or_wait`] resolved a shared-floor cold
/// miss to. `waited_ns` is the time spent in the registry (effectively
/// zero unless `parked`).
#[derive(Debug)]
pub enum SharedClaim {
    /// The call cannot use the shared store at all (no handle, diverged
    /// worker, or above a sharing floor): plain local computation.
    Unshared,
    /// This worker elected itself the pool-wide computer of the variant.
    Claimed { parked: bool, waited_ns: u64 },
    /// The variant's frame is available — published earlier or by the
    /// claimant this worker parked behind. Import instead of computing.
    Published {
        frame: Arc<SharedFrame>,
        parked: bool,
        waited_ns: u64,
    },
    /// Parked behind a claim that never produced a frame within the
    /// bounded wait: compute locally so the pool cannot wedge.
    TimedOut { parked: bool, waited_ns: u64 },
}

impl Default for TableSpace {
    fn default() -> Self {
        TableSpace {
            subgoals: Vec::new(),
            lookup: HashMap::new(),
            subgoal_tries: HashMap::new(),
            consumers: Vec::new(),
            negs: Vec::new(),
            completion_stack: Vec::new(),
            dfn_counter: 0,
            index: TableIndex::default(),
            factored: true,
            pending_invalidation: Vec::new(),
            budget_cells: None,
            clock: 0,
            shared: None,
        }
    }
}

impl TableSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// A table space using the given index representation.
    pub fn with_index(index: TableIndex) -> Self {
        TableSpace {
            index,
            ..Self::default()
        }
    }

    /// Switches the answer representation for frames created from now on:
    /// `true` (the default) stores substitution-factored answers; `false`
    /// stores full argument tuples — the unfactored baseline the E14
    /// bench measures against. Existing frames are unaffected (each frame
    /// records its own mode, so answer return always matches the store).
    pub fn set_factored(&mut self, factored: bool) {
        self.factored = factored;
    }

    pub fn factored(&self) -> bool {
        self.factored
    }

    /// Finds an existing (non-deleted) table for this variant call.
    /// (`Rc<[Cell]>: Borrow<[Cell]>`, so no allocation per probe.)
    pub fn find(&self, pred: PredId, canon: &[Cell]) -> Option<SubgoalId> {
        match self.index {
            TableIndex::Hash => self
                .lookup
                .get(&pred)
                .and_then(|m| m.get(canon))
                .copied()
                .filter(|&id| !self.subgoals[id as usize].deleted),
            TableIndex::Trie => self
                .subgoal_tries
                .get(&pred)
                .and_then(|(t, ids)| t.find(canon).map(|tid| ids[tid as usize]))
                .filter(|&id| !self.subgoals[id as usize].deleted),
        }
    }

    /// Creates a new subgoal table (generator side) and pushes it on the
    /// completion stack.
    #[allow(clippy::too_many_arguments)]
    pub fn new_subgoal(
        &mut self,
        pred: PredId,
        canon: Arc<[Cell]>,
        subst: Vec<u32>,
        clauses: Rc<[CodePtr]>,
        mode: GenMode,
        saved_freeze: Freeze,
        exist_cut_b: u32,
    ) -> SubgoalId {
        let id = self.subgoals.len() as SubgoalId;
        self.dfn_counter += 1;
        let dfn = self.dfn_counter;
        let compl_pos = self.completion_stack.len() as u32;
        // derive the call template statistics: the ground skeleton size
        // and each distinct variable's occurrence count, which together
        // give the full-tuple size a factored answer avoids storing
        let mut var_occ = vec![0u32; subst.len()];
        let mut ground_cells = 0u32;
        for c in canon.iter() {
            if c.tag() == Tag::TVar {
                let k = c.tvar_index();
                if k >= var_occ.len() {
                    var_occ.resize(k + 1, 0);
                }
                var_occ[k] += 1;
            } else {
                ground_cells += 1;
            }
        }
        self.subgoals.push(SubgoalFrame {
            pred,
            canon: canon.clone(),
            nvars: subst.len() as u32,
            store: AnswerStore::default(),
            factored: self.factored,
            ground_cells,
            var_occ,
            state: SubgoalState::Incomplete,
            mode,
            subst,
            gen_cp: NONE,
            dfn,
            dir_link: dfn,
            clause_cursor: 0,
            clauses,
            consumers: Vec::new(),
            negs: Vec::new(),
            saved_freeze,
            compl_pos,
            exist_cut_b,
            deleted: false,
            born: self.clock,
            last_hit: self.clock,
            pending_negs: Vec::new(),
            answer_trie: matches!(self.index, TableIndex::Trie).then(TermTrie::new),
        });
        match self.index {
            TableIndex::Hash => {
                self.lookup.entry(pred).or_default().insert(canon, id);
            }
            TableIndex::Trie => {
                let (trie, ids) = self
                    .subgoal_tries
                    .entry(pred)
                    .or_insert_with(|| (TermTrie::new(), Vec::new()));
                let (tid, fresh) = trie.insert(&canon);
                if fresh {
                    debug_assert_eq!(tid as usize, ids.len());
                    ids.push(id);
                } else {
                    // a freed table's variant re-created: remap the entry
                    ids[tid as usize] = id;
                }
            }
        }
        self.completion_stack.push(id);
        id
    }

    /// Records an answer given as a borrowed canonical sequence; returns
    /// `true` if it is new. Probe and insert are one walk — the sequence
    /// is copied into the frame's arena only when genuinely new, so
    /// duplicates (the common case on recursive workloads) allocate
    /// nothing. A ground call's empty sequence is the O(1) boolean fast
    /// path: no hashing, no trie walk, zero cells stored.
    pub fn add_answer(&mut self, sub: SubgoalId, seq: &[Cell]) -> bool {
        let f = &mut self.subgoals[sub as usize];
        if seq.is_empty() {
            // ground call: at most one (0-width) answer can ever exist
            if f.store.is_empty() {
                f.store.push_unchecked(seq);
                true
            } else {
                false
            }
        } else if let Some(trie) = &mut f.answer_trie {
            // the duplicate check and the store are the same trie walk
            let (_, fresh) = trie.insert(seq);
            if fresh {
                f.store.push_unchecked(seq);
            }
            fresh
        } else {
            f.store.insert_if_new(seq)
        }
    }

    /// Duplicate check without allocating (paper §4.5's answer index,
    /// now keyed on the factored sequence).
    pub fn has_answer(&self, sub: SubgoalId, seq: &[Cell]) -> bool {
        let f = &self.subgoals[sub as usize];
        if seq.is_empty() {
            return !f.store.is_empty();
        }
        match &f.answer_trie {
            Some(trie) => trie.find(seq).is_some(),
            None => f.store.contains(seq),
        }
    }

    pub fn frame(&self, sub: SubgoalId) -> &SubgoalFrame {
        &self.subgoals[sub as usize]
    }

    pub fn frame_mut(&mut self, sub: SubgoalId) -> &mut SubgoalFrame {
        &mut self.subgoals[sub as usize]
    }

    /// The youngest incomplete generator (top of the completion stack) —
    /// the frame whose `dir_link` absorbs new dependencies.
    pub fn youngest(&self) -> Option<SubgoalId> {
        self.completion_stack.last().copied()
    }

    /// Registers a positive dependency of the current computation on `sub`
    /// (a consumer call or negation suspension on an incomplete table).
    pub fn note_dependency(&mut self, on: SubgoalId) {
        let dfn = self.subgoals[on as usize].dfn;
        if let Some(top) = self.youngest() {
            let f = &mut self.subgoals[top as usize];
            if dfn < f.dir_link {
                f.dir_link = dfn;
            }
        }
    }

    /// True iff `sub` is the leader of its SCC (its region can complete).
    pub fn is_leader(&self, sub: SubgoalId) -> bool {
        let f = &self.subgoals[sub as usize];
        f.dir_link == f.dfn
    }

    /// Propagates a non-leader's `dir_link` to the generator below it on
    /// the completion stack.
    pub fn propagate_dir_link(&mut self, sub: SubgoalId) {
        let f = &self.subgoals[sub as usize];
        let pos = f.compl_pos as usize;
        let dl = f.dir_link;
        if pos > 0 {
            let below = self.completion_stack[pos - 1];
            let g = &mut self.subgoals[below as usize];
            if dl < g.dir_link {
                g.dir_link = dl;
            }
        }
    }

    /// Subgoals of the SCC led by `leader`: the completion-stack segment
    /// from the leader to the top.
    pub fn scc_members(&self, leader: SubgoalId) -> Vec<SubgoalId> {
        let pos = self.subgoals[leader as usize].compl_pos as usize;
        self.completion_stack[pos..].to_vec()
    }

    /// Marks the SCC led by `leader` complete, pops it from the completion
    /// stack, and returns its members.
    pub fn complete_scc(&mut self, leader: SubgoalId) -> Vec<SubgoalId> {
        let members = self.scc_members(leader);
        for &m in &members {
            let f = &mut self.subgoals[m as usize];
            f.state = SubgoalState::Complete;
            f.subst.clear();
            // gen_cp stays: the generator choice point schedules this
            // frame's suspensions post-completion; end_query clears it
        }
        let pos = self.subgoals[leader as usize].compl_pos as usize;
        self.completion_stack.truncate(pos);
        members
    }

    /// Deletes the completion-stack segment from `sub` upward — the
    /// `tcut`/existential-negation table-freeing operation (paper §4.4).
    /// Completed inner tables are kept; incomplete ones are removed so
    /// later calls recompute them.
    pub fn delete_from(&mut self, sub: SubgoalId) -> Vec<SubgoalId> {
        let pos = self.subgoals[sub as usize].compl_pos as usize;
        let removed: Vec<SubgoalId> = self.completion_stack[pos..].to_vec();
        for &m in &removed {
            let f = &mut self.subgoals[m as usize];
            if f.state == SubgoalState::Incomplete {
                f.deleted = true;
                if let Some(m) = self.lookup.get_mut(&f.pred) {
                    m.remove(&f.canon);
                }
                // trie mode: `find` filters on `deleted`, and re-creation
                // remaps the trie entry, so no trie surgery is needed
            }
        }
        self.completion_stack.truncate(pos);
        removed
    }

    /// True when `sub` has users other than the suspension anchored at
    /// choice point `excluded_cp` — the existential-negation/`tcut`
    /// table-freeing safety check (paper §4.4: "are there other users of
    /// the table?"). The emulator may only free the table when no live
    /// consumer and no *other* pending suspension still depends on it.
    pub fn has_other_users(&self, sub: SubgoalId, excluded_cp: u32) -> bool {
        let f = &self.subgoals[sub as usize];
        f.consumers
            .iter()
            .any(|&c| !self.consumers[c as usize].dead)
            || f.negs.iter().any(|&n| {
                let ns = &self.negs[n as usize];
                !ns.done && ns.cp != excluded_cp
            })
    }

    /// Hides a frame from future calls: marks it deleted and unlinks it
    /// from the hash subgoal index. The answer store is NOT released —
    /// in-flight choice points (`Alt::CompletedAnswers`) may still be
    /// iterating it. Trie-mode call entries need no surgery: `find`
    /// filters on `deleted` and re-creation remaps the trie entry.
    fn unlink_frame(&mut self, id: SubgoalId) {
        let (pred, canon) = {
            let f = &mut self.subgoals[id as usize];
            f.deleted = true;
            (f.pred, f.canon.clone())
        };
        // the lookup entry may already point at a younger frame for the
        // same variant; only remove it when it is really ours
        if let Some(m) = self.lookup.get_mut(&pred) {
            if m.get(canon.as_ref()).copied() == Some(id) {
                m.remove(canon.as_ref());
            }
        }
    }

    /// Releases a frame's answer store so [`TableSpace::answer_store_cells`]
    /// shrinks. Only safe when no choice point can still reach the answers.
    fn free_frame_memory(&mut self, id: SubgoalId) {
        let f = &mut self.subgoals[id as usize];
        f.store = AnswerStore::default();
        f.answer_trie = None;
        f.subst = Vec::new();
        f.var_occ = Vec::new();
    }

    /// Fully frees one frame: unlink + release memory. Only safe between
    /// queries (eviction, end-of-query sweeps).
    fn kill_frame(&mut self, id: SubgoalId) {
        self.unlink_frame(id);
        self.free_frame_memory(id);
    }

    /// Invalidates `id`. Completed frames are hidden from new calls right
    /// away (a re-call recomputes) but keep their answer store until
    /// [`TableSpace::end_query`], since the running query may hold choice
    /// points into it. Incomplete frames stay fully visible — the running
    /// query keeps its call-time view — and die at `end_query`. Returns
    /// `true` if the frame was newly invalidated.
    fn invalidate_frame(&mut self, id: SubgoalId) -> bool {
        let f = &self.subgoals[id as usize];
        if f.deleted || self.pending_invalidation.contains(&id) {
            return false;
        }
        if f.state == SubgoalState::Complete {
            self.unlink_frame(id);
        }
        self.pending_invalidation.push(id);
        true
    }

    /// Invalidates every table of predicate `pred` (because a dynamic
    /// predicate it depends on changed). Completed tables are hidden
    /// immediately (new calls recompute); incomplete ones keep serving the
    /// running query; both release memory at `end_query`. Returns the
    /// number of frames invalidated.
    pub fn invalidate_pred(&mut self, pred: PredId) -> usize {
        let mut n = 0;
        for id in 0..self.subgoals.len() as SubgoalId {
            if self.subgoals[id as usize].pred == pred && self.invalidate_frame(id) {
                n += 1;
            }
        }
        n
    }

    /// Selectively abolishes every table of predicate `pred` (the
    /// `abolish_table_pred/1` builtin). Beyond [`TableSpace::invalidate_pred`],
    /// this also drops the predicate's whole subgoal trie once no live
    /// frame remains, so trie mode holds no dangling entries that could
    /// outlive the deleted frames.
    pub fn abolish_pred(&mut self, pred: PredId) -> usize {
        let n = self.invalidate_pred(pred);
        let any_live = self.subgoals.iter().any(|f| f.pred == pred && !f.deleted);
        if !any_live {
            self.subgoal_tries.remove(&pred);
        }
        n
    }

    /// Abolishes the single table for one variant call (the
    /// `abolish_table_call/1` builtin). Returns `true` if such a table
    /// existed.
    pub fn abolish_call(&mut self, pred: PredId, canon: &[Cell]) -> bool {
        match self.find(pred, canon) {
            Some(id) => self.invalidate_frame(id),
            None => false,
        }
    }

    /// Records a completed-table reuse for the LRU eviction policy.
    pub fn touch(&mut self, sub: SubgoalId) {
        self.subgoals[sub as usize].last_hit = self.clock;
    }

    /// Current query-clock value (bumped once per [`TableSpace::end_query`]).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Sets the answer-store budget in cells (`None` = unbounded).
    /// Enforced between queries by [`TableSpace::enforce_budget`].
    pub fn set_budget(&mut self, cells: Option<u64>) {
        self.budget_cells = cells;
    }

    pub fn budget(&self) -> Option<u64> {
        self.budget_cells
    }

    /// Answer-store cells held by one frame: the trie's shared-prefix
    /// total in trie mode, else the flat arena length.
    fn frame_cells(f: &SubgoalFrame) -> u64 {
        match &f.answer_trie {
            Some(t) => t.stored_cells(),
            None => f.store.cells_len(),
        }
    }

    /// Evicts completed tables, least-recently-hit first (ties broken by
    /// age, oldest first), until the answer store fits the budget. Returns
    /// the evicted subgoal ids so the caller can record metrics.
    pub fn enforce_budget(&mut self) -> Vec<SubgoalId> {
        let Some(budget) = self.budget_cells else {
            return Vec::new();
        };
        let mut total = self.answer_store_cells();
        if total <= budget {
            return Vec::new();
        }
        let mut candidates: Vec<(u64, SubgoalId, u64)> = self
            .subgoals
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.deleted && f.state == SubgoalState::Complete)
            .map(|(id, f)| (f.last_hit, id as SubgoalId, Self::frame_cells(f)))
            .collect();
        candidates.sort_unstable();
        let mut evicted = Vec::new();
        for (_, id, cells) in candidates {
            if total <= budget {
                break;
            }
            self.kill_frame(id);
            total = total.saturating_sub(cells);
            evicted.push(id);
        }
        evicted
    }

    /// Clears per-query state: consumers, suspensions, completion stack,
    /// and any tables left incomplete (e.g. the user stopped after the
    /// first solution). Tables invalidated mid-query while incomplete are
    /// freed here, and the query clock advances so the next query's
    /// completed-table reuses count as cross-query hits.
    pub fn end_query(&mut self) {
        self.consumers.clear();
        self.negs.clear();
        self.completion_stack.clear();
        for f in &mut self.subgoals {
            if f.state == SubgoalState::Incomplete && !f.deleted {
                f.deleted = true;
                if let Some(m) = self.lookup.get_mut(&f.pred) {
                    m.remove(&f.canon);
                }
            }
            f.subst.clear();
            f.consumers.clear();
            f.negs.clear();
            f.gen_cp = NONE;
        }
        let pending = std::mem::take(&mut self.pending_invalidation);
        for id in pending {
            self.kill_frame(id);
        }
        self.clock += 1;
    }

    /// Removes every table (the `abolish_all_tables/0` builtin).
    pub fn abolish_all(&mut self) {
        self.subgoals.clear();
        self.lookup.clear();
        self.subgoal_tries.clear();
        self.consumers.clear();
        self.negs.clear();
        self.completion_stack.clear();
        self.dfn_counter = 0;
        self.pending_invalidation.clear();
    }

    /// Total cells held by the answer stores — tries share prefixes, so in
    /// trie mode this is at most (and usually below) the flat total.
    pub fn answer_store_cells(&self) -> u64 {
        self.subgoals.iter().map(Self::frame_cells).sum()
    }

    /// Number of live (non-deleted) tables.
    pub fn live_tables(&self) -> usize {
        self.subgoals.iter().filter(|f| !f.deleted).count()
    }

    // ---- pool-shared completed-table store ------------------------------

    /// Connects this table space to a pool-wide shared store. The floors
    /// are the symbol/predicate counts at attach time: every worker that
    /// consulted the same program before attaching agrees on ids below
    /// them, so only frames entirely below both floors are shared.
    pub fn attach_shared(
        &mut self,
        store: Arc<SharedTableStore>,
        sym_floor: u32,
        pred_floor: PredId,
    ) {
        let epoch_seen = store.epoch();
        self.shared = Some(SharedHandle {
            store,
            sym_floor,
            pred_floor,
            epoch_seen,
            query_epoch: epoch_seen,
            broadcast: false,
            diverged: false,
            claims: Vec::new(),
        });
    }

    pub fn shared_handle(&self) -> Option<&SharedHandle> {
        self.shared.as_ref()
    }

    /// Detaches the shared handle (for table-space rebuilds that must
    /// carry it over); pair with [`TableSpace::restore_shared`].
    pub fn take_shared(&mut self) -> Option<SharedHandle> {
        self.shared.take()
    }

    pub fn restore_shared(&mut self, h: Option<SharedHandle>) {
        self.shared = h;
    }

    /// Probes the pool store for a completed table of this variant call.
    /// Predicates at or above the attach floor are worker-local by
    /// definition and never probe; a diverged worker (see
    /// [`TableSpace::note_local_mutation`]) never probes either — shared
    /// frames reflect the pool's common database, not its own.
    pub fn shared_probe(&self, pred: PredId, canon: &[Cell]) -> Option<Arc<SharedFrame>> {
        let h = self.shared.as_ref()?;
        if h.diverged || pred >= h.pred_floor {
            return None;
        }
        h.store.probe(pred, canon)
    }

    /// Cold-miss coordination: probe the store, and on a miss claim the
    /// variant or wait behind the worker already computing it (see
    /// [`SharedTableStore::claim_or_wait`]). Calls that cannot be shared
    /// at all — no handle, diverged worker, above the predicate floor, or
    /// a canon mentioning above-floor symbols (worker-local ids that
    /// would collide bit-for-bit with *different* names on other
    /// workers) — return [`SharedClaim::Unshared`] without touching the
    /// registry. A granted claim is recorded on the handle and released
    /// no later than this query's [`TableSpace::publish_completed`].
    pub fn shared_claim_or_wait(&mut self, pred: PredId, canon: &[Cell]) -> SharedClaim {
        let Some(h) = &mut self.shared else {
            return SharedClaim::Unshared;
        };
        if h.diverged || pred >= h.pred_floor || !cells_below_sym_floor(canon, h.sym_floor) {
            return SharedClaim::Unshared;
        }
        let sw = Instant::now();
        let outcome = h.store.claim_or_wait(pred, canon);
        let waited_ns = sw.elapsed().as_nanos() as u64;
        match outcome {
            ClaimOutcome::Claimed { parked, epoch } => {
                h.claims.push((pred, Arc::from(canon), epoch));
                SharedClaim::Claimed { parked, waited_ns }
            }
            ClaimOutcome::Published { frame, parked } => SharedClaim::Published {
                frame,
                parked,
                waited_ns,
            },
            ClaimOutcome::TimedOut { parked } => SharedClaim::TimedOut { parked, waited_ns },
        }
    }

    /// Marks this worker's EDB as diverged from the pool's common program
    /// when a *non-broadcast* mutation of `pred` reaches a shared-floor
    /// predicate — either the mutated predicate itself or any of its
    /// tabled dependents `deps` lies below the floor. A diverged worker
    /// detaches from answer sharing permanently: it neither publishes nor
    /// imports (its answers would be inconsistent with the other workers'
    /// EDBs, and theirs with its own), but it keeps answering from its
    /// own database and keeps pushing invalidations pool-wide.
    pub fn note_local_mutation(&mut self, pred: PredId, deps: &[PredId]) {
        if let Some(h) = &mut self.shared {
            if !h.broadcast && (pred < h.pred_floor || deps.iter().any(|&d| d < h.pred_floor)) {
                h.diverged = true;
            }
        }
    }

    /// Marks this worker diverged regardless of floors. Used after WAL
    /// recovery replayed worker-*local* mutations: the recovered EDB
    /// differs from its siblings' the moment the worker rejoins the pool,
    /// exactly as if the original non-broadcast mutation had just run.
    pub fn force_diverge(&mut self) {
        if let Some(h) = &mut self.shared {
            h.diverged = true;
        }
    }

    /// Brackets a pool-broadcast update (`ServerPool::consult_all`):
    /// while set, mutations do not mark this worker as diverged, because
    /// every worker applies the same update.
    pub fn set_shared_broadcast(&mut self, on: bool) {
        if let Some(h) = &mut self.shared {
            h.broadcast = on;
        }
    }

    /// True when this worker has detached from answer sharing because its
    /// EDB diverged from the pool's common program.
    pub fn shared_diverged(&self) -> bool {
        self.shared.as_ref().is_some_and(|h| h.diverged)
    }

    /// Materializes a pool-shared completed table as a local frame: the
    /// canon and the answer arena are `Arc` clones (zero cell copies), the
    /// frame is born `Complete` with no clauses and never joins the
    /// completion stack. It is indexed like any local table, so later
    /// calls hit it without re-probing the store, and it participates in
    /// local budget eviction (killing it merely drops the `Arc`s).
    pub fn import_shared(&mut self, sf: &SharedFrame) -> SubgoalId {
        let id = self.subgoals.len() as SubgoalId;
        self.subgoals.push(SubgoalFrame {
            pred: sf.pred,
            canon: sf.canon.clone(),
            nvars: sf.nvars,
            store: AnswerStore::from_shared(sf.cells.clone(), sf.spans.clone()),
            factored: sf.factored,
            ground_cells: sf.ground_cells,
            var_occ: sf.var_occ.clone(),
            state: SubgoalState::Complete,
            mode: GenMode::Positive,
            subst: Vec::new(),
            gen_cp: NONE,
            dfn: 0,
            dir_link: 0,
            clause_cursor: 0,
            clauses: Rc::from(&[][..]),
            consumers: Vec::new(),
            negs: Vec::new(),
            saved_freeze: Freeze::default(),
            compl_pos: NONE,
            exist_cut_b: NONE,
            deleted: false,
            born: self.clock,
            last_hit: self.clock,
            pending_negs: Vec::new(),
            answer_trie: None,
        });
        match self.index {
            TableIndex::Hash => {
                self.lookup
                    .entry(sf.pred)
                    .or_default()
                    .insert(sf.canon.clone(), id);
            }
            TableIndex::Trie => {
                let (trie, ids) = self
                    .subgoal_tries
                    .entry(sf.pred)
                    .or_insert_with(|| (TermTrie::new(), Vec::new()));
                let (tid, fresh) = trie.insert(&sf.canon);
                if fresh {
                    debug_assert_eq!(tid as usize, ids.len());
                    ids.push(id);
                } else {
                    ids[tid as usize] = id;
                }
            }
        }
        id
    }

    /// Publishes this engine's freshly completed tables into the pool
    /// store (call between queries, after `end_query`). A frame is
    /// publishable when it is live, complete, hash-indexed (trie arenas
    /// keep derivation state in a worker-local trie), still locally
    /// backed, and entirely below the attach floors. The first worker to
    /// publish a variant wins; publishes computed under a superseded
    /// store epoch are rejected and simply retried after the next sync
    /// confirms the frame survived the invalidation. Frames are stamped
    /// with the epoch observed at *query start* — a mid-query
    /// invalidation (even this worker's own) moves the store past that
    /// stamp, so nothing computed astride an update can slip in at the
    /// new epoch. A diverged worker (see
    /// [`TableSpace::note_local_mutation`]) publishes nothing. On success
    /// the local arena is re-backed by the shared `Arc`, so the cells
    /// live once pool-wide. Returns the number of tables published.
    pub fn publish_completed(&mut self) -> usize {
        let Some(h) = &mut self.shared else {
            return 0;
        };
        // end every claim this query acquired, whatever happens below: a
        // published variant's claim is already gone (the publish removed
        // it), and the release of the rest is what lets parked waiters
        // take over variants this worker claimed but never published
        // (failed query, divergence, unpublishable frame)
        let held = std::mem::take(&mut h.claims);
        if h.diverged {
            h.store.release_claims(&held);
            return 0;
        }
        let mut published = 0;
        for f in &mut self.subgoals {
            if f.deleted
                || f.state != SubgoalState::Complete
                || f.answer_trie.is_some()
                || f.pred >= h.pred_floor
                || matches!(f.store.cells, Arena::Shared(_))
                || !cells_below_sym_floor(&f.canon, h.sym_floor)
                || !cells_below_sym_floor(&f.store.cells, h.sym_floor)
            {
                continue;
            }
            if h.store.contains(f.pred, &f.canon) {
                continue; // someone already published this variant
            }
            let cells: Arc<[Cell]> = Arc::from(&f.store.cells[..]);
            let frame = Arc::new(SharedFrame::new(
                f.pred,
                f.canon.clone(),
                f.nvars,
                f.factored,
                f.ground_cells,
                f.var_occ.clone(),
                cells.clone(),
                f.store.spans.clone(),
                h.query_epoch,
            ));
            if h.store.publish(frame) {
                f.store.back_with(cells);
                published += 1;
            }
        }
        // claims whose variant was published above are already gone from
        // the registry (the publish ended them); this sweep releases the
        // ones that never became publishable frames
        h.store.release_claims(&held);
        published
    }

    /// Propagates a local invalidation (assert/retract/abolish through the
    /// dependency graph) to the pool store, so every worker drops the same
    /// tables at its next sync. Predicates at or above the attach floor
    /// are worker-local ids that would name a *different* predicate on
    /// another worker — they are invalidated locally only. Returns the
    /// number of predicates pushed pool-wide.
    pub fn shared_invalidate(&mut self, preds: &[PredId]) -> usize {
        let Some(h) = &mut self.shared else {
            return 0;
        };
        let below: Vec<PredId> = preds
            .iter()
            .copied()
            .filter(|&p| p < h.pred_floor)
            .collect();
        if below.is_empty() {
            return 0;
        }
        let (prev, new_epoch) = h.store.invalidate_preds(&below);
        // Fast-forward the sync watermark only when no other worker
        // logged entries since our last sync; otherwise leave it behind
        // so the next sync replays the interleaved entries (replaying our
        // own entries too is a harmless no-op — those tables are already
        // invalidated locally).
        if prev == h.epoch_seen {
            h.epoch_seen = new_epoch;
        }
        below.len()
    }

    /// Drops every table pool-wide (the `abolish_all_tables/0` path).
    /// Fast-forwarding the watermark here is safe even past other
    /// workers' interleaved log entries: the caller just abolished every
    /// local table, so there is nothing left for a replay to invalidate.
    pub fn shared_clear(&mut self) {
        if let Some(h) = &mut self.shared {
            h.epoch_seen = h.store.clear();
        }
    }

    /// Catches this worker up with invalidations other workers pushed
    /// since its last sync (call at query start). Local tables of the
    /// affected predicates are invalidated with the same deferred-free
    /// semantics as a local assert. Returns the number of local frames
    /// invalidated.
    pub fn sync_shared(&mut self) -> usize {
        let (epoch, action) = {
            let Some(h) = &self.shared else {
                return 0;
            };
            h.store.sync_from(h.epoch_seen)
        };
        if let Some(h) = &mut self.shared {
            h.epoch_seen = epoch;
            // the epoch this query's completed tables will be stamped
            // with at publication (see `publish_completed`)
            h.query_epoch = epoch;
        }
        let preds: Vec<PredId> = match action {
            SyncAction::UpToDate => return 0,
            SyncAction::Preds(preds) => preds,
            SyncAction::All => {
                // too far behind the store's compacted log (or the store
                // was cleared): invalidate every live local table
                let mut preds: Vec<PredId> = self
                    .subgoals
                    .iter()
                    .filter(|f| !f.deleted)
                    .map(|f| f.pred)
                    .collect();
                preds.sort_unstable();
                preds.dedup();
                preds
            }
        };
        preds.into_iter().map(|p| self.invalidate_pred(p)).sum()
    }

    /// Re-attaches a diverged worker to answer sharing. The worker's
    /// local tables of shared-floor predicates were computed against its
    /// private EDB, so every one of them is invalidated (deferred-free,
    /// like a local assert); the sync watermark fast-forwards to the
    /// store's current epoch since nothing older can affect a worker
    /// with no live shared-floor tables. Call only once the worker's
    /// program is coherent with the pool again (e.g. right after a
    /// `consult_broadcast` applied the same update everywhere). Returns
    /// the number of local frames invalidated, or 0 when the worker was
    /// not diverged (the flag is cleared either way).
    pub fn resync_shared(&mut self) -> usize {
        let (was_diverged, pred_floor) = {
            let Some(h) = &mut self.shared else {
                return 0;
            };
            let was = h.diverged;
            h.diverged = false;
            let epoch = h.store.epoch();
            h.epoch_seen = epoch;
            h.query_epoch = epoch;
            (was, h.pred_floor)
        };
        if !was_diverged {
            return 0;
        }
        let mut preds: Vec<PredId> = self
            .subgoals
            .iter()
            .filter(|f| !f.deleted && f.pred < pred_floor)
            .map(|f| f.pred)
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds.into_iter().map(|p| self.invalidate_pred(p)).sum()
    }
}

/// Renders one canonical term from the flattened pre-order cell sequence
/// starting at `pos`; returns the position after it. Canonical cells are
/// only `Con`/`Int`/`TVar`/`Fun` (lists appear as `'.'/2`).
fn format_canon_at(canon: &[Cell], pos: usize, syms: &SymbolTable, out: &mut String) -> usize {
    use crate::cell::Tag;
    let Some(&c) = canon.get(pos) else {
        out.push('?');
        return pos + 1;
    };
    match c.tag() {
        Tag::Con => {
            out.push_str(syms.name(c.sym()));
            pos + 1
        }
        Tag::Int => {
            out.push_str(&c.int_value().to_string());
            pos + 1
        }
        Tag::TVar => {
            out.push('_');
            out.push_str(&c.tvar_index().to_string());
            pos + 1
        }
        Tag::Fun => {
            let (f, arity) = c.functor();
            out.push_str(syms.name(f));
            out.push('(');
            let mut p = pos + 1;
            for i in 0..arity {
                if i > 0 {
                    out.push(',');
                }
                p = format_canon_at(canon, p, syms, out);
            }
            out.push(')');
            p
        }
        // Ref/Str/Lis never occur in canonical form
        _ => {
            out.push('?');
            pos + 1
        }
    }
}

/// Renders a canonical argument tuple as `(a1,...,an)` (or `` for arity 0).
pub fn format_canon(canon: &[Cell], syms: &SymbolTable) -> String {
    let mut out = String::new();
    let mut pos = 0;
    let mut first = true;
    while pos < canon.len() {
        out.push(if first { '(' } else { ',' });
        first = false;
        pos = format_canon_at(canon, pos, syms, &mut out);
    }
    if !first {
        out.push(')');
    }
    out
}

/// Position just past the canonical subterm starting at `pos` (pre-order
/// skip: a `Fun` cell owes `arity` more subterms).
pub fn skip_canon_term(seq: &[Cell], mut pos: usize) -> usize {
    let mut pending = 1usize;
    while pending > 0 {
        let c = seq[pos];
        pending -= 1;
        if c.tag() == Tag::Fun {
            pending += c.functor().1;
        }
        pos += 1;
    }
    pos
}

/// `(offset, len)` of each of the `count` top-level terms of a canonical
/// sequence, appended to `out` (cleared first). For a factored answer,
/// entry `k` is variable `k`'s binding.
pub fn canon_root_spans(seq: &[Cell], count: usize, out: &mut Vec<(u32, u32)>) {
    out.clear();
    let mut pos = 0usize;
    for _ in 0..count {
        let end = skip_canon_term(seq, pos);
        out.push((pos as u32, (end - pos) as u32));
        pos = end;
    }
    debug_assert_eq!(pos, seq.len(), "sequence has exactly `count` roots");
}

/// Renders one *factored* answer back into full call form: the frame's
/// canonical call template with every variable position replaced by its
/// binding from the factored sequence. This is what the answer *means*
/// (and what an unfactored store would hold verbatim) — rendering
/// re-expands it so listings and traces look identical under both
/// representations.
pub fn format_answer(
    template: &[Cell],
    answer: &[Cell],
    nvars: usize,
    syms: &SymbolTable,
) -> String {
    let mut spans: Vec<(u32, u32)> = Vec::with_capacity(nvars);
    canon_root_spans(answer, nvars, &mut spans);
    let mut out = String::new();
    let mut pos = 0;
    let mut first = true;
    while pos < template.len() {
        out.push(if first { '(' } else { ',' });
        first = false;
        pos = format_answer_at(template, pos, answer, &spans, syms, &mut out);
    }
    if !first {
        out.push(')');
    }
    out
}

/// Like [`format_canon_at`] over the template, but variable positions
/// recurse into the factored binding instead of printing `_k`.
fn format_answer_at(
    template: &[Cell],
    pos: usize,
    answer: &[Cell],
    spans: &[(u32, u32)],
    syms: &SymbolTable,
    out: &mut String,
) -> usize {
    let Some(&c) = template.get(pos) else {
        out.push('?');
        return pos + 1;
    };
    match c.tag() {
        Tag::TVar => {
            let (off, _) = spans[c.tvar_index()];
            format_canon_at(answer, off as usize, syms, out);
            pos + 1
        }
        Tag::Fun => {
            let (f, arity) = c.functor();
            out.push_str(syms.name(f));
            out.push('(');
            let mut p = pos + 1;
            for i in 0..arity {
                if i > 0 {
                    out.push(',');
                }
                p = format_answer_at(template, p, answer, spans, syms, out);
            }
            out.push(')');
            p
        }
        _ => format_canon_at(template, pos, syms, out),
    }
}

/// One line per answer of a subgoal frame, rendered in full call form
/// regardless of the stored representation (factored answers are
/// re-expanded through the call template; the ground call's boolean
/// answer prints as `yes`).
pub fn answer_listing(f: &SubgoalFrame, syms: &SymbolTable) -> String {
    let mut out = String::new();
    for i in 0..f.store.len() {
        let ans = f.store.get(i);
        let line = if !f.factored {
            format_canon(ans, syms)
        } else if f.nvars == 0 {
            "yes".to_string()
        } else {
            format_answer(&f.canon, ans, f.nvars as usize, syms)
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// One line per live subgoal table: predicate, canonical call, answer
/// count, completion state. The body of the `tables/0` builtin.
pub fn table_listing(
    tables: &TableSpace,
    db: &crate::program::Program,
    syms: &SymbolTable,
) -> String {
    let mut out = String::new();
    for f in tables.subgoals.iter().filter(|f| !f.deleted) {
        let pred = db.pred(f.pred);
        let state = match f.state {
            SubgoalState::Complete => "complete",
            SubgoalState::Incomplete => "incomplete",
        };
        out.push_str(&format!(
            "{}/{}{}: {} answers, {}\n",
            syms.name(pred.name),
            pred.arity,
            format_canon(&f.canon, syms),
            f.store.len(),
            state,
        ));
    }
    if out.is_empty() {
        out.push_str("no tables\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(cells: &[Cell]) -> Arc<[Cell]> {
        Arc::from(cells)
    }

    fn mk(ts: &mut TableSpace, pred: PredId, key: &[Cell]) -> SubgoalId {
        ts.new_subgoal(
            pred,
            canon(key),
            vec![],
            Rc::from(&[][..]),
            GenMode::Positive,
            Freeze::default(),
            NONE,
        )
    }

    #[test]
    fn subgoal_variant_lookup() {
        let mut ts = TableSpace::new();
        let key = [Cell::tvar(0), Cell::int(1)];
        let id = mk(&mut ts, 3, &key);
        assert_eq!(ts.find(3, &key), Some(id));
        assert_eq!(ts.find(4, &key), None);
        assert_eq!(ts.find(3, &[Cell::int(1), Cell::tvar(0)]), None);
    }

    #[test]
    fn answer_dedup() {
        let mut ts = TableSpace::new();
        let id = mk(&mut ts, 0, &[Cell::tvar(0)]);
        assert!(ts.add_answer(id, &[Cell::int(1)]));
        assert!(ts.add_answer(id, &[Cell::int(2)]));
        assert!(!ts.add_answer(id, &[Cell::int(1)]), "duplicate");
        assert_eq!(ts.frame(id).store.len(), 2);
        assert_eq!(ts.frame(id).store.get(0), &[Cell::int(1)]);
        assert_eq!(ts.frame(id).store.get(1), &[Cell::int(2)]);
    }

    #[test]
    fn answers_share_one_arena() {
        let mut ts = TableSpace::new();
        let id = mk(&mut ts, 0, &[Cell::tvar(0)]);
        ts.add_answer(id, &[Cell::fun(xsb_syntax::Sym(5), 1), Cell::int(1)]);
        ts.add_answer(id, &[Cell::int(7)]);
        let f = ts.frame(id);
        assert_eq!(f.store.span(0), (0, 2));
        assert_eq!(f.store.span(1), (2, 1), "bump allocation, no gaps");
        assert_eq!(f.store.cells_len(), 3);
        assert!(ts.has_answer(id, &[Cell::int(7)]));
        assert!(!ts.has_answer(id, &[Cell::int(8)]));
    }

    #[test]
    fn ground_call_boolean_answer_fast_path() {
        for index in [TableIndex::Hash, TableIndex::Trie] {
            let mut ts = TableSpace::with_index(index);
            let id = mk(&mut ts, 0, &[Cell::int(1), Cell::int(2)]);
            assert!(!ts.has_answer(id, &[]));
            assert!(ts.add_answer(id, &[]), "first (empty) answer is new");
            assert!(!ts.add_answer(id, &[]), "a ground call has one answer");
            assert!(ts.has_answer(id, &[]));
            assert!(ts.frame(id).has_answers());
            assert_eq!(ts.frame(id).store.len(), 1);
            assert_eq!(ts.frame(id).store.get(0), &[] as &[Cell]);
            assert_eq!(ts.answer_store_cells(), 0, "boolean answers are free");
        }
    }

    #[test]
    fn template_stats_derived_at_creation() {
        let mut ts = TableSpace::new();
        // p(f(X, a), X, Y): vars X (twice), Y; ground cells f/2 and a
        let key = [
            Cell::fun(xsb_syntax::Sym(9), 2),
            Cell::tvar(0),
            Cell::con(xsb_syntax::Sym(3)),
            Cell::tvar(0),
            Cell::tvar(1),
        ];
        let id = ts.new_subgoal(
            7,
            canon(&key),
            vec![100, 101], // two distinct variables
            Rc::from(&[][..]),
            GenMode::Positive,
            Freeze::default(),
            NONE,
        );
        let f = ts.frame(id);
        assert_eq!(f.ground_cells, 2);
        assert_eq!(f.var_occ, vec![2, 1]);
        assert!(f.factored);
    }

    #[test]
    fn unfactored_mode_marks_new_frames_only() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::tvar(0)]);
        ts.set_factored(false);
        let b = mk(&mut ts, 0, &[Cell::int(1), Cell::tvar(0)]);
        assert!(ts.frame(a).factored, "existing frame keeps its mode");
        assert!(!ts.frame(b).factored);
        ts.set_factored(true);
        assert!(!ts.frame(b).factored);
    }

    #[test]
    fn dfn_and_leader_detection() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        assert!(ts.is_leader(a));
        assert!(ts.is_leader(b));
        // b consumes a → b's SCC merges downward
        // youngest is b; note dependency on a
        ts.note_dependency(a);
        assert!(!ts.is_leader(b));
        ts.propagate_dir_link(b);
        assert!(ts.is_leader(a), "a still its own leader");
        assert_eq!(ts.scc_members(a), vec![a, b]);
    }

    #[test]
    fn completion_marks_and_pops() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        ts.note_dependency(a);
        let done = ts.complete_scc(a);
        assert_eq!(done, vec![a, b]);
        assert_eq!(ts.frame(a).state, SubgoalState::Complete);
        assert_eq!(ts.frame(b).state, SubgoalState::Complete);
        assert!(ts.completion_stack.is_empty());
    }

    #[test]
    fn delete_from_removes_incomplete_only() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        // complete b first (inner SCC)
        ts.complete_scc(b);
        let removed = ts.delete_from(a);
        assert_eq!(removed, vec![a]);
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted, "completed table survives tcut");
        assert_eq!(ts.find(0, &[Cell::int(2)]), Some(b));
        assert_eq!(ts.find(0, &[Cell::int(1)]), None);
    }

    #[test]
    fn end_query_purges_incomplete() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        ts.complete_scc(b);
        ts.end_query();
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted);
        assert_eq!(ts.live_tables(), 1);
    }

    #[test]
    fn invalidate_pred_frees_completed_and_defers_incomplete() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 7, &[Cell::int(1)]);
        ts.add_answer(a, &[Cell::int(9)]);
        ts.complete_scc(a);
        let b = mk(&mut ts, 7, &[Cell::int(2)]); // still incomplete
        let other = mk(&mut ts, 8, &[Cell::int(1)]);
        ts.complete_scc(other);
        assert_eq!(ts.invalidate_pred(7), 2);
        assert!(ts.frame(a).deleted, "completed table hidden immediately");
        assert!(
            ts.frame(a).has_answers(),
            "answer store kept for in-flight choice points until end_query"
        );
        assert!(
            !ts.frame(b).deleted,
            "incomplete table survives until end_query"
        );
        assert!(!ts.frame(other).deleted, "independent predicate untouched");
        assert_eq!(ts.find(7, &[Cell::int(1)]), None);
        ts.end_query();
        assert!(ts.frame(b).deleted, "deferred invalidation lands");
        assert_eq!(ts.frame(a).store.len(), 0, "answer store released");
        // double invalidation is a no-op
        assert_eq!(ts.invalidate_pred(7), 0);
    }

    #[test]
    fn abolish_pred_drops_trie_entries() {
        let mut ts = TableSpace::with_index(TableIndex::Trie);
        let a = mk(&mut ts, 3, &[Cell::int(1)]);
        let _b = mk(&mut ts, 3, &[Cell::int(2)]);
        ts.complete_scc(a); // completes the whole stack segment: a and b
        assert_eq!(ts.abolish_pred(3), 2);
        assert!(!ts.subgoal_tries.contains_key(&3), "subgoal trie dropped");
        assert_eq!(ts.find(3, &[Cell::int(1)]), None);
        // re-creating the variant builds a fresh frame, not a resurrection
        let c = mk(&mut ts, 3, &[Cell::int(1)]);
        assert_ne!(c, a);
        assert_eq!(ts.find(3, &[Cell::int(1)]), Some(c));
    }

    #[test]
    fn abolish_call_is_per_variant() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 3, &[Cell::int(1)]);
        let b = mk(&mut ts, 3, &[Cell::int(2)]);
        ts.complete_scc(a); // completes the whole stack segment: a and b
        assert!(ts.abolish_call(3, &[Cell::int(1)]));
        assert!(!ts.abolish_call(3, &[Cell::int(1)]), "already gone");
        assert_eq!(ts.find(3, &[Cell::int(1)]), None);
        assert_eq!(ts.find(3, &[Cell::int(2)]), Some(b));
    }

    #[test]
    fn budget_evicts_least_recently_hit_first() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        for i in 0..4 {
            ts.add_answer(a, &[Cell::int(i)]);
        }
        ts.complete_scc(a);
        ts.end_query();
        let b = mk(&mut ts, 0, &[Cell::int(2)]);
        for i in 0..4 {
            ts.add_answer(b, &[Cell::int(i)]);
        }
        ts.complete_scc(b);
        ts.touch(b); // b hit in the current query epoch; a never re-hit
        ts.end_query();
        assert_eq!(ts.answer_store_cells(), 8);
        ts.set_budget(Some(6));
        let evicted = ts.enforce_budget();
        assert_eq!(evicted, vec![a], "least-recently-hit table goes first");
        assert!(ts.frame(a).deleted);
        assert!(!ts.frame(b).deleted);
        assert!(ts.answer_store_cells() <= 6);
        // already under budget: nothing more to do
        assert!(ts.enforce_budget().is_empty());
    }

    #[test]
    fn format_answer_expands_factored_bindings_into_call_form() {
        let mut syms = SymbolTable::new();
        let f = syms.intern("f");
        let g = syms.intern("g");
        let b = syms.intern("b");
        // call p(f(X), X, b) — template [f/1, _0, _0, b]
        let template = [Cell::fun(f, 1), Cell::tvar(0), Cell::tvar(0), Cell::con(b)];
        // answer X = g(1) — factored sequence [g/1, 1]
        let answer = [Cell::fun(g, 1), Cell::int(1)];
        assert_eq!(
            format_answer(&template, &answer, 1, &syms),
            "(f(g(1)),g(1),b)"
        );
        // answer X = g(Y) with Y unbound — answer-local variable prints _0
        let open = [Cell::fun(g, 1), Cell::tvar(0)];
        assert_eq!(
            format_answer(&template, &open, 1, &syms),
            "(f(g(_0)),g(_0),b)"
        );
    }

    #[test]
    fn skip_and_root_spans_walk_preorder_terms() {
        let f = xsb_syntax::Sym(4);
        // two roots: f(1, g(2)) and 7 — g also f-sym, arity differs
        let seq = [
            Cell::fun(f, 2),
            Cell::int(1),
            Cell::fun(f, 1),
            Cell::int(2),
            Cell::int(7),
        ];
        assert_eq!(skip_canon_term(&seq, 0), 4);
        assert_eq!(skip_canon_term(&seq, 4), 5);
        let mut spans = Vec::new();
        canon_root_spans(&seq, 2, &mut spans);
        assert_eq!(spans, vec![(0, 4), (4, 1)]);
    }

    fn attach(ts: &mut TableSpace) -> Arc<SharedTableStore> {
        let store = Arc::new(SharedTableStore::new());
        // generous floors: everything in these tests is shareable
        ts.attach_shared(store.clone(), 1000, 1000);
        store
    }

    #[test]
    fn publish_then_import_roundtrips_answers() {
        let mut a = TableSpace::new();
        let store = attach(&mut a);
        let id = mk(&mut a, 3, &[Cell::tvar(0)]);
        a.add_answer(id, &[Cell::int(1)]);
        a.add_answer(id, &[Cell::int(2)]);
        a.complete_scc(id);
        a.end_query();
        assert_eq!(a.publish_completed(), 1);
        assert!(
            matches!(a.frame(id).store.cells, Arena::Shared(_)),
            "publisher re-backed by the shared arena"
        );
        assert_eq!(a.publish_completed(), 0, "already published: no rework");

        // a second worker imports the table without recomputing
        let mut b = TableSpace::new();
        b.attach_shared(store, 1000, 1000);
        assert!(b.find(3, &[Cell::tvar(0)]).is_none());
        let sf = b.shared_probe(3, &[Cell::tvar(0)]).expect("shared hit");
        let bid = b.import_shared(&sf);
        assert_eq!(b.find(3, &[Cell::tvar(0)]), Some(bid));
        let f = b.frame(bid);
        assert_eq!(f.state, SubgoalState::Complete);
        assert_eq!(f.store.len(), 2);
        assert_eq!(f.store.get(0), &[Cell::int(1)]);
        assert_eq!(f.store.get(1), &[Cell::int(2)]);
        // importing copies no cells: same Arc as the publisher's arena
        match (&f.store.cells, &sf.cells) {
            (Arena::Shared(l), r) => assert!(Arc::ptr_eq(l, r)),
            _ => panic!("imported arena is shared-backed"),
        }
    }

    #[test]
    fn floors_keep_local_only_frames_out_of_the_store() {
        let mut ts = TableSpace::new();
        let store = Arc::new(SharedTableStore::new());
        ts.attach_shared(store.clone(), 5, 5);
        let below = mk(&mut ts, 3, &[Cell::con(xsb_syntax::Sym(2))]);
        let pred_above = mk(&mut ts, 9, &[Cell::tvar(0)]);
        let sym_above = mk(&mut ts, 4, &[Cell::con(xsb_syntax::Sym(7))]);
        for id in [below, pred_above, sym_above] {
            ts.add_answer(id, &[]);
        }
        ts.complete_scc(below); // whole stack segment
        ts.end_query();
        assert_eq!(ts.publish_completed(), 1, "only the below-floor frame");
        assert!(store.contains(3, &[Cell::con(xsb_syntax::Sym(2))]));
        assert!(!store.contains(9, &[Cell::tvar(0)]));
        assert!(ts.shared_probe(9, &[Cell::tvar(0)]).is_none());
        // an answer above the sym floor also blocks publication
        let mut other = TableSpace::new();
        other.attach_shared(store.clone(), 5, 5);
        let id = mk(&mut other, 4, &[Cell::tvar(0)]);
        other.add_answer(id, &[Cell::con(xsb_syntax::Sym(7))]);
        other.complete_scc(id);
        other.end_query();
        assert_eq!(other.publish_completed(), 0);
    }

    #[test]
    fn sync_invalidates_local_tables_for_remote_changes() {
        let store = Arc::new(SharedTableStore::new());
        let mut a = TableSpace::new();
        a.attach_shared(store.clone(), 1000, 1000);
        let mut b = TableSpace::new();
        b.attach_shared(store.clone(), 1000, 1000);

        let id = mk(&mut b, 7, &[Cell::int(1)]);
        b.add_answer(id, &[]);
        b.complete_scc(id);
        b.end_query();
        b.publish_completed();

        // worker a invalidates pred 7 (an assert hit its dependency)
        assert_eq!(a.shared_invalidate(&[7]), 1);
        assert!(!store.contains(7, &[Cell::int(1)]));
        // a's own watermark advanced with its write: nothing to redo
        assert_eq!(a.sync_shared(), 0);
        // b syncs and drops its local completed table
        assert_eq!(b.sync_shared(), 1);
        assert!(b.find(7, &[Cell::int(1)]).is_none());
        b.end_query();
        // local-only predicate ids (>= pred_floor) never leak pool-wide
        let mut c = TableSpace::new();
        c.attach_shared(store, 10, 10);
        assert_eq!(c.shared_invalidate(&[42]), 0);
    }

    #[test]
    fn shared_clear_forces_full_resync() {
        let store = Arc::new(SharedTableStore::new());
        let mut a = TableSpace::new();
        a.attach_shared(store.clone(), 1000, 1000);
        let mut b = TableSpace::new();
        b.attach_shared(store, 1000, 1000);
        let id = mk(&mut b, 3, &[Cell::int(1)]);
        b.add_answer(id, &[]);
        b.complete_scc(id);
        b.end_query();
        b.publish_completed();
        a.shared_clear();
        assert_eq!(b.sync_shared(), 1, "full invalidation reaches b");
        assert!(b.find(3, &[Cell::int(1)]).is_none());
    }

    #[test]
    fn mid_query_invalidate_keeps_remote_entries_replayable() {
        let store = Arc::new(SharedTableStore::new());
        let mut a = TableSpace::new();
        a.attach_shared(store.clone(), 1000, 1000);
        let mut b = TableSpace::new();
        b.attach_shared(store.clone(), 1000, 1000);
        // a holds a local completed table for pred 8
        let id = mk(&mut a, 8, &[Cell::int(1)]);
        a.add_answer(id, &[]);
        a.complete_scc(id);
        a.end_query();
        // b pushes an invalidation of pred 8 that a has not yet seen...
        assert_eq!(b.shared_invalidate(&[8]), 1);
        // ...then a logs its own invalidation of pred 7 (a mid-query
        // assert). a's watermark must NOT leapfrog b's log entry:
        assert_eq!(a.shared_invalidate(&[7]), 1);
        // the next sync still replays it and drops a's pred-8 table
        assert_eq!(a.sync_shared(), 1);
        assert!(a.find(8, &[Cell::int(1)]).is_none());
    }

    #[test]
    fn mid_query_invalidate_blocks_stale_publish_until_resync() {
        let store = Arc::new(SharedTableStore::new());
        let mut a = TableSpace::new();
        a.attach_shared(store.clone(), 1000, 1000);
        // a completes a table, then the same query performs an update
        // (invalidating some other predicate pool-wide)
        let id = mk(&mut a, 3, &[Cell::tvar(0)]);
        a.add_answer(id, &[Cell::int(1)]);
        a.complete_scc(id);
        assert_eq!(a.shared_invalidate(&[7]), 1);
        a.end_query();
        // the frame is stamped with the query-start epoch; the store has
        // moved past it, so the publish is rejected rather than entering
        // at the post-update epoch
        assert_eq!(a.publish_completed(), 0);
        assert!(!store.contains(3, &[Cell::tvar(0)]));
        // the next query's sync confirms the frame survived: the retry
        // publishes at the new epoch
        assert_eq!(a.sync_shared(), 0);
        a.end_query();
        assert_eq!(a.publish_completed(), 1);
        assert!(store.contains(3, &[Cell::tvar(0)]));
    }

    #[test]
    fn diverged_worker_neither_publishes_nor_imports() {
        let store = Arc::new(SharedTableStore::new());
        let mut a = TableSpace::new();
        a.attach_shared(store.clone(), 1000, 1000);
        let mut b = TableSpace::new();
        b.attach_shared(store.clone(), 1000, 1000);
        let id = mk(&mut b, 3, &[Cell::tvar(0)]);
        b.add_answer(id, &[Cell::int(1)]);
        b.complete_scc(id);
        b.end_query();
        assert_eq!(b.publish_completed(), 1);
        // a broadcast update (consult_all) diverges nobody
        a.set_shared_broadcast(true);
        a.note_local_mutation(5, &[3]);
        a.set_shared_broadcast(false);
        assert!(!a.shared_diverged());
        assert!(a.shared_probe(3, &[Cell::tvar(0)]).is_some());
        // mutations that stay above the floors diverge nobody either
        a.note_local_mutation(2000, &[2001]);
        assert!(!a.shared_diverged());
        // a non-broadcast mutation below the floor detaches a
        a.note_local_mutation(5, &[3]);
        assert!(a.shared_diverged());
        assert!(a.shared_probe(3, &[Cell::tvar(0)]).is_none(), "no imports");
        let aid = mk(&mut a, 4, &[Cell::tvar(0)]);
        a.add_answer(aid, &[Cell::int(2)]);
        a.complete_scc(aid);
        a.end_query();
        assert_eq!(a.publish_completed(), 0, "no publishes");
        // an above-floor mutation with a below-floor tabled dependent
        // diverges too (a consult_all-added clause can wire that up)
        let mut c = TableSpace::new();
        c.attach_shared(store, 10, 10);
        c.note_local_mutation(42, &[3]);
        assert!(c.shared_diverged());
        // b is unaffected throughout
        assert!(!b.shared_diverged());
    }

    #[test]
    fn clock_advances_per_query_and_marks_cross_query_reuse() {
        let mut ts = TableSpace::new();
        let a = mk(&mut ts, 0, &[Cell::int(1)]);
        ts.complete_scc(a);
        assert_eq!(ts.frame(a).born, ts.clock(), "same-query: born == clock");
        ts.end_query();
        assert!(
            ts.frame(a).born < ts.clock(),
            "next query sees an older table"
        );
    }
}
