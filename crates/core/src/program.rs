//! The program database: predicate table, code area, directives.
//!
//! XSB distinguishes *static* predicates (fully compiled, unchanging) from
//! *dynamic* predicates (assert/retract, hash-indexed) — paper §4.2. Both
//! live here, keyed by functor/arity. Directives handled:
//!
//! * `:- table p/2.` — per-predicate tabling (§4.3)
//! * `:- table_all.` — call-graph analysis that tables enough predicates to
//!   break every loop (§4.3)
//! * `:- dynamic p/2.` — declare a dynamic predicate
//! * `:- index(p/5, [1,2,3+5]).` — dynamic-predicate index specs (§4.5)
//! * `:- first_string_index p/2.` — static first-string indexing (§4.5)

use crate::builtins::Builtin;
use crate::dynamic::{DynPred, IndexSpec};
use crate::instr::{CodeArea, CodePtr, Instr, PredId};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use xsb_syntax::{well_known, Sym, SymbolTable, Term};

/// How a static predicate is indexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StaticIndex {
    /// first-argument hash (switch_on_term / constant / structure)
    #[default]
    Hash,
    /// first-string discrimination trie (paper §4.5, Example 4.2)
    FirstString,
}

/// Predicate implementation.
#[derive(Clone, Debug)]
pub enum PredKind {
    /// referenced but not (yet) defined; calling it fails with an error
    Undefined,
    Static {
        entry: CodePtr,
        /// individual clause entry points (the generator iterates these
        /// for tabled predicates)
        clauses: Rc<[CodePtr]>,
    },
    Dynamic {
        dynidx: u32,
    },
    Builtin(Builtin),
}

/// One predicate.
#[derive(Clone, Debug)]
pub struct Pred {
    pub name: Sym,
    pub arity: u16,
    pub tabled: bool,
    pub kind: PredKind,
    pub static_index: StaticIndex,
}

/// Pre-assembled internal code snippets.
#[derive(Clone, Copy, Debug, Default)]
pub struct Snippets {
    /// a single `Fail` instruction
    pub fail: CodePtr,
    /// `FindallCollect; Fail`
    pub findall_collect: CodePtr,
    /// `NafCutFail`
    pub naf_cut: CodePtr,
    /// `HaltSolution`
    pub halt: CodePtr,
}

/// The full program: predicates, compiled code, dynamic clause stores.
pub struct Program {
    pub preds: Vec<Pred>,
    pub pred_map: HashMap<(Sym, u16), PredId>,
    pub code: CodeArea,
    pub dynamics: Vec<DynPred>,
    pub snippets: Snippets,
    /// Predicate dependency graph, callee → direct callers. Built from
    /// clause bodies at consult time and maintained incrementally on
    /// `assert`; drives table invalidation when a dynamic predicate
    /// changes ([`Program::tabled_dependents`]).
    dep_callers: HashMap<PredId, HashSet<PredId>>,
    /// Worker count of the engine pool this program serves (0 = not in a
    /// pool). Reported by the `pool_workers/1` builtin.
    pub pool_workers: u32,
    /// Superinstruction fusion toggle (`set_fusion/1`). When on (the
    /// default), [`Program::fuse_range`] peephole-rewrites freshly compiled
    /// code; when off, newly compiled code stays unfused — the baseline the
    /// differential tests compare against. Already-compiled code is never
    /// rewritten by the toggle.
    pub fusion_enabled: bool,
    /// Write-ahead-log attachment; `None` for purely in-memory engines.
    pub durable: Option<crate::durable::DurableConn>,
    /// Open explicit transaction (`begin_transaction/0`), if any. Spans
    /// queries: begin in one query, commit or abort in a later one.
    pub txn: Option<crate::durable::ActiveTxn>,
    /// txid allocator for transactions on engines with no WAL attached.
    pub next_local_tx: u64,
}

impl Program {
    /// Creates an empty program with builtins registered and internal
    /// snippets assembled.
    pub fn new(syms: &mut SymbolTable) -> Program {
        let mut p = Program {
            preds: Vec::new(),
            pred_map: HashMap::new(),
            code: CodeArea::new(),
            dynamics: Vec::new(),
            snippets: Snippets::default(),
            dep_callers: HashMap::new(),
            pool_workers: 0,
            fusion_enabled: true,
            durable: None,
            txn: None,
            next_local_tx: 1,
        };
        p.snippets.fail = p.code.emit(Instr::Fail);
        p.snippets.findall_collect = p.code.emit(Instr::FindallCollect);
        p.code.emit(Instr::Fail);
        p.snippets.naf_cut = p.code.emit(Instr::NafCutFail);
        p.snippets.halt = p.code.emit(Instr::HaltSolution);
        for (name, arity, b) in Builtin::registry() {
            let s = syms.intern(name);
            let id = p.ensure_pred(s, arity);
            p.preds[id as usize].kind = PredKind::Builtin(b);
        }
        p
    }

    /// Post-compile superinstruction fusion: peephole-rewrites the hottest
    /// adjacent instruction sequences of `code[start..]` (chosen from the
    /// committed opcode-pair profile) into fused variants. Only the
    /// *first* instruction of each fused sequence is overwritten; the
    /// shadowed originals remain in place, so no code address moves and a
    /// jump landing mid-sequence executes the original tail unchanged.
    /// Returns the number of superinstructions installed.
    ///
    /// Rules, in match order (first-op occurrences only):
    ///
    /// | sequence                         | superinstruction         |
    /// |----------------------------------|--------------------------|
    /// | `get_structure; unify…{k≥1}`     | `get_structure_unify`    |
    /// | `get_list; unify…{k≥1}`          | `get_list_unify`         |
    /// | `unify…{k≥2}`                    | `unify_run` (side pool)  |
    /// | `put_value_x; call`              | `put_value_x_call`       |
    /// | `put_value_y; call`              | `put_value_y_call`       |
    /// | `put_value_y; put_value_y`       | `put_value_y2`           |
    /// | `allocate; save_generator`       | `allocate_save_generator`|
    /// | `deallocate; proceed`            | `deallocate_proceed`     |
    /// | `get_constant; proceed`          | `get_constant_proceed`   |
    pub fn fuse_range(&mut self, start: CodePtr) -> usize {
        if !self.fusion_enabled {
            return 0;
        }
        let end = self.code.code.len();
        let mut i = start as usize;
        let mut installed = 0usize;
        while i + 1 < end {
            let (fst, snd) = (self.code.code[i], self.code.code[i + 1]);
            // get_structure followed by its unify sequence: read/write mode
            // is resolved once, then the tail executes in place
            if let Instr::GetStructure { f, n, a } = fst {
                let mut k = 0usize;
                while i + 1 + k < end
                    && k < u16::MAX as usize
                    && self.code.code[i + 1 + k].is_unify_op()
                {
                    k += 1;
                }
                if k > 0 {
                    self.code.code[i] = Instr::GetStructureUnify {
                        f,
                        n,
                        a,
                        len: k as u16,
                    };
                    installed += 1;
                    i += 1 + k; // shadowed tail must stay original: executed live
                    continue;
                }
                i += 1;
                continue;
            }
            // get_list likewise absorbs its unify tail — the hottest pair
            // in the committed opcode-pair profile (every list cell walked
            // or built dispatches it)
            if let Instr::GetList { a } = fst {
                let mut k = 0usize;
                while i + 1 + k < end
                    && k < u16::MAX as usize
                    && self.code.code[i + 1 + k].is_unify_op()
                {
                    k += 1;
                }
                if k > 0 {
                    self.code.code[i] = Instr::GetListUnify { a, len: k as u16 };
                    installed += 1;
                    i += 1 + k; // shadowed tail must stay original: executed live
                    continue;
                }
                i += 1;
                continue;
            }
            // a standalone unify run (write-mode argument building after
            // put_structure): gather the whole run into the side pool, since
            // the first op is overwritten by the UnifyRun itself
            if fst.is_unify_op() && snd.is_unify_op() {
                let mut k = 2usize;
                while i + k < end && k < u16::MAX as usize && self.code.code[i + k].is_unify_op() {
                    k += 1;
                }
                let run = self.code.unify_runs.len() as u32;
                let slice: Vec<Instr> = self.code.code[i..i + k].to_vec();
                self.code.unify_runs.extend_from_slice(&slice);
                self.code.code[i] = Instr::UnifyRun { run, len: k as u16 };
                installed += 1;
                i += k;
                continue;
            }
            let rewritten = match (fst, snd) {
                (Instr::PutValueX { x, a }, Instr::Call { pred }) => {
                    Some(Instr::PutValueXCall { x, a, pred })
                }
                (Instr::PutValueY { y, a }, Instr::Call { pred }) => {
                    Some(Instr::PutValueYCall { y, a, pred })
                }
                (Instr::PutValueY { y: y1, a: a1 }, Instr::PutValueY { y: y2, a: a2 }) => {
                    Some(Instr::PutValueY2 { y1, a1, y2, a2 })
                }
                (Instr::Allocate { nperms }, Instr::SaveGenerator { y }) => {
                    Some(Instr::AllocateSaveGenerator { nperms, y })
                }
                (Instr::Deallocate, Instr::Proceed) => Some(Instr::DeallocateProceed),
                (Instr::GetConstant { c, a }, Instr::Proceed) => {
                    Some(Instr::GetConstantProceed { c, a })
                }
                _ => None,
            };
            if let Some(r) = rewritten {
                self.code.code[i] = r;
                installed += 1;
                i += 2; // the shadowed second op stays for jump-ins
            } else {
                i += 1;
            }
        }
        installed
    }

    /// Looks up or creates the predicate `name/arity`.
    pub fn ensure_pred(&mut self, name: Sym, arity: u16) -> PredId {
        if let Some(&id) = self.pred_map.get(&(name, arity)) {
            return id;
        }
        let id = self.preds.len() as PredId;
        self.preds.push(Pred {
            name,
            arity,
            tabled: false,
            kind: PredKind::Undefined,
            static_index: StaticIndex::Hash,
        });
        self.pred_map.insert((name, arity), id);
        id
    }

    pub fn lookup_pred(&self, name: Sym, arity: u16) -> Option<PredId> {
        self.pred_map.get(&(name, arity)).copied()
    }

    pub fn pred(&self, id: PredId) -> &Pred {
        &self.preds[id as usize]
    }

    /// Marks `name/arity` tabled. Errors if already defined as dynamic
    /// (tabling is supported for static predicates, as in XSB v1.3).
    pub fn declare_tabled(&mut self, name: Sym, arity: u16) -> Result<(), String> {
        let id = self.ensure_pred(name, arity);
        if matches!(self.preds[id as usize].kind, PredKind::Dynamic { .. }) {
            return Err("cannot table a dynamic predicate".into());
        }
        self.preds[id as usize].tabled = true;
        Ok(())
    }

    /// Declares `name/arity` dynamic, creating its clause store.
    pub fn declare_dynamic(&mut self, name: Sym, arity: u16) -> Result<PredId, String> {
        let id = self.ensure_pred(name, arity);
        match self.preds[id as usize].kind {
            PredKind::Dynamic { .. } => Ok(id),
            PredKind::Undefined => {
                let dynidx = self.dynamics.len() as u32;
                self.dynamics.push(DynPred::new(arity));
                self.preds[id as usize].kind = PredKind::Dynamic { dynidx };
                Ok(id)
            }
            _ => Err("predicate already defined as static or builtin".into()),
        }
    }

    /// The dynamic store of a predicate, if it is dynamic.
    pub fn dyn_of(&self, id: PredId) -> Option<&DynPred> {
        match self.preds[id as usize].kind {
            PredKind::Dynamic { dynidx } => Some(&self.dynamics[dynidx as usize]),
            _ => None,
        }
    }

    pub fn dyn_of_mut(&mut self, id: PredId) -> Option<&mut DynPred> {
        match self.preds[id as usize].kind {
            PredKind::Dynamic { dynidx } => Some(&mut self.dynamics[dynidx as usize]),
            _ => None,
        }
    }

    /// Applies an `index(p/N, Specs)` directive to a dynamic predicate,
    /// e.g. `index(p/5, [1, 2, 3+5])`.
    pub fn apply_index_directive(&mut self, d: &Term) -> Result<(), String> {
        let args = match d {
            Term::Compound(f, args) if *f == well_known::INDEX && args.len() == 2 => args,
            _ => return Err("malformed index/2 directive".into()),
        };
        let (name, arity) = pred_indicator(&args[0]).ok_or("index/2: expected p/N")?;
        let specs = parse_index_specs(&args[1]).ok_or("index/2: bad spec list")?;
        let id = self.declare_dynamic(name, arity)?;
        let dp = self.dyn_of_mut(id).expect("just declared dynamic");
        dp.set_indexes(specs)?;
        Ok(())
    }

    /// Resolves a goal term to its predicate id (by functor/arity).
    pub fn pred_of_goal(&self, goal: &Term) -> Option<PredId> {
        let (f, n) = goal.functor()?;
        self.lookup_pred(f, n as u16)
    }

    /// Records one dependency edge: `caller` has a clause whose body may
    /// call `callee`.
    pub fn record_dep(&mut self, caller: PredId, callee: PredId) {
        self.dep_callers.entry(callee).or_default().insert(caller);
    }

    /// Records dependency edges for every predicate a clause-body goal may
    /// call (descending through `,`/`;`/`->` and the negation wrappers).
    /// Callees not seen before are created as `Undefined` predicates so
    /// the edge survives until they are defined.
    pub fn record_goal_deps(&mut self, caller: PredId, goal: &Term) {
        for (f, n) in goal_callees(goal) {
            let callee = self.ensure_pred(f, n);
            self.record_dep(caller, callee);
        }
    }

    /// Tabled predicates that (transitively) depend on `changed`: walks the
    /// caller edges up from `changed`, collecting every tabled predicate
    /// reached. These are exactly the tables a change to `changed` can make
    /// stale. Meta-calls (`call/N` with a runtime-constructed goal) are not
    /// tracked — see DESIGN.md.
    pub fn tabled_dependents(&self, changed: PredId) -> Vec<PredId> {
        let mut seen: HashSet<PredId> = HashSet::new();
        let mut out = Vec::new();
        let mut work = vec![changed];
        seen.insert(changed);
        while let Some(p) = work.pop() {
            if self.preds[p as usize].tabled {
                out.push(p);
            }
            if let Some(callers) = self.dep_callers.get(&p) {
                for &c in callers {
                    if seen.insert(c) {
                        work.push(c);
                    }
                }
            }
        }
        out
    }
}

/// Parses `p/2` into `(sym, 2)`.
pub fn pred_indicator(t: &Term) -> Option<(Sym, u16)> {
    match t {
        Term::Compound(f, args) if *f == well_known::SLASH && args.len() == 2 => {
            match (&args[0], &args[1]) {
                (Term::Atom(s), Term::Int(n)) => Some((*s, *n as u16)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Parses the spec list of `index/2`: each element is a field number or a
/// `+`-joined combination (at most 3 fields, per the paper).
fn parse_index_specs(t: &Term) -> Option<Vec<IndexSpec>> {
    let mut specs = Vec::new();
    let mut cur = t;
    loop {
        match cur {
            Term::Atom(s) if *s == well_known::NIL => break,
            Term::Compound(f, args) if *f == well_known::DOT && args.len() == 2 => {
                specs.push(parse_one_spec(&args[0])?);
                cur = &args[1];
            }
            _ => return None,
        }
    }
    Some(specs)
}

fn parse_one_spec(t: &Term) -> Option<IndexSpec> {
    let mut fields = Vec::new();
    fn collect(t: &Term, out: &mut Vec<u16>) -> Option<()> {
        match t {
            Term::Int(i) if *i >= 1 => {
                out.push(*i as u16 - 1); // 1-based in source, 0-based here
                Some(())
            }
            Term::Compound(f, args) if *f == well_known::PLUS && args.len() == 2 => {
                collect(&args[0], out)?;
                collect(&args[1], out)
            }
            _ => None,
        }
    }
    collect(t, &mut fields)?;
    if fields.is_empty() || fields.len() > 3 {
        return None; // joint indexes limited to 3 fields (paper §4.5)
    }
    Some(IndexSpec { fields })
}

/// `table_all` support: given the clause groups of one consulted module,
/// returns the predicates that must be tabled so that every loop in the
/// call graph is broken. As in the paper, "simplicity and speed were chosen
/// over refinements in the precision of the algorithm": every predicate on
/// a cycle (any non-trivial SCC, or a self-loop) is tabled.
pub fn table_all_analysis(
    groups: &HashMap<(Sym, u16), Vec<xsb_syntax::Clause>>,
) -> Vec<(Sym, u16)> {
    // build call graph among the module's predicates
    let keys: Vec<(Sym, u16)> = groups.keys().copied().collect();
    let index: HashMap<(Sym, u16), usize> = keys
        .iter()
        .copied()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
    for (k, clauses) in groups {
        let from = index[k];
        for c in clauses {
            for g in &c.body {
                for callee in goal_callees(g) {
                    if let Some(&to) = index.get(&callee) {
                        edges[from].push(to);
                    }
                }
            }
        }
    }
    // Tarjan SCC
    let n = keys.len();
    let mut ids = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_id = 0usize;
    let mut result: Vec<(Sym, u16)> = Vec::new();

    // iterative Tarjan to avoid recursion limits on big modules
    #[derive(Clone)]
    struct StackFrame {
        v: usize,
        edge: usize,
    }
    for start in 0..n {
        if ids[start] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![StackFrame { v: start, edge: 0 }];
        ids[start] = next_id;
        low[start] = next_id;
        next_id += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(frame) = call_stack.last().cloned() {
            let v = frame.v;
            if frame.edge < edges[v].len() {
                let w = edges[v][frame.edge];
                call_stack.last_mut().expect("nonempty").edge += 1;
                if ids[w] == usize::MAX {
                    ids[w] = next_id;
                    low[w] = next_id;
                    next_id += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push(StackFrame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(ids[w]);
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    low[parent.v] = low[parent.v].min(low[v]);
                }
                if low[v] == ids[v] {
                    // root of an SCC: pop members
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        on_stack[w] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = members.len() > 1 || edges[v].contains(&v); // self-loop
                    if cyclic {
                        result.extend(members.iter().map(|&m| keys[m]));
                    }
                }
            }
        }
    }
    result
}

/// Functor/arity pairs of predicates a goal may call (descending through
/// control constructs and negation).
fn goal_callees(g: &Term) -> Vec<(Sym, u16)> {
    let mut out = Vec::new();
    fn walk(g: &Term, out: &mut Vec<(Sym, u16)>) {
        match g {
            Term::Compound(f, args)
                if (*f == well_known::COMMA
                    || *f == well_known::SEMICOLON
                    || *f == well_known::ARROW)
                    && args.len() == 2 =>
            {
                walk(&args[0], out);
                walk(&args[1], out);
            }
            Term::Compound(f, args)
                if (*f == well_known::NAF
                    || *f == well_known::TNOT
                    || *f == well_known::E_TNOT
                    || *f == well_known::NOT)
                    && args.len() == 1 =>
            {
                walk(&args[0], out);
            }
            Term::Atom(s) => out.push((*s, 0)),
            Term::Compound(f, args) => out.push((*f, args.len() as u16)),
            _ => {}
        }
    }
    walk(g, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::{parse_program, Clause, Item, OpTable};

    #[test]
    fn ensure_pred_is_idempotent() {
        let mut syms = SymbolTable::new();
        let mut p = Program::new(&mut syms);
        let s = syms.intern("foo");
        let a = p.ensure_pred(s, 2);
        let b = p.ensure_pred(s, 2);
        assert_eq!(a, b);
        assert_ne!(p.ensure_pred(s, 3), a, "arity distinguishes predicates");
    }

    #[test]
    fn builtins_are_registered() {
        let mut syms = SymbolTable::new();
        let p = Program::new(&mut syms);
        let is = syms.lookup("is").unwrap();
        let id = p.lookup_pred(is, 2).unwrap();
        assert!(matches!(p.pred(id).kind, PredKind::Builtin(_)));
    }

    #[test]
    fn index_directive_round_trip() {
        let mut syms = SymbolTable::new();
        let mut p = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program(":- index(p/5, [1, 2, 3+5]).", &mut syms, &ops).unwrap();
        let d = match &items[0] {
            Item::Directive(d) => d.clone(),
            _ => panic!(),
        };
        p.apply_index_directive(&d).unwrap();
        let s = syms.lookup("p").unwrap();
        let id = p.lookup_pred(s, 5).unwrap();
        let dp = p.dyn_of(id).unwrap();
        assert_eq!(dp.index_specs().len(), 3);
        assert_eq!(dp.index_specs()[2].fields, vec![2, 4]);
    }

    #[test]
    fn joint_index_rejects_more_than_three_fields() {
        let mut syms = SymbolTable::new();
        let mut p = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program(":- index(p/5, [1+2+3+4]).", &mut syms, &ops).unwrap();
        let d = match &items[0] {
            Item::Directive(d) => d.clone(),
            _ => panic!(),
        };
        assert!(p.apply_index_directive(&d).is_err());
    }

    fn groups_of(src: &str, syms: &mut SymbolTable) -> HashMap<(Sym, u16), Vec<Clause>> {
        let ops = OpTable::standard();
        let items = parse_program(src, syms, &ops).unwrap();
        let mut groups: HashMap<(Sym, u16), Vec<Clause>> = HashMap::new();
        for it in items {
            if let Item::Clause(c) = it {
                let (f, n) = c.head.functor().unwrap();
                groups.entry((f, n as u16)).or_default().push(c);
            }
        }
        groups
    }

    #[test]
    fn table_all_tables_recursive_predicates_only() {
        let mut syms = SymbolTable::new();
        let src = r#"
            path(X,Y) :- edge(X,Y).
            path(X,Y) :- path(X,Z), edge(Z,Y).
            edge(1,2).
            helper(X) :- edge(X,X).
        "#;
        let groups = groups_of(src, &mut syms);
        let tabled = table_all_analysis(&groups);
        let path = syms.lookup("path").unwrap();
        assert_eq!(tabled, vec![(path, 2)]);
    }

    #[test]
    fn table_all_handles_mutual_recursion() {
        let mut syms = SymbolTable::new();
        let src = r#"
            even(0).
            even(X) :- X > 0, Y is X - 1, odd(Y).
            odd(X) :- X > 0, Y is X - 1, even(Y).
        "#;
        let groups = groups_of(src, &mut syms);
        let mut tabled = table_all_analysis(&groups);
        tabled.sort();
        let even = syms.lookup("even").unwrap();
        let odd = syms.lookup("odd").unwrap();
        let mut expect = vec![(even, 1), (odd, 1)];
        expect.sort();
        assert_eq!(tabled, expect);
    }

    #[test]
    fn dependency_graph_finds_transitive_tabled_callers() {
        let mut syms = SymbolTable::new();
        let mut p = Program::new(&mut syms);
        let edge = p.ensure_pred(syms.intern("edge"), 2);
        let path = p.ensure_pred(syms.intern("path"), 2);
        let reach = p.ensure_pred(syms.intern("reach"), 1);
        let island = p.ensure_pred(syms.intern("island"), 1);
        p.preds[path as usize].tabled = true;
        p.preds[reach as usize].tabled = true;
        p.preds[island as usize].tabled = true;
        // path calls edge; reach calls path; island calls nothing
        p.record_dep(path, edge);
        p.record_dep(reach, path);
        let mut deps = p.tabled_dependents(edge);
        deps.sort_unstable();
        assert_eq!(deps, vec![path, reach], "island is unaffected");
        assert!(p.tabled_dependents(island).contains(&island));
    }

    #[test]
    fn record_goal_deps_descends_control_constructs() {
        let mut syms = SymbolTable::new();
        let mut p = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program("top :- (a, tnot b ; c -> d).", &mut syms, &ops).unwrap();
        let c = match &items[0] {
            Item::Clause(c) => c.clone(),
            _ => panic!(),
        };
        let top = p.ensure_pred(syms.lookup("top").unwrap(), 0);
        p.preds[top as usize].tabled = true;
        for g in &c.body {
            p.record_goal_deps(top, g);
        }
        for name in ["a", "b", "c", "d"] {
            let callee = p.lookup_pred(syms.lookup(name).unwrap(), 0).unwrap();
            assert_eq!(p.tabled_dependents(callee), vec![top], "callee {name}");
        }
    }

    #[test]
    fn table_all_sees_through_negation() {
        let mut syms = SymbolTable::new();
        let src = "win(X) :- move(X,Y), tnot win(Y).\nmove(1,2).";
        let groups = groups_of(src, &mut syms);
        let tabled = table_all_analysis(&groups);
        let win = syms.lookup("win").unwrap();
        assert_eq!(tabled, vec![(win, 1)]);
    }
}
