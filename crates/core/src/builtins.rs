//! Builtin predicates.
//!
//! Builtins are ordinary predicates whose [`crate::program::PredKind`] is
//! `Builtin`; the emulator dispatches them to [`exec_builtin`]. Three
//! classes matter to the compiler (see `compile::goal_boundary`):
//!
//! * *transparent* builtins (arithmetic, unification, type tests, …) touch
//!   neither the continuation register nor the X registers;
//! * *CP-creating* builtins (`between/3`, `retract/1`) push choice points;
//! * *meta* builtins (`call/N`, `findall/3`, `\+`, `tnot`, …) transfer
//!   control into user code.

use crate::cell::{Cell, Tag};
use crate::dynamic::outer_token;
use crate::error::EngineError;
use crate::instr::CodePtr;
use crate::machine::{Alt, FindallRecord, Machine};
use std::cmp::Ordering;
use std::rc::Rc;
use xsb_obs::{Counter, SlgEvent};
use xsb_syntax::{well_known, Sym, SymbolTable};

/// Identifies a builtin predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    // unification & comparison
    Unify,
    NotUnify,
    TermEq,
    TermNeq,
    TermLt,
    TermGt,
    TermLe,
    TermGe,
    Compare,
    // arithmetic
    Is,
    ArithLt,
    ArithGt,
    ArithLe,
    ArithGe,
    ArithEq,
    ArithNeq,
    // type tests
    VarP,
    NonvarP,
    AtomP,
    NumberP,
    IntegerP,
    AtomicP,
    CompoundP,
    CallableP,
    IsList,
    // term construction/inspection
    Functor,
    Arg,
    Univ,
    CopyTerm,
    // control / meta
    CallN(u8),
    Findall,
    Tfindall,
    Bagof,
    Setof,
    Naf,
    Tnot,
    ETnot,
    Tcut,
    TrueB,
    FailB,
    Between,
    // database
    Assert,
    Asserta,
    Assertz,
    Retract,
    Retractall,
    AbolishAllTables,
    AbolishTablePred,
    AbolishTableCall,
    SetTableBudget,
    SetAnswerFactoring,
    SetFusion,
    // durability (DESIGN.md §2.11)
    SetDurability,
    SetGroupCommit,
    Checkpoint0,
    BeginTxn,
    CommitTxn,
    AbortTxn,
    // observability
    Statistics0,
    Statistics2,
    TablesB,
    PoolWorkers,
    SetProfiling,
    Profile0,
    ProfileReset,
    SetSlowQueryThreshold,
    // I/O & misc
    WriteB,
    WritelnB,
    Nl,
    SortB,
    MsortB,
}

impl Builtin {
    /// Builtins that transfer control into user code (they set the
    /// continuation register before jumping).
    pub fn clobbers_cont(self) -> bool {
        matches!(
            self,
            Builtin::CallN(_)
                | Builtin::Findall
                | Builtin::Tfindall
                | Builtin::Bagof
                | Builtin::Setof
                | Builtin::Naf
                | Builtin::Tnot
                | Builtin::ETnot
        )
    }

    /// Builtins that push a choice point (X registers are stale after a
    /// retry, so they are chunk boundaries).
    pub fn creates_cp(self) -> bool {
        matches!(self, Builtin::Between | Builtin::Retract)
    }

    /// All builtins with their source names and arities.
    pub fn registry() -> Vec<(&'static str, u16, Builtin)> {
        let mut v = vec![
            ("=", 2, Builtin::Unify),
            ("\\=", 2, Builtin::NotUnify),
            ("==", 2, Builtin::TermEq),
            ("\\==", 2, Builtin::TermNeq),
            ("@<", 2, Builtin::TermLt),
            ("@>", 2, Builtin::TermGt),
            ("@=<", 2, Builtin::TermLe),
            ("@>=", 2, Builtin::TermGe),
            ("compare", 3, Builtin::Compare),
            ("is", 2, Builtin::Is),
            ("<", 2, Builtin::ArithLt),
            (">", 2, Builtin::ArithGt),
            ("=<", 2, Builtin::ArithLe),
            (">=", 2, Builtin::ArithGe),
            ("=:=", 2, Builtin::ArithEq),
            ("=\\=", 2, Builtin::ArithNeq),
            ("var", 1, Builtin::VarP),
            ("nonvar", 1, Builtin::NonvarP),
            ("atom", 1, Builtin::AtomP),
            ("number", 1, Builtin::NumberP),
            ("integer", 1, Builtin::IntegerP),
            ("atomic", 1, Builtin::AtomicP),
            ("compound", 1, Builtin::CompoundP),
            ("callable", 1, Builtin::CallableP),
            ("is_list", 1, Builtin::IsList),
            ("functor", 3, Builtin::Functor),
            ("arg", 3, Builtin::Arg),
            ("=..", 2, Builtin::Univ),
            ("copy_term", 2, Builtin::CopyTerm),
            ("findall", 3, Builtin::Findall),
            ("tfindall", 3, Builtin::Tfindall),
            ("bagof", 3, Builtin::Bagof),
            ("setof", 3, Builtin::Setof),
            ("\\+", 1, Builtin::Naf),
            ("not", 1, Builtin::Naf),
            ("tnot", 1, Builtin::Tnot),
            ("e_tnot", 1, Builtin::ETnot),
            ("tcut", 0, Builtin::Tcut),
            ("true", 0, Builtin::TrueB),
            ("fail", 0, Builtin::FailB),
            ("false", 0, Builtin::FailB),
            ("between", 3, Builtin::Between),
            ("assert", 1, Builtin::Assert),
            ("asserta", 1, Builtin::Asserta),
            ("assertz", 1, Builtin::Assertz),
            ("retract", 1, Builtin::Retract),
            ("retractall", 1, Builtin::Retractall),
            ("abolish_all_tables", 0, Builtin::AbolishAllTables),
            ("abolish_table_pred", 1, Builtin::AbolishTablePred),
            ("abolish_table_call", 1, Builtin::AbolishTableCall),
            ("set_table_budget", 1, Builtin::SetTableBudget),
            ("set_answer_factoring", 1, Builtin::SetAnswerFactoring),
            ("set_fusion", 1, Builtin::SetFusion),
            ("set_durability", 1, Builtin::SetDurability),
            ("set_group_commit", 1, Builtin::SetGroupCommit),
            ("checkpoint", 0, Builtin::Checkpoint0),
            ("begin_transaction", 0, Builtin::BeginTxn),
            ("commit_transaction", 0, Builtin::CommitTxn),
            ("abort_transaction", 0, Builtin::AbortTxn),
            ("statistics", 0, Builtin::Statistics0),
            ("statistics", 2, Builtin::Statistics2),
            ("tables", 0, Builtin::TablesB),
            ("pool_workers", 1, Builtin::PoolWorkers),
            ("set_profiling", 1, Builtin::SetProfiling),
            ("profile", 0, Builtin::Profile0),
            ("profile_reset", 0, Builtin::ProfileReset),
            (
                "set_slow_query_threshold",
                1,
                Builtin::SetSlowQueryThreshold,
            ),
            ("write", 1, Builtin::WriteB),
            ("writeln", 1, Builtin::WritelnB),
            ("nl", 0, Builtin::Nl),
            ("sort", 2, Builtin::SortB),
            ("msort", 2, Builtin::MsortB),
        ];
        for n in 1..=8u8 {
            v.push(("call", n as u16, Builtin::CallN(n)));
        }
        v
    }
}

/// What the emulator does after a builtin returns.
#[derive(Debug, PartialEq)]
pub enum BAction {
    /// fall through (or proceed, when the builtin was a tail call)
    Continue,
    /// backtrack
    Fail,
    /// the builtin already set up the program counter / dispatched
    Jumped,
}

/// Executes builtin `b`. `resume` is where execution continues on success
/// for CP-creating builtins (the instruction after the call for non-tail
/// calls, the continuation for tail calls). `is_tail` is true when invoked
/// via `Execute`.
pub fn exec_builtin(
    m: &mut Machine,
    syms: &mut SymbolTable,
    b: Builtin,
    resume: CodePtr,
    is_tail: bool,
) -> Result<BAction, EngineError> {
    match b {
        Builtin::Unify => {
            let (a, b2) = (m.x[0], m.x[1]);
            Ok(if m.unify(a, b2) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::NotUnify => {
            let mark = m.tip;
            let (a, b2) = (m.x[0], m.x[1]);
            let unified = m.unify(a, b2);
            m.unwind_to(mark);
            Ok(if unified {
                BAction::Fail
            } else {
                BAction::Continue
            })
        }
        Builtin::TermEq => cmp_result(m, syms, &[Ordering::Equal]),
        Builtin::TermNeq => cmp_result(m, syms, &[Ordering::Less, Ordering::Greater]),
        Builtin::TermLt => cmp_result(m, syms, &[Ordering::Less]),
        Builtin::TermGt => cmp_result(m, syms, &[Ordering::Greater]),
        Builtin::TermLe => cmp_result(m, syms, &[Ordering::Less, Ordering::Equal]),
        Builtin::TermGe => cmp_result(m, syms, &[Ordering::Greater, Ordering::Equal]),
        Builtin::Compare => {
            let o = m.compare(m.x[1], m.x[2], syms);
            let s = match o {
                Ordering::Less => well_known::LT,
                Ordering::Equal => well_known::EQ,
                Ordering::Greater => well_known::GT,
            };
            let c = Cell::con(s);
            let a0 = m.x[0];
            Ok(if m.unify(a0, c) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::Is => {
            let v = eval_arith(m, m.x[1])?;
            let a0 = m.x[0];
            let c = Cell::int(v);
            Ok(if m.unify(a0, c) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::ArithLt => arith_cmp(m, |a, b| a < b),
        Builtin::ArithGt => arith_cmp(m, |a, b| a > b),
        Builtin::ArithLe => arith_cmp(m, |a, b| a <= b),
        Builtin::ArithGe => arith_cmp(m, |a, b| a >= b),
        Builtin::ArithEq => arith_cmp(m, |a, b| a == b),
        Builtin::ArithNeq => arith_cmp(m, |a, b| a != b),
        Builtin::VarP => type_test(m, |c, _| c.tag() == Tag::Ref),
        Builtin::NonvarP => type_test(m, |c, _| c.tag() != Tag::Ref),
        Builtin::AtomP => type_test(m, |c, _| c.tag() == Tag::Con),
        Builtin::NumberP | Builtin::IntegerP => type_test(m, |c, _| c.tag() == Tag::Int),
        Builtin::AtomicP => type_test(m, |c, _| c.is_atomic()),
        Builtin::CompoundP => type_test(m, |c, _| matches!(c.tag(), Tag::Str | Tag::Lis)),
        Builtin::CallableP => {
            type_test(m, |c, _| matches!(c.tag(), Tag::Con | Tag::Str | Tag::Lis))
        }
        Builtin::IsList => {
            let mut c = m.deref(m.x[0]);
            loop {
                match c.tag() {
                    Tag::Con if c.sym() == well_known::NIL => return Ok(BAction::Continue),
                    Tag::Lis => c = m.deref(m.heap[c.addr() + 1]),
                    _ => return Ok(BAction::Fail),
                }
            }
        }
        Builtin::Functor => builtin_functor(m, syms),
        Builtin::Arg => {
            let n = match m.deref(m.x[0]).tag() {
                Tag::Int => m.deref(m.x[0]).int_value(),
                _ => return Err(EngineError::Instantiation("arg/3")),
            };
            let t = m.deref(m.x[1]);
            if !matches!(t.tag(), Tag::Str | Tag::Lis) {
                return Err(EngineError::Type {
                    expected: "compound",
                    found: format!("{t:?}"),
                });
            }
            let (_, arity) = m.functor_of(t);
            if n < 1 || n as usize > arity {
                return Ok(BAction::Fail);
            }
            let v = m.arg_of(t, n as usize - 1);
            let a2 = m.x[2];
            Ok(if m.unify(a2, v) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::Univ => builtin_univ(m),
        Builtin::CopyTerm => {
            let c = m.copy_term(m.x[0]);
            let a1 = m.x[1];
            Ok(if m.unify(a1, c) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::CallN(n) => builtin_call_n(m, syms, n, is_tail),
        Builtin::Findall => builtin_findall(m, syms, resume, is_tail),
        Builtin::Bagof => builtin_findall(m, syms, resume, is_tail), // simplified: no witness grouping
        Builtin::Setof => {
            // findall then sort+dedup, failing on empty — implemented by
            // running findall into a marker record; the finish handler
            // sorts when `setof` is set
            let act = builtin_findall(m, syms, resume, is_tail)?;
            if let Some(rec) = m.findalls.last_mut() {
                rec.sort_dedup_fail_empty = true;
            }
            Ok(act)
        }
        Builtin::Naf => builtin_naf(m, syms, resume, is_tail),
        Builtin::Tnot => m.slg_negation(syms, resume, is_tail, false),
        Builtin::ETnot => m.slg_negation(syms, resume, is_tail, true),
        Builtin::Tcut => Ok(BAction::Continue), // user-level tcut: safe no-op here
        Builtin::TrueB => Ok(BAction::Continue),
        Builtin::FailB => Ok(BAction::Fail),
        Builtin::Between => builtin_between(m, resume),
        Builtin::Assert | Builtin::Assertz => builtin_assert(m, syms, false),
        Builtin::Asserta => builtin_assert(m, syms, true),
        Builtin::Retract => builtin_retract(m, syms, resume),
        Builtin::Retractall => builtin_retractall(m, syms),
        Builtin::AbolishAllTables => {
            m.tables.abolish_all();
            m.tables.shared_clear();
            Ok(BAction::Continue)
        }
        Builtin::AbolishTablePred => builtin_abolish_table_pred(m, syms),
        Builtin::AbolishTableCall => builtin_abolish_table_call(m),
        Builtin::SetTableBudget => {
            let v = m.deref(m.x[0]);
            if v.tag() != Tag::Int {
                return Err(EngineError::Type {
                    expected: "integer (cells; =< 0 means unbounded)",
                    found: format!("{v:?}"),
                });
            }
            let n = v.int_value();
            let budget = if n <= 0 { None } else { Some(n as u64) };
            m.tables.set_budget(budget);
            if let Some(h) = m.tables.shared_handle() {
                h.store.set_budget(budget);
            }
            Ok(BAction::Continue)
        }
        Builtin::SetAnswerFactoring => {
            let v = m.deref(m.x[0]);
            let name = (v.tag() == Tag::Con).then(|| syms.name(v.sym()).to_string());
            match name.as_deref() {
                Some("on") => m.tables.set_factored(true),
                Some("off") => m.tables.set_factored(false),
                _ => {
                    return Err(EngineError::Type {
                        expected: "'on' or 'off'",
                        found: format!("{v:?}"),
                    })
                }
            }
            Ok(BAction::Continue)
        }
        Builtin::SetFusion => {
            // affects code compiled after the call (including subsequent
            // queries); already-compiled predicates keep their shape
            let v = m.deref(m.x[0]);
            let name = (v.tag() == Tag::Con).then(|| syms.name(v.sym()).to_string());
            match name.as_deref() {
                Some("on") => m.db.fusion_enabled = true,
                Some("off") => m.db.fusion_enabled = false,
                _ => {
                    return Err(EngineError::Type {
                        expected: "'on' or 'off'",
                        found: format!("{v:?}"),
                    })
                }
            }
            Ok(BAction::Continue)
        }
        Builtin::SetDurability => {
            // toggles WAL logging on a durable engine; silently succeeds
            // on engines with no log attached (benches toggle it blindly)
            let v = m.deref(m.x[0]);
            let name = (v.tag() == Tag::Con).then(|| syms.name(v.sym()).to_string());
            let on = match name.as_deref() {
                Some("on") => true,
                Some("off") => false,
                _ => {
                    return Err(EngineError::Type {
                        expected: "'on' or 'off'",
                        found: format!("{v:?}"),
                    })
                }
            };
            if let Some(c) = m.db.durable.as_mut() {
                c.enabled = on;
            }
            Ok(BAction::Continue)
        }
        Builtin::SetGroupCommit => {
            // group-commit window in microseconds; 0 = fsync every commit
            let v = m.deref(m.x[0]);
            if v.tag() != Tag::Int || v.int_value() < 0 {
                return Err(EngineError::Type {
                    expected: "non-negative integer (microseconds)",
                    found: format!("{v:?}"),
                });
            }
            if let Some(c) = m.db.durable.as_ref() {
                c.log.set_group_window_us(v.int_value() as u64);
            }
            Ok(BAction::Continue)
        }
        Builtin::Checkpoint0 => {
            crate::durable::checkpoint(m.db, syms, &mut m.obs.metrics)?;
            Ok(BAction::Continue)
        }
        Builtin::BeginTxn => {
            crate::durable::begin_txn(m.db)?;
            Ok(BAction::Continue)
        }
        Builtin::CommitTxn => {
            crate::durable::commit_txn(m.db, syms, &mut m.obs.metrics)?;
            Ok(BAction::Continue)
        }
        Builtin::AbortTxn => {
            let touched = crate::durable::abort_txn(m.db, syms, &mut m.obs.metrics)?;
            for pred in touched {
                m.invalidate_dependents(pred);
            }
            Ok(BAction::Continue)
        }
        Builtin::Statistics0 => {
            print!("{}", m.obs.metrics.report());
            Ok(BAction::Continue)
        }
        Builtin::Statistics2 => builtin_statistics2(m, syms),
        Builtin::TablesB => {
            print!("{}", crate::table::table_listing(m.tables, m.db, syms));
            Ok(BAction::Continue)
        }
        Builtin::PoolWorkers => {
            let val = m.x[0];
            let n = m.db.pool_workers as i64;
            Ok(if m.unify(val, Cell::int(n)) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Builtin::SetProfiling => {
            let v = m.deref(m.x[0]);
            let name = (v.tag() == Tag::Con).then(|| syms.name(v.sym()).to_string());
            match name.as_deref() {
                Some("on") => m.obs.metrics.profile.enabled = true,
                Some("off") => m.obs.metrics.profile.enabled = false,
                _ => {
                    return Err(EngineError::Type {
                        expected: "'on' or 'off'",
                        found: format!("{v:?}"),
                    })
                }
            }
            Ok(BAction::Continue)
        }
        Builtin::Profile0 => {
            print!(
                "{}",
                m.obs
                    .metrics
                    .profile
                    .report(&crate::instr::Instr::OPCODE_NAMES)
            );
            Ok(BAction::Continue)
        }
        Builtin::ProfileReset => {
            m.obs.metrics.profile.reset();
            Ok(BAction::Continue)
        }
        Builtin::SetSlowQueryThreshold => {
            let v = m.deref(m.x[0]);
            if v.tag() == Tag::Con && syms.name(v.sym()) == "off" {
                m.obs.slow_query_threshold_ns = None;
            } else if v.tag() == Tag::Int && v.int_value() >= 0 {
                // integer milliseconds; 0 logs every query
                m.obs.slow_query_threshold_ns = Some(v.int_value() as u64 * 1_000_000);
            } else {
                return Err(EngineError::Type {
                    expected: "milliseconds (integer >= 0) or 'off'",
                    found: format!("{v:?}"),
                });
            }
            m.obs.spans.enabled = m.obs.trace.enabled || m.obs.slow_query_threshold_ns.is_some();
            Ok(BAction::Continue)
        }
        Builtin::WriteB => {
            let mut vars = Vec::new();
            let t = m.heap_to_ast(m.x[0], &mut vars);
            print!("{}", t.display(syms));
            Ok(BAction::Continue)
        }
        Builtin::WritelnB => {
            let mut vars = Vec::new();
            let t = m.heap_to_ast(m.x[0], &mut vars);
            println!("{}", t.display(syms));
            Ok(BAction::Continue)
        }
        Builtin::Nl => {
            println!();
            Ok(BAction::Continue)
        }
        Builtin::SortB => builtin_sort(m, syms, true),
        Builtin::MsortB => builtin_sort(m, syms, false),
        Builtin::Tfindall => m.tfindall(syms, resume, is_tail),
    }
}

/// `statistics(Key, Value)`: unifies `Value` with the named scalar metric.
/// Fails on an unknown key; a free `Key` is an instantiation error.
fn builtin_statistics2(m: &mut Machine, syms: &SymbolTable) -> Result<BAction, EngineError> {
    let key = m.deref(m.x[0]);
    if key.tag() != Tag::Con {
        return Err(EngineError::Instantiation("statistics/2"));
    }
    // trace-ring truncation counters live outside the metrics registry
    let v = match syms.name(key.sym()) {
        "trace_events_total" => m.obs.trace.total(),
        "trace_events_dropped" => m.obs.trace.dropped(),
        name => match m.obs.metrics.lookup(name) {
            Some(v) => v,
            None => return Ok(BAction::Fail),
        },
    };
    let val = m.x[1];
    Ok(if m.unify(val, Cell::int(v as i64)) {
        BAction::Continue
    } else {
        BAction::Fail
    })
}

fn cmp_result(
    m: &mut Machine,
    syms: &SymbolTable,
    accept: &[Ordering],
) -> Result<BAction, EngineError> {
    let o = m.compare(m.x[0], m.x[1], syms);
    Ok(if accept.contains(&o) {
        BAction::Continue
    } else {
        BAction::Fail
    })
}

fn arith_cmp(m: &mut Machine, f: impl Fn(i64, i64) -> bool) -> Result<BAction, EngineError> {
    let a = eval_arith(m, m.x[0])?;
    let b = eval_arith(m, m.x[1])?;
    Ok(if f(a, b) {
        BAction::Continue
    } else {
        BAction::Fail
    })
}

fn type_test(m: &mut Machine, f: impl Fn(Cell, &Machine) -> bool) -> Result<BAction, EngineError> {
    let c = m.deref(m.x[0]);
    Ok(if f(c, m) {
        BAction::Continue
    } else {
        BAction::Fail
    })
}

/// Integer arithmetic evaluation (`is/2` and comparisons). XSB on a Sparc2
/// was integer-centric for database workloads; floats are out of scope.
pub fn eval_arith(m: &Machine, c: Cell) -> Result<i64, EngineError> {
    let c = m.deref(c);
    match c.tag() {
        Tag::Int => Ok(c.int_value()),
        Tag::Ref => Err(EngineError::Instantiation("arithmetic expression")),
        Tag::Str => {
            let (f, n) = m.functor_of(c);
            let arg = |i: usize| m.arg_of(c, i);
            match (f, n) {
                (s, 2) if s == well_known::PLUS => {
                    Ok(eval_arith(m, arg(0))?.wrapping_add(eval_arith(m, arg(1))?))
                }
                (s, 2) if s == well_known::MINUS => {
                    Ok(eval_arith(m, arg(0))?.wrapping_sub(eval_arith(m, arg(1))?))
                }
                (s, 2) if s == well_known::STAR => {
                    Ok(eval_arith(m, arg(0))?.wrapping_mul(eval_arith(m, arg(1))?))
                }
                (s, 2) if s == well_known::SLASH || s == well_known::SLASH_SLASH => {
                    let d = eval_arith(m, arg(1))?;
                    if d == 0 {
                        return Err(EngineError::Other("division by zero".into()));
                    }
                    Ok(eval_arith(m, arg(0))? / d)
                }
                (s, 2) if s == well_known::MOD => {
                    let d = eval_arith(m, arg(1))?;
                    if d == 0 {
                        return Err(EngineError::Other("mod by zero".into()));
                    }
                    Ok(eval_arith(m, arg(0))?.rem_euclid(d))
                }
                (s, 2) if s == well_known::REM => {
                    let d = eval_arith(m, arg(1))?;
                    if d == 0 {
                        return Err(EngineError::Other("rem by zero".into()));
                    }
                    Ok(eval_arith(m, arg(0))? % d)
                }
                (s, 2) if s == well_known::MIN => {
                    Ok(eval_arith(m, arg(0))?.min(eval_arith(m, arg(1))?))
                }
                (s, 2) if s == well_known::MAX => {
                    Ok(eval_arith(m, arg(0))?.max(eval_arith(m, arg(1))?))
                }
                (s, 1) if s == well_known::MINUS => Ok(-eval_arith(m, arg(0))?),
                (s, 1) if s == well_known::PLUS => eval_arith(m, arg(0)),
                (s, 1) if s == well_known::ABS => Ok(eval_arith(m, arg(0))?.abs()),
                _ => Err(EngineError::Type {
                    expected: "arithmetic expression",
                    found: format!("functor {:?}/{n}", f),
                }),
            }
        }
        _ => Err(EngineError::Type {
            expected: "arithmetic expression",
            found: format!("{c:?}"),
        }),
    }
}

fn builtin_functor(m: &mut Machine, _syms: &mut SymbolTable) -> Result<BAction, EngineError> {
    let t = m.deref(m.x[0]);
    match t.tag() {
        Tag::Ref => {
            // construct: functor(X, f, 2)
            let f = m.deref(m.x[1]);
            let n = m.deref(m.x[2]);
            let n = match n.tag() {
                Tag::Int => n.int_value(),
                _ => return Err(EngineError::Instantiation("functor/3")),
            };
            let built = if n == 0 {
                f
            } else {
                match f.tag() {
                    Tag::Con => {
                        let base = m.heap.len();
                        m.heap.push(Cell::fun(f.sym(), n as usize));
                        for _ in 0..n {
                            let a = m.heap.len();
                            m.heap.push(Cell::r#ref(a));
                        }
                        Cell::str(base)
                    }
                    _ => {
                        return Err(EngineError::Type {
                            expected: "atom",
                            found: format!("{f:?}"),
                        })
                    }
                }
            };
            Ok(if m.unify(t, built) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Tag::Con | Tag::Int => {
            let a1 = m.x[1];
            let a2 = m.x[2];
            let ok = m.unify(a1, t) && m.unify(a2, Cell::int(0));
            Ok(if ok { BAction::Continue } else { BAction::Fail })
        }
        Tag::Str | Tag::Lis => {
            let (f, n) = m.functor_of(t);
            let a1 = m.x[1];
            let a2 = m.x[2];
            let ok = m.unify(a1, Cell::con(f)) && m.unify(a2, Cell::int(n as i64));
            Ok(if ok { BAction::Continue } else { BAction::Fail })
        }
        _ => unreachable!(),
    }
}

fn builtin_univ(m: &mut Machine) -> Result<BAction, EngineError> {
    let t = m.deref(m.x[0]);
    match t.tag() {
        Tag::Con | Tag::Int => {
            let l = m.make_list(&[t]);
            let a1 = m.x[1];
            Ok(if m.unify(a1, l) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Tag::Str | Tag::Lis => {
            let (f, n) = m.functor_of(t);
            let mut items = Vec::with_capacity(n + 1);
            items.push(Cell::con(f));
            for i in 0..n {
                items.push(m.arg_of(t, i));
            }
            let l = m.make_list(&items);
            let a1 = m.x[1];
            Ok(if m.unify(a1, l) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Tag::Ref => {
            // construct from list
            let mut items = Vec::new();
            let mut c = m.deref(m.x[1]);
            loop {
                match c.tag() {
                    Tag::Con if c.sym() == well_known::NIL => break,
                    Tag::Lis => {
                        items.push(m.deref(m.heap[c.addr()]));
                        c = m.deref(m.heap[c.addr() + 1]);
                    }
                    _ => return Err(EngineError::Instantiation("=../2")),
                }
            }
            if items.is_empty() {
                return Err(EngineError::Instantiation("=../2"));
            }
            let head = items[0];
            let built = if items.len() == 1 {
                head
            } else {
                match head.tag() {
                    Tag::Con => {
                        let base = m.heap.len();
                        m.heap.push(Cell::fun(head.sym(), items.len() - 1));
                        for &it in &items[1..] {
                            m.heap.push(it);
                        }
                        Cell::str(base)
                    }
                    _ => {
                        return Err(EngineError::Type {
                            expected: "atom",
                            found: format!("{head:?}"),
                        })
                    }
                }
            };
            Ok(if m.unify(t, built) {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        _ => unreachable!(),
    }
}

fn builtin_call_n(
    m: &mut Machine,
    syms: &mut SymbolTable,
    n: u8,
    is_tail: bool,
) -> Result<BAction, EngineError> {
    let goal = m.deref(m.x[0]);
    // call(G, E1, …, Ek): append extra arguments to G (HiLog-style)
    let goal = if n > 1 {
        let extra: Vec<Cell> = (1..n as usize).map(|i| m.x[i]).collect();
        match goal.tag() {
            Tag::Con => {
                let base = m.heap.len();
                m.heap.push(Cell::fun(goal.sym(), extra.len()));
                for e in extra {
                    m.heap.push(e);
                }
                Cell::str(base)
            }
            Tag::Str => {
                let (f, arity) = m.functor_of(goal);
                let base = m.heap.len();
                m.heap.push(Cell::fun(f, arity + extra.len()));
                for i in 0..arity {
                    let a = m.arg_of(goal, i);
                    m.heap.push(a);
                }
                for e in extra {
                    m.heap.push(e);
                }
                Cell::str(base)
            }
            Tag::Ref => return Err(EngineError::Instantiation("call/N")),
            _ => {
                return Err(EngineError::Type {
                    expected: "callable",
                    found: format!("{goal:?}"),
                })
            }
        }
    } else {
        goal
    };
    if !is_tail {
        m.cont = m.p;
    }
    m.dispatch_goal(goal, syms)?;
    Ok(BAction::Jumped)
}

fn builtin_findall(
    m: &mut Machine,
    syms: &mut SymbolTable,
    resume: CodePtr,
    is_tail: bool,
) -> Result<BAction, EngineError> {
    let template = m.x[0];
    let goal = m.x[1];
    let result = m.x[2];
    m.findalls.push(FindallRecord {
        template,
        result,
        solutions: Vec::new(),
        sort_dedup_fail_empty: false,
    });
    let rec = (m.findalls.len() - 1) as u32;
    // the barrier saves the caller's continuation; on finish we resume here
    m.push_cp(0, Alt::FindallFinish { rec, resume });
    let _ = is_tail;
    m.cont = m.db.snippets.findall_collect;
    m.dispatch_goal(goal, syms)?;
    Ok(BAction::Jumped)
}

fn builtin_naf(
    m: &mut Machine,
    syms: &mut SymbolTable,
    resume: CodePtr,
    is_tail: bool,
) -> Result<BAction, EngineError> {
    let goal = m.x[0];
    m.push_cp(0, Alt::NafBarrier { resume });
    let _ = is_tail;
    m.cont = m.db.snippets.naf_cut;
    m.dispatch_goal(goal, syms)?;
    Ok(BAction::Jumped)
}

fn builtin_between(m: &mut Machine, resume: CodePtr) -> Result<BAction, EngineError> {
    let lo = eval_arith(m, m.x[0])?;
    let hi = eval_arith(m, m.x[1])?;
    let x = m.deref(m.x[2]);
    match x.tag() {
        Tag::Int => {
            let v = x.int_value();
            Ok(if lo <= v && v <= hi {
                BAction::Continue
            } else {
                BAction::Fail
            })
        }
        Tag::Ref => {
            if lo > hi {
                return Ok(BAction::Fail);
            }
            if lo < hi {
                m.push_cp(
                    3,
                    Alt::Between {
                        cur: lo + 1,
                        hi,
                        resume,
                    },
                );
            }
            m.bind(x.addr(), Cell::int(lo));
            Ok(BAction::Continue)
        }
        _ => Err(EngineError::Type {
            expected: "integer or variable",
            found: format!("{x:?}"),
        }),
    }
}

/// Splits an assertable term into (head, body) cells.
fn clause_parts(m: &Machine, c: Cell) -> Result<(Cell, Option<Cell>), EngineError> {
    let c = m.deref(c);
    if c.tag() == Tag::Str {
        let (f, n) = m.functor_of(c);
        if f == well_known::NECK && n == 2 {
            return Ok((m.deref(m.arg_of(c, 0)), Some(m.arg_of(c, 1))));
        }
    }
    Ok((c, None))
}

fn builtin_assert(
    m: &mut Machine,
    syms: &mut SymbolTable,
    at_front: bool,
) -> Result<BAction, EngineError> {
    let (head, body) = clause_parts(m, m.x[0])?;
    let (f, arity) = match head.tag() {
        Tag::Con => (head.sym(), 0usize),
        Tag::Str => m.functor_of(head),
        _ => {
            return Err(EngineError::Type {
                expected: "callable head",
                found: format!("{head:?}"),
            })
        }
    };
    let pred =
        m.db.declare_dynamic(f, arity as u16)
            .map_err(|e| EngineError::Other(format!("assert: {e} ({})", syms.name(f))))?;
    // canonicalize head args (+ body) in one shared-variable pass
    let mut roots: Vec<Cell> = (0..arity).map(|i| m.arg_of(head, i)).collect();
    let has_body = body.is_some();
    if let Some(b) = body {
        roots.push(b);
    }
    let mut vars = Vec::new();
    let canon = m.canonicalize(&roots, &mut vars);
    let tokens: Vec<Option<Cell>> = (0..arity)
        .map(|i| outer_token(m.deref(m.arg_of(head, i)), &m.heap))
        .collect();
    let tokens = if arity == 0 { vec![] } else { tokens };
    // WAL-before-data: the redo record must be on the log before the
    // clause store changes
    crate::durable::log_mutation(
        m.db,
        syms,
        &mut m.obs.metrics,
        crate::durable::MutOp::Assert {
            name: f,
            arity: arity as u16,
            at_front,
            has_body,
            canon: &canon,
        },
    )?;
    let dp = m.db.dyn_of_mut(pred).expect("dynamic");
    let id = dp.insert(tokens, Rc::from(canon), has_body, at_front);
    crate::durable::track_txn_mutation(
        m.db,
        pred,
        crate::durable::UndoEntry::Assert { pred, clause: id },
    );
    // maintain the dependency graph for the new clause's body, then
    // invalidate any tables made stale by the new clause
    if let Some(b) = body {
        let mut callees = Vec::new();
        heap_goal_callees(m, b, &mut callees);
        for (cf, cn) in callees {
            let callee = m.db.ensure_pred(cf, cn);
            m.db.record_dep(pred, callee);
        }
    }
    m.invalidate_dependents(pred);
    Ok(BAction::Continue)
}

/// Collects the functor/arity pairs a heap-resident clause body may call,
/// descending through `,`/`;`/`->` and the negation wrappers — the heap
/// mirror of the consult-time AST walk in `program.rs`.
fn heap_goal_callees(m: &Machine, goal: Cell, out: &mut Vec<(Sym, u16)>) {
    let g = m.deref(goal);
    match g.tag() {
        Tag::Con => out.push((g.sym(), 0)),
        Tag::Str => {
            let (f, n) = m.functor_of(g);
            let control =
                (f == well_known::COMMA || f == well_known::SEMICOLON || f == well_known::ARROW)
                    && n == 2;
            let negation = (f == well_known::NAF
                || f == well_known::TNOT
                || f == well_known::E_TNOT
                || f == well_known::NOT)
                && n == 1;
            if control || negation {
                for i in 0..n {
                    heap_goal_callees(m, m.arg_of(g, i), out);
                }
            } else {
                out.push((f, n as u16));
            }
        }
        _ => {}
    }
}

/// Parses the argument of `abolish_table_pred/1`: either a `Name/Arity`
/// indicator or a callable template like `path(_,_)`.
fn pred_spec(m: &Machine, c: Cell) -> Result<(Sym, u16), EngineError> {
    let t = m.deref(c);
    match t.tag() {
        Tag::Con => Ok((t.sym(), 0)),
        Tag::Str => {
            let (f, n) = m.functor_of(t);
            if f == well_known::SLASH && n == 2 {
                let name = m.deref(m.arg_of(t, 0));
                let arity = m.deref(m.arg_of(t, 1));
                if name.tag() == Tag::Con && arity.tag() == Tag::Int && arity.int_value() >= 0 {
                    return Ok((name.sym(), arity.int_value() as u16));
                }
            }
            Ok((f, n as u16))
        }
        Tag::Ref => Err(EngineError::Instantiation("abolish_table_pred/1")),
        _ => Err(EngineError::Type {
            expected: "predicate indicator or callable",
            found: format!("{t:?}"),
        }),
    }
}

/// `abolish_table_pred(P)`: selectively removes every table of one tabled
/// predicate; other predicates' tables survive. Succeeds even when there
/// is nothing to remove.
fn builtin_abolish_table_pred(m: &mut Machine, syms: &SymbolTable) -> Result<BAction, EngineError> {
    let (f, n) = pred_spec(m, m.x[0])?;
    let Some(pred) = m.db.lookup_pred(f, n) else {
        return Ok(BAction::Continue);
    };
    if !m.db.pred(pred).tabled {
        return Err(EngineError::Other(format!(
            "abolish_table_pred: {}/{n} is not tabled",
            syms.name(f)
        )));
    }
    let removed = m.tables.abolish_pred(pred);
    if removed > 0 {
        m.obs
            .metrics
            .add(Counter::TableInvalidations, removed as u64);
        if m.obs.trace.enabled {
            m.obs.trace.push(SlgEvent::TableInvalidated { pred });
        }
    }
    // other pool workers may hold tables for this predicate regardless of
    // what this worker removed locally
    let shared = m.tables.shared_invalidate(&[pred]);
    if shared > 0 {
        m.obs
            .metrics
            .add(Counter::SharedTableInvalidations, shared as u64);
    }
    Ok(BAction::Continue)
}

/// `abolish_table_call(G)`: removes the table of the single variant call
/// `G`, leaving the predicate's other tables intact. Succeeds even when
/// no such table exists.
fn builtin_abolish_table_call(m: &mut Machine) -> Result<BAction, EngineError> {
    let goal = m.deref(m.x[0]);
    let (f, n) = match goal.tag() {
        Tag::Con => (goal.sym(), 0usize),
        Tag::Str => m.functor_of(goal),
        Tag::Ref => return Err(EngineError::Instantiation("abolish_table_call/1")),
        _ => {
            return Err(EngineError::Type {
                expected: "callable",
                found: format!("{goal:?}"),
            })
        }
    };
    let Some(pred) = m.db.lookup_pred(f, n as u16) else {
        return Ok(BAction::Continue);
    };
    let args: Vec<Cell> = (0..n).map(|i| m.arg_of(goal, i)).collect();
    let mut var_addrs = Vec::new();
    let canon = m.canonicalize(&args, &mut var_addrs);
    if m.tables.abolish_call(pred, &canon) {
        m.obs.metrics.bump(Counter::TableInvalidations);
        if m.obs.trace.enabled {
            m.obs.trace.push(SlgEvent::TableInvalidated { pred });
        }
    }
    // the shared store has no per-variant invalidation: drop the whole
    // predicate pool-wide (conservative, always safe)
    let shared = m.tables.shared_invalidate(&[pred]);
    if shared > 0 {
        m.obs
            .metrics
            .add(Counter::SharedTableInvalidations, shared as u64);
    }
    Ok(BAction::Continue)
}

fn builtin_retract(
    m: &mut Machine,
    syms: &mut SymbolTable,
    resume: CodePtr,
) -> Result<BAction, EngineError> {
    let (head, _body) = clause_parts(m, m.x[0])?;
    let (f, arity) = match head.tag() {
        Tag::Con => (head.sym(), 0usize),
        Tag::Str => m.functor_of(head),
        Tag::Ref => return Err(EngineError::Instantiation("retract/1")),
        _ => {
            return Err(EngineError::Type {
                expected: "callable",
                found: format!("{head:?}"),
            })
        }
    };
    let Some(pred) = m.db.lookup_pred(f, arity as u16) else {
        return Ok(BAction::Fail);
    };
    let Some(dp) = m.db.dyn_of(pred) else {
        return Err(EngineError::Other(format!(
            "retract: {} is not dynamic",
            syms.name(f)
        )));
    };
    let tokens: Vec<Option<Cell>> = (0..arity)
        .map(|i| outer_token(m.deref(m.arg_of(head, i)), &m.heap))
        .collect();
    let list: Rc<[u32]> = Rc::from(dp.candidates(&tokens).into_boxed_slice());
    if list.is_empty() {
        return Ok(BAction::Fail);
    }
    // iterate candidates through a choice point; the backtrack handler
    // unifies and removes the first matching clause
    m.push_cp(
        1,
        Alt::Retract {
            pred,
            list,
            idx: 0,
            resume,
        },
    );
    // "fail into" the choice point so the backtrack handler tries
    // candidate 0 with a clean binding state
    Ok(BAction::Fail)
}

fn builtin_retractall(m: &mut Machine, syms: &mut SymbolTable) -> Result<BAction, EngineError> {
    let head = m.deref(m.x[0]);
    let (f, arity) = match head.tag() {
        Tag::Con => (head.sym(), 0usize),
        Tag::Str => m.functor_of(head),
        _ => return Err(EngineError::Instantiation("retractall/1")),
    };
    if let Some(pred) = m.db.lookup_pred(f, arity as u16) {
        // fully open pattern → predicate-level retraction fast path
        let all_vars =
            (0..arity).all(|i| m.deref(m.arg_of(head, i)).tag() == Tag::Ref) || arity == 0;
        // WAL logging and transaction undo both need per-clause records,
        // so the destructive fast path is reserved for plain engines
        let logged =
            m.db.durable.as_ref().map(|c| c.active()).unwrap_or(false) || m.db.txn.is_some();
        let mut removed_any = false;
        if m.db.dyn_of(pred).is_some() {
            if all_vars && !logged {
                removed_any = !m.db.dyn_of(pred).expect("dynamic").all_live().is_empty();
                m.db.dyn_of_mut(pred).expect("dynamic").retract_all();
            } else {
                // conservative: decode and unify each candidate
                let ids = m.db.dyn_of(pred).expect("dynamic").all_live();
                let mut matched: Vec<u32> = Vec::new();
                for id in ids {
                    if all_vars {
                        matched.push(id);
                        continue;
                    }
                    let (hc, _bc, nroots) = {
                        let c = m.db.dyn_of(pred).expect("dynamic").clause(id);
                        (c.canon.clone(), c.has_body, arity)
                    };
                    let mark = m.tip;
                    let hlen = m.heap.len();
                    let roots = m.decode_canon(&hc, nroots + _bc as usize);
                    let mut ok = true;
                    for (i, &root) in roots.iter().enumerate().take(arity) {
                        let a = m.arg_of(head, i);
                        if !m.unify(a, root) {
                            ok = false;
                            break;
                        }
                    }
                    m.unwind_to(mark);
                    m.heap.truncate(hlen.max(m.freeze.heap as usize));
                    if ok {
                        matched.push(id);
                    }
                }
                // redo records first (WAL-before-data), then remove
                let items: Vec<(bool, Rc<[Cell]>)> = matched
                    .iter()
                    .map(|&id| {
                        let c = m.db.dyn_of(pred).expect("dynamic").clause(id);
                        (c.has_body, c.canon.clone())
                    })
                    .collect();
                crate::durable::log_retract_batch(
                    m.db,
                    syms,
                    &mut m.obs.metrics,
                    f,
                    arity as u16,
                    &items,
                )?;
                for &id in &matched {
                    m.db.dyn_of_mut(pred).expect("dynamic").remove(id);
                    crate::durable::track_txn_mutation(
                        m.db,
                        pred,
                        crate::durable::UndoEntry::Retract { pred, clause: id },
                    );
                    removed_any = true;
                }
            }
        }
        if removed_any {
            m.invalidate_dependents(pred);
        }
    }
    Ok(BAction::Continue)
}

fn builtin_sort(
    m: &mut Machine,
    syms: &mut SymbolTable,
    dedup: bool,
) -> Result<BAction, EngineError> {
    let mut items = Vec::new();
    let mut c = m.deref(m.x[0]);
    loop {
        match c.tag() {
            Tag::Con if c.sym() == well_known::NIL => break,
            Tag::Lis => {
                items.push(m.deref(m.heap[c.addr()]));
                c = m.deref(m.heap[c.addr() + 1]);
            }
            _ => return Err(EngineError::Instantiation("sort/2")),
        }
    }
    items.sort_by(|&a, &b| m.compare(a, b, syms));
    if dedup {
        items.dedup_by(|&mut a, &mut b| m.compare(a, b, syms) == Ordering::Equal);
    }
    let l = m.make_list(&items);
    let a1 = m.x[1];
    Ok(if m.unify(a1, l) {
        BAction::Continue
    } else {
        BAction::Fail
    })
}
