//! Dynamic predicates (paper §4.2, §4.5, §4.6).
//!
//! The extensional database normally lives in dynamic predicates: facts
//! (and rules) modifiable one tuple at a time through `assert`/`retract`.
//! "Each dynamic clause is compiled as though it were defined by a rule with
//! a single literal as its body" — here each clause is stored as a canonical
//! cell sequence (the same representation compiled facts decode from), so
//! dynamic facts execute at essentially the same speed as compiled ones.
//!
//! Indexing follows §4.5: hash on the outer functor symbol of any field, or
//! a joint index on up to 3 fields; any number of distinct indexes per
//! predicate; the first index whose fields are all bound at call time is
//! used, falling back to a scan.

use crate::cell::{Cell, Tag};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// One index: the (0-based) fields of a joint hash key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSpec {
    pub fields: Vec<u16>,
}

/// A stored clause. `canon` holds `arity` head-argument roots followed by
/// one body-goal root when `has_body`.
#[derive(Clone, Debug)]
pub struct DynClause {
    pub canon: Rc<[Cell]>,
    pub has_body: bool,
    /// ordering key: asserta counts down, assertz counts up
    pub seq: i64,
    pub live: bool,
    /// outer token of each head argument (`None` = variable)
    pub tokens: Vec<Option<Cell>>,
}

/// A dynamic predicate's clause store plus its hash indexes.
#[derive(Debug)]
pub struct DynPred {
    arity: u16,
    clauses: Vec<DynClause>,
    specs: Vec<IndexSpec>,
    /// one map per spec: joint key hash → clause ids
    maps: Vec<HashMap<u64, Vec<u32>>>,
    /// per spec: clauses with a variable in an indexed field (match any key)
    var_buckets: Vec<Vec<u32>>,
    next_front: i64,
    next_back: i64,
    live_count: usize,
    /// true once asserta has been used (bucket order then needs a sort)
    any_front: bool,
}

impl DynPred {
    /// A new store with the default first-argument index.
    pub fn new(arity: u16) -> DynPred {
        let specs = if arity > 0 {
            vec![IndexSpec { fields: vec![0] }]
        } else {
            vec![]
        };
        let n = specs.len();
        DynPred {
            arity,
            clauses: Vec::new(),
            specs,
            maps: vec![HashMap::new(); n],
            var_buckets: vec![Vec::new(); n],
            next_front: -1,
            next_back: 1,
            live_count: 0,
            any_front: false,
        }
    }

    pub fn arity(&self) -> u16 {
        self.arity
    }

    pub fn index_specs(&self) -> &[IndexSpec] {
        &self.specs
    }

    pub fn len(&self) -> usize {
        self.live_count
    }

    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    pub fn clause(&self, id: u32) -> &DynClause {
        &self.clauses[id as usize]
    }

    /// Replaces the index set (e.g. from an `:- index(p/5,[1,2,3+5])`
    /// directive), rebuilding the maps over existing clauses.
    pub fn set_indexes(&mut self, specs: Vec<IndexSpec>) -> Result<(), String> {
        for s in &specs {
            if s.fields.is_empty() || s.fields.len() > 3 {
                return Err("joint indexes are limited to 1..=3 fields".into());
            }
            if s.fields.iter().any(|&f| f >= self.arity) {
                return Err(format!("index field out of range for arity {}", self.arity));
            }
        }
        self.specs = specs;
        self.maps = vec![HashMap::new(); self.specs.len()];
        self.var_buckets = vec![Vec::new(); self.specs.len()];
        for id in 0..self.clauses.len() as u32 {
            if self.clauses[id as usize].live {
                self.index_clause(id);
            }
        }
        Ok(())
    }

    fn key_of(&self, spec: &IndexSpec, tokens: &[Option<Cell>]) -> Option<u64> {
        let mut h = DefaultHasher::new();
        for &f in &spec.fields {
            match tokens[f as usize] {
                Some(c) => c.0.hash(&mut h),
                None => return None, // variable in an indexed field
            }
        }
        Some(h.finish())
    }

    fn index_clause(&mut self, id: u32) {
        let tokens = self.clauses[id as usize].tokens.clone();
        for (si, spec) in self.specs.clone().iter().enumerate() {
            match self.key_of(spec, &tokens) {
                Some(k) => self.maps[si].entry(k).or_default().push(id),
                None => self.var_buckets[si].push(id),
            }
        }
    }

    /// Inserts a clause at the end (`assertz`) or front (`asserta`).
    pub fn insert(
        &mut self,
        tokens: Vec<Option<Cell>>,
        canon: Rc<[Cell]>,
        has_body: bool,
        at_front: bool,
    ) -> u32 {
        debug_assert_eq!(tokens.len(), self.arity as usize);
        let seq = if at_front {
            self.any_front = true;
            let s = self.next_front;
            self.next_front -= 1;
            s
        } else {
            let s = self.next_back;
            self.next_back += 1;
            s
        };
        let id = self.clauses.len() as u32;
        self.clauses.push(DynClause {
            canon,
            has_body,
            seq,
            live: true,
            tokens,
        });
        self.live_count += 1;
        self.index_clause(id);
        id
    }

    /// Marks a clause removed (logical delete; candidates filter on `live`).
    pub fn remove(&mut self, id: u32) {
        let c = &mut self.clauses[id as usize];
        if c.live {
            c.live = false;
            self.live_count -= 1;
        }
    }

    /// Undoes a [`DynPred::remove`] (transaction rollback / recovery undo).
    /// Safe because `remove` is a logical delete: the clause body and its
    /// index entries are retained, and candidate lookup filters on `live`.
    pub fn revive(&mut self, id: u32) {
        let c = &mut self.clauses[id as usize];
        if !c.live {
            c.live = true;
            self.live_count += 1;
        }
    }

    /// Candidate clause ids for a call whose argument outer tokens are
    /// `call_tokens` (`None` = unbound). Uses the first index whose fields
    /// are all bound; otherwise scans. Results are live clauses in clause
    /// order (`seq`).
    pub fn candidates(&self, call_tokens: &[Option<Cell>]) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(call_tokens, &mut out);
        out
    }

    /// Allocation-free variant of [`DynPred::candidates`]: fills `out`
    /// (cleared first) — the hot path of dynamic predicate dispatch.
    pub fn candidates_into(&self, call_tokens: &[Option<Cell>], out: &mut Vec<u32>) {
        debug_assert_eq!(call_tokens.len(), self.arity as usize);
        out.clear();
        for (si, spec) in self.specs.iter().enumerate() {
            let Some(key) = self.key_of(spec, call_tokens) else {
                continue;
            };
            if let Some(bucket) = self.maps[si].get(&key) {
                out.extend(bucket.iter().copied());
            }
            let vars_empty = self.var_buckets[si].is_empty();
            out.extend(self.var_buckets[si].iter().copied());
            out.retain(|&id| self.clauses[id as usize].live);
            // assertz-only buckets are already in clause order
            if self.any_front || !vars_empty {
                out.sort_by_key(|&id| self.clauses[id as usize].seq);
            }
            return;
        }
        // no usable index: scan in clause order
        out.extend((0..self.clauses.len() as u32).filter(|&id| self.clauses[id as usize].live));
        out.sort_by_key(|&id| self.clauses[id as usize].seq);
    }

    /// All live clause ids in order (used by `retract` and bulk dumps).
    pub fn all_live(&self) -> Vec<u32> {
        let mut out: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&id| self.clauses[id as usize].live)
            .collect();
        out.sort_by_key(|&id| self.clauses[id as usize].seq);
        out
    }

    /// Removes every clause (predicate-level retraction, paper §4.2).
    pub fn retract_all(&mut self) {
        self.clauses.clear();
        for m in &mut self.maps {
            m.clear();
        }
        for v in &mut self.var_buckets {
            v.clear();
        }
        self.live_count = 0;
        self.next_front = -1;
        self.next_back = 1;
    }
}

/// The outer token of a dereferenced cell for indexing purposes:
/// `None` for an unbound variable, the constant itself for CON/INT, the
/// functor cell for structures, `'.'/2` for lists. "All XSB hash-based
/// indexing uses only the outer functor symbol of a given argument."
pub fn outer_token(c: Cell, heap: &[Cell]) -> Option<Cell> {
    match c.tag() {
        Tag::Ref => None,
        Tag::Con | Tag::Int => Some(c),
        Tag::Str => Some(heap[c.addr()]),
        Tag::Lis => Some(Cell::fun(xsb_syntax::well_known::DOT, 2)),
        Tag::Fun | Tag::TVar => unreachable!("outer_token of non-term cell"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::Sym;

    fn tok(i: i64) -> Option<Cell> {
        Some(Cell::int(i))
    }

    fn canon1(i: i64) -> Rc<[Cell]> {
        Rc::from(vec![Cell::int(i)].into_boxed_slice())
    }

    #[test]
    fn default_first_arg_index() {
        let mut p = DynPred::new(2);
        let a = p.insert(vec![tok(1), tok(10)], canon1(0), false, false);
        let b = p.insert(vec![tok(2), tok(20)], canon1(0), false, false);
        let c = p.insert(vec![tok(1), tok(30)], canon1(0), false, false);
        assert_eq!(p.candidates(&[tok(1), None]), vec![a, c]);
        assert_eq!(p.candidates(&[tok(2), None]), vec![b]);
        assert_eq!(p.candidates(&[tok(3), None]), Vec::<u32>::new());
        // unbound first arg: no usable index → scan all
        assert_eq!(p.candidates(&[None, tok(10)]), vec![a, b, c]);
    }

    #[test]
    fn joint_index_on_two_fields() {
        let mut p = DynPred::new(3);
        p.set_indexes(vec![IndexSpec { fields: vec![0, 2] }])
            .unwrap();
        let a = p.insert(vec![tok(1), tok(5), tok(7)], canon1(0), false, false);
        let _b = p.insert(vec![tok(1), tok(5), tok(8)], canon1(0), false, false);
        assert_eq!(p.candidates(&[tok(1), None, tok(7)]), vec![a]);
        // only one field bound → joint index unusable → scan
        assert_eq!(p.candidates(&[tok(1), None, None]).len(), 2);
    }

    #[test]
    fn multiple_indexes_first_usable_wins() {
        // paper example: index(p/5,[1,2,3+5])
        let mut p = DynPred::new(5);
        p.set_indexes(vec![
            IndexSpec { fields: vec![0] },
            IndexSpec { fields: vec![1] },
            IndexSpec { fields: vec![2, 4] },
        ])
        .unwrap();
        let a = p.insert(
            vec![tok(1), tok(2), tok(3), tok(4), tok(5)],
            canon1(0),
            false,
            false,
        );
        let _b = p.insert(
            vec![tok(9), tok(2), tok(3), tok(9), tok(5)],
            canon1(0),
            false,
            false,
        );
        // first arg unbound, second bound → second index used
        assert_eq!(p.candidates(&[None, tok(2), None, None, None]).len(), 2);
        // only third+fifth bound → joint index used
        assert_eq!(p.candidates(&[None, None, tok(3), None, tok(5)]).len(), 2);
        // first bound → most selective here
        assert_eq!(p.candidates(&[tok(1), None, None, None, None]), vec![a]);
    }

    #[test]
    fn var_headed_clauses_match_every_key() {
        let mut p = DynPred::new(1);
        let a = p.insert(vec![tok(1)], canon1(0), false, false);
        let v = p.insert(vec![None], canon1(0), false, false); // p(X).
        assert_eq!(p.candidates(&[tok(1)]), vec![a, v]);
        assert_eq!(p.candidates(&[tok(99)]), vec![v]);
    }

    #[test]
    fn asserta_orders_before_assertz() {
        let mut p = DynPred::new(1);
        let b = p.insert(vec![tok(1)], canon1(2), false, false);
        let a = p.insert(vec![tok(1)], canon1(1), false, true); // asserta
        assert_eq!(p.candidates(&[tok(1)]), vec![a, b]);
    }

    #[test]
    fn remove_hides_clause() {
        let mut p = DynPred::new(1);
        let a = p.insert(vec![tok(1)], canon1(0), false, false);
        let b = p.insert(vec![tok(1)], canon1(0), false, false);
        p.remove(a);
        assert_eq!(p.candidates(&[tok(1)]), vec![b]);
        assert_eq!(p.len(), 1);
        p.retract_all();
        assert!(p.is_empty());
    }

    #[test]
    fn structure_tokens_index_by_outer_functor() {
        // heap: f(1) and g(1)
        let f = Sym(100);
        let g = Sym(101);
        let heap = vec![Cell::fun(f, 1), Cell::int(1), Cell::fun(g, 1), Cell::int(1)];
        let tf = outer_token(Cell::str(0), &heap);
        let tg = outer_token(Cell::str(2), &heap);
        assert_eq!(tf, Some(Cell::fun(f, 1)));
        assert_ne!(tf, tg);
        let mut p = DynPred::new(1);
        let a = p.insert(vec![tf], canon1(0), false, false);
        let _b = p.insert(vec![tg], canon1(0), false, false);
        assert_eq!(p.candidates(&[tf]), vec![a]);
    }

    #[test]
    fn index_spec_validation() {
        let mut p = DynPred::new(2);
        assert!(p
            .set_indexes(vec![IndexSpec {
                fields: vec![0, 1, 0, 1]
            }])
            .is_err());
        assert!(p.set_indexes(vec![IndexSpec { fields: vec![5] }]).is_err());
    }
}
