//! Clause compiler: AST clauses → SLG-WAM code.
//!
//! Standard WAM compilation — head *get* instructions, body argument *put*
//! instructions, permanent/temporary variable classification by chunk,
//! last-call optimization — plus:
//!
//! * **first-argument hash indexing** (switch_on_term/constant/structure
//!   with compile-time hash tables) or **first-string indexing**
//!   ([`first_string`]) per predicate (paper §4.5);
//! * **tabled-clause endings**: tabled rules allocate an extra permanent
//!   slot for the executing generator ([`Instr::SaveGenerator`]) and end in
//!   [`Instr::NewAnswer`]; tabled facts end in [`Instr::NewAnswerDirect`];
//! * **disjunction / if-then-else extraction** into auxiliary predicates
//!   (the classic transformation; the if-then-else auxiliary is the paper's
//!   own cut-based conditional idiom from §4.4);
//! * the paper's compile-time check: a cut inside a tabled predicate is a
//!   compile error, since it could close a partially computed table.

pub mod first_string;

use crate::cell::Cell;
use crate::instr::{CodePtr, ConstTable, Instr, PredId, StructTable};
use crate::program::{PredKind, Program, StaticIndex};
use std::collections::HashMap;
use std::rc::Rc;
use xsb_syntax::{well_known, Clause, Sym, SymbolTable, Term};

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(m: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { message: m.into() })
}

/// Compiles one predicate's clauses and installs its entry point.
/// Disjunctions are extracted into auxiliary predicates compiled alongside.
pub fn compile_predicate(
    db: &mut Program,
    syms: &mut SymbolTable,
    name: Sym,
    arity: u16,
    clauses: &[Clause],
) -> Result<(), CompileError> {
    let pred = db.ensure_pred(name, arity);
    if matches!(db.pred(pred).kind, PredKind::Builtin(_)) {
        return err(format!(
            "cannot redefine builtin {}/{arity}",
            syms.name(name)
        ));
    }
    if matches!(db.pred(pred).kind, PredKind::Dynamic { .. }) {
        return err(format!(
            "{}/{arity} is dynamic; use assert",
            syms.name(name)
        ));
    }
    let tabled = db.pred(pred).tabled;
    let fuse_from = db.code.here();

    // 1. extract disjunctions into auxiliary predicates
    let mut aux: Vec<(Sym, u16, Vec<Clause>)> = Vec::new();
    let mut normd: Vec<Clause> = Vec::new();
    for c in clauses {
        let mut c = c.clone();
        normalize_body(&mut c, name, syms, &mut aux)?;
        normd.push(c);
    }

    // 2. compile each clause
    let mut addrs: Vec<CodePtr> = Vec::with_capacity(normd.len());
    for c in &normd {
        let a = compile_clause(db, syms, c, arity, tabled)?;
        addrs.push(a);
    }

    // 3. dispatch block
    let index = db.pred(pred).static_index;
    let entry = emit_dispatch(db, pred, arity, &normd, &addrs, tabled, index)?;
    db.preds[pred as usize].kind = PredKind::Static {
        entry,
        clauses: Rc::from(addrs.into_boxed_slice()),
    };

    // 4. superinstruction fusion over the freshly emitted range (clauses +
    // dispatch block); the aux predicates below fuse their own ranges
    db.fuse_range(fuse_from);

    // 5. auxiliary predicates
    for (aname, aarity, aclauses) in aux {
        compile_predicate(db, syms, aname, aarity, &aclauses)?;
    }
    Ok(())
}

/// Compiles a query `?- G1,…,Gn` as a hidden predicate `'$query'(V0..Vk)`
/// over the query's variables. Returns the predicate id.
pub fn compile_query(
    db: &mut Program,
    syms: &mut SymbolTable,
    goals: &[Term],
    nvars: u32,
) -> Result<PredId, CompileError> {
    let qsym = syms.gensym("$query");
    let arity = nvars as u16;
    let head_args: Vec<Term> = (0..nvars).map(Term::Var).collect();
    // flatten any `,`-structured goals (meta-calls pass whole conjunctions)
    let body: Vec<Term> = goals
        .iter()
        .flat_map(|g| g.conjuncts().into_iter().cloned().collect::<Vec<_>>())
        .collect();
    let clause = Clause {
        head: Term::compound(qsym, head_args),
        body,
        var_names: (0..nvars).map(|i| format!("_Q{i}")).collect(),
    };
    compile_predicate(db, syms, qsym, arity, &[clause])?;
    Ok(db.lookup_pred(qsym, arity).expect("just compiled"))
}

// ---------------------------------------------------------------------
// normalization
// ---------------------------------------------------------------------

/// Replaces `;`/`->` body goals with calls to generated auxiliary
/// predicates, and wraps variable goals in `call/1`.
fn normalize_body(
    c: &mut Clause,
    owner: Sym,
    syms: &mut SymbolTable,
    aux: &mut Vec<(Sym, u16, Vec<Clause>)>,
) -> Result<(), CompileError> {
    let mut new_body = Vec::with_capacity(c.body.len());
    let body = std::mem::take(&mut c.body);
    for g in body {
        new_body.push(normalize_goal(g, owner, syms, aux)?);
    }
    c.body = new_body;
    Ok(())
}

fn normalize_goal(
    g: Term,
    owner: Sym,
    syms: &mut SymbolTable,
    aux: &mut Vec<(Sym, u16, Vec<Clause>)>,
) -> Result<Term, CompileError> {
    match &g {
        Term::Var(_) => Ok(Term::Compound(well_known::CALL, vec![g])),
        Term::Int(_) => err("integer used as a goal"),
        Term::Compound(f, args) if *f == well_known::SEMICOLON && args.len() == 2 => {
            // collect arms of the (possibly nested) disjunction
            let mut arms: Vec<Vec<Term>> = Vec::new();
            collect_arms(&g, &mut arms);
            // variables shared with the disjunction become aux arguments
            let mut vars = Vec::new();
            g.variables(&mut vars);
            let aux_name = syms.gensym(&format!("{}$disj", syms.name(owner)));
            let head_args: Vec<Term> = vars.iter().map(|&v| Term::Var(v)).collect();
            let head = Term::compound(aux_name, head_args.clone());
            let mut aclauses = Vec::with_capacity(arms.len());
            for arm in arms {
                let mut arm_norm = Vec::with_capacity(arm.len());
                for ag in arm {
                    arm_norm.push(normalize_goal(ag, owner, syms, aux)?);
                }
                aclauses.push(Clause {
                    head: head.clone(),
                    body: arm_norm,
                    var_names: c_var_names(&vars),
                });
            }
            aux.push((aux_name, vars.len() as u16, aclauses));
            Ok(Term::compound(aux_name, head_args))
        }
        Term::Compound(f, args) if *f == well_known::ARROW && args.len() == 2 => {
            // bare if-then == (C -> T ; fail)
            let wrapped = Term::Compound(
                well_known::SEMICOLON,
                vec![g.clone(), Term::Atom(well_known::FAIL)],
            );
            let _ = args;
            normalize_goal(wrapped, owner, syms, aux)
        }
        _ => Ok(g),
    }
}

fn c_var_names(vars: &[u32]) -> Vec<String> {
    let max = vars.iter().copied().max().map_or(0, |m| m + 1);
    (0..max).map(|i| format!("_A{i}")).collect()
}

/// Flattens `(A ; B ; C)` into arms; an `->` in an arm head becomes
/// `[Cond, !, Then]` — the paper §4.4 conditional idiom.
fn collect_arms(g: &Term, arms: &mut Vec<Vec<Term>>) {
    match g {
        Term::Compound(f, args) if *f == well_known::SEMICOLON && args.len() == 2 => {
            collect_arms(&args[0], arms);
            collect_arms(&args[1], arms);
        }
        Term::Compound(f, args) if *f == well_known::ARROW && args.len() == 2 => {
            let mut arm: Vec<Term> = args[0].conjuncts().into_iter().cloned().collect();
            arm.push(Term::Atom(well_known::CUT));
            arm.extend(args[1].conjuncts().into_iter().cloned());
            arms.push(arm);
        }
        other => arms.push(other.conjuncts().into_iter().cloned().collect()),
    }
}

// ---------------------------------------------------------------------
// clause compilation
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum VarHome {
    Temp(u16),
    Perm(u16),
}

struct ClauseCtx {
    home: HashMap<u32, VarHome>,
    /// vars whose home already holds a value
    seen: HashMap<u32, bool>,
    next_x: u16,
    gen_y: Option<u16>,
    cut_y: Option<u16>,
    nperms: u16,
    has_env: bool,
}

/// Is this goal a chunk boundary (clobbers X registers / continuation)?
/// User predicates and meta-builtins clobber the continuation; CP-creating
/// builtins (`between`, `retract`) clobber X registers on retry.
fn goal_boundary(db: &Program, g: &Term) -> (bool, bool) {
    // returns (is_boundary, clobbers_cont)
    match g {
        Term::Atom(s) if *s == well_known::TRUE || *s == well_known::FAIL => (false, false),
        Term::Atom(s) if *s == well_known::CUT => (false, false),
        _ => {
            let (f, n) = match g.functor() {
                Some(x) => x,
                None => return (true, true),
            };
            match db.lookup_pred(f, n as u16).map(|p| &db.pred(p).kind) {
                Some(PredKind::Builtin(b)) => {
                    if b.clobbers_cont() {
                        (true, true)
                    } else if b.creates_cp() {
                        (true, false)
                    } else {
                        (false, false)
                    }
                }
                // user (or not-yet-defined) predicate: full call
                _ => (true, true),
            }
        }
    }
}

fn compile_clause(
    db: &mut Program,
    syms: &mut SymbolTable,
    c: &Clause,
    arity: u16,
    tabled: bool,
) -> Result<CodePtr, CompileError> {
    // ---- analysis ----
    let head_args: Vec<Term> = match &c.head {
        Term::Atom(_) => vec![],
        Term::Compound(_, args) => args.clone(),
        _ => return err("clause head must be an atom or compound"),
    };
    if head_args.len() != arity as usize {
        return err("clause arity mismatch");
    }

    let has_cut = c
        .body
        .iter()
        .any(|g| matches!(g, Term::Atom(s) if *s == well_known::CUT));
    if has_cut && tabled {
        // paper §4.4: the compiler errors when a cut might close a
        // partially computed table
        return err(format!(
            "cut in tabled predicate {} would cut over its own table",
            c.head
                .functor()
                .map(|(f, _)| syms.name(f).to_string())
                .unwrap_or_default()
        ));
    }

    // chunk assignment
    let mut chunk_of_goal: Vec<u32> = Vec::with_capacity(c.body.len());
    let mut cur_chunk = 0u32;
    let mut boundary_count = 0u32;
    let mut cont_clobber_count = 0u32;
    let mut last_cont_clobber_idx: Option<usize> = None;
    for (i, g) in c.body.iter().enumerate() {
        chunk_of_goal.push(cur_chunk);
        let (boundary, clobbers) = goal_boundary(db, g);
        if boundary {
            cur_chunk += 1;
            boundary_count += 1;
        }
        if clobbers {
            cont_clobber_count += 1;
            last_cont_clobber_idx = Some(i);
        }
    }

    // variable chunk occurrence
    let mut var_chunks: HashMap<u32, Vec<u32>> = HashMap::new();
    {
        let mut hv = Vec::new();
        c.head.variables(&mut hv);
        for v in hv {
            var_chunks.entry(v).or_default().push(0);
        }
        for (i, g) in c.body.iter().enumerate() {
            let mut gv = Vec::new();
            g.variables(&mut gv);
            for v in gv {
                let ch = chunk_of_goal[i];
                let e = var_chunks.entry(v).or_default();
                if e.last() != Some(&ch) {
                    e.push(ch);
                }
            }
        }
    }

    let tabled_rule = tabled && boundary_count > 0;
    // environment needed?
    let lco_possible = !tabled
        && cont_clobber_count > 0
        && !c.body.is_empty()
        && last_cont_clobber_idx == Some(c.body.len() - 1);
    let mut nperms = 0u16;
    let gen_y = if tabled_rule {
        let y = nperms;
        nperms += 1;
        Some(y)
    } else {
        None
    };
    let cut_y = if has_cut {
        let y = nperms;
        nperms += 1;
        Some(y)
    } else {
        None
    };
    let mut home: HashMap<u32, VarHome> = HashMap::new();
    for (&v, chunks) in &var_chunks {
        if chunks.len() > 1 {
            home.insert(v, VarHome::Perm(nperms));
            nperms += 1;
        }
    }

    let needs_env = nperms > 0
        || cont_clobber_count > 1
        || tabled_rule
        || (cont_clobber_count == 1 && !lco_possible);
    // note: a single trailing call with no perms runs with LCO, no env

    let max_areg = {
        let mut m = arity;
        for g in &c.body {
            if let Some((_, n)) = g.functor() {
                m = m.max(n as u16);
            }
        }
        m
    };

    let mut ctx = ClauseCtx {
        home,
        seen: HashMap::new(),
        next_x: max_areg,
        gen_y,
        cut_y,
        nperms,
        has_env: needs_env,
    };

    // ---- emission ----
    let entry = db.code.here();
    if ctx.has_env {
        db.code.emit(Instr::Allocate { nperms: ctx.nperms });
        if let Some(y) = ctx.gen_y {
            db.code.emit(Instr::SaveGenerator { y });
        }
        if let Some(y) = ctx.cut_y {
            db.code.emit(Instr::GetLevel { y });
        }
    }

    // head
    for (i, t) in head_args.iter().enumerate() {
        compile_get(db, &mut ctx, t, i as u16)?;
    }

    // body
    let nb = c.body.len();
    let mut clause_closed = false;
    for (i, g) in c.body.iter().enumerate() {
        match g {
            Term::Atom(s) if *s == well_known::TRUE => continue,
            Term::Atom(s) if *s == well_known::FAIL => {
                db.code.emit(Instr::Fail);
                clause_closed = true;
                break;
            }
            Term::Atom(s) if *s == well_known::CUT => {
                let y = ctx.cut_y.expect("cut implies cut slot");
                db.code.emit(Instr::CutY { y });
                continue;
            }
            _ => {}
        }
        let (f, n) = g.functor().ok_or_else(|| CompileError {
            message: "goal is not callable".into(),
        })?;
        let pred = db.ensure_pred(f, n as u16);
        // put arguments
        for (ai, at) in g.args().iter().enumerate() {
            compile_put(db, &mut ctx, at, ai as u16)?;
        }
        let is_last = i == nb - 1;
        if is_last && lco_possible && !ctx.has_env {
            db.code.emit(Instr::Execute { pred });
            clause_closed = true;
        } else if is_last && lco_possible && ctx.has_env {
            db.code.emit(Instr::Deallocate);
            db.code.emit(Instr::Execute { pred });
            clause_closed = true;
        } else {
            db.code.emit(Instr::Call { pred });
        }
    }

    if !clause_closed {
        if tabled {
            if let Some(y) = ctx.gen_y {
                db.code.emit(Instr::NewAnswer { y });
                db.code.emit(Instr::Deallocate);
                db.code.emit(Instr::Proceed);
            } else {
                db.code.emit(Instr::NewAnswerDirect);
            }
        } else if ctx.has_env {
            db.code.emit(Instr::Deallocate);
            db.code.emit(Instr::Proceed);
        } else {
            db.code.emit(Instr::Proceed);
        }
    }
    let _ = syms;
    Ok(entry)
}

fn fresh_x(ctx: &mut ClauseCtx) -> Result<u16, CompileError> {
    let x = ctx.next_x;
    // deep ground structures (e.g. long list facts) use one temporary per
    // nested cell; the machine provides MAX_X registers
    if x as usize >= crate::machine::MAX_X {
        return err("clause too large: X register overflow");
    }
    ctx.next_x += 1;
    Ok(x)
}

fn var_home(ctx: &mut ClauseCtx, v: u32) -> Result<VarHome, CompileError> {
    if let Some(&h) = ctx.home.get(&v) {
        return Ok(h);
    }
    let x = fresh_x(ctx)?;
    let h = VarHome::Temp(x);
    ctx.home.insert(v, h);
    Ok(h)
}

fn const_cell(t: &Term) -> Option<Cell> {
    match t {
        Term::Atom(s) => Some(Cell::con(*s)),
        Term::Int(i) => Some(Cell::int(*i)),
        _ => None,
    }
}

/// Head argument compilation (get/unify instructions).
fn compile_get(
    db: &mut Program,
    ctx: &mut ClauseCtx,
    t: &Term,
    a: u16,
) -> Result<(), CompileError> {
    match t {
        Term::Var(v) => {
            let h = var_home(ctx, *v)?;
            let first = !ctx.seen.contains_key(v);
            ctx.seen.insert(*v, true);
            match (h, first) {
                (VarHome::Temp(x), true) => db.code.emit(Instr::GetVariableX { x, a }),
                (VarHome::Perm(y), true) => db.code.emit(Instr::GetVariableY { y, a }),
                (VarHome::Temp(x), false) => db.code.emit(Instr::GetValueX { x, a }),
                (VarHome::Perm(y), false) => db.code.emit(Instr::GetValueY { y, a }),
            };
        }
        Term::Atom(_) | Term::Int(_) => {
            let c = const_cell(t).expect("constant");
            db.code.emit(Instr::GetConstant { c, a });
        }
        Term::Compound(f, args) if *f == well_known::DOT && args.len() == 2 => {
            db.code.emit(Instr::GetList { a });
            let pending = emit_unify_args(db, ctx, args)?;
            resolve_pending(db, ctx, pending)?;
        }
        Term::Compound(f, args) => {
            db.code.emit(Instr::GetStructure {
                f: *f,
                n: args.len() as u16,
                a,
            });
            let pending = emit_unify_args(db, ctx, args)?;
            resolve_pending(db, ctx, pending)?;
        }
        Term::HiLog(..) => unreachable!("HiLog encoded before compilation"),
    }
    Ok(())
}

/// Emits unify instructions for a structure's arguments, returning nested
/// compounds to process afterwards (breadth-first, as in the WAM).
fn emit_unify_args(
    db: &mut Program,
    ctx: &mut ClauseCtx,
    args: &[Term],
) -> Result<Vec<(u16, Term)>, CompileError> {
    let mut pending = Vec::new();
    for sub in args {
        match sub {
            Term::Var(v) => {
                let h = var_home(ctx, *v)?;
                let first = !ctx.seen.contains_key(v);
                ctx.seen.insert(*v, true);
                match (h, first) {
                    (VarHome::Temp(x), true) => db.code.emit(Instr::UnifyVariableX { x }),
                    (VarHome::Perm(y), true) => db.code.emit(Instr::UnifyVariableY { y }),
                    (VarHome::Temp(x), false) => db.code.emit(Instr::UnifyValueX { x }),
                    (VarHome::Perm(y), false) => db.code.emit(Instr::UnifyValueY { y }),
                };
            }
            Term::Atom(_) | Term::Int(_) => {
                let c = const_cell(sub).expect("constant");
                db.code.emit(Instr::UnifyConstant { c });
            }
            compound => {
                let x = fresh_x(ctx)?;
                db.code.emit(Instr::UnifyVariableX { x });
                pending.push((x, compound.clone()));
            }
        }
    }
    Ok(pending)
}

fn resolve_pending(
    db: &mut Program,
    ctx: &mut ClauseCtx,
    pending: Vec<(u16, Term)>,
) -> Result<(), CompileError> {
    for (x, t) in pending {
        compile_get(db, ctx, &t, x)?;
    }
    Ok(())
}

/// Body argument compilation (put instructions). Builds term `t` into
/// argument register `a`.
fn compile_put(
    db: &mut Program,
    ctx: &mut ClauseCtx,
    t: &Term,
    a: u16,
) -> Result<(), CompileError> {
    match t {
        Term::Var(v) => {
            let h = var_home(ctx, *v)?;
            let first = !ctx.seen.contains_key(v);
            ctx.seen.insert(*v, true);
            match (h, first) {
                (VarHome::Temp(x), true) => db.code.emit(Instr::PutVariableX { x, a }),
                (VarHome::Perm(y), true) => db.code.emit(Instr::PutVariableY { y, a }),
                (VarHome::Temp(x), false) => db.code.emit(Instr::PutValueX { x, a }),
                (VarHome::Perm(y), false) => db.code.emit(Instr::PutValueY { y, a }),
            };
        }
        Term::Atom(_) | Term::Int(_) => {
            let c = const_cell(t).expect("constant");
            db.code.emit(Instr::PutConstant { c, a });
        }
        Term::Compound(f, args) => {
            // build nested compounds into temporaries first (post-order)
            let mut built: Vec<Option<u16>> = Vec::with_capacity(args.len());
            for sub in args {
                match sub {
                    Term::Compound(..) => {
                        let x = fresh_x(ctx)?;
                        compile_put(db, ctx, sub, x)?;
                        built.push(Some(x));
                    }
                    _ => built.push(None),
                }
            }
            if *f == well_known::DOT && args.len() == 2 {
                db.code.emit(Instr::PutList { a });
            } else {
                db.code.emit(Instr::PutStructure {
                    f: *f,
                    n: args.len() as u16,
                    a,
                });
            }
            for (sub, b) in args.iter().zip(built) {
                match (sub, b) {
                    (_, Some(x)) => {
                        db.code.emit(Instr::UnifyValueX { x });
                    }
                    (Term::Var(v), None) => {
                        let h = var_home(ctx, *v)?;
                        let first = !ctx.seen.contains_key(v);
                        ctx.seen.insert(*v, true);
                        match (h, first) {
                            (VarHome::Temp(x), true) => db.code.emit(Instr::UnifyVariableX { x }),
                            (VarHome::Perm(y), true) => db.code.emit(Instr::UnifyVariableY { y }),
                            (VarHome::Temp(x), false) => db.code.emit(Instr::UnifyValueX { x }),
                            (VarHome::Perm(y), false) => db.code.emit(Instr::UnifyValueY { y }),
                        };
                    }
                    (konst, None) => {
                        let c = const_cell(konst).expect("constant");
                        db.code.emit(Instr::UnifyConstant { c });
                    }
                }
            }
        }
        Term::HiLog(..) => unreachable!("HiLog encoded before compilation"),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// dispatch / indexing
// ---------------------------------------------------------------------

/// First-argument pattern of a clause head, for hash indexing.
#[derive(Clone, Debug, PartialEq)]
enum Arg0 {
    Var,
    Const(Cell),
    List,
    Struct(Sym, u16),
}

fn arg0_of(c: &Clause) -> Arg0 {
    match c.head.args().first() {
        None | Some(Term::Var(_)) => Arg0::Var,
        Some(Term::Atom(s)) => Arg0::Const(Cell::con(*s)),
        Some(Term::Int(i)) => Arg0::Const(Cell::int(*i)),
        Some(Term::Compound(f, args)) if *f == well_known::DOT && args.len() == 2 => Arg0::List,
        Some(Term::Compound(f, args)) => Arg0::Struct(*f, args.len() as u16),
        Some(Term::HiLog(..)) => unreachable!(),
    }
}

fn emit_dispatch(
    db: &mut Program,
    pred: PredId,
    arity: u16,
    clauses: &[Clause],
    addrs: &[CodePtr],
    tabled: bool,
    index: StaticIndex,
) -> Result<CodePtr, CompileError> {
    if tabled {
        return Ok(db.code.emit(Instr::TableCall { pred, arity }));
    }
    match addrs.len() {
        0 => Ok(db.snippets.fail),
        1 => Ok(addrs[0]),
        _ => match index {
            StaticIndex::FirstString => {
                let heads: Vec<&[Term]> = clauses.iter().map(|c| c.head.args()).collect();
                let mut trie = first_string::Trie::build(&heads, arity);
                trie.clause_addrs = addrs.to_vec();
                let tid = db.code.add_trie(trie);
                Ok(db.code.emit(Instr::TrieDispatch { trie: tid, arity }))
            }
            StaticIndex::Hash => {
                if arity == 0 {
                    return Ok(emit_chain(db, addrs, arity));
                }
                emit_hash_dispatch(db, arity, clauses, addrs)
            }
        },
    }
}

/// Emits a try/retry/trust chain over `addrs`; single clause jumps direct.
fn emit_chain(db: &mut Program, addrs: &[CodePtr], arity: u16) -> CodePtr {
    match addrs.len() {
        0 => db.snippets.fail,
        1 => addrs[0],
        _ => {
            let start = db.code.here();
            db.code.emit(Instr::Try {
                target: addrs[0],
                arity,
            });
            for &a in &addrs[1..addrs.len() - 1] {
                db.code.emit(Instr::Retry { target: a });
            }
            db.code.emit(Instr::Trust {
                target: addrs[addrs.len() - 1],
            });
            start
        }
    }
}

fn emit_hash_dispatch(
    db: &mut Program,
    arity: u16,
    clauses: &[Clause],
    addrs: &[CodePtr],
) -> Result<CodePtr, CompileError> {
    let pats: Vec<Arg0> = clauses.iter().map(arg0_of).collect();

    let all: Vec<CodePtr> = addrs.to_vec();
    let var_only: Vec<CodePtr> = pats
        .iter()
        .zip(addrs)
        .filter(|(p, _)| **p == Arg0::Var)
        .map(|(_, &a)| a)
        .collect();

    let var_chain = emit_chain(db, &all, arity);
    let miss_chain = emit_chain(db, &var_only, arity);

    // constants
    let mut const_keys: Vec<Cell> = Vec::new();
    for p in &pats {
        if let Arg0::Const(c) = p {
            if !const_keys.contains(c) {
                const_keys.push(*c);
            }
        }
    }
    let mut con_table = ConstTable {
        map: HashMap::with_capacity(const_keys.len()),
        miss: miss_chain,
    };
    for key in const_keys {
        let bucket: Vec<CodePtr> = pats
            .iter()
            .zip(addrs)
            .filter(|(p, _)| matches!(p, Arg0::Const(c) if *c == key) || **p == Arg0::Var)
            .map(|(_, &a)| a)
            .collect();
        con_table.map.insert(key, emit_chain(db, &bucket, arity));
    }
    let con = db.code.add_const_table(con_table);

    // structures
    let mut str_keys: Vec<(Sym, u16)> = Vec::new();
    for p in &pats {
        if let Arg0::Struct(f, n) = p {
            if !str_keys.contains(&(*f, *n)) {
                str_keys.push((*f, *n));
            }
        }
    }
    let mut str_table = StructTable {
        map: HashMap::with_capacity(str_keys.len()),
        miss: miss_chain,
    };
    for key in str_keys {
        let bucket: Vec<CodePtr> = pats
            .iter()
            .zip(addrs)
            .filter(|(p, _)| matches!(p, Arg0::Struct(f, n) if (*f, *n) == key) || **p == Arg0::Var)
            .map(|(_, &a)| a)
            .collect();
        str_table.map.insert(key, emit_chain(db, &bucket, arity));
    }
    let strt = db.code.add_struct_table(str_table);

    // lists
    let lis_bucket: Vec<CodePtr> = pats
        .iter()
        .zip(addrs)
        .filter(|(p, _)| **p == Arg0::List || **p == Arg0::Var)
        .map(|(_, &a)| a)
        .collect();
    let lis = emit_chain(db, &lis_bucket, arity);

    Ok(db.code.emit(Instr::SwitchOnTerm {
        var: var_chain,
        con,
        lis,
        str: strt,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::{parse_program, Item, OpTable};

    fn compile_src(src: &str) -> (Program, SymbolTable) {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let mut groups: HashMap<(Sym, u16), Vec<Clause>> = HashMap::new();
        let mut order: Vec<(Sym, u16)> = Vec::new();
        for it in items {
            match it {
                Item::Clause(c) => {
                    let (f, n) = c.head.functor().unwrap();
                    let k = (f, n as u16);
                    if !groups.contains_key(&k) {
                        order.push(k);
                    }
                    groups.entry(k).or_default().push(c);
                }
                Item::Directive(d) => {
                    // handle `table p/n` for tests
                    if let Term::Compound(f, args) = &d {
                        if *f == well_known::TABLE {
                            let (s, n) = crate::program::pred_indicator(&args[0]).unwrap();
                            db.declare_tabled(s, n).unwrap();
                        }
                    }
                }
            }
        }
        for k in order {
            let cs = groups.remove(&k).unwrap();
            compile_predicate(&mut db, &mut syms, k.0, k.1, &cs).unwrap();
        }
        (db, syms)
    }

    fn entry_of(db: &Program, syms: &SymbolTable, name: &str, arity: u16) -> CodePtr {
        let s = syms.lookup(name).unwrap();
        let id = db.lookup_pred(s, arity).unwrap();
        match &db.pred(id).kind {
            PredKind::Static { entry, .. } => *entry,
            other => panic!("expected static pred, got {other:?}"),
        }
    }

    #[test]
    fn fact_compiles_to_gets_and_proceed() {
        // the peephole pass fuses the trailing GetConstant;Proceed pair in
        // place; the shadowed originals remain at their addresses
        let (db, syms) = compile_src("edge(1,2).");
        let e = entry_of(&db, &syms, "edge", 2);
        assert_eq!(
            db.code.code[e as usize],
            Instr::GetConstant {
                c: Cell::int(1),
                a: 0
            }
        );
        assert_eq!(
            db.code.code[e as usize + 1],
            Instr::GetConstantProceed {
                c: Cell::int(2),
                a: 1
            }
        );
        assert_eq!(db.code.code[e as usize + 2], Instr::Proceed);
    }

    #[test]
    fn fusion_disabled_keeps_unfused_code() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        db.fusion_enabled = false;
        let ops = OpTable::standard();
        let items = parse_program("edge(1,2).", &mut syms, &ops).unwrap();
        let Some(Item::Clause(c)) = items.into_iter().next() else {
            panic!("expected a clause");
        };
        let (f, n) = c.head.functor().unwrap();
        compile_predicate(&mut db, &mut syms, f, n as u16, &[c]).unwrap();
        let e = entry_of(&db, &syms, "edge", 2);
        assert_eq!(
            db.code.code[e as usize + 1],
            Instr::GetConstant {
                c: Cell::int(2),
                a: 1
            }
        );
        assert_eq!(db.code.code[e as usize + 2], Instr::Proceed);
    }

    #[test]
    fn chain_rule_uses_lco_without_env() {
        let (db, syms) = compile_src("p(X) :- q(X).\nq(1).");
        let e = entry_of(&db, &syms, "p", 1) as usize;
        // GetVariableX, PutValueX, Execute — no Allocate
        assert!(matches!(db.code.code[e], Instr::GetVariableX { .. }));
        assert!(matches!(db.code.code[e + 1], Instr::PutValueX { .. }));
        assert!(matches!(db.code.code[e + 2], Instr::Execute { .. }));
    }

    #[test]
    fn two_calls_need_environment_and_perm_var() {
        let (db, syms) = compile_src("p(X,Y) :- q(X,Z), r(Z,Y).\nq(1,2).\nr(2,3).");
        let e = entry_of(&db, &syms, "p", 2) as usize;
        match db.code.code[e] {
            Instr::Allocate { nperms } => {
                // Z and Y cross the first call: both permanent
                assert_eq!(nperms, 2);
            }
            ref other => panic!("expected Allocate, got {other:?}"),
        }
        // ends with Deallocate+Execute (LCO on last call)
        let has_dealloc_exec = db.code.code[e..]
            .windows(2)
            .any(|w| matches!(w, [Instr::Deallocate, Instr::Execute { .. }]));
        assert!(has_dealloc_exec);
    }

    #[test]
    fn multiple_clauses_get_switch_on_term() {
        let (db, syms) = compile_src("t(a). t(b). t(c).");
        let e = entry_of(&db, &syms, "t", 1) as usize;
        match db.code.code[e] {
            Instr::SwitchOnTerm { con, .. } => {
                let table = &db.code.const_tables[con as usize];
                assert_eq!(table.map.len(), 3);
                // each constant bucket is deterministic: direct clause addr
                for &addr in table.map.values() {
                    assert!(
                        !matches!(db.code.code[addr as usize], Instr::Try { .. }),
                        "single-clause buckets must not push choice points"
                    );
                }
            }
            ref other => panic!("expected SwitchOnTerm, got {other:?}"),
        }
    }

    #[test]
    fn var_headed_clause_appears_in_const_buckets() {
        let (db, syms) = compile_src("t(a). t(X) :- q(X).\nq(1).");
        let e = entry_of(&db, &syms, "t", 1) as usize;
        match db.code.code[e] {
            Instr::SwitchOnTerm { con, .. } => {
                let table = &db.code.const_tables[con as usize];
                // bucket for 'a' has two candidates → chain
                let a = syms.lookup("a").unwrap();
                let baddr = table.map[&Cell::con(a)];
                assert!(matches!(db.code.code[baddr as usize], Instr::Try { .. }));
                // miss chain exists (the var clause)
                assert!(
                    !matches!(db.code.code[table.miss as usize], Instr::Fail),
                    "unknown constants still try the var-headed clause"
                );
            }
            ref other => panic!("expected SwitchOnTerm, got {other:?}"),
        }
    }

    #[test]
    fn tabled_predicate_entry_is_tablecall() {
        let (db, syms) = compile_src(
            ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\nedge(1,2).",
        );
        let e = entry_of(&db, &syms, "path", 2) as usize;
        assert!(matches!(db.code.code[e], Instr::TableCall { .. }));
        let s = syms.lookup("path").unwrap();
        let id = db.lookup_pred(s, 2).unwrap();
        match &db.pred(id).kind {
            PredKind::Static { clauses, .. } => assert_eq!(clauses.len(), 2),
            _ => panic!(),
        }
        // rule clauses contain SaveGenerator and NewAnswer
        let code_str = format!("{:?}", db.code.code);
        assert!(code_str.contains("SaveGenerator"));
        assert!(code_str.contains("NewAnswer"));
    }

    #[test]
    fn tabled_fact_uses_new_answer_direct() {
        let (db, _syms) = compile_src(":- table e/2.\ne(1,2). e(2,3).");
        let code_str = format!("{:?}", db.code.code);
        assert!(code_str.contains("NewAnswerDirect"));
    }

    #[test]
    fn cut_in_tabled_predicate_is_a_compile_error() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program("p(X) :- q(X), !.", &mut syms, &ops).unwrap();
        let c = match &items[0] {
            Item::Clause(c) => c.clone(),
            _ => panic!(),
        };
        let p = syms.lookup("p").unwrap();
        db.declare_tabled(p, 1).unwrap();
        assert!(compile_predicate(&mut db, &mut syms, p, 1, &[c]).is_err());
    }

    #[test]
    fn cut_allocates_level_slot() {
        let (db, syms) = compile_src("transform_null(null, unknown) :- !.\ntransform_null(X,X).");
        let e = entry_of(&db, &syms, "transform_null", 2);
        // entry is a switch; find the first clause: Allocate + GetLevel
        let code_str = format!("{:?}", &db.code.code[..]);
        assert!(code_str.contains("GetLevel"));
        assert!(code_str.contains("CutY"));
        let _ = e;
    }

    #[test]
    fn disjunction_extracted_to_aux_predicate() {
        let (db, syms) = compile_src("p(X) :- (X = 1 ; X = 2).");
        // an aux predicate was created and compiled
        let found = db
            .pred_map
            .keys()
            .any(|(s, _)| syms.name(*s).contains("$disj"));
        assert!(found, "expected a $disj auxiliary predicate");
    }

    #[test]
    fn if_then_else_compiles_with_cut_arm() {
        let (db, syms) = compile_src("max(X,Y,Z) :- (X >= Y -> Z = X ; Z = Y).");
        let found = db
            .pred_map
            .keys()
            .any(|(s, _)| syms.name(*s).contains("$disj"));
        assert!(found);
        let code_str = format!("{:?}", db.code.code);
        assert!(code_str.contains("CutY"), "if-then-else arm uses cut");
    }

    #[test]
    fn first_string_index_emits_trie_dispatch() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program(
            "p(g(a),f(X)). p(g(a),f(a)). p(g(b),f(1)). p(g(X),Y).",
            &mut syms,
            &ops,
        )
        .unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .map(|i| match i {
                Item::Clause(c) => c,
                _ => panic!(),
            })
            .collect();
        let p = syms.lookup("p").unwrap();
        let id = db.ensure_pred(p, 2);
        db.preds[id as usize].static_index = StaticIndex::FirstString;
        compile_predicate(&mut db, &mut syms, p, 2, &clauses).unwrap();
        let e = entry_of(&db, &syms, "p", 2) as usize;
        assert!(matches!(db.code.code[e], Instr::TrieDispatch { .. }));
        assert_eq!(db.code.tries.len(), 1);
    }

    #[test]
    fn variable_goal_wrapped_in_call() {
        let (db, syms) = compile_src("do(G) :- G.");
        let e = entry_of(&db, &syms, "do", 1) as usize;
        let end = (e + 4).min(db.code.code.len());
        let code = &db.code.code[e..end];
        let has_call_pred = code.iter().any(|i| {
            if let Instr::Execute { pred } | Instr::Call { pred } = i {
                syms.name(db.pred(*pred).name) == "call"
            } else {
                false
            }
        });
        assert!(has_call_pred, "variable goal compiles to call/1: {code:?}");
    }

    #[test]
    fn query_compilation() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let ops = OpTable::standard();
        let items = parse_program("edge(1,2).", &mut syms, &ops).unwrap();
        if let Item::Clause(c) = &items[0] {
            let (f, n) = c.head.functor().unwrap();
            compile_predicate(&mut db, &mut syms, f, n as u16, std::slice::from_ref(c)).unwrap();
        }
        let q = xsb_syntax::parse_query("edge(X, Y)", &mut syms, &ops).unwrap();
        let pid = compile_query(&mut db, &mut syms, &q.goals, 2).unwrap();
        assert!(matches!(db.pred(pid).kind, PredKind::Static { .. }));
        assert_eq!(db.pred(pid).arity, 2);
    }
}
