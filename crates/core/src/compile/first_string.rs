//! First-string indexing (paper §4.5, Example 4.2; Chen–Ramakrishnan–Ramesh).
//!
//! A discrimination trie over the *first string* of each clause head: the
//! pre-order traversal of the head's arguments, truncated at the first
//! variable. At call time the trie is walked in lockstep with the call's
//! arguments; a variable in the call matches every subtree, and a clause
//! whose string ended (it had a variable there) matches any remaining call.
//! The result is the candidate clause chain, tried in source order.

use crate::cell::{Cell, Tag};
use xsb_syntax::{well_known, Term};

/// Trie node: children keyed by token cell (CON / INT / FUN), kept sorted
/// for binary-search dispatch, plus the clauses whose first string *ends*
/// at this node.
#[derive(Debug, Default, Clone)]
pub struct TrieNode {
    pub children: Vec<(Cell, u32)>,
    pub ends: Vec<u32>,
}

/// A first-string discrimination trie for one predicate.
#[derive(Debug, Clone)]
pub struct Trie {
    pub nodes: Vec<TrieNode>,
    pub arity: u16,
    /// code address of each clause, filled in by the compiler so the
    /// dispatch instruction can map matched clause indices to code
    pub clause_addrs: Vec<crate::instr::CodePtr>,
}

impl Trie {
    /// Builds the trie from clause heads (each given as its argument list).
    pub fn build(heads: &[&[Term]], arity: u16) -> Trie {
        let mut t = Trie {
            nodes: vec![TrieNode::default()],
            arity,
            clause_addrs: Vec::new(),
        };
        for (ci, head_args) in heads.iter().enumerate() {
            let s = first_string(head_args);
            let mut node = 0u32;
            for tok in s {
                node = t.child(node, tok);
            }
            t.nodes[node as usize].ends.push(ci as u32);
        }
        t
    }

    fn child(&mut self, node: u32, tok: Cell) -> u32 {
        match self.nodes[node as usize]
            .children
            .binary_search_by_key(&tok.0, |(c, _)| c.0)
        {
            Ok(i) => self.nodes[node as usize].children[i].1,
            Err(i) => {
                let id = self.nodes.len() as u32;
                self.nodes.push(TrieNode::default());
                self.nodes[node as usize].children.insert(i, (tok, id));
                id
            }
        }
    }

    /// Clause indices in the subtree rooted at `node` (inclusive).
    fn subtree_ends(&self, node: u32, out: &mut Vec<u32>) {
        let n = &self.nodes[node as usize];
        out.extend(n.ends.iter().copied());
        for &(_, c) in &n.children {
            self.subtree_ends(c, out);
        }
    }

    /// Matches the trie against a call: `args` are the dereferenced
    /// argument roots, `heap` resolves structure cells. Returns candidate
    /// clause indices in source order.
    pub fn lookup(&self, args: &[Cell], heap: &[Cell], deref: impl Fn(Cell) -> Cell) -> Vec<u32> {
        let mut out = Vec::new();
        // pre-order token stream of the call, lazily via an explicit stack
        let mut stack: Vec<Cell> = args.iter().rev().copied().collect();
        let mut node = 0u32;
        loop {
            // clauses whose string ends here match whatever remains
            out.extend(self.nodes[node as usize].ends.iter().copied());
            let Some(c) = stack.pop() else {
                break; // call stream exhausted: only `ends` along the path match
            };
            let c = deref(c);
            let tok = match c.tag() {
                Tag::Ref => {
                    // variable in the call: everything below matches
                    let mut subtree = Vec::new();
                    for &(_, child) in &self.nodes[node as usize].children {
                        self.subtree_ends(child, &mut subtree);
                    }
                    out.extend(subtree);
                    break;
                }
                Tag::Con | Tag::Int => c,
                Tag::Str => {
                    let pa = c.addr();
                    let (_, n) = heap[pa].functor();
                    for i in (1..=n).rev() {
                        stack.push(heap[pa + i]);
                    }
                    heap[pa]
                }
                Tag::Lis => {
                    let pa = c.addr();
                    stack.push(heap[pa + 1]);
                    stack.push(heap[pa]);
                    Cell::fun(well_known::DOT, 2)
                }
                _ => unreachable!(),
            };
            match self.nodes[node as usize]
                .children
                .binary_search_by_key(&tok.0, |(c, _)| c.0)
            {
                Ok(i) => node = self.nodes[node as usize].children[i].1,
                Err(_) => break,
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The pre-order token string of a clause head's arguments, truncated at
/// the first variable (paper: "the traversal terminates as soon as a
/// variable is encountered").
pub fn first_string(args: &[Term]) -> Vec<Cell> {
    let mut out = Vec::new();
    let mut stack: Vec<&Term> = args.iter().rev().collect();
    while let Some(t) = stack.pop() {
        match t {
            Term::Var(_) => break,
            Term::Atom(s) => out.push(Cell::con(*s)),
            Term::Int(i) => out.push(Cell::int(*i)),
            Term::Compound(f, kids) => {
                out.push(Cell::fun(*f, kids.len()));
                for k in kids.iter().rev() {
                    stack.push(k);
                }
            }
            Term::HiLog(..) => unreachable!("HiLog encoded before compilation"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::{SymbolTable, Term};

    /// Builds the paper's Example 4.2 predicate:
    /// p(g(a),f(X)). p(g(a),f(a)). p(g(b),f(1)). p(g(X),Y).
    fn example_4_2() -> (Trie, SymbolTable) {
        let mut s = SymbolTable::new();
        let g = s.intern("g");
        let f = s.intern("f");
        let a = s.intern("a");
        let b = s.intern("b");
        let heads: Vec<Vec<Term>> = vec![
            vec![
                Term::Compound(g, vec![Term::Atom(a)]),
                Term::Compound(f, vec![Term::Var(0)]),
            ],
            vec![
                Term::Compound(g, vec![Term::Atom(a)]),
                Term::Compound(f, vec![Term::Atom(a)]),
            ],
            vec![
                Term::Compound(g, vec![Term::Atom(b)]),
                Term::Compound(f, vec![Term::Int(1)]),
            ],
            vec![Term::Compound(g, vec![Term::Var(0)]), Term::Var(1)],
        ];
        let refs: Vec<&[Term]> = heads.iter().map(|h| h.as_slice()).collect();
        let t = Trie::build(&refs, 2);
        // heads drop out of scope; trie owns everything it needs
        (t, s)
    }

    #[test]
    fn first_string_truncates_at_variable() {
        let mut s = SymbolTable::new();
        let g = s.intern("g");
        let f = s.intern("f");
        let a = s.intern("a");
        // p(g(a), f(X)) → g/1 a f/1   (stops at X)
        let args = vec![
            Term::Compound(g, vec![Term::Atom(a)]),
            Term::Compound(f, vec![Term::Var(0)]),
        ];
        assert_eq!(
            first_string(&args),
            vec![Cell::fun(g, 1), Cell::con(a), Cell::fun(f, 1)]
        );
    }

    #[test]
    fn ground_call_selects_exact_clauses() {
        let (t, mut s) = example_4_2();
        let g = s.intern("g");
        let f = s.intern("f");
        let a = s.intern("a");
        // call p(g(a), f(a)): heap for g(a) and f(a)
        let heap = vec![Cell::fun(g, 1), Cell::con(a), Cell::fun(f, 1), Cell::con(a)];
        let hits = t.lookup(&[Cell::str(0), Cell::str(2)], &heap, |c| c);
        // clause 0 (f(X) — string ends inside), clause 1 (exact), clause 3 (g(X))
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn call_with_variable_matches_subtree() {
        let (t, mut s) = example_4_2();
        let g = s.intern("g");
        let b = s.intern("b");
        // call p(g(b), Y): Y unbound
        let mut heap = vec![Cell::fun(g, 1), Cell::con(b)];
        let y = Cell::r#ref(heap.len());
        heap.push(y);
        let hits = t.lookup(&[Cell::str(0), y], &heap, |c| c);
        // clause 2 (g(b),f(1)) and clause 3 (g(X),Y)
        assert_eq!(hits, vec![2, 3]);
    }

    #[test]
    fn all_variable_call_matches_everything() {
        let (t, _s) = example_4_2();
        let mut heap = Vec::new();
        let x = Cell::r#ref(0);
        heap.push(x);
        let y = Cell::r#ref(1);
        heap.push(y);
        let hits = t.lookup(&[x, y], &heap, |c| c);
        assert_eq!(hits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unmatched_constant_selects_only_var_clauses() {
        let (t, mut s) = example_4_2();
        let g = s.intern("g");
        let c = s.intern("zzz");
        let heap = vec![Cell::fun(g, 1), Cell::con(c)];
        let hits = t.lookup(&[Cell::str(0), Cell::con(c)], &heap, |cl| cl);
        assert_eq!(hits, vec![3], "only p(g(X),Y) matches p(g(zzz),…)");
    }

    #[test]
    fn hilog_discrimination_union_shape() {
        // Figure 4: apply/3 facts for two different inner functors share one
        // trie whose first level discriminates the functor argument.
        let mut s = SymbolTable::new();
        let p = s.intern("p");
        let path = s.intern("path");
        let heads: Vec<Vec<Term>> = vec![
            vec![Term::Atom(p), Term::Var(0), Term::Var(1)],
            vec![
                Term::Compound(path, vec![Term::Var(0)]),
                Term::Var(1),
                Term::Var(2),
            ],
        ];
        let refs: Vec<&[Term]> = heads.iter().map(|h| h.as_slice()).collect();
        let t = Trie::build(&refs, 3);
        // call apply(p, A, B)
        let mut heap = Vec::new();
        let a = Cell::r#ref(0);
        heap.push(a);
        let b = Cell::r#ref(1);
        heap.push(b);
        let hits = t.lookup(&[Cell::con(p), a, b], &heap, |c| c);
        assert_eq!(hits, vec![0]);
    }
}
