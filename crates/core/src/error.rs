//! Engine errors.

use crate::compile::CompileError;
use std::fmt;
use xsb_syntax::ParseError;

/// Any error the engine can report to its caller.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// source text failed to parse
    Parse(ParseError),
    /// a predicate failed to compile
    Compile(CompileError),
    /// an argument was insufficiently instantiated
    Instantiation(&'static str),
    /// an argument had the wrong type
    Type {
        expected: &'static str,
        found: String,
    },
    /// a goal called a predicate with no definition
    UndefinedPredicate(String),
    /// negation through an incomplete table in the same SCC — the program
    /// is not (modularly) stratified under the fixed evaluation order
    NotStratified(String),
    /// a cut would discard a partially computed table (paper §4.4)
    CutOverTable(String),
    /// the configured step limit was exceeded (useful to demonstrate that
    /// SLD loops where SLG terminates)
    StepLimit,
    /// anything else
    Other(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Instantiation(w) => {
                write!(f, "instantiation error: {w} requires a bound argument")
            }
            EngineError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            EngineError::UndefinedPredicate(p) => write!(f, "undefined predicate {p}"),
            EngineError::NotStratified(p) => write!(
                f,
                "negation loop through incomplete table {p}: program is not modularly stratified"
            ),
            EngineError::CutOverTable(p) => {
                write!(f, "cut would discard the incomplete table of {p}")
            }
            EngineError::StepLimit => write!(f, "step limit exceeded"),
            EngineError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}
