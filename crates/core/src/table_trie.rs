//! Trie-based table indexing (paper §4.5, closing paragraph).
//!
//! "Also, trie-based indexing is currently being developed for answer
//! clauses in the tables. The index is being integrated with the actual
//! storing of the answers, which will both decrease the space and the time
//! necessary for saving answers." — this module is that future-work
//! feature: a term trie over canonical cell sequences that *is* the store
//! (shared prefixes stored once) and *is* the index (insertion discovers
//! duplicates as it walks).
//!
//! The engine can run its table space on either the hash indexes (XSB
//! v1.3's design, the default) or these tries — see
//! [`crate::table::TableIndex`]; the `table_index` ablation bench compares
//! them.
//!
//! Answer tries are keyed on *substitution-factored* sequences (bindings
//! of the call's distinct variables only): with the ground call skeleton
//! gone, sequences are shorter and shared binding prefixes coincide more
//! often, so the trie's prefix sharing bites harder. A ground call's
//! answer is the empty sequence — the root node's own leaf, found and
//! inserted in O(1) with zero cells stored (the table space short-circuits
//! that case before even reaching the trie).

use crate::cell::Cell;
use std::collections::HashMap;

/// One trie node: children keyed by canonical cell. Small fan-outs use a
/// sorted vector (cache-friendly binary search); large fan-outs spill into
/// a hash map, which matters for EDB-style predicates with thousands of
/// distinct constants at one position.
#[derive(Debug)]
struct Node {
    small: Vec<(Cell, u32)>,
    big: Option<HashMap<Cell, u32>>,
    /// id of the sequence that ends here (`u32::MAX` = none)
    leaf: u32,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            small: Vec::new(),
            big: None,
            leaf: NO_LEAF,
        }
    }
}

const NO_LEAF: u32 = u32::MAX;
/// fan-out at which a node trades its sorted vector for a hash map
const SPILL: usize = 16;

impl Node {
    #[inline]
    fn get(&self, c: Cell) -> Option<u32> {
        match &self.big {
            Some(m) => m.get(&c).copied(),
            None => self
                .small
                .binary_search_by_key(&c.0, |(k, _)| k.0)
                .ok()
                .map(|i| self.small[i].1),
        }
    }

    fn insert_child(&mut self, c: Cell, id: u32) {
        match &mut self.big {
            Some(m) => {
                m.insert(c, id);
            }
            None => {
                match self.small.binary_search_by_key(&c.0, |(k, _)| k.0) {
                    Ok(_) => unreachable!("child exists"),
                    Err(i) => self.small.insert(i, (c, id)),
                }
                if self.small.len() > SPILL {
                    self.big = Some(self.small.drain(..).collect());
                }
            }
        }
    }
}

/// A trie over canonical cell sequences. Each inserted sequence gets a
/// dense id (its insertion order), so callers can keep parallel per-entry
/// data in plain vectors.
#[derive(Debug)]
pub struct TermTrie {
    nodes: Vec<Node>,
    len: u32,
    /// total cells stored across all nodes (space accounting)
    cells: u64,
}

impl Default for TermTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl TermTrie {
    pub fn new() -> TermTrie {
        TermTrie {
            nodes: vec![Node::default()],
            len: 0,
            cells: 0,
        }
    }

    /// Inserts a canonical sequence. Returns `(id, true)` for a new entry
    /// or `(existing_id, false)` for a duplicate — the duplicate check and
    /// the store are the same walk.
    pub fn insert(&mut self, seq: &[Cell]) -> (u32, bool) {
        let mut node = 0usize;
        for &c in seq {
            match self.nodes[node].get(c) {
                Some(next) => node = next as usize,
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].insert_child(c, id);
                    self.cells += 1;
                    node = id as usize;
                }
            }
        }
        if self.nodes[node].leaf != NO_LEAF {
            (self.nodes[node].leaf, false)
        } else {
            let id = self.len;
            self.nodes[node].leaf = id;
            self.len += 1;
            (id, true)
        }
    }

    /// Looks up an exact sequence.
    pub fn find(&self, seq: &[Cell]) -> Option<u32> {
        let mut node = 0usize;
        for &c in seq {
            node = self.nodes[node].get(c)? as usize;
        }
        let leaf = self.nodes[node].leaf;
        (leaf != NO_LEAF).then_some(leaf)
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cells stored in the trie — with shared prefixes this is less than
    /// the sum of sequence lengths, the space saving §4.5 anticipates.
    pub fn stored_cells(&self) -> u64 {
        self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::Sym;

    fn seq(xs: &[i64]) -> Vec<Cell> {
        xs.iter().map(|&i| Cell::int(i)).collect()
    }

    #[test]
    fn insert_assigns_dense_ids() {
        let mut t = TermTrie::new();
        assert_eq!(t.insert(&seq(&[1, 2])), (0, true));
        assert_eq!(t.insert(&seq(&[1, 3])), (1, true));
        assert_eq!(t.insert(&seq(&[2])), (2, true));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_detected_on_the_walk() {
        let mut t = TermTrie::new();
        t.insert(&seq(&[1, 2, 3]));
        assert_eq!(t.insert(&seq(&[1, 2, 3])), (0, false));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_sequences_are_distinct_entries() {
        let mut t = TermTrie::new();
        let (a, _) = t.insert(&seq(&[1, 2]));
        let (b, _) = t.insert(&seq(&[1]));
        let (c, _) = t.insert(&seq(&[1, 2, 3]));
        assert_eq!(t.find(&seq(&[1, 2])), Some(a));
        assert_eq!(t.find(&seq(&[1])), Some(b));
        assert_eq!(t.find(&seq(&[1, 2, 3])), Some(c));
        assert_eq!(t.find(&seq(&[2])), None);
        assert_eq!(t.find(&seq(&[1, 2, 3, 4])), None);
    }

    #[test]
    fn shared_prefixes_share_storage() {
        let mut t = TermTrie::new();
        // 100 sequences sharing a 3-cell prefix
        for i in 0..100 {
            let mut s = seq(&[7, 8, 9]);
            s.push(Cell::int(i));
            t.insert(&s);
        }
        assert_eq!(t.len(), 100);
        // 3 prefix cells + 100 leaves, not 400 cells
        assert_eq!(t.stored_cells(), 103);
    }

    #[test]
    fn spills_to_hashmap_on_wide_fanout() {
        let mut t = TermTrie::new();
        for i in 0..1000 {
            t.insert(&seq(&[i]));
        }
        assert_eq!(t.len(), 1000);
        for i in (0..1000).step_by(97) {
            assert!(t.find(&seq(&[i])).is_some());
        }
    }

    #[test]
    fn empty_sequence_is_the_root_leaf() {
        // a ground call's factored answer: 0-width, stored at the root
        let mut t = TermTrie::new();
        assert_eq!(t.find(&[]), None);
        assert_eq!(t.insert(&[]), (0, true));
        assert_eq!(t.insert(&[]), (0, false));
        assert_eq!(t.find(&[]), Some(0));
        assert_eq!(t.stored_cells(), 0, "boolean answers store no cells");
        // coexists with non-empty sequences
        assert_eq!(t.insert(&seq(&[1])), (1, true));
        assert_eq!(t.find(&[]), Some(0));
    }

    #[test]
    fn mixed_cell_kinds() {
        let mut t = TermTrie::new();
        let s1 = vec![Cell::fun(Sym(5), 2), Cell::con(Sym(6)), Cell::tvar(0)];
        let s2 = vec![Cell::fun(Sym(5), 2), Cell::con(Sym(6)), Cell::tvar(1)];
        let (a, new1) = t.insert(&s1);
        let (b, new2) = t.insert(&s2);
        assert!(new1 && new2);
        assert_ne!(a, b);
        assert_eq!(t.find(&s1), Some(a));
    }
}
