//! Durable EDB: WAL record schema, group commit, and transaction state.
//!
//! The paper's EDB (§4.2, §4.6) lives in dynamic predicates mutated by
//! `assert`/`retract`. This module makes those mutations durable: every
//! mutation is encoded as a logical *redo record* and appended to a
//! write-ahead log ([`xsb_storage::Wal`]) **before** it is applied to the
//! in-memory clause store. Recovery (`Engine::replay_wal`) is ARIES-style:
//! an analysis pass classifies transactions as winners or losers, a redo
//! pass repeats history in LSN order, and an undo pass rolls back loser
//! transactions in reverse order.
//!
//! Record kinds (first payload byte):
//!
//! | kind | record      | payload after the kind byte                      |
//! |------|-------------|--------------------------------------------------|
//! | 1    | Begin       | `tx u64`                                         |
//! | 2    | Commit      | `tx u64`                                         |
//! | 3    | Abort       | `tx u64`                                         |
//! | 4    | Assert      | `tx u64, worker u16, flags u8, arity u16, name, canon` |
//! | 5    | Retract     | `tx u64, worker u16, flags u8, arity u16, name, canon` |
//! | 6    | Program     | `text` (initial consulted program source)        |
//! | 7    | Broadcast   | `text` (post-creation consulted source)          |
//! | 8    | Checkpoint  | snapshot of every dynamic predicate              |
//!
//! `tx == 0` marks an auto-committed mutation: it is durable iff its
//! record is on disk — no separate Commit record. Explicit transactions
//! (`begin_transaction/0`) get a lazily-written Begin and a fsynced
//! Commit/Abort. Functor names are serialized as *strings*, so a log is
//! replayable into a fresh engine whose symbol table interns in a
//! different order.
//!
//! Group commit: with a window of 0 µs every commit point fsyncs
//! immediately; with a positive window the fsync is deferred until the
//! oldest unsynced commit is older than the window, so concurrent
//! committers share one fsync (the batch size is reported through the
//! `group_commit_batch` counter).

use crate::cell::{Cell, Tag};
use crate::error::EngineError;
use crate::instr::PredId;
use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xsb_obs::{Counter, Metrics, Stopwatch};
use xsb_storage::{FileVfs, Vfs, Wal};
use xsb_syntax::{Sym, SymbolTable};

/// Worker id marking a record that applies to every pool worker
/// (broadcast consults and standalone-engine mutations).
pub const WORKER_ALL: u16 = u16::MAX;

pub const KIND_BEGIN: u8 = 1;
pub const KIND_COMMIT: u8 = 2;
pub const KIND_ABORT: u8 = 3;
pub const KIND_ASSERT: u8 = 4;
pub const KIND_RETRACT: u8 = 5;
pub const KIND_PROGRAM: u8 = 6;
pub const KIND_BROADCAST: u8 = 7;
pub const KIND_CHECKPOINT: u8 = 8;

const FLAG_AT_FRONT: u8 = 1;
const FLAG_HAS_BODY: u8 = 2;

// ---------------------------------------------------------------------------
// records
// ---------------------------------------------------------------------------

/// A decoded WAL record (symbols interned into the decoding engine).
#[derive(Debug, Clone)]
pub enum Record {
    Begin {
        tx: u64,
    },
    Commit {
        tx: u64,
    },
    Abort {
        tx: u64,
    },
    Assert {
        tx: u64,
        worker: u16,
        name: Sym,
        arity: u16,
        at_front: bool,
        has_body: bool,
        canon: Vec<Cell>,
    },
    Retract {
        tx: u64,
        worker: u16,
        name: Sym,
        arity: u16,
        has_body: bool,
        canon: Vec<Cell>,
    },
    Program {
        text: String,
    },
    Broadcast {
        text: String,
    },
    Checkpoint {
        preds: Vec<SnapshotPred>,
    },
}

/// One dynamic predicate's clauses inside a Checkpoint record. Every
/// dynamic predicate appears — including empty ones — so replaying a
/// checkpoint can overwrite whatever earlier records re-created.
#[derive(Debug, Clone)]
pub struct SnapshotPred {
    pub name: Sym,
    pub arity: u16,
    /// `(has_body, canon)` per live clause, in clause (`seq`) order.
    pub clauses: Vec<(bool, Vec<Cell>)>,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Portable canon encoding: names as strings, one tag byte per cell.
fn put_canon(out: &mut Vec<u8>, canon: &[Cell], syms: &SymbolTable) {
    put_u32(out, canon.len() as u32);
    for &c in canon {
        match c.tag() {
            Tag::Int => {
                out.push(0);
                put_u64(out, c.int_value() as u64);
            }
            Tag::Con => {
                out.push(1);
                put_str(out, syms.name(c.sym()));
            }
            Tag::Fun => {
                let (f, n) = c.functor();
                out.push(2);
                put_str(out, syms.name(f));
                put_u16(out, n as u16);
            }
            Tag::TVar => {
                out.push(3);
                put_u16(out, c.tvar_index() as u16);
            }
            other => unreachable!("non-canonical cell tag {other:?} in WAL record"),
        }
    }
}

/// Bounds-checked little-endian reader over a record payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("wal record truncated".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "wal record has invalid utf-8".to_string())
    }
    fn sym(&mut self, syms: &mut SymbolTable) -> Result<Sym, String> {
        let s = self.str()?;
        Ok(syms.intern(&s))
    }
    fn canon(&mut self, syms: &mut SymbolTable) -> Result<Vec<Cell>, String> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => Cell::int(self.u64()? as i64),
                1 => Cell::con(self.sym(syms)?),
                2 => {
                    let f = self.sym(syms)?;
                    let n = self.u16()? as usize;
                    Cell::fun(f, n)
                }
                3 => Cell::tvar(self.u16()? as usize),
                t => return Err(format!("wal record has unknown cell tag {t}")),
            });
        }
        Ok(out)
    }
}

impl Record {
    pub fn kind(&self) -> u8 {
        match self {
            Record::Begin { .. } => KIND_BEGIN,
            Record::Commit { .. } => KIND_COMMIT,
            Record::Abort { .. } => KIND_ABORT,
            Record::Assert { .. } => KIND_ASSERT,
            Record::Retract { .. } => KIND_RETRACT,
            Record::Program { .. } => KIND_PROGRAM,
            Record::Broadcast { .. } => KIND_BROADCAST,
            Record::Checkpoint { .. } => KIND_CHECKPOINT,
        }
    }

    pub fn encode(&self, syms: &SymbolTable) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(self.kind());
        match self {
            Record::Begin { tx } | Record::Commit { tx } | Record::Abort { tx } => {
                put_u64(&mut out, *tx);
            }
            Record::Assert {
                tx,
                worker,
                name,
                arity,
                at_front,
                has_body,
                canon,
            } => {
                put_u64(&mut out, *tx);
                put_u16(&mut out, *worker);
                let mut flags = 0u8;
                if *at_front {
                    flags |= FLAG_AT_FRONT;
                }
                if *has_body {
                    flags |= FLAG_HAS_BODY;
                }
                out.push(flags);
                put_u16(&mut out, *arity);
                put_str(&mut out, syms.name(*name));
                put_canon(&mut out, canon, syms);
            }
            Record::Retract {
                tx,
                worker,
                name,
                arity,
                has_body,
                canon,
            } => {
                put_u64(&mut out, *tx);
                put_u16(&mut out, *worker);
                out.push(if *has_body { FLAG_HAS_BODY } else { 0 });
                put_u16(&mut out, *arity);
                put_str(&mut out, syms.name(*name));
                put_canon(&mut out, canon, syms);
            }
            Record::Program { text } | Record::Broadcast { text } => {
                put_str(&mut out, text);
            }
            Record::Checkpoint { preds } => {
                put_u32(&mut out, preds.len() as u32);
                for p in preds {
                    put_str(&mut out, syms.name(p.name));
                    put_u16(&mut out, p.arity);
                    put_u32(&mut out, p.clauses.len() as u32);
                    for (has_body, canon) in &p.clauses {
                        out.push(if *has_body { FLAG_HAS_BODY } else { 0 });
                        put_canon(&mut out, canon, syms);
                    }
                }
            }
        }
        out
    }

    pub fn decode(payload: &[u8], syms: &mut SymbolTable) -> Result<Record, String> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            KIND_BEGIN => Record::Begin { tx: r.u64()? },
            KIND_COMMIT => Record::Commit { tx: r.u64()? },
            KIND_ABORT => Record::Abort { tx: r.u64()? },
            KIND_ASSERT => {
                let tx = r.u64()?;
                let worker = r.u16()?;
                let flags = r.u8()?;
                let arity = r.u16()?;
                let name = r.sym(syms)?;
                let canon = r.canon(syms)?;
                Record::Assert {
                    tx,
                    worker,
                    name,
                    arity,
                    at_front: flags & FLAG_AT_FRONT != 0,
                    has_body: flags & FLAG_HAS_BODY != 0,
                    canon,
                }
            }
            KIND_RETRACT => {
                let tx = r.u64()?;
                let worker = r.u16()?;
                let flags = r.u8()?;
                let arity = r.u16()?;
                let name = r.sym(syms)?;
                let canon = r.canon(syms)?;
                Record::Retract {
                    tx,
                    worker,
                    name,
                    arity,
                    has_body: flags & FLAG_HAS_BODY != 0,
                    canon,
                }
            }
            KIND_PROGRAM => Record::Program { text: r.str()? },
            KIND_BROADCAST => Record::Broadcast { text: r.str()? },
            KIND_CHECKPOINT => {
                let np = r.u32()? as usize;
                let mut preds = Vec::with_capacity(np);
                for _ in 0..np {
                    let name = r.sym(syms)?;
                    let arity = r.u16()?;
                    let nc = r.u32()? as usize;
                    let mut clauses = Vec::with_capacity(nc);
                    for _ in 0..nc {
                        let flags = r.u8()?;
                        let canon = r.canon(syms)?;
                        clauses.push((flags & FLAG_HAS_BODY != 0, canon));
                    }
                    preds.push(SnapshotPred {
                        name,
                        arity,
                        clauses,
                    });
                }
                Record::Checkpoint { preds }
            }
            k => return Err(format!("wal record has unknown kind {k}")),
        };
        Ok(rec)
    }
}

/// Symbol-table-free peek at `(kind, tx)` — the analysis pass and log-open
/// metadata scan need only these. `tx` is 0 for kinds that carry none.
pub fn record_header(payload: &[u8]) -> Option<(u8, u64)> {
    let kind = *payload.first()?;
    let tx = match kind {
        KIND_BEGIN | KIND_COMMIT | KIND_ABORT | KIND_ASSERT | KIND_RETRACT => {
            u64::from_le_bytes(payload.get(1..9)?.try_into().ok()?)
        }
        _ => 0,
    };
    Some((kind, tx))
}

/// Recomputes the per-argument index tokens of a stored clause from its
/// canonical cells: `canon` starts with `arity` head-argument roots, each
/// root followed by its (depth-first) subterm. A `TVar` root indexes as
/// "variable" (`None`); any other root cell *is* its own outer token
/// (`Fun` cells are exactly what [`crate::dynamic::outer_token`] yields
/// for structures).
pub fn canon_tokens(canon: &[Cell], arity: u16) -> Vec<Option<Cell>> {
    fn subterm_len(canon: &[Cell], pos: usize) -> usize {
        match canon[pos].tag() {
            Tag::Fun => {
                let (_, n) = canon[pos].functor();
                let mut len = 1;
                for _ in 0..n {
                    len += subterm_len(canon, pos + len);
                }
                len
            }
            _ => 1,
        }
    }
    let mut toks = Vec::with_capacity(arity as usize);
    let mut pos = 0usize;
    for _ in 0..arity {
        let c = canon[pos];
        toks.push(match c.tag() {
            Tag::TVar => None,
            _ => Some(c),
        });
        pos += subterm_len(canon, pos);
    }
    toks
}

// ---------------------------------------------------------------------------
// the log
// ---------------------------------------------------------------------------

/// Result of appending a record: where it landed and whether the append
/// fsynced (and if so, how many pending commit points the fsync covered —
/// the group-commit batch).
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    pub lsn: u64,
    pub fsynced: bool,
    pub batched: u64,
}

/// What `Engine::replay_wal` found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// records on the surviving log
    pub scanned: u64,
    /// redo operations applied (asserts, retracts, consults, checkpoint)
    pub replayed: u64,
    /// distinct committed explicit transactions seen
    pub committed_txns: u64,
    /// loser-transaction operations rolled back in the undo pass
    pub losers_undone: u64,
    /// a Checkpoint record restored predicate snapshots
    pub checkpoint_restored: bool,
    /// redo ops tagged with this worker's own id — nonzero means a pool
    /// worker had diverged before the crash and must re-diverge on rejoin
    pub own_worker_ops: u64,
}

struct LogInner {
    wal: Wal,
    /// group-commit window; 0 = fsync at every commit point
    window_us: u64,
    /// commit points appended but not yet covered by an fsync
    unsynced_commits: u64,
    first_unsynced: Option<Instant>,
    /// transactions with a Begin on the log and no Commit/Abort yet
    active_txs: HashSet<u64>,
    /// retained consulted sources, replayed on checkpoint truncation
    program: Option<String>,
    broadcasts: Vec<String>,
}

impl LogInner {
    /// fsync now, folding all pending commit points into this batch.
    fn force(&mut self) -> io::Result<(bool, u64)> {
        self.wal.sync()?;
        let batched = self.unsynced_commits;
        self.unsynced_commits = 0;
        self.first_unsynced = None;
        Ok((true, batched))
    }
}

/// A shared, thread-safe durable log: the engine-level layer over
/// [`xsb_storage::Wal`]. One `DurableLog` serves one standalone engine or
/// every worker of a pool.
pub struct DurableLog {
    inner: Mutex<LogInner>,
    next_tx: AtomicU64,
    /// high-water mark of fsynced bytes — shared with
    /// [`xsb_storage::WalLink`] so the buffer pool can enforce
    /// WAL-before-data.
    flushed_lsn: Arc<AtomicU64>,
}

fn ioerr(e: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl DurableLog {
    /// Opens (or creates) a log over any backing store. Scans surviving
    /// records to restore the txid allocator and the retained program /
    /// broadcast sources; a torn tail is truncated by the underlying
    /// [`Wal::open`].
    pub fn open(vfs: Box<dyn Vfs>) -> io::Result<DurableLog> {
        let (wal, _) = Wal::open(vfs)?;
        let bytes = wal.bytes()?;
        let scan = xsb_storage::scan_records(&bytes);
        let mut max_tx = 0u64;
        let mut program = None;
        let mut broadcasts = Vec::new();
        for span in &scan.records {
            let payload = &bytes[span.start..span.end];
            let Some((kind, tx)) = record_header(payload) else {
                continue;
            };
            max_tx = max_tx.max(tx);
            match kind {
                KIND_PROGRAM => {
                    if let Ok(Record::Program { text }) =
                        Record::decode(payload, &mut SymbolTable::new())
                    {
                        program = Some(text);
                    }
                }
                KIND_BROADCAST => {
                    if let Ok(Record::Broadcast { text }) =
                        Record::decode(payload, &mut SymbolTable::new())
                    {
                        broadcasts.push(text);
                    }
                }
                _ => {}
            }
        }
        let flushed = Arc::new(AtomicU64::new(wal.size()));
        Ok(DurableLog {
            inner: Mutex::new(LogInner {
                wal,
                window_us: 0,
                unsynced_commits: 0,
                first_unsynced: None,
                active_txs: HashSet::new(),
                program,
                broadcasts,
            }),
            next_tx: AtomicU64::new(max_tx + 1),
            flushed_lsn: flushed,
        })
    }

    /// Opens a file-backed log at `path`.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> io::Result<DurableLog> {
        DurableLog::open(Box::new(FileVfs::open(path)?))
    }

    /// True when the log holds no Program record yet (freshly created).
    pub fn is_fresh(&self) -> bool {
        self.inner.lock().unwrap().program.is_none()
    }

    /// The retained initial program source, if any.
    pub fn program_text(&self) -> Option<String> {
        self.inner.lock().unwrap().program.clone()
    }

    pub fn alloc_tx(&self) -> u64 {
        self.next_tx.fetch_add(1, Ordering::Relaxed)
    }

    pub fn set_group_window_us(&self, us: u64) {
        self.inner.lock().unwrap().window_us = us;
    }

    pub fn group_window_us(&self) -> u64 {
        self.inner.lock().unwrap().window_us
    }

    /// Current log size in bytes (also the LSN the next record will get).
    pub fn size(&self) -> u64 {
        self.inner.lock().unwrap().wal.size()
    }

    /// Shared fsync high-water mark, for wiring a
    /// [`xsb_storage::WalLink`] into a buffer pool.
    pub fn flushed_lsn_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.flushed_lsn)
    }

    /// Appends an encoded record. `commit_point` marks records after which
    /// the log must become durable (auto-commit mutations, Commit/Abort):
    /// with window 0 that fsyncs immediately, otherwise the fsync is
    /// deferred until the oldest pending commit exceeds the window.
    pub fn append_payload(&self, payload: &[u8], commit_point: bool) -> io::Result<Ack> {
        let mut inner = self.inner.lock().unwrap();
        // maintain open-log metadata by kind
        if let Some((kind, tx)) = record_header(payload) {
            match kind {
                KIND_BEGIN => {
                    inner.active_txs.insert(tx);
                }
                KIND_COMMIT | KIND_ABORT => {
                    inner.active_txs.remove(&tx);
                }
                KIND_PROGRAM => {
                    if let Ok(Record::Program { text }) =
                        Record::decode(payload, &mut SymbolTable::new())
                    {
                        inner.program = Some(text);
                    }
                }
                KIND_BROADCAST => {
                    if let Ok(Record::Broadcast { text }) =
                        Record::decode(payload, &mut SymbolTable::new())
                    {
                        inner.broadcasts.push(text);
                    }
                }
                _ => {}
            }
        }
        let lsn = inner.wal.append(payload)?;
        let mut fsynced = false;
        let mut batched = 0;
        if commit_point {
            inner.unsynced_commits += 1;
            if inner.first_unsynced.is_none() {
                inner.first_unsynced = Some(Instant::now());
            }
            let due = inner.window_us == 0
                || inner
                    .first_unsynced
                    .map(|t| t.elapsed().as_micros() as u64 >= inner.window_us)
                    .unwrap_or(true);
            if due {
                let (f, b) = inner.force()?;
                fsynced = f;
                batched = b;
            }
        }
        if fsynced {
            self.flushed_lsn.store(inner.wal.size(), Ordering::Release);
        }
        Ok(Ack {
            lsn,
            fsynced,
            batched,
        })
    }

    /// Encodes and appends a [`Record`].
    pub fn append_record(
        &self,
        rec: &Record,
        syms: &SymbolTable,
        commit_point: bool,
    ) -> io::Result<Ack> {
        self.append_payload(&rec.encode(syms), commit_point)
    }

    /// Forces any pending group-commit fsync. Returns `(did_fsync,
    /// commits_covered)`.
    pub fn flush(&self) -> io::Result<(bool, u64)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.unsynced_commits == 0
            && inner.wal.size() == self.flushed_lsn.load(Ordering::Acquire)
        {
            return Ok((false, 0));
        }
        let r = inner.force()?;
        self.flushed_lsn.store(inner.wal.size(), Ordering::Release);
        Ok(r)
    }

    /// All surviving record payloads with their LSNs, in log order.
    pub fn raw_records(&self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let inner = self.inner.lock().unwrap();
        let bytes = inner.wal.bytes()?;
        let scan = xsb_storage::scan_records(&bytes);
        Ok(scan
            .records
            .into_iter()
            .map(|s| (s.lsn, bytes[s.start..s.end].to_vec()))
            .collect())
    }

    /// Fuzzy checkpoint: atomically rewrites the log as
    /// `[Program, Broadcast…, Checkpoint(snapshot)]`, truncating all
    /// per-mutation records the snapshot subsumes. Refuses while any
    /// explicit transaction is active (its records would be lost).
    /// Returns `(bytes_before, bytes_after)`.
    pub fn checkpoint(&self, snapshot: &Record, syms: &SymbolTable) -> io::Result<(u64, u64)> {
        debug_assert_eq!(snapshot.kind(), KIND_CHECKPOINT);
        let mut inner = self.inner.lock().unwrap();
        if !inner.active_txs.is_empty() {
            return Err(ioerr("checkpoint refused: explicit transactions active"));
        }
        let before = inner.wal.size();
        let mut payloads = Vec::new();
        if let Some(text) = &inner.program {
            payloads.push(Record::Program { text: text.clone() }.encode(syms));
        }
        for text in &inner.broadcasts {
            payloads.push(Record::Broadcast { text: text.clone() }.encode(syms));
        }
        payloads.push(snapshot.encode(syms));
        inner.wal.rewrite(&payloads)?;
        inner.unsynced_commits = 0;
        inner.first_unsynced = None;
        let after = inner.wal.size();
        self.flushed_lsn.store(after, Ordering::Release);
        Ok((before, after))
    }
}

// ---------------------------------------------------------------------------
// per-engine connection + transactions
// ---------------------------------------------------------------------------

/// A worker's attachment to a [`DurableLog`].
pub struct DurableConn {
    pub log: Arc<DurableLog>,
    /// this engine's worker id ([`WORKER_ALL`] for standalone engines)
    pub worker: u16,
    /// `set_durability(off)` stops logging without detaching
    pub enabled: bool,
    /// non-zero while replaying or consulting text that is itself
    /// logged — suppresses per-mutation records
    pub suspended: u32,
    /// replay high-water mark (byte offset past the last applied record):
    /// records below it are skipped, making replay idempotent
    pub applied_lsn: u64,
}

impl DurableConn {
    pub fn active(&self) -> bool {
        self.enabled && self.suspended == 0
    }
}

/// An open explicit transaction (`begin_transaction/0`).
pub struct ActiveTxn {
    pub id: u64,
    /// Begin record written (done lazily at the first logged mutation)
    pub begun_logged: bool,
    /// in-memory undo actions, applied in reverse on abort
    pub undo: Vec<UndoEntry>,
    /// predicates touched — invalidated after an abort rolls them back
    pub touched: Vec<PredId>,
}

/// How to undo one applied mutation.
pub enum UndoEntry {
    /// undo an assert: hide the inserted clause again
    Assert { pred: PredId, clause: u32 },
    /// undo a retract: revive the logically-deleted clause
    Retract { pred: PredId, clause: u32 },
}

/// A mutation about to be applied, described for the redo log.
pub enum MutOp<'a> {
    Assert {
        name: Sym,
        arity: u16,
        at_front: bool,
        has_body: bool,
        canon: &'a [Cell],
    },
    Retract {
        name: Sym,
        arity: u16,
        has_body: bool,
        canon: &'a [Cell],
    },
}

pub(crate) fn werr(e: io::Error) -> EngineError {
    EngineError::Other(format!("wal: {e}"))
}

pub(crate) fn note_ack(metrics: &mut Metrics, ack: &Ack, latency: Option<Stopwatch>) {
    metrics.bump(Counter::WalAppends);
    if ack.fsynced {
        metrics.bump(Counter::WalFsyncs);
        metrics.add(Counter::GroupCommitBatch, ack.batched);
    }
    if let Some(sw) = latency {
        metrics.commit_latency.record(sw.elapsed_nanos());
    }
}

/// Writes the redo record for a mutation **before** it is applied
/// (WAL-before-data at the logical level). Inside an explicit transaction
/// the record carries the txid (with a lazy Begin); outside, it is an
/// auto-commit record (tx 0) and a commit point.
pub fn log_mutation(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
    op: MutOp,
) -> Result<(), EngineError> {
    let Some(conn) = db.durable.as_mut() else {
        return Ok(());
    };
    if !conn.active() {
        return Ok(());
    }
    let (tx, auto) = match db.txn.as_mut() {
        Some(t) => {
            if !t.begun_logged {
                let ack = conn
                    .log
                    .append_record(&Record::Begin { tx: t.id }, syms, false)
                    .map_err(werr)?;
                note_ack(metrics, &ack, None);
                t.begun_logged = true;
            }
            (t.id, false)
        }
        None => (0, true),
    };
    let worker = conn.worker;
    let rec = match op {
        MutOp::Assert {
            name,
            arity,
            at_front,
            has_body,
            canon,
        } => Record::Assert {
            tx,
            worker,
            name,
            arity,
            at_front,
            has_body,
            canon: canon.to_vec(),
        },
        MutOp::Retract {
            name,
            arity,
            has_body,
            canon,
        } => Record::Retract {
            tx,
            worker,
            name,
            arity,
            has_body,
            canon: canon.to_vec(),
        },
    };
    let sw = auto.then(Stopwatch::new);
    let ack = conn.log.append_record(&rec, syms, auto).map_err(werr)?;
    note_ack(metrics, &ack, sw);
    Ok(())
}

/// Records the undo action for a just-applied mutation if a transaction
/// is open (no-op otherwise).
pub fn track_txn_mutation(db: &mut crate::program::Program, pred: PredId, entry: UndoEntry) {
    if let Some(t) = db.txn.as_mut() {
        t.undo.push(entry);
        if !t.touched.contains(&pred) {
            t.touched.push(pred);
        }
    }
}

/// `begin_transaction/0`: opens an explicit transaction. Nesting is not
/// supported.
pub fn begin_txn(db: &mut crate::program::Program) -> Result<(), EngineError> {
    if db.txn.is_some() {
        return Err(EngineError::Other(
            "begin_transaction/0: a transaction is already active".into(),
        ));
    }
    let id = match db.durable.as_ref() {
        Some(c) => c.log.alloc_tx(),
        None => {
            let id = db.next_local_tx;
            db.next_local_tx += 1;
            id
        }
    };
    db.txn = Some(ActiveTxn {
        id,
        begun_logged: false,
        undo: Vec::new(),
        touched: Vec::new(),
    });
    Ok(())
}

/// `commit_transaction/0`: makes the open transaction durable (fsynced
/// Commit record) and closes it.
pub fn commit_txn(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
) -> Result<(), EngineError> {
    let Some(t) = db.txn.take() else {
        return Err(EngineError::Other(
            "commit_transaction/0: no active transaction".into(),
        ));
    };
    if t.begun_logged {
        if let Some(conn) = db.durable.as_ref() {
            let sw = Stopwatch::new();
            let ack = conn
                .log
                .append_record(&Record::Commit { tx: t.id }, syms, true)
                .map_err(werr)?;
            note_ack(metrics, &ack, Some(sw));
        }
    }
    Ok(())
}

/// `abort_transaction/0`: rolls the open transaction back in memory
/// (reverse undo order), writes a durable Abort record, and returns the
/// touched predicates so the caller can invalidate dependent tables.
pub fn abort_txn(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
) -> Result<Vec<PredId>, EngineError> {
    let Some(mut t) = db.txn.take() else {
        return Err(EngineError::Other(
            "abort_transaction/0: no active transaction".into(),
        ));
    };
    for u in t.undo.drain(..).rev() {
        match u {
            UndoEntry::Assert { pred, clause } => {
                if let Some(dp) = db.dyn_of_mut(pred) {
                    dp.remove(clause);
                }
            }
            UndoEntry::Retract { pred, clause } => {
                if let Some(dp) = db.dyn_of_mut(pred) {
                    dp.revive(clause);
                }
            }
        }
    }
    if t.begun_logged {
        if let Some(conn) = db.durable.as_ref() {
            let ack = conn
                .log
                .append_record(&Record::Abort { tx: t.id }, syms, true)
                .map_err(werr)?;
            note_ack(metrics, &ack, None);
        }
    }
    Ok(t.touched)
}

/// Logs consulted source text as a Broadcast record (auto-commit). Used
/// by `Engine::consult` on a durable engine and by pool-level
/// `consult_all`; the per-assert records inside the consult are
/// suppressed since the text subsumes them.
pub fn log_consult_text(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
    text: &str,
) -> Result<bool, EngineError> {
    let Some(conn) = db.durable.as_ref() else {
        return Ok(false);
    };
    if !conn.active() {
        return Ok(false);
    }
    let ack = conn
        .log
        .append_record(
            &Record::Broadcast {
                text: text.to_string(),
            },
            syms,
            true,
        )
        .map_err(werr)?;
    note_ack(metrics, &ack, None);
    Ok(true)
}

/// Logs the redo records for a `retractall/1` batch, before any clause is
/// removed. Inside an explicit transaction the records join it; a
/// single-clause auto-commit batch is one ordinary auto-commit record; a
/// *multi*-clause auto-commit batch is wrapped in an implicit transaction
/// (Begin … Commit) so a crash mid-batch recovers to *none* removed —
/// `retractall` stays atomic across restarts.
pub fn log_retract_batch(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
    name: Sym,
    arity: u16,
    items: &[(bool, std::rc::Rc<[Cell]>)],
) -> Result<(), EngineError> {
    if items.is_empty() {
        return Ok(());
    }
    let active = db.durable.as_ref().map(|c| c.active()).unwrap_or(false);
    if !active {
        return Ok(());
    }
    if db.txn.is_some() || items.len() == 1 {
        for (has_body, canon) in items {
            log_mutation(
                db,
                syms,
                metrics,
                MutOp::Retract {
                    name,
                    arity,
                    has_body: *has_body,
                    canon: &canon[..],
                },
            )?;
        }
        return Ok(());
    }
    let (log, worker) = {
        let conn = db.durable.as_ref().expect("active");
        (Arc::clone(&conn.log), conn.worker)
    };
    let tx = log.alloc_tx();
    let ack = log
        .append_record(&Record::Begin { tx }, syms, false)
        .map_err(werr)?;
    note_ack(metrics, &ack, None);
    for (has_body, canon) in items {
        let ack = log
            .append_record(
                &Record::Retract {
                    tx,
                    worker,
                    name,
                    arity,
                    has_body: *has_body,
                    canon: canon.to_vec(),
                },
                syms,
                false,
            )
            .map_err(werr)?;
        note_ack(metrics, &ack, None);
    }
    let sw = Stopwatch::new();
    let ack = log
        .append_record(&Record::Commit { tx }, syms, true)
        .map_err(werr)?;
    note_ack(metrics, &ack, Some(sw));
    Ok(())
}

/// Fuzzy checkpoint (`checkpoint/0` and [`crate::Engine::checkpoint`]):
/// snapshots every dynamic predicate of `db` and atomically truncates the
/// log to `[Program, Broadcast…, Checkpoint]`. Refused inside an open
/// transaction and on pool workers (one worker's snapshot cannot speak
/// for its siblings' worker-tagged records). Returns log bytes
/// `(before, after)`; the caller must invalidate nothing — the in-memory
/// EDB is unchanged.
pub fn checkpoint(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
) -> Result<(u64, u64), EngineError> {
    if db.txn.is_some() {
        return Err(EngineError::Other(
            "checkpoint/0: refused inside an open transaction".into(),
        ));
    }
    let Some(conn) = db.durable.as_ref() else {
        return Err(EngineError::Other(
            "checkpoint/0: no durable log attached".into(),
        ));
    };
    if conn.worker != WORKER_ALL {
        return Err(EngineError::Other(
            "checkpoint/0: unsupported on pool workers".into(),
        ));
    }
    let log = Arc::clone(&conn.log);
    let mut preds: Vec<SnapshotPred> = Vec::new();
    for id in 0..db.preds.len() as crate::instr::PredId {
        if let Some(dp) = db.dyn_of(id) {
            let p = db.pred(id);
            let clauses = dp
                .all_live()
                .into_iter()
                .map(|cid| {
                    let c = dp.clause(cid);
                    (c.has_body, c.canon.to_vec())
                })
                .collect();
            preds.push(SnapshotPred {
                name: p.name,
                arity: p.arity,
                clauses,
            });
        }
    }
    let (before, after) = log
        .checkpoint(&Record::Checkpoint { preds }, syms)
        .map_err(werr)?;
    db.durable.as_mut().expect("attached").applied_lsn = after;
    metrics.bump(Counter::WalAppends);
    metrics.bump(Counter::WalFsyncs);
    Ok((before, after))
}

/// Logs the initial program source as a Program record (fsynced). Called
/// once at durable-engine/pool creation, after the text was consulted.
pub fn log_program(
    db: &mut crate::program::Program,
    syms: &SymbolTable,
    metrics: &mut Metrics,
    text: &str,
) -> Result<(), EngineError> {
    let Some(conn) = db.durable.as_ref() else {
        return Ok(());
    };
    let ack = conn
        .log
        .append_record(
            &Record::Program {
                text: text.to_string(),
            },
            syms,
            true,
        )
        .map_err(werr)?;
    note_ack(metrics, &ack, None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_storage::MemVfs;

    fn roundtrip(rec: Record) -> Record {
        let mut s1 = SymbolTable::new();
        // intern some noise so the decode table starts offset
        let mut s2 = SymbolTable::new();
        s2.intern("zzz");
        s2.intern("yyy");
        let enc = rec.encode(&s1);
        // encode used s1's names; re-encode after interning into s1
        let _ = &mut s1;
        Record::decode(&enc, &mut s2).unwrap()
    }

    #[test]
    fn record_roundtrip_is_name_portable() {
        let mut syms = SymbolTable::new();
        let foo = syms.intern("foo");
        let bar = syms.intern("bar");
        let rec = Record::Assert {
            tx: 7,
            worker: 3,
            name: foo,
            arity: 2,
            at_front: true,
            has_body: false,
            canon: vec![Cell::fun(bar, 1), Cell::int(42), Cell::tvar(0)],
        };
        let enc = rec.encode(&syms);
        let mut other = SymbolTable::new();
        other.intern("noise");
        let dec = Record::decode(&enc, &mut other).unwrap();
        match dec {
            Record::Assert {
                tx,
                worker,
                name,
                arity,
                at_front,
                has_body,
                canon,
            } => {
                assert_eq!(
                    (tx, worker, arity, at_front, has_body),
                    (7, 3, 2, true, false)
                );
                assert_eq!(other.name(name), "foo");
                match canon[0].tag() {
                    Tag::Fun => {
                        let (f, n) = canon[0].functor();
                        assert_eq!(other.name(f), "bar");
                        assert_eq!(n, 1);
                    }
                    t => panic!("expected Fun, got {t:?}"),
                }
                assert_eq!(canon[1], Cell::int(42));
                assert_eq!(canon[2], Cell::tvar(0));
            }
            r => panic!("wrong record {r:?}"),
        }
    }

    #[test]
    fn control_records_roundtrip() {
        for rec in [
            Record::Begin { tx: 1 },
            Record::Commit { tx: 2 },
            Record::Abort { tx: 3 },
            Record::Program {
                text: ":- dynamic p/1.".into(),
            },
        ] {
            let kind = rec.kind();
            let out = roundtrip(rec);
            assert_eq!(out.kind(), kind);
        }
    }

    #[test]
    fn record_header_peeks_tx() {
        let syms = SymbolTable::new();
        let enc = Record::Commit { tx: 99 }.encode(&syms);
        assert_eq!(record_header(&enc), Some((KIND_COMMIT, 99)));
        let enc = Record::Program { text: "x.".into() }.encode(&syms);
        assert_eq!(record_header(&enc), Some((KIND_PROGRAM, 0)));
    }

    #[test]
    fn canon_tokens_skips_subterms() {
        let mut syms = SymbolTable::new();
        let f = syms.intern("f");
        // p(f(1,2), X, 3): roots at 0 (f/2 spans 3 cells), 3 (tvar), 4 (int)
        let canon = vec![
            Cell::fun(f, 2),
            Cell::int(1),
            Cell::int(2),
            Cell::tvar(0),
            Cell::int(3),
        ];
        let toks = canon_tokens(&canon, 3);
        assert_eq!(toks, vec![Some(Cell::fun(f, 2)), None, Some(Cell::int(3))]);
    }

    #[test]
    fn group_commit_batches_under_window() {
        let log = DurableLog::open(Box::new(MemVfs::new())).unwrap();
        let syms = SymbolTable::new();
        // window 0: every commit point fsyncs, batch of 1
        let a1 = log
            .append_record(&Record::Commit { tx: 1 }, &syms, true)
            .unwrap();
        assert!(a1.fsynced);
        assert_eq!(a1.batched, 1);
        // huge window: commit points defer, flush covers them all
        log.set_group_window_us(60_000_000);
        let a2 = log
            .append_record(&Record::Commit { tx: 2 }, &syms, true)
            .unwrap();
        let a3 = log
            .append_record(&Record::Commit { tx: 3 }, &syms, true)
            .unwrap();
        assert!(!a2.fsynced && !a3.fsynced);
        let (synced, batched) = log.flush().unwrap();
        assert!(synced);
        assert_eq!(batched, 2);
    }

    #[test]
    fn open_restores_txid_allocator_and_program() {
        let syms = SymbolTable::new();
        let log = DurableLog::open(Box::new(MemVfs::new())).unwrap();
        assert!(log.is_fresh());
        log.append_record(
            &Record::Program {
                text: ":- dynamic p/1.".into(),
            },
            &syms,
            true,
        )
        .unwrap();
        log.append_record(&Record::Begin { tx: 41 }, &syms, false)
            .unwrap();
        log.append_record(&Record::Commit { tx: 41 }, &syms, true)
            .unwrap();
        let bytes = {
            let inner = log.inner.lock().unwrap();
            inner.wal.bytes().unwrap()
        };
        let log2 = DurableLog::open(Box::new(MemVfs::from_bytes(bytes))).unwrap();
        assert!(!log2.is_fresh());
        assert_eq!(log2.program_text().unwrap(), ":- dynamic p/1.");
        assert!(log2.alloc_tx() > 41);
    }

    #[test]
    fn checkpoint_refused_while_txn_active() {
        let syms = SymbolTable::new();
        let log = DurableLog::open(Box::new(MemVfs::new())).unwrap();
        log.append_record(&Record::Begin { tx: 1 }, &syms, false)
            .unwrap();
        let snap = Record::Checkpoint { preds: vec![] };
        assert!(log.checkpoint(&snap, &syms).is_err());
        log.append_record(&Record::Commit { tx: 1 }, &syms, true)
            .unwrap();
        let (before, after) = log.checkpoint(&snap, &syms).unwrap();
        assert!(after < before);
    }
}
