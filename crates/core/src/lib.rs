//! # xsb-core — an SLG-WAM deductive database engine
//!
//! A Rust reproduction of the XSB system of Sagonas, Swift & Warren
//! (*XSB as an Efficient Deductive Database Engine*, SIGMOD 1994): a
//! WAM-derived abstract machine extended with tabling (SLG resolution), so
//! datalog programs terminate, avoid redundant computation, and evaluate
//! with polynomial data complexity — at compiled-Prolog speed.
//!
//! ```
//! use xsb_core::Engine;
//!
//! let mut e = Engine::new();
//! e.consult(r#"
//!     :- table path/2.
//!     path(X,Y) :- edge(X,Y).
//!     path(X,Y) :- path(X,Z), edge(Z,Y).
//!     edge(1,2). edge(2,3). edge(3,1).   % a cycle: SLD would loop
//! "#).unwrap();
//! assert_eq!(e.count("path(1, X)").unwrap(), 3);
//! ```
//!
//! Module map: [`cell`] tagged words · [`machine`] WAM state + freeze
//! registers + forward trail · [`instr`] instruction set · [`table`] table
//! space · [`compile`] clause compiler with hash and first-string indexing ·
//! [`emulate`] emulator & SLG scheduler · [`builtins`] builtin predicates ·
//! [`dynamic`] assert/retract with multi-field indexes · [`objfile`] bulk
//! load · [`engine`] public API.

pub mod builtins;
pub mod cell;
pub mod compile;
pub mod durable;
pub mod dynamic;
pub mod emulate;
pub mod engine;
pub mod engine_pool;
pub mod error;
pub mod instr;
pub mod machine;
pub mod objfile;
pub mod program;
pub mod shared;
pub mod table;
pub mod table_trie;

pub use durable::{DurableLog, RecoveryReport};
pub use engine::{Engine, Solution};
pub use engine_pool::{PoolBusy, PoolConfig, ServerPool, StreamItem, StreamKind, WireAnswer};
pub use error::EngineError;
pub use shared::SharedTableStore;
