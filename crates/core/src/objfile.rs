//! Object files for bulk fact loading (paper §4.6).
//!
//! XSB compiles static code into byte-code object files; "loading an object
//! file is about 12x faster than loading through the formatted read and
//! assert". This module provides the dynamic-code analogue the paper lists
//! as future work: a predicate's facts serialized in their canonical cell
//! form, so loading is a symbol-remap plus bulk insert — no tokenizing, no
//! parsing, no per-fact term construction.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "XSBO" | version u16 | name len+bytes | arity u16
//! nsyms u32 | (len u32, utf8 bytes)*          local symbol table
//! nclauses u32 | (ncells u32, cells u64*)*    canonical cell runs
//! ```
//!
//! CON and FUN cells store *local* symbol ids on disk and are remapped on
//! load.
//!
//! Object files never contain [`crate::instr::Instr`] code — only the
//! canonical cells of dynamic facts — so superinstruction fusion (a
//! post-compile peephole pass over emitted code) can never appear in, or
//! be affected by, an object file. Fusion applies when *static* code is
//! compiled at consult time; fact loading through this module bypasses
//! compilation entirely. A test below pins this.

use crate::cell::{Cell, Tag};
use crate::dynamic::IndexSpec;
use crate::error::EngineError;
use crate::program::Program;
use std::collections::HashMap;
use std::rc::Rc;
use xsb_syntax::{Sym, SymbolTable};

const MAGIC: &[u8; 4] = b"XSBO";
const VERSION: u16 = 1;

fn err<T>(m: impl Into<String>) -> Result<T, EngineError> {
    Err(EngineError::Other(m.into()))
}

/// Bounds-checked little-endian reader over the raw object-file bytes.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        match self.data.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => err("truncated object file"),
        }
    }

    fn u16_le(&mut self) -> Result<u16, EngineError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32_le(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64_le(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn utf8(&mut self, n: usize) -> Result<&'a str, EngineError> {
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| EngineError::Other("object file string is not utf-8".into()))
    }
}

/// Serializes the facts of dynamic predicate `name/arity`.
pub fn encode(
    db: &Program,
    syms: &SymbolTable,
    name: Sym,
    arity: u16,
) -> Result<Vec<u8>, EngineError> {
    let Some(pred) = db.lookup_pred(name, arity) else {
        return err(format!("no predicate {}/{arity}", syms.name(name)));
    };
    let Some(dp) = db.dyn_of(pred) else {
        return err(format!("{}/{arity} is not dynamic", syms.name(name)));
    };

    let mut local: HashMap<Sym, u32> = HashMap::new();
    let mut local_names: Vec<String> = Vec::new();
    fn localize(
        syms: &SymbolTable,
        s: Sym,
        names: &mut Vec<String>,
        map: &mut HashMap<Sym, u32>,
    ) -> u32 {
        *map.entry(s).or_insert_with(|| {
            names.push(syms.name(s).to_string());
            (names.len() - 1) as u32
        })
    }

    // first pass: collect symbols and re-encode cells with local ids
    let ids = dp.all_live();
    let mut clause_runs: Vec<Vec<u64>> = Vec::with_capacity(ids.len());
    for id in &ids {
        let c = dp.clause(*id);
        if c.has_body {
            return err("object files support fact-only predicates");
        }
        let mut run = Vec::with_capacity(c.canon.len());
        for &cell in c.canon.iter() {
            let enc = match cell.tag() {
                Tag::Con => {
                    let l = localize(syms, cell.sym(), &mut local_names, &mut local);
                    Cell::con(Sym(l)).0
                }
                Tag::Fun => {
                    let (s, n) = cell.functor();
                    let l = localize(syms, s, &mut local_names, &mut local);
                    Cell::fun(Sym(l), n).0
                }
                _ => cell.0,
            };
            run.push(enc);
        }
        clause_runs.push(run);
    }

    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let pname = syms.name(name);
    buf.extend_from_slice(&(pname.len() as u32).to_le_bytes());
    buf.extend_from_slice(pname.as_bytes());
    buf.extend_from_slice(&arity.to_le_bytes());
    buf.extend_from_slice(&(local_names.len() as u32).to_le_bytes());
    for n in &local_names {
        buf.extend_from_slice(&(n.len() as u32).to_le_bytes());
        buf.extend_from_slice(n.as_bytes());
    }
    buf.extend_from_slice(&(clause_runs.len() as u32).to_le_bytes());
    for run in &clause_runs {
        buf.extend_from_slice(&(run.len() as u32).to_le_bytes());
        for &w in run {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    Ok(buf)
}

/// Loads an object file into the program, declaring the predicate dynamic
/// if needed. Returns (name, arity, clause count).
pub fn decode(
    db: &mut Program,
    syms: &mut SymbolTable,
    data: &[u8],
) -> Result<(Sym, u16, usize), EngineError> {
    let mut buf = Reader::new(data);
    if buf.take(4).map(|m| m != MAGIC).unwrap_or(true) {
        return err("bad object file magic");
    }
    if buf.u16_le()? != VERSION {
        return err("unsupported object file version");
    }
    let nlen = buf.u32_le()? as usize;
    let name_str = buf.utf8(nlen)?;
    let name = syms.intern(name_str);
    let arity = buf.u16_le()?;

    let nsyms = buf.u32_le()? as usize;
    let mut remap: Vec<Sym> = Vec::with_capacity(nsyms);
    for _ in 0..nsyms {
        let l = buf.u32_le()? as usize;
        let s = buf.utf8(l)?;
        remap.push(syms.intern(s));
    }

    let pred = db
        .declare_dynamic(name, arity)
        .map_err(EngineError::Other)?;

    let nclauses = buf.u32_le()? as usize;
    let dp = db.dyn_of_mut(pred).expect("just declared dynamic");
    for _ in 0..nclauses {
        let ncells = buf.u32_le()? as usize;
        let mut canon: Vec<Cell> = Vec::with_capacity(ncells);
        for _ in 0..ncells {
            let raw = Cell(buf.u64_le()?);
            let cell = match raw.tag() {
                Tag::Con => Cell::con(remap[raw.sym().0 as usize]),
                Tag::Fun => {
                    let (s, n) = raw.functor();
                    Cell::fun(remap[s.0 as usize], n)
                }
                _ => raw,
            };
            canon.push(cell);
        }
        // head-arg tokens: walk the canonical run, taking the outer cell of
        // each of the `arity` roots
        let tokens = canon_tokens(&canon, arity as usize);
        dp.insert(tokens, Rc::from(canon.into_boxed_slice()), false, false);
    }
    Ok((name, arity, nclauses))
}

/// Outer token of each root in a canonical run (for index maintenance).
pub fn canon_tokens(canon: &[Cell], arity: usize) -> Vec<Option<Cell>> {
    let mut tokens = Vec::with_capacity(arity);
    let mut pos = 0usize;
    for _ in 0..arity {
        let c = canon[pos];
        tokens.push(match c.tag() {
            Tag::TVar => None,
            Tag::Con | Tag::Int => Some(c),
            Tag::Fun => Some(c),
            _ => unreachable!("invalid canonical cell"),
        });
        pos += canon_subterm_len(canon, pos);
    }
    tokens
}

/// Length (in cells) of the canonical subterm starting at `pos`.
pub fn canon_subterm_len(canon: &[Cell], pos: usize) -> usize {
    let mut need = 1usize; // terms still to read
    let mut i = pos;
    while need > 0 {
        let c = canon[i];
        need -= 1;
        if c.tag() == Tag::Fun {
            let (_, n) = c.functor();
            need += n;
        }
        i += 1;
    }
    i - pos
}

/// Applies the default index set after a bulk load (callers may override
/// with `set_indexes`).
pub fn default_indexes(arity: u16) -> Vec<IndexSpec> {
    if arity > 0 {
        vec![IndexSpec { fields: vec![0] }]
    } else {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_subterm_len_handles_nesting() {
        // f(g(a), 1) = [FUN f/2, FUN g/1, CON a, INT 1]
        let canon = [
            Cell::fun(Sym(10), 2),
            Cell::fun(Sym(11), 1),
            Cell::con(Sym(12)),
            Cell::int(1),
        ];
        assert_eq!(canon_subterm_len(&canon, 0), 4);
        assert_eq!(canon_subterm_len(&canon, 1), 2);
        assert_eq!(canon_subterm_len(&canon, 3), 1);
    }

    #[test]
    fn tokens_of_multi_root_run() {
        // roots: a, f(X), 3
        let canon = [
            Cell::con(Sym(5)),
            Cell::fun(Sym(6), 1),
            Cell::tvar(0),
            Cell::int(3),
        ];
        let toks = canon_tokens(&canon, 3);
        assert_eq!(toks[0], Some(Cell::con(Sym(5))));
        assert_eq!(toks[1], Some(Cell::fun(Sym(6), 1)));
        assert_eq!(toks[2], Some(Cell::int(3)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let e = syms.intern("edge");
        let pred = db.declare_dynamic(e, 2).unwrap();
        {
            let dp = db.dyn_of_mut(pred).unwrap();
            for i in 0..100i64 {
                let canon: Vec<Cell> = vec![Cell::int(i), Cell::int(i + 1)];
                let toks = vec![Some(Cell::int(i)), Some(Cell::int(i + 1))];
                dp.insert(toks, Rc::from(canon.into_boxed_slice()), false, false);
            }
        }
        let bytes = encode(&db, &syms, e, 2).unwrap();

        // load into a fresh program with a fresh symbol table
        let mut syms2 = SymbolTable::new();
        let mut db2 = Program::new(&mut syms2);
        let (name, arity, n) = decode(&mut db2, &mut syms2, &bytes).unwrap();
        assert_eq!(syms2.name(name), "edge");
        assert_eq!(arity, 2);
        assert_eq!(n, 100);
        let pred2 = db2.lookup_pred(name, 2).unwrap();
        let dp2 = db2.dyn_of(pred2).unwrap();
        assert_eq!(dp2.len(), 100);
        // indexed retrieval works on the loaded data
        assert_eq!(dp2.candidates(&[Some(Cell::int(5)), None]).len(), 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        assert!(decode(&mut db, &mut syms, b"not an object file").is_err());
    }

    #[test]
    fn atoms_are_remapped_across_symbol_tables() {
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        let p = syms.intern("person");
        let alice = syms.intern("alice");
        let pred = db.declare_dynamic(p, 1).unwrap();
        db.dyn_of_mut(pred).unwrap().insert(
            vec![Some(Cell::con(alice))],
            Rc::from(vec![Cell::con(alice)].into_boxed_slice()),
            false,
            false,
        );
        let bytes = encode(&db, &syms, p, 1).unwrap();

        let mut syms2 = SymbolTable::new();
        // shift the symbol table so ids cannot accidentally line up
        for i in 0..57 {
            syms2.intern(&format!("pad{i}"));
        }
        let mut db2 = Program::new(&mut syms2);
        let (name, _, _) = decode(&mut db2, &mut syms2, &bytes).unwrap();
        let pred2 = db2.lookup_pred(name, 1).unwrap();
        let alice2 = syms2.lookup("alice").unwrap();
        let dp2 = db2.dyn_of(pred2).unwrap();
        let c = dp2.clause(dp2.all_live()[0]);
        assert_eq!(c.canon[0], Cell::con(alice2));
    }

    #[test]
    fn object_files_carry_no_instruction_code() {
        // pins the fusion/objfile contract documented in the module docs:
        // the format serializes canonical fact cells only, so round-tripping
        // is identical whether the engine that wrote or reads the file has
        // fusion enabled. The code area of the loading program gains no
        // instructions from a load.
        let mut syms = SymbolTable::new();
        let mut db = Program::new(&mut syms);
        db.fusion_enabled = true;
        let e = syms.intern("edge");
        let pred = db.declare_dynamic(e, 2).unwrap();
        db.dyn_of_mut(pred).unwrap().insert(
            vec![Some(Cell::int(1)), Some(Cell::int(2))],
            Rc::from(vec![Cell::int(1), Cell::int(2)].into_boxed_slice()),
            false,
            false,
        );
        let bytes = encode(&db, &syms, e, 2).unwrap();

        let mut syms2 = SymbolTable::new();
        let mut db2 = Program::new(&mut syms2);
        db2.fusion_enabled = false;
        let code_before = db2.code.code.len();
        let unify_runs_before = db2.code.unify_runs.len();
        let (name, arity, loaded) = decode(&mut db2, &mut syms2, &bytes).unwrap();
        assert_eq!((syms2.name(name), arity, loaded), ("edge", 2, 1));
        assert_eq!(db2.code.code.len(), code_before);
        assert_eq!(db2.code.unify_runs.len(), unify_runs_before);
    }
}
