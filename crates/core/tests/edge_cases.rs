//! Edge-case tests: negation corner cases, cut safety, error reporting,
//! builtin semantics, and redefinition behaviour.

use xsb_core::{Engine, EngineError};
use xsb_syntax::Term;

fn engine(src: &str) -> Engine {
    let mut e = Engine::new();
    e.consult(src).expect("program consults");
    e
}

// ---------------------------------------------------------------------
// negation corner cases
// ---------------------------------------------------------------------

#[test]
fn tnot_reuses_completed_table() {
    let mut e = engine(
        ":- table p/1.\np(1). p(2).\n\
         :- table absent/1.\nabsent(X) :- p(X), p(99).",
    );
    // complete p's table first
    assert_eq!(e.count("p(X)").unwrap(), 2);
    // tnot over the already-completed tables
    assert!(e.holds("tnot absent(1)").unwrap());
    assert!(!e.holds("tnot p(1)").unwrap());
}

#[test]
fn tnot_of_empty_tabled_predicate() {
    let mut e = engine(":- table q/1.\nq(X) :- q(X).");
    // q/1 has only a self-recursive clause: completes empty
    assert!(e.holds("tnot q(5)").unwrap());
}

#[test]
fn e_tnot_falls_back_when_table_has_other_users() {
    // win evaluated positively first, then e_tnot over it: cannot cut a
    // table someone else may consume
    let mut e = engine(
        ":- table p/1.\np(1).\n\
         check(X) :- e_tnot p(X).",
    );
    assert_eq!(e.count("p(X)").unwrap(), 1); // table complete
    assert!(!e.holds("check(1)").unwrap());
    // unknown constant: canonical call differs, fresh generator, no answer
    // for p(7) — but p(7) is a *different subgoal* than p(X)
    assert!(e.holds("check(7)").unwrap());
}

#[test]
fn nested_negation_through_two_tables() {
    // even/odd layered over tnot: lose(X) iff not win(X)
    let mut e = engine(
        ":- table win/1.\n:- table lose/1.\n\
         win(X) :- move(X,Y), tnot win(Y).\n\
         lose(X) :- node(X), tnot win(X).\n\
         move(1,2). move(2,3).\n\
         node(1). node(2). node(3).",
    );
    // chain 1→2→3: win(3) false (no moves), win(2) true, win(1) false
    assert!(e.holds("lose(3)").unwrap());
    assert!(e.holds("lose(1)").unwrap());
    assert!(!e.holds("lose(2)").unwrap());
}

#[test]
fn sldnf_naf_with_compound_inner_goal() {
    let mut e = engine("p(1). q(1). r(2).");
    assert!(e.holds("\\+ (p(X), r(X))").unwrap());
    assert!(!e.holds("\\+ (p(X), q(X))").unwrap());
}

#[test]
fn double_sldnf_negation() {
    let mut e = engine("p(1).");
    assert!(e.holds("\\+ \\+ p(1)").unwrap());
    assert!(!e.holds("\\+ \\+ p(2)").unwrap());
}

#[test]
fn tnot_non_ground_flounders() {
    let mut e = engine(":- table p/1.\np(1).");
    let r = e.holds("tnot p(X)");
    assert!(
        matches!(r, Err(EngineError::Other(ref m)) if m.contains("floundering")),
        "{r:?}"
    );
}

#[test]
fn tnot_on_untabled_predicate_errors() {
    let mut e = engine("plain(1).");
    let r = e.holds("tnot plain(1)");
    assert!(
        matches!(r, Err(EngineError::Other(ref m)) if m.contains("tabled")),
        "{r:?}"
    );
}

// ---------------------------------------------------------------------
// cut safety (paper §4.4)
// ---------------------------------------------------------------------

#[test]
fn cut_stops_clause_alternatives_only() {
    let mut e = engine("first(X) :- member(X, [a,b,c]), !.\n");
    assert_eq!(e.count("first(X)").unwrap(), 1);
}

#[test]
fn cut_inside_condition_is_local_to_ite() {
    let mut e = engine("classify(X, neg) :- (X < 0 -> true ; fail).\nclassify(X, pos) :- X >= 0.");
    assert_eq!(e.count("classify(-5, K)").unwrap(), 1);
    assert_eq!(e.count("classify(5, K)").unwrap(), 1);
}

// ---------------------------------------------------------------------
// builtins
// ---------------------------------------------------------------------

#[test]
fn functor_and_arg_and_univ() {
    let mut e = Engine::new();
    let sols = e.query("functor(foo(a, b, c), F, N)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("F").unwrap().display(&e.syms)),
        "foo"
    );
    assert_eq!(sols[0].get("N"), Some(&Term::Int(3)));
    // construction mode
    assert!(e
        .holds("functor(T, pair, 2), arg(1, T, X), var(X)")
        .unwrap());
    // univ both ways
    let sols = e.query("foo(1, 2) =.. L").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[foo,1,2]"
    );
    assert!(e.holds("T =.. [bar, 7], T == bar(7)").unwrap());
}

#[test]
fn arithmetic_operators() {
    let mut e = Engine::new();
    for (q, v) in [
        ("X is 7 mod 3", 1),
        ("X is -7 mod 3", 2),  // mod is euclidean
        ("X is -7 rem 3", -1), // rem follows the dividend
        ("X is 10 // 3", 3),
        ("X is min(4, 9)", 4),
        ("X is max(4, 9)", 9),
        ("X is abs(-5)", 5),
        ("X is - (3 + 4)", -7),
    ] {
        let sols = e.query(q).unwrap();
        assert_eq!(sols[0].get("X"), Some(&Term::Int(v)), "{q}");
    }
    assert!(e.query("X is 1 / 0").is_err());
    assert!(e.query("X is foo + 1").is_err());
    assert!(e.query("X is Y + 1").is_err());
}

#[test]
fn term_ordering_builtins() {
    let mut e = Engine::new();
    assert!(e.holds("1 @< a").unwrap());
    assert!(e.holds("a @< b").unwrap());
    assert!(e.holds("a @< f(a)").unwrap());
    assert!(e.holds("f(a) @< f(b)").unwrap());
    assert!(e.holds("f(a) @< g(a)").unwrap());
    assert!(e.holds("f(a) @< f(a,b)").unwrap());
    assert!(e.holds("compare(<, 1, 2)").unwrap());
    assert!(
        e.holds("compare(O, foo, foo), O == (=)").unwrap_or(false) || {
            // '=' may print specially; check via compare directly
            e.holds("compare(=, foo, foo)").unwrap()
        }
    );
}

#[test]
fn type_test_builtins() {
    let mut e = Engine::new();
    assert!(e.holds("var(_)").unwrap());
    assert!(e.holds("X = f(Y), nonvar(X), compound(X)").unwrap());
    assert!(e.holds("atom(foo), \\+ atom(1), \\+ atom(f(x))").unwrap());
    assert!(e.holds("integer(42), number(42)").unwrap());
    assert!(e.holds("atomic(foo), atomic(3), \\+ atomic(f(x))").unwrap());
    assert!(e
        .holds("callable(foo), callable(f(x)), \\+ callable(3)")
        .unwrap());
    assert!(e
        .holds("is_list([1,2]), is_list([]), \\+ is_list([1|_])")
        .unwrap());
}

#[test]
fn call_n_appends_arguments() {
    let mut e = engine("add(X, Y, Z) :- Z is X + Y.");
    let sols = e.query("call(add(1), 2, R)").unwrap();
    assert_eq!(sols[0].get("R"), Some(&Term::Int(3)));
    let sols = e.query("G = add, call(G, 4, 5, R)").unwrap();
    assert_eq!(sols[0].get("R"), Some(&Term::Int(9)));
}

#[test]
fn not_unify_does_not_bind() {
    let mut e = Engine::new();
    assert!(!e.holds("X \\= 1, var(X)").unwrap_or(false)); // X \= 1 fails (they unify)
    assert!(e.holds("f(a) \\= f(b)").unwrap());
    assert!(!e.holds("f(X) \\= f(b)").unwrap());
}

#[test]
fn msort_keeps_duplicates() {
    let mut e = Engine::new();
    let sols = e.query("msort([3,1,3,2], L)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[1,2,3,3]"
    );
}

#[test]
fn bagof_collects_setof_sorts() {
    let mut e = engine("n(3). n(1). n(3).");
    let sols = e.query("bagof(X, n(X), L)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[3,1,3]"
    );
    let sols = e.query("setof(X, n(X), L)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[1,3]"
    );
}

#[test]
fn prelude_list_predicates() {
    let mut e = Engine::new();
    assert!(e.holds("reverse([1,2,3], [3,2,1])").unwrap());
    assert!(e.holds("last([1,2,3], 3)").unwrap());
    assert!(e.holds("sum_list([1,2,3], 6)").unwrap());
    assert!(e
        .holds("max_list([3,1,4], 4), min_list([3,1,4], 1)")
        .unwrap());
    assert!(e.holds("numlist(1, 5, [1,2,3,4,5])").unwrap());
    assert_eq!(e.count("select(X, [a,b,c], _)").unwrap(), 3);
    assert_eq!(e.count("member(X, [a,b,c])").unwrap(), 3);
}

// ---------------------------------------------------------------------
// errors & redefinition
// ---------------------------------------------------------------------

#[test]
fn undefined_predicate_is_reported() {
    let mut e = Engine::new();
    let r = e.holds("no_such_thing(1)");
    assert!(
        matches!(r, Err(EngineError::UndefinedPredicate(ref p)) if p.contains("no_such_thing")),
        "{r:?}"
    );
}

#[test]
fn consult_redefines_predicates() {
    let mut e = engine("color(red).");
    assert_eq!(e.count("color(X)").unwrap(), 1);
    e.consult("color(green). color(blue).").unwrap();
    assert_eq!(e.count("color(X)").unwrap(), 2, "redefinition replaces");
}

#[test]
fn cannot_redefine_builtins() {
    let mut e = Engine::new();
    assert!(e.consult("is(X, Y) :- X = Y.").is_err());
}

#[test]
fn dynamic_then_static_conflict() {
    let mut e = Engine::new();
    e.consult(":- dynamic d/1.").unwrap();
    e.consult("d(1).").unwrap(); // consulted clauses of dynamic preds assert
    assert_eq!(e.count("d(X)").unwrap(), 1);
    assert!(
        e.declare_table("d", 1).is_err(),
        "cannot table a dynamic pred"
    );
}

#[test]
fn retract_rule_with_body() {
    let mut e = Engine::new();
    e.consult(":- dynamic r/1.").unwrap();
    e.query("assert((r(X) :- X > 3))").unwrap();
    assert!(e.holds("r(5)").unwrap());
    assert!(e.holds("retract((r(X) :- X > 3))").unwrap());
    assert_eq!(e.count("r(5)").unwrap(), 0);
}

#[test]
fn step_limit_is_per_query() {
    let mut e = engine("loop :- loop.");
    e.set_step_limit(Some(10_000));
    assert_eq!(e.holds("loop"), Err(EngineError::StepLimit));
    // limit applies afresh to the next query
    assert!(e.holds("true").unwrap());
}

// ---------------------------------------------------------------------
// tabling interactions
// ---------------------------------------------------------------------

#[test]
fn two_independent_sccs_complete_separately() {
    let mut e = engine(
        ":- table a/1.\n:- table b/1.\n\
         a(X) :- a(X).\na(1).\n\
         b(X) :- a(X), b(X).\nb(2).",
    );
    assert_eq!(e.count("a(X)").unwrap(), 1);
    assert_eq!(e.count("b(X)").unwrap(), 1);
}

#[test]
fn variant_calls_share_one_table() {
    let mut e = engine(
        ":- table p/2.\n\
         p(X, Y) :- q(X, Y).\n\
         q(1, 2). q(3, 4).",
    );
    assert_eq!(e.count("p(A, B)").unwrap(), 2);
    let t1 = e.table_count();
    assert_eq!(e.count("p(U, V)").unwrap(), 2, "variant call");
    assert_eq!(e.table_count(), t1, "no new table for a variant");
    assert_eq!(e.count("p(1, W)").unwrap(), 1, "subsumed but distinct call");
    assert_eq!(e.table_count(), t1 + 1, "non-variant gets its own table");
}

#[test]
fn tabled_predicate_with_bound_structure_args() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         edge(n(1), n(2)). edge(n(2), n(3)).",
    );
    assert_eq!(e.count("path(n(1), W)").unwrap(), 2);
    assert!(e.holds("path(n(1), n(3))").unwrap());
}

#[test]
fn answers_with_shared_variables() {
    // non-ground answers: p(X, X) — variables shared in the answer
    let mut e = engine(":- table p/2.\np(X, X).");
    let sols = e.query("p(A, B)").unwrap();
    assert_eq!(sols.len(), 1);
    // A and B must decode to the same variable
    assert_eq!(sols[0].get("A"), sols[0].get("B"));
    assert!(e.holds("p(7, 7)").unwrap());
    assert!(!e.holds("p(7, 8)").unwrap());
}

#[test]
fn deep_recursion_on_long_chain() {
    // stress stack/arena growth: chain of 5000 under tabled left recursion
    let mut src = String::from(
        ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n",
    );
    let mut e = Engine::new();
    e.declare_dynamic("edge", 2).unwrap();
    e.consult(&src).unwrap();
    let edge = e.syms.intern("edge");
    for i in 0..5000 {
        e.assert_term(&Term::Compound(edge, vec![Term::Int(i), Term::Int(i + 1)]))
            .unwrap();
    }
    src.clear();
    assert_eq!(e.count("path(0, X)").unwrap(), 5000);
}

#[test]
fn interleaved_queries_on_shared_tables() {
    let mut e = engine(
        ":- table anc/2.\n\
         anc(X,Y) :- par(X,Y).\n\
         anc(X,Y) :- anc(X,Z), par(Z,Y).\n\
         par(a,b). par(b,c). par(c,d).",
    );
    assert!(e.holds("anc(a, d)").unwrap());
    assert_eq!(e.count("anc(b, X)").unwrap(), 2);
    assert_eq!(e.count("anc(a, X)").unwrap(), 3);
    // repeated with tables warm
    assert!(e.holds("anc(a, d)").unwrap());
}

// ---------------------------------------------------------------------
// trie-based table indexing (paper §4.5 future work)
// ---------------------------------------------------------------------

#[test]
fn trie_table_index_gives_identical_answers() {
    let src = ":- table path/2.\n\
               path(X,Y) :- edge(X,Y).\n\
               path(X,Y) :- path(X,Z), edge(Z,Y).\n\
               edge(1,2). edge(2,3). edge(3,1). edge(3,4).";
    let mut hash_e = engine(src);
    let mut trie_e = Engine::new();
    trie_e.set_table_index(xsb_core::table::TableIndex::Trie);
    trie_e.consult(src).unwrap();
    for q in ["path(1, X)", "path(X, Y)", "path(2, 4)", "path(4, X)"] {
        assert_eq!(
            hash_e.count(q).unwrap(),
            trie_e.count(q).unwrap(),
            "query {q}"
        );
    }
}

#[test]
fn trie_table_index_with_negation() {
    let src = ":- table win/1.\n\
               win(X) :- move(X,Y), tnot win(Y).\n\
               move(1,2). move(2,3). move(3,4).";
    let mut e = Engine::new();
    e.set_table_index(xsb_core::table::TableIndex::Trie);
    e.consult(src).unwrap();
    assert!(e.holds("win(1)").unwrap());
    assert!(!e.holds("win(2)").unwrap());
}

#[test]
fn trie_answer_store_shares_prefixes() {
    // answers p(k, 1..60) share the first component per k
    let mut src = String::from(":- table p/2.\n");
    for k in 0..4 {
        for v in 0..60 {
            src.push_str(&format!("p(c{k}, {v}).\n"));
        }
    }
    let mut trie_e = Engine::new();
    trie_e.set_table_index(xsb_core::table::TableIndex::Trie);
    trie_e.consult(&src).unwrap();
    assert_eq!(trie_e.count("p(X, Y)").unwrap(), 240);
    let trie_cells = trie_e.tables.answer_store_cells();

    let mut hash_e = engine(&src);
    assert_eq!(hash_e.count("p(X, Y)").unwrap(), 240);
    let flat_cells = hash_e.tables.answer_store_cells();
    assert!(
        trie_cells < flat_cells,
        "trie {trie_cells} cells < flat {flat_cells} cells"
    );
}

#[test]
fn trie_index_survives_abolish_and_requery() {
    let mut e = Engine::new();
    e.set_table_index(xsb_core::table::TableIndex::Trie);
    e.consult(
        ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\nedge(1,2). edge(2,1).",
    )
    .unwrap();
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    e.abolish_all_tables();
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    // warm-table lookup also works in trie mode
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    // selective abolish drops the subgoal trie, and a re-query rebuilds a
    // fresh frame rather than resurrecting the deleted one
    assert!(e.holds("abolish_table_pred(path/2)").unwrap());
    assert_eq!(e.table_count(), 0);
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    // per-variant abolish in trie mode: remaps the call-trie entry on
    // re-creation instead of leaving it dangling
    assert!(e.holds("abolish_table_call(path(1, _))").unwrap());
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    assert_eq!(e.count("path(2, X)").unwrap(), 2);
}
