//! Crash-recovery integration tests: a deterministic fault-injection
//! harness drives the WAL + ARIES recovery stack through every crash
//! point a real deployment could hit.
//!
//! The centerpiece is the **crash matrix**: a scripted workload runs over
//! a [`FailpointFs`], recording the exact expected EDB state at every
//! commit point (paired with the log size at that point). The matrix then
//! kills the "process" at *every byte offset* of the final log and checks
//! that recovery lands exactly on the last commit point whose records
//! survived the cut — no lost committed facts, and `recovery_torn_facts`
//! (facts present after recovery that were never durable) identically
//! zero. Torn-sector and lying-fsync crashes get the same exactness
//! treatment via [`CrashMode::TornTail`] / [`CrashMode::SyncedOnly`].

use std::sync::Arc;
use xsb_core::engine_pool::{PoolConfig, ServerPool};
use xsb_core::{DurableLog, Engine};
use xsb_obs::Counter;
use xsb_storage::{scan_records, shared_failpoint, CrashMode, MemVfs, SharedFailpoint, Vfs};

const PROGRAM: &str = ":- dynamic p/1.\np(0).\n";

/// WAL magic header length: images shorter than this are unrecoverable
/// (and recovery must refuse them, not invent state).
const MAGIC: u64 = 8;

/// Reopens a standalone durable engine from a crash image.
fn reopen(img: Vec<u8>) -> (Engine, xsb_core::RecoveryReport) {
    let log = Arc::new(DurableLog::open(Box::new(MemVfs::from_bytes(img))).unwrap());
    Engine::open_durable(log).unwrap()
}

/// Asserts the recovered `p/1` EDB equals `expected` **exactly**: every
/// expected fact present once, and no extra (torn) facts.
fn assert_facts(e: &mut Engine, expected: &[i64], ctx: &str) {
    for v in expected {
        assert_eq!(
            e.count(&format!("p({v})")).unwrap(),
            1,
            "{ctx}: committed fact p({v}) lost"
        );
    }
    // exact cardinality ⇒ zero torn facts
    assert_eq!(
        e.count("p(X)").unwrap(),
        expected.len(),
        "{ctx}: torn facts present (recovery_torn_facts != 0)"
    );
}

/// The scripted workload: auto-commit asserts and retracts, a committed
/// transaction, an aborted transaction, and a multi-clause `retractall`
/// (which the engine wraps in an implicit transaction). Returns the
/// `(log_size, expected_facts)` snapshot taken at every commit point.
fn scripted_run(fs: SharedFailpoint) -> Vec<(u64, Vec<i64>)> {
    let log = Arc::new(DurableLog::open(Box::new(fs)).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log.clone()).unwrap();
    let mut model: Vec<i64> = vec![0];
    let mut snaps = vec![(log.size(), model.clone())];
    let snap = |log: &DurableLog, model: &Vec<i64>, snaps: &mut Vec<(u64, Vec<i64>)>| {
        snaps.push((log.size(), model.clone()));
    };

    // auto-commit asserts: each is its own commit point
    for v in [1i64, 2, 3] {
        e.query(&format!("assert(p({v}))")).unwrap();
        model.push(v);
        snap(&log, &model, &mut snaps);
    }
    // auto-commit retract
    e.query("retract(p(2))").unwrap();
    model.retain(|&v| v != 2);
    snap(&log, &model, &mut snaps);
    // committed transaction: durable only at its Commit record
    e.query("begin_transaction").unwrap();
    e.query("assert(p(10))").unwrap();
    e.query("assert(p(11))").unwrap();
    e.query("retract(p(3))").unwrap();
    e.query("commit_transaction").unwrap();
    model.push(10);
    model.push(11);
    model.retain(|&v| v != 3);
    snap(&log, &model, &mut snaps);
    // aborted transaction: never visible, any cut inside it undoes
    e.query("begin_transaction").unwrap();
    e.query("assert(p(99))").unwrap();
    e.query("abort_transaction").unwrap();
    snap(&log, &model, &mut snaps);
    // multi-clause retractall rides an implicit transaction: a crash
    // mid-batch must recover to *none* removed
    e.query("assert(p(20))").unwrap();
    model.push(20);
    snap(&log, &model, &mut snaps);
    e.query("retractall(p(_))").unwrap();
    model.clear();
    snap(&log, &model, &mut snaps);
    // one last fact so the final state is non-empty
    e.query("assert(p(30))").unwrap();
    model.push(30);
    snap(&log, &model, &mut snaps);
    snaps
}

/// THE crash matrix: kill the process at every byte offset of the log.
/// Recovery must land exactly on the newest commit point at or below the
/// cut — uncommitted suffixes are undone, torn frames truncated.
#[test]
fn crash_matrix_every_byte_offset_recovers_to_last_commit_point() {
    let fs = shared_failpoint();
    let snaps = scripted_run(fs.clone());
    let total = fs.lock().unwrap().written_len();
    assert!(total > 200, "workload too small to be a meaningful matrix");
    // every auto-commit op fsynced, so the whole log is durable
    assert_eq!(fs.lock().unwrap().synced_len(), total);

    for k in 0..=total {
        let img = fs.lock().unwrap().crash_image(CrashMode::Exact { at: k });
        let log = match DurableLog::open(Box::new(MemVfs::from_bytes(img))) {
            Ok(l) => Arc::new(l),
            Err(_) => {
                // only an incomplete magic header is unrecoverable
                assert!(k < MAGIC, "open refused a well-headed image at cut {k}");
                continue;
            }
        };
        if log.is_fresh() {
            // the Program record had not fully landed: nothing to recover
            assert!(k < snaps[0].0, "program record lost at cut {k}");
            continue;
        }
        let (mut e, _) = Engine::open_durable(log).unwrap();
        let expected = snaps
            .iter()
            .rev()
            .find(|(s, _)| *s <= k)
            .map(|(_, m)| m.clone())
            .expect("program snapshot always applies");
        assert_facts(&mut e, &expected, &format!("cut at byte {k}"));
    }
}

/// Power-loss crashes: a lying disk (dropped fsyncs) and a torn final
/// sector. Both recover to the newest commit point inside the image's
/// valid record prefix.
#[test]
fn power_loss_with_lying_disk_recovers_synced_prefix() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log.clone()).unwrap();
    let mut model = vec![0i64];
    let mut snaps = vec![(log.size(), model.clone())];
    for v in [1i64, 2] {
        e.query(&format!("assert(p({v}))")).unwrap();
        model.push(v);
        snaps.push((log.size(), model.clone()));
    }
    // from here the disk lies: fsync returns Ok but persists nothing
    fs.lock().unwrap().set_drop_syncs(true);
    for v in [3i64, 4, 5] {
        e.query(&format!("assert(p({v}))")).unwrap();
        model.push(v);
        snaps.push((log.size(), model.clone()));
    }
    for mode in [CrashMode::SyncedOnly, CrashMode::TornTail] {
        let img = fs.lock().unwrap().crash_image(mode);
        // the garbled tail sector must not poison recovery: expected
        // state is the newest commit point within the valid prefix
        let valid = scan_records(&img).valid_len;
        let expected = snaps
            .iter()
            .rev()
            .find(|(s, _)| *s <= valid)
            .map(|(_, m)| m.clone())
            .unwrap();
        let (mut e2, _) = reopen(img);
        assert_facts(&mut e2, &expected, &format!("{mode:?}"));
    }
    // SyncedOnly in particular keeps only the honestly-synced ops
    let img = fs.lock().unwrap().crash_image(CrashMode::SyncedOnly);
    let (mut e2, _) = reopen(img);
    assert_facts(&mut e2, &[0, 1, 2], "SyncedOnly");
}

/// A checksum-corrupt record in the *middle* of the log truncates
/// recovery at the corruption — later records are unreachable, and
/// recovery must not apply garbage.
#[test]
fn checksum_corruption_mid_log_truncates_at_corruption() {
    let fs = shared_failpoint();
    let snaps = scripted_run(fs.clone());
    let mut img = fs
        .lock()
        .unwrap()
        .crash_image(CrashMode::Exact { at: u64::MAX });
    // flip one payload byte in a record near the middle of the log
    let mid = img.len() / 2;
    img[mid] ^= 0x40;
    let valid = scan_records(&img).valid_len;
    assert!(
        valid < img.len() as u64,
        "corruption must shorten the valid prefix"
    );
    let expected = snaps
        .iter()
        .rev()
        .find(|(s, _)| *s <= valid)
        .map(|(_, m)| m.clone())
        .unwrap();
    let (mut e, _) = reopen(img);
    assert_facts(&mut e, &expected, "mid-log corruption");
}

/// An empty log reopens to an empty engine — no program, no replay, no
/// invented state.
#[test]
fn empty_log_reopens_empty() {
    let log = Arc::new(DurableLog::open(Box::new(MemVfs::new())).unwrap());
    assert!(log.is_fresh());
    let (mut e, report) = Engine::open_durable(log).unwrap();
    assert_eq!(report.scanned, 0);
    assert_eq!(report.replayed, 0);
    assert!(e.query("undefined_pred_xyz").is_err() || e.count("true").unwrap() >= 1);
    // a pool, by contrast, refuses a program-less log outright
    let log2 = Arc::new(DurableLog::open(Box::new(MemVfs::new())).unwrap());
    assert!(ServerPool::reopen_log(log2, PoolConfig::default()).is_err());
}

/// Replaying the same log twice applies nothing the second time: the
/// `applied_lsn` high-water mark makes recovery idempotent.
#[test]
fn duplicate_replay_is_idempotent() {
    let fs = shared_failpoint();
    let snaps = scripted_run(fs.clone());
    let img = fs
        .lock()
        .unwrap()
        .crash_image(CrashMode::Exact { at: u64::MAX });
    let (mut e, first) = reopen(img);
    assert!(first.replayed > 0);
    let expected = &snaps.last().unwrap().1;
    assert_facts(&mut e, expected, "first replay");
    let second = e.replay_wal().unwrap();
    assert_eq!(second.scanned, 0, "second replay rescanned records");
    assert_eq!(second.replayed, 0, "second replay re-applied records");
    assert_facts(&mut e, expected, "after duplicate replay");
}

/// Recovered asserts must invalidate dependent tabled predicates: a
/// query after recovery sees answers derived from the replayed facts,
/// never a stale table.
#[test]
fn recovered_asserts_rebuild_dependent_tables() {
    let prog = ":- table r/1.\nr(X) :- q(X).\n:- dynamic q/1.\nq(1).\n";
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(prog, log).unwrap();
    assert_eq!(e.count("r(X)").unwrap(), 1);
    e.query("assert(q(2))").unwrap();
    e.query("retract(q(1))").unwrap();
    assert_eq!(e.count("r(X)").unwrap(), 1);
    assert_eq!(e.count("r(2)").unwrap(), 1);
    drop(e);
    let img = fs.lock().unwrap().crash_image(CrashMode::SyncedOnly);
    let (mut e2, _) = reopen(img);
    // prime the table, then replay again on the live engine: the primed
    // table must survive untouched (nothing new to apply)
    assert_eq!(e2.count("r(2)").unwrap(), 1);
    assert_eq!(e2.count("r(1)").unwrap(), 0);
    e2.replay_wal().unwrap();
    assert_eq!(e2.count("r(X)").unwrap(), 1);
}

/// Explicit transactions: committed work survives a crash, aborted and
/// in-flight (no Commit record) work does not.
#[test]
fn transaction_commit_abort_and_inflight_crash() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log).unwrap();
    e.query("begin_transaction").unwrap();
    e.query("assert(p(1))").unwrap();
    e.query("commit_transaction").unwrap();
    e.query("begin_transaction").unwrap();
    e.query("assert(p(2))").unwrap();
    e.query("abort_transaction").unwrap();
    // abort rolls the live engine back too
    assert_eq!(e.count("p(2)").unwrap(), 0);
    // in-flight: Begin + Assert on disk, no Commit — crash now
    e.query("begin_transaction").unwrap();
    e.query("assert(p(3))").unwrap();
    e.wal_flush().unwrap();
    drop(e);
    let img = fs
        .lock()
        .unwrap()
        .crash_image(CrashMode::Exact { at: u64::MAX });
    let (mut e2, report) = reopen(img);
    assert_facts(&mut e2, &[0, 1], "txn recovery");
    assert!(report.losers_undone > 0, "in-flight txn was not undone");
}

/// `checkpoint/0` truncates the log and preserves state exactly; records
/// appended after the checkpoint replay on top of the restored snapshot.
#[test]
fn checkpoint_truncates_and_recovers_exactly() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log.clone()).unwrap();
    for v in 1..=40i64 {
        e.query(&format!("assert(p({v}))")).unwrap();
    }
    for v in 1..=10i64 {
        e.query(&format!("retract(p({v}))")).unwrap();
    }
    let (before, after) = e.checkpoint().unwrap();
    assert!(
        after < before,
        "checkpoint must shrink the log ({before} -> {after})"
    );
    assert_eq!(log.size(), after);
    // post-checkpoint mutations land after the snapshot
    e.query("assert(p(100))").unwrap();
    drop(e);
    let img = fs
        .lock()
        .unwrap()
        .crash_image(CrashMode::Exact { at: u64::MAX });
    let (mut e2, report) = reopen(img);
    assert!(report.checkpoint_restored);
    let mut expected: Vec<i64> = vec![0, 100];
    expected.extend(11..=40);
    assert_facts(&mut e2, &expected, "checkpoint recovery");
}

/// A mutation that hits a dead disk fails loudly; the in-memory EDB stays
/// consistent (the fact is not applied) and reads keep working.
#[test]
fn live_kill_surfaces_error_and_preserves_consistency() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log).unwrap();
    e.query("assert(p(1))").unwrap();
    let dead_at = fs.lock().unwrap().written_len() + 4;
    fs.lock().unwrap().kill_at_byte(dead_at);
    assert!(e.query("assert(p(2))").is_err(), "dead disk must error");
    // WAL-before-data: the unlogged fact must not be in the EDB
    assert_eq!(e.count("p(2)").unwrap(), 0);
    assert_eq!(e.count("p(X)").unwrap(), 2);
}

/// Group commit defers fsync inside the window and batches commits into
/// one sync; `wal_flush` (and Drop) force the remainder down.
#[test]
fn group_commit_defers_and_batches_fsyncs() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log).unwrap();
    let base_syncs = fs.lock().unwrap().syncs;
    // a wide window: nothing inside this test should hit it
    e.set_group_commit_window_us(60_000_000);
    for v in 1..=25i64 {
        e.query(&format!("assert(p({v}))")).unwrap();
    }
    {
        let g = fs.lock().unwrap();
        assert_eq!(g.syncs, base_syncs, "window must defer fsyncs");
        assert!(g.written_len() > g.synced_len(), "appends buffered");
    }
    e.wal_flush().unwrap();
    {
        let g = fs.lock().unwrap();
        assert_eq!(g.syncs, base_syncs + 1, "one batched fsync");
        assert_eq!(g.written_len(), g.synced_len());
    }
    let m = e.metrics();
    assert!(m.get(Counter::WalAppends) >= 25);
    assert!(
        m.get(Counter::GroupCommitBatch) >= 25,
        "batched commits not accounted"
    );
}

/// `set_durability(off)` stops logging (mutations become volatile) and
/// `on` resumes it — the log only replays what was logged.
#[test]
fn durability_toggle_gates_logging() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let mut e = Engine::create_durable(PROGRAM, log.clone()).unwrap();
    e.query("set_durability(off)").unwrap();
    let s0 = log.size();
    e.query("assert(p(70))").unwrap();
    assert_eq!(log.size(), s0, "disabled durability still logged");
    e.query("set_durability(on)").unwrap();
    e.query("assert(p(71))").unwrap();
    assert!(log.size() > s0);
    assert_eq!(e.count("p(X)").unwrap(), 3); // live engine has both
    drop(e);
    let img = fs
        .lock()
        .unwrap()
        .crash_image(CrashMode::Exact { at: u64::MAX });
    let (mut e2, _) = reopen(img);
    // the unlogged fact is volatile by contract; the logged one survives
    assert_facts(&mut e2, &[0, 71], "toggle recovery");
}

/// Satellite 2 regression: a pool worker that diverged via a local
/// mutation, crashed, and recovered must (a) replay its local mutations
/// exactly once, (b) leave its siblings untouched, and (c) rejoin the
/// pool in the diverged state — while broadcasts still reach everyone.
#[test]
fn pool_divergence_crash_recover_rejoin() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let cfg = PoolConfig {
        workers: 2,
        ..PoolConfig::default()
    };
    let pool =
        ServerPool::new_durable(":- dynamic f/1.\nf(1).\n", cfg.clone(), log.clone()).unwrap();
    pool.consult_all(":- dynamic g/1.\ng(5).\n").unwrap();
    // worker 0 diverges: a non-broadcast mutation to the shared-floor EDB
    pool.submit_to("assert(f(7))", Some(0)).wait().unwrap();
    assert_eq!(pool.submit_count("f(7)", Some(0)).wait().unwrap(), 1);
    assert_eq!(pool.submit_count("f(7)", Some(1)).wait().unwrap(), 0);
    drop(pool); // crash (Drop flushes; SyncedOnly keeps the honest prefix)
    let img = fs.lock().unwrap().crash_image(CrashMode::SyncedOnly);
    let log2 = Arc::new(DurableLog::open(Box::new(MemVfs::from_bytes(img))).unwrap());
    let pool = ServerPool::reopen_log(log2, cfg).unwrap();
    // (a) + (b): worker 0 has its fact back (once), worker 1 does not
    assert_eq!(pool.submit_count("f(7)", Some(0)).wait().unwrap(), 1);
    assert_eq!(pool.submit_count("f(7)", Some(1)).wait().unwrap(), 0);
    // broadcast state reached both workers through recovery
    for w in [0, 1] {
        assert_eq!(pool.submit_count("g(5)", Some(w)).wait().unwrap(), 1);
        assert_eq!(pool.submit_count("f(1)", Some(w)).wait().unwrap(), 1);
    }
    // (c) the pool still serves broadcasts after the rejoin
    pool.consult_all(":- dynamic h/1.\nh(9).\n").unwrap();
    for w in [0, 1] {
        assert_eq!(pool.submit_count("h(9)", Some(w)).wait().unwrap(), 1);
    }
}

/// Reopening a durable pool twice in a row (recover, run, crash again)
/// keeps converging to the same state — recovery output is itself a
/// valid recovery input.
#[test]
fn pool_double_crash_converges() {
    let fs = shared_failpoint();
    let log = Arc::new(DurableLog::open(Box::new(fs.clone())).unwrap());
    let cfg = PoolConfig {
        workers: 2,
        ..PoolConfig::default()
    };
    let pool = ServerPool::new_durable(":- dynamic f/1.\nf(1).\n", cfg.clone(), log).unwrap();
    pool.submit_to("assert(f(2))", Some(1)).wait().unwrap();
    drop(pool);
    let img = fs.lock().unwrap().crash_image(CrashMode::SyncedOnly);
    let fs2 = shared_failpoint();
    {
        let mut g = fs2.lock().unwrap();
        g.append(&img).unwrap();
        g.sync().unwrap();
    }
    let log2 = Arc::new(DurableLog::open(Box::new(fs2.clone())).unwrap());
    let pool = ServerPool::reopen_log(log2, cfg.clone()).unwrap();
    pool.submit_to("assert(f(3))", Some(1)).wait().unwrap();
    drop(pool);
    let img2 = fs2.lock().unwrap().crash_image(CrashMode::SyncedOnly);
    let log3 = Arc::new(DurableLog::open(Box::new(MemVfs::from_bytes(img2))).unwrap());
    let pool = ServerPool::reopen_log(log3, cfg).unwrap();
    assert_eq!(pool.submit_count("f(X)", Some(1)).wait().unwrap(), 3);
    assert_eq!(pool.submit_count("f(X)", Some(0)).wait().unwrap(), 1);
}
