//! Integration tests for the observability layer: the metrics registry,
//! the SLG event trace ring, the statistics/table builtins, and the
//! high-water gauge invariants — including the paper's Figure 2 exact
//! subgoal counts.

use xsb_core::{Engine, EngineError};
use xsb_obs::{Counter, SlgEvent};

fn engine(src: &str) -> Engine {
    let mut e = Engine::new();
    e.consult(src).expect("program consults");
    e
}

/// win/1 over a complete binary tree of the given height (root node 1,
/// leaves lose), with the given negation operator.
fn win_src(neg: &str, height: u32) -> String {
    let mut src = format!(":- table win/1.\nwin(X) :- move(X,Y), {neg} win(Y).\n");
    for n in 1u64..(1 << height) {
        src.push_str(&format!("move({n},{}). move({n},{}).\n", 2 * n, 2 * n + 1));
    }
    src
}

/// Left-recursive path/2 over a single directed cycle 1 → 2 → … → n → 1.
fn cycle_src(n: i64) -> String {
    let mut src = String::from(
        ":- table path/2.\npath(X,Y) :- path(X,Z), edge(Z,Y).\npath(X,Y) :- edge(X,Y).\n",
    );
    for i in 1..=n {
        src.push_str(&format!("edge({i},{}).\n", if i == n { 1 } else { i + 1 }));
    }
    src
}

// ---------------------------------------------------------------------
// Figure 2: exact subgoal counts via the metrics registry
// ---------------------------------------------------------------------

#[test]
fn fig2_win_height4_creates_31_subgoals_under_slg() {
    // paper Figure 2: full SLG evaluates all 2^(h+1)-1 = 31 subgoals at
    // height 4 (where the root is a lost position: leaves lose, so the
    // second player wins at even heights)
    let mut e = engine(&win_src("tnot", 4));
    assert!(!e.holds("win(1)").unwrap());
    assert_eq!(e.metrics().get(Counter::SubgoalsCreated), 31);
    assert_eq!(e.subgoal_count("win", 1), 31);
    // every subgoal completed (negation forces completion)
    assert_eq!(e.metrics().get(Counter::SubgoalsCompleted), 31);
}

#[test]
fn fig2_existential_negation_creates_g_of_n_subgoals() {
    // paper Figure 2: E-Neg needs only G(4) = 13 of the 31 subgoals
    let mut e = engine(&win_src("e_tnot", 4));
    assert!(!e.holds("win(1)").unwrap());
    assert_eq!(e.metrics().get(Counter::SubgoalsCreated), 13);
    assert_eq!(e.subgoal_count("win", 1), 13);
}

#[test]
fn per_predicate_call_counts_accumulate_across_queries() {
    let mut e = engine("p(1). p(2). p(3).");
    assert_eq!(e.count("p(X)").unwrap(), 3);
    let first = e.call_count("p", 1);
    assert!(first >= 1);
    assert_eq!(e.count("p(X)").unwrap(), 3);
    assert_eq!(e.call_count("p", 1), 2 * first, "counters are cumulative");
    e.reset_metrics();
    assert_eq!(e.call_count("p", 1), 0);
}

// ---------------------------------------------------------------------
// duplicate-answer suppression
// ---------------------------------------------------------------------

#[test]
fn cycle_path_suppresses_duplicate_answers() {
    // on a cycle every node is reachable along infinitely many derivations;
    // the answer check/insert must record each answer exactly once
    let n = 16;
    let mut e = engine(&cycle_src(n));
    assert_eq!(e.count("path(1, X)").unwrap(), n as usize);
    let m = e.metrics();
    assert_eq!(
        m.get(Counter::AnswersRecorded),
        n as u64,
        "one distinct answer per node"
    );
    assert!(
        m.get(Counter::DuplicateAnswers) > 0,
        "cyclic derivations must hit the duplicate check"
    );
}

// ---------------------------------------------------------------------
// event trace ring
// ---------------------------------------------------------------------

#[test]
fn trace_records_slg_events_in_order() {
    let mut e = engine(&cycle_src(4));
    e.set_tracing(true);
    assert_eq!(e.count("path(1, X)").unwrap(), 4);
    let events = e.trace_events();
    assert!(!events.is_empty());
    let kinds: Vec<&str> = events.iter().map(|ev| ev.kind()).collect();
    assert!(kinds.contains(&"subgoal_call"));
    assert!(kinds.contains(&"new_answer"));
    assert!(kinds.contains(&"duplicate_answer"));
    assert!(kinds.contains(&"complete_scc"));
    // the first subgoal call precedes its first answer
    let call_pos = kinds.iter().position(|k| *k == "subgoal_call").unwrap();
    let ans_pos = kinds.iter().position(|k| *k == "new_answer").unwrap();
    assert!(call_pos < ans_pos);
    // answers recorded in the trace match the counter
    let new_answers = kinds.iter().filter(|k| **k == "new_answer").count() as u64;
    assert_eq!(new_answers, e.metrics().get(Counter::AnswersRecorded));
}

#[test]
fn trace_ring_truncates_oldest_and_counts_dropped() {
    let mut e = engine(&cycle_src(32));
    e.set_trace_capacity(8);
    e.set_tracing(true);
    assert_eq!(e.count("path(1, X)").unwrap(), 32);
    assert_eq!(
        e.trace_events().len(),
        8,
        "ring keeps exactly `capacity` events"
    );
    assert!(
        e.trace_dropped() > 0,
        "a 32-node cycle overflows an 8-slot ring"
    );
    // the tail of the trace survives: completion is among the last events
    let kinds: Vec<&str> = e.trace_events().iter().map(|ev| ev.kind()).collect();
    assert!(
        kinds.contains(&"complete_scc"),
        "tail events kept, got {kinds:?}"
    );
}

#[test]
fn tracing_disabled_records_nothing() {
    let mut e = engine(&cycle_src(8));
    assert_eq!(e.count("path(1, X)").unwrap(), 8);
    assert!(e.trace_events().is_empty());
    assert_eq!(e.trace_dropped(), 0);
}

#[test]
fn trace_event_ids_reference_live_subgoals() {
    let mut e = engine(&win_src("tnot", 2));
    e.set_tracing(true);
    assert!(!e.holds("win(1)").unwrap());
    for ev in e.trace_events() {
        if let SlgEvent::SubgoalCall { subgoal, .. } = ev {
            assert!((subgoal as u64) < e.metrics().get(Counter::SubgoalsCreated));
        }
    }
}

// ---------------------------------------------------------------------
// statistics/0, statistics/2, tables/0 builtins
// ---------------------------------------------------------------------

#[test]
fn statistics2_reads_counters_from_queries() {
    let mut e = engine(&win_src("tnot", 4));
    assert!(!e.holds("win(1)").unwrap());
    // the statistics/2 query itself creates no tabled subgoals
    assert!(e.holds("statistics(subgoals_created, 31)").unwrap());
    assert!(!e.holds("statistics(subgoals_created, 7)").unwrap());
    // bind the value into a variable
    let sols = e.query("statistics(answers_recorded, N)").unwrap();
    assert_eq!(sols.len(), 1);
    let n = format!("{}", sols[0].get("N").unwrap().display(&e.syms));
    assert_eq!(
        n.parse::<u64>().unwrap(),
        e.metrics().get(Counter::AnswersRecorded)
    );
}

#[test]
fn statistics2_unknown_key_fails_and_free_key_errors() {
    let mut e = engine("p(1).");
    assert!(!e.holds("statistics(no_such_counter, X)").unwrap());
    match e.holds("statistics(K, V)") {
        Err(EngineError::Instantiation(_)) => {}
        other => panic!("expected instantiation error, got {other:?}"),
    }
}

#[test]
fn statistics0_and_tables0_are_callable() {
    let mut e = engine(&cycle_src(3));
    assert_eq!(e.count("path(1, X)").unwrap(), 3);
    assert!(e.holds("statistics").unwrap());
    assert!(e.holds("tables").unwrap());
    let report = e.statistics_report();
    assert!(report.contains("subgoals_created"));
    assert!(report.contains("answers_recorded"));
}

#[test]
fn table_listing_shows_completed_tables() {
    let mut e = engine(&cycle_src(3));
    assert_eq!(e.count("path(1, X)").unwrap(), 3);
    let listing = e.table_listing();
    assert!(listing.contains("path/2"), "listing: {listing}");
    assert!(listing.contains("3 answers"), "listing: {listing}");
    assert!(listing.contains("complete"), "listing: {listing}");
}

// ---------------------------------------------------------------------
// gauges, timers, JSON snapshot
// ---------------------------------------------------------------------

#[test]
fn high_water_gauges_never_regress_across_queries() {
    let mut e = engine(&cycle_src(24));
    assert_eq!(e.count("path(1, X)").unwrap(), 24);
    let m1 = e.metrics().clone();
    assert!(m1.heap.high_water > 0);
    assert!(m1.choice_points.high_water > 0);
    assert!(m1.trail.high_water > 0);
    assert!(m1.heap.high_water >= m1.heap.current);
    assert!(m1.trail.high_water >= m1.trail.current);
    assert!(m1.choice_points.high_water >= m1.choice_points.current);
    // a smaller follow-up query must not lower any high-water mark
    e.abolish_all_tables();
    assert_eq!(e.count("path(1, X)").unwrap(), 24);
    let m2 = e.metrics();
    assert!(m2.heap.high_water >= m1.heap.high_water);
    assert!(m2.trail.high_water >= m1.trail.high_water);
    assert!(m2.choice_points.high_water >= m1.choice_points.high_water);
}

#[test]
fn query_timer_accumulates_per_query() {
    let mut e = engine(&cycle_src(8));
    assert_eq!(e.count("path(1, X)").unwrap(), 8);
    assert_eq!(e.metrics().query_time.count, 1);
    assert!(e.metrics().query_time.nanos > 0);
    assert!(e.holds("path(1, 3)").unwrap());
    assert_eq!(e.metrics().query_time.count, 2);
}

#[test]
fn metrics_json_round_trips_and_matches_registry() {
    let mut e = engine(&win_src("tnot", 4));
    assert!(!e.holds("win(1)").unwrap());
    let text = e.metrics_json().to_string();
    let parsed = xsb_obs::Json::parse(&text).expect("valid JSON");
    assert_eq!(
        parsed.get("subgoals_created"),
        Some(&xsb_obs::Json::Int(31))
    );
    assert_eq!(
        parsed.get("trail_high_water"),
        Some(&xsb_obs::Json::Int(e.metrics().trail.high_water as i64))
    );
}

// ---------------------------------------------------------------------
// latency histograms
// ---------------------------------------------------------------------

#[test]
fn query_latency_histogram_counts_queries() {
    let mut e = engine(&cycle_src(8));
    assert_eq!(e.count("path(1, X)").unwrap(), 8);
    assert!(e.holds("path(1, 3)").unwrap());
    let h = &e.metrics().query_latency;
    assert_eq!(h.count(), 2, "one sample per query");
    assert!(h.sum() > 0);
    assert!(h.p99() >= h.p50());
    // percentile keys ride along in the JSON export
    let text = e.metrics_json().to_string();
    let parsed = xsb_obs::Json::parse(&text).unwrap();
    assert!(parsed.get("query_p50_ns").is_some());
    assert!(parsed.get("query_p99_ns").is_some());
}

// ---------------------------------------------------------------------
// trace-ring truncation counters (statistics/2 and JSON export)
// ---------------------------------------------------------------------

#[test]
fn trace_truncation_surfaces_in_statistics_and_json() {
    let mut e = engine(&cycle_src(32));
    e.set_trace_capacity(8);
    e.set_tracing(true);
    assert_eq!(e.count("path(1, X)").unwrap(), 32);
    let dropped = e.trace_dropped();
    assert!(dropped > 0);
    let total = dropped + e.trace_events().len() as u64;
    assert!(e
        .holds(&format!("statistics(trace_events_dropped, {dropped})"))
        .unwrap());
    assert!(e
        .holds(&format!("statistics(trace_events_total, {total})"))
        .unwrap());
    let parsed = xsb_obs::Json::parse(&e.metrics_json().to_string()).unwrap();
    assert_eq!(
        parsed.get("trace_events_dropped"),
        Some(&xsb_obs::Json::Int(dropped as i64))
    );
    assert_eq!(
        parsed.get("trace_events_total"),
        Some(&xsb_obs::Json::Int(total as i64))
    );
    let report = e.statistics_report();
    assert!(report.contains("trace_events_dropped"));
}

// ---------------------------------------------------------------------
// span traces and the slow-query log
// ---------------------------------------------------------------------

#[test]
fn traced_query_exports_valid_chrome_trace() {
    let mut e = engine(&win_src("tnot", 3));
    e.set_tracing(true);
    assert!(e.holds("win(1)").unwrap());
    let text = e.chrome_trace_json().to_string();
    let parsed = xsb_obs::Json::parse(&text).expect("valid JSON");
    let Some(xsb_obs::Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents array missing: {text}");
    };
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|ev| match ev.get("name") {
            Some(xsb_obs::Json::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert!(names.contains(&"query"), "names: {names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("subgoal")),
        "names: {names:?}"
    );
    // every event is a complete (ph:"X") event with numeric ts/dur
    for ev in events {
        assert_eq!(ev.get("ph"), Some(&xsb_obs::Json::Str("X".into())));
        assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
    }
}

#[test]
fn slow_query_log_captures_span_tree_at_zero_threshold() {
    let mut e = engine(&cycle_src(6));
    // threshold 0 ms ⇒ every query is "slow"
    assert!(e.holds("set_slow_query_threshold(0)").unwrap());
    assert_eq!(e.count("path(1, X)").unwrap(), 6);
    let log = e.slow_query_log();
    assert!(!log.is_empty());
    let entry = log.last().unwrap();
    assert!(entry.contains("slow query"), "entry: {entry}");
    assert!(entry.contains("query ["), "span tree rendered: {entry}");
    assert!(entry.contains("path/2"), "subgoal named: {entry}");
    // 'off' disables the log again
    assert!(e.holds("set_slow_query_threshold(off)").unwrap());
    let n = e.slow_query_log().len();
    assert_eq!(e.count("path(1, 2)").unwrap(), 1);
    assert_eq!(e.slow_query_log().len(), n);
}

// ---------------------------------------------------------------------
// opcode profiler
// ---------------------------------------------------------------------

#[test]
fn profiler_counts_opcodes_only_when_enabled() {
    let mut e = engine(&cycle_src(8));
    assert_eq!(e.count("path(1, X)").unwrap(), 8);
    assert!(e.metrics().profile.is_empty(), "off by default");
    assert!(e.holds("set_profiling(on)").unwrap());
    assert_eq!(e.count("path(2, X)").unwrap(), 8);
    let total = e.metrics().profile.total();
    assert!(total > 0, "profiler sampled the run");
    let report = e.profile_report();
    assert!(report.contains("table_call"), "report: {report}");
    // profile/0 builtin prints without error; profile_reset/0 zeroes
    // (the reset query's own tail still records a handful of opcodes)
    assert!(e.holds("profile").unwrap());
    assert!(e.holds("profile_reset").unwrap());
    let after_reset = e.metrics().profile.total();
    assert!(after_reset < total, "reset zeroed accumulated samples");
    // still enabled after reset: the next query records again
    assert_eq!(e.count("path(3, X)").unwrap(), 8);
    assert!(e.metrics().profile.total() > after_reset);
    assert!(e.holds("set_profiling(off)").unwrap());
    let frozen = e.metrics().profile.total();
    assert_eq!(e.count("path(4, X)").unwrap(), 8);
    assert_eq!(e.metrics().profile.total(), frozen, "off records nothing");
    // JSON export carries opcode names
    let parsed = xsb_obs::Json::parse(&e.profile_json().to_string()).unwrap();
    assert!(parsed.get("opcodes").is_some());
}
