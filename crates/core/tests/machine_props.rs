//! Property tests on the machine substrate: unification, canonical
//! copy-in/copy-out, and trail-based state restoration — the invariants
//! every SLG operation relies on.

// Property tests require the external `proptest` crate, which the
// offline sandbox cannot fetch. Re-add the dev-dependency and enable
// the `proptest` feature to run these.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use xsb_core::cell::Cell;
use xsb_core::machine::Machine;
use xsb_core::program::Program;
use xsb_core::table::TableSpace;
use xsb_syntax::{SymbolTable, Term};

/// Strategy for small AST terms (possibly with variables 0..3).
fn ast_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(Term::Var),
        (0i64..50).prop_map(Term::Int),
        // fixed symbol pool: syms 100..104 are interned in with_machine
        (100u32..104).prop_map(|s| Term::Atom(xsb_syntax::Sym(s))),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        (100u32..104, proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::Compound(xsb_syntax::Sym(f), args))
    })
}

fn with_machine<R>(f: impl FnOnce(&mut Machine) -> R) -> R {
    let mut syms = SymbolTable::new();
    // intern enough symbols that Sym(100..104) exist
    while syms.len() < 105 {
        syms.intern(&format!("s{}", syms.len()));
    }
    let mut db = Program::new(&mut syms);
    let mut tables = TableSpace::new();
    let mut m = Machine::new(&mut db, &mut tables);
    f(&mut m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A term unifies with its own copy, and the unified copy becomes
    /// structurally identical (equal canonical forms).
    #[test]
    fn term_unifies_with_its_copy(t in ast_term()) {
        with_machine(|m| {
            let mut varmap = Vec::new();
            let a = m.term_to_heap(&t, &mut varmap);
            let b = m.copy_term(a);
            prop_assert!(m.unify(a, b));
            let mut v1 = Vec::new();
            let mut v2 = Vec::new();
            let c1 = m.canonicalize(&[a], &mut v1);
            let c2 = m.canonicalize(&[b], &mut v2);
            prop_assert_eq!(c1, c2);
            Ok(())
        })?;
    }

    /// Unification is symmetric in outcome.
    #[test]
    fn unify_outcome_is_symmetric(t1 in ast_term(), t2 in ast_term()) {
        let ab = with_machine(|m| {
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t1, &mut vm);
            let mut vm2 = Vec::new();
            let b = m.term_to_heap(&t2, &mut vm2);
            m.unify(a, b)
        });
        let ba = with_machine(|m| {
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t1, &mut vm);
            let mut vm2 = Vec::new();
            let b = m.term_to_heap(&t2, &mut vm2);
            m.unify(b, a)
        });
        prop_assert_eq!(ab, ba);
    }

    /// canonicalize → decode_canon → canonicalize is a fixpoint.
    #[test]
    fn canonical_roundtrip_is_stable(t in ast_term()) {
        with_machine(|m| {
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t, &mut vm);
            let mut v1 = Vec::new();
            let c1 = m.canonicalize(&[a], &mut v1);
            let b = m.decode_canon(&c1, 1)[0];
            let mut v2 = Vec::new();
            let c2 = m.canonicalize(&[b], &mut v2);
            prop_assert_eq!(c1, c2);
            Ok(())
        })?;
    }

    /// Unwinding the trail restores every binding made after the mark.
    #[test]
    fn trail_unwind_restores_state(t1 in ast_term(), t2 in ast_term()) {
        with_machine(|m| {
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t1, &mut vm);
            let mut pre_vars = Vec::new();
            let pre = m.canonicalize(&[a], &mut pre_vars);
            let mark = m.tip;
            let mut vm2 = Vec::new();
            let b = m.term_to_heap(&t2, &mut vm2);
            let _ = m.unify(a, b); // bind or partially bind, may fail
            m.unwind_to(mark);
            let mut post_vars = Vec::new();
            let post = m.canonicalize(&[a], &mut post_vars);
            prop_assert_eq!(pre, post, "t1 shape restored after unwind");
            Ok(())
        })?;
    }

    /// AST → heap → AST is the identity modulo variable renumbering
    /// (heap_to_ast numbers variables by first occurrence).
    #[test]
    fn ast_heap_roundtrip(t in ast_term()) {
        with_machine(|m| {
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t, &mut vm);
            let mut vo = Vec::new();
            let back = m.heap_to_ast(a, &mut vo);
            prop_assert_eq!(renumber(&back), renumber(&t));
            Ok(())
        })?;
    }

    /// The standard order is total and antisymmetric on ground terms.
    #[test]
    fn compare_is_consistent(t1 in ast_term(), t2 in ast_term()) {
        with_machine(|m| {
            let mut syms = SymbolTable::new();
            while syms.len() < 105 {
                syms.intern(&format!("s{}", syms.len()));
            }
            let mut vm = Vec::new();
            let a = m.term_to_heap(&t1, &mut vm);
            let b = m.term_to_heap(&t2, &mut vm); // shared varmap: same vars alias
            let ab = m.compare(a, b, &syms);
            let ba = m.compare(b, a, &syms);
            prop_assert_eq!(ab, ba.reverse());
            prop_assert_eq!(m.compare(a, a, &syms), std::cmp::Ordering::Equal);
            Ok(())
        })?;
    }

    /// Tabled canonical keys implement variant semantics: renaming
    /// variables does not change the key; collapsing distinct variables
    /// does.
    #[test]
    fn canonical_keys_are_variant_keys(t in ast_term()) {
        with_machine(|m| {
            let mut vm1 = Vec::new();
            let a = m.term_to_heap(&t, &mut vm1);
            let mut vm2 = Vec::new();
            let b = m.term_to_heap(&t, &mut vm2); // same shape, fresh vars
            let mut v1 = Vec::new();
            let mut v2 = Vec::new();
            let c1 = m.canonicalize(&[a], &mut v1);
            let c2 = m.canonicalize(&[b], &mut v2);
            prop_assert_eq!(c1, c2, "renamed variants share a key");
            Ok(())
        })?;
    }
}

/// Renumbers AST variables by first occurrence, the normal form both
/// sides of the heap round-trip should share.
fn renumber(t: &Term) -> Term {
    fn walk(t: &Term, map: &mut Vec<u32>) -> Term {
        match t {
            Term::Var(v) => {
                let id = match map.iter().position(|&x| x == *v) {
                    Some(i) => i,
                    None => {
                        map.push(*v);
                        map.len() - 1
                    }
                };
                Term::Var(id as u32)
            }
            Term::Atom(_) | Term::Int(_) => t.clone(),
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| walk(a, map)).collect())
            }
            Term::HiLog(f, args) => Term::HiLog(
                Box::new(walk(f, map)),
                args.iter().map(|a| walk(a, map)).collect(),
            ),
        }
    }
    walk(t, &mut Vec::new())
}

#[test]
fn unify_canon_one_equals_decode_then_unify() {
    // the dynamic-clause fast path agrees with the decode-then-unify path
    with_machine(|m| {
        // canon of f(1, g(X), X)
        let f = xsb_syntax::Sym(100);
        let g = xsb_syntax::Sym(101);
        let canon = vec![
            Cell::fun(f, 3),
            Cell::int(1),
            Cell::fun(g, 1),
            Cell::tvar(0),
            Cell::tvar(0),
        ];
        // target: f(1, g(7), Z)
        let z = m.new_var();
        let gbase = m.heap.len();
        m.heap.push(Cell::fun(g, 1));
        m.heap.push(Cell::int(7));
        let fbase = m.heap.len();
        m.heap.push(Cell::fun(f, 3));
        m.heap.push(Cell::int(1));
        m.heap.push(Cell::str(gbase));
        m.heap.push(z);
        let target = Cell::str(fbase);

        let mut tvars = Vec::new();
        let mut pos = 0;
        assert!(m.unify_canon_one(&canon, &mut pos, &mut tvars, target));
        assert_eq!(pos, canon.len());
        // Z must now be bound to 7 (X unified with g-arg then with Z)
        assert_eq!(m.deref(z), Cell::int(7));
    });
}
