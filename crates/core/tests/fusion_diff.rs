//! Fused-vs-unfused differential tests.
//!
//! Superinstruction fusion (`Program::fuse_range`) is a pure dispatch
//! optimisation: a fused engine must produce byte-identical answers,
//! byte-identical table listings, and identical table/trail counters to
//! an engine compiled with fusion off. The corpus below spans the same
//! ground the `table_format`, `edge_cases`, and `observability` fixtures
//! cover: left recursion over cycles, structure skeletons, stratified
//! negation over game trees, the list prelude, findall, cut, and
//! arithmetic.
//!
//! The only counter allowed (and expected) to differ is `Instructions`:
//! a fused dispatch retires several original instructions at once, which
//! is exactly what the `instructions_per_sec` benchmark metric measures.

use xsb_core::Engine;
use xsb_obs::Counter;

/// Counters that must be bit-identical across the fusion toggle. Every
/// table, trail, and scheduling counter qualifies; `Instructions` is the
/// deliberate exception (fewer dispatches is the point of fusion).
const INVARIANT_COUNTERS: &[Counter] = &[
    Counter::Calls,
    Counter::Unifications,
    Counter::TrailOps,
    Counter::ChoicePoints,
    Counter::Backtracks,
    Counter::SubgoalsCreated,
    Counter::AnswersRecorded,
    Counter::DuplicateAnswers,
    Counter::ConsumerSuspensions,
    Counter::ConsumerResumptions,
    Counter::SccCompletions,
    Counter::SubgoalsCompleted,
    Counter::NegationSuspends,
    Counter::NegationResumes,
    Counter::TableHits,
    Counter::TableMisses,
];

const CYCLE3: &str = r#"
    :- table path/2.
    path(X,Y) :- path(X,Z), edge(Z,Y).
    path(X,Y) :- edge(X,Y).
    edge(1,2). edge(2,3). edge(3,1).
"#;

const SKELETON: &str = r#"
    :- table q/2.
    q(f(X), g(X,b)) :- e(X).
    e(1). e(2).
"#;

const WIN_TREE: &str = r#"
    :- table win/1.
    win(X) :- move(X,Y), tnot win(Y).
    move(1,2). move(1,3). move(2,4). move(2,5). move(3,6). move(3,7).
"#;

const TWO_CALLS: &str = r#"
    p(X,Y) :- q(X,Z), r(Z,Y).
    q(1,2). q(1,3).
    r(2,20). r(3,30).
"#;

const CUT_FIRST: &str = r#"
    first(X, [X|_]) :- !.
    pick(X) :- member(X, [a,b,c]), !.
"#;

/// `(program, queries)` — each query must behave identically on a fused
/// and an unfused engine.
const CORPUS: &[(&str, &[&str])] = &[
    (CYCLE3, &["path(1,X)", "path(X,Y)", "path(2,1)"]),
    (SKELETON, &["q(U,V)", "q(f(1),W)"]),
    (WIN_TREE, &["win(1)", "win(2)", "win(4)"]),
    (TWO_CALLS, &["p(X,Y)", "p(1,20)"]),
    (CUT_FIRST, &["first(X,[1,2,3])", "pick(X)"]),
    (
        "",
        &[
            "append(X, Y, [1,2,3])",
            "append([1,2], [3,4], Z)",
            "reverse([1,2,3,4], R)",
            "length([a,b,c], N)",
            "numlist(1, 10, L)",
            "sum_list([1,2,3,4], S)",
            "member(X, [a,b,c])",
            "select(X, [1,2,3], Rest)",
            "findall(X, member(X, [a,b,c]), L)",
            "X is 3 * 7 + 1",
        ],
    ),
];

fn render_solutions(e: &mut Engine, q: &str) -> String {
    match e.query(q) {
        Ok(sols) => format!("{sols:?}"),
        Err(err) => format!("error: {err:?}"),
    }
}

#[test]
fn fused_and_unfused_engines_agree_on_the_whole_corpus() {
    for (prog, queries) in CORPUS {
        let mut fused = Engine::with_fusion(true);
        let mut plain = Engine::with_fusion(false);
        if !prog.is_empty() {
            fused.consult(prog).expect("program consults (fused)");
            plain.consult(prog).expect("program consults (unfused)");
        }
        for q in *queries {
            let a = render_solutions(&mut fused, q);
            let b = render_solutions(&mut plain, q);
            assert_eq!(a, b, "answers diverged on {q:?}");
        }
        assert_eq!(
            fused.table_listing(),
            plain.table_listing(),
            "table listing diverged for program {prog:?}"
        );
        for &c in INVARIANT_COUNTERS {
            assert_eq!(
                fused.metrics().get(c),
                plain.metrics().get(c),
                "counter {c:?} diverged for program {prog:?}"
            );
        }
    }
}

#[test]
fn fusion_actually_reduces_dispatches() {
    // sanity that the differential test exercises fused code at all: a
    // fact-heavy workload (GetConstant;Proceed, PutValueY runs, clause
    // epilogues) must retire measurably fewer dispatched instructions
    let mut fused = Engine::with_fusion(true);
    let mut plain = Engine::with_fusion(false);
    for e in [&mut fused, &mut plain] {
        e.consult(CYCLE3).unwrap();
        assert_eq!(e.count("path(X,Y)").unwrap(), 9);
        assert_eq!(e.count("append(X, Y, [1,2,3,4,5])").unwrap(), 6);
    }
    let f = fused.metrics().get(Counter::Instructions);
    let p = plain.metrics().get(Counter::Instructions);
    assert!(
        f < p,
        "fused engine should dispatch fewer instructions (fused {f}, unfused {p})"
    );
}

#[test]
fn set_fusion_builtin_toggles_compilation_of_later_code() {
    let mut e = Engine::new();
    assert!(e.db.fusion_enabled);
    assert!(e.holds("set_fusion(off)").unwrap());
    assert!(!e.db.fusion_enabled);
    // code consulted now compiles unfused but still runs correctly
    e.consult("edge(1,2). edge(2,3).").unwrap();
    assert_eq!(e.count("edge(X,Y)").unwrap(), 2);
    assert!(e.holds("set_fusion(on)").unwrap());
    assert!(e.db.fusion_enabled);
    assert!(e.holds("set_fusion(nonsense)").is_err());
}

// ---------------------------------------------------------------------
// structural property test: fusion never loses or moves code
// ---------------------------------------------------------------------

// Requires the in-tree deterministic `proptest` stand-in:
// `cargo test -p xsb-core --features proptest`.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;
    use xsb_core::cell::Cell;
    use xsb_core::instr::Instr;
    use xsb_core::program::Program;
    use xsb_syntax::{Sym, SymbolTable};

    /// Strategy over a mix of fusable and non-fusable instructions.
    fn any_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (0i64..9).prop_map(|v| Instr::GetConstant {
                c: Cell::int(v),
                a: 0
            }),
            (0u32..4, 1u16..3).prop_map(|(f, n)| Instr::GetStructure { f: Sym(f), n, a: 0 }),
            (0u16..4).prop_map(|a| Instr::GetList { a }),
            (0u16..4).prop_map(|x| Instr::UnifyVariableX { x }),
            (0u16..4).prop_map(|y| Instr::UnifyValueY { y }),
            (0i64..9).prop_map(|v| Instr::UnifyConstant { c: Cell::int(v) }),
            (1u16..3).prop_map(|n| Instr::UnifyVoid { n }),
            (0u16..4, 0u16..4).prop_map(|(x, a)| Instr::PutValueX { x, a }),
            (0u16..4, 0u16..4).prop_map(|(y, a)| Instr::PutValueY { y, a }),
            (0u16..3).prop_map(|nperms| Instr::Allocate { nperms }),
            Just(Instr::Deallocate),
            (0u32..4).prop_map(|pred| Instr::Call { pred }),
            Just(Instr::Proceed),
            (0u16..3).prop_map(|y| Instr::SaveGenerator { y }),
            Just(Instr::Fail),
        ]
    }

    /// Walks fused code verifying it expands back to exactly the original
    /// sequence, with every shadowed slot untouched.
    fn assert_fusion_preserves(orig: &[Instr], code: &[Instr], pool: &[Instr]) {
        let mut i = 0usize;
        while i < code.len() {
            let covered = match code[i] {
                Instr::UnifyRun { run, len } => {
                    let k = len as usize;
                    // the pool holds the full original run
                    assert_eq!(&pool[run as usize..run as usize + k], &orig[i..i + k]);
                    // shadowed tail slots are the untouched originals
                    assert_eq!(&code[i + 1..i + k], &orig[i + 1..i + k]);
                    k
                }
                Instr::GetStructureUnify { f, n, a, len } => {
                    let k = len as usize;
                    assert_eq!(orig[i], Instr::GetStructure { f, n, a });
                    // the unify tail executes live from the code area: it
                    // must be byte-for-byte the original instructions
                    assert_eq!(&code[i + 1..i + 1 + k], &orig[i + 1..i + 1 + k]);
                    for op in &code[i + 1..i + 1 + k] {
                        assert!(op.is_unify_op());
                    }
                    1 + k
                }
                Instr::GetListUnify { a, len } => {
                    let k = len as usize;
                    assert_eq!(orig[i], Instr::GetList { a });
                    assert_eq!(&code[i + 1..i + 1 + k], &orig[i + 1..i + 1 + k]);
                    for op in &code[i + 1..i + 1 + k] {
                        assert!(op.is_unify_op());
                    }
                    1 + k
                }
                other => {
                    let exp = other.expand(pool);
                    assert_eq!(&exp[..], &orig[i..i + exp.len()]);
                    if exp.len() > 1 {
                        assert_eq!(&code[i + 1..i + exp.len()], &orig[i + 1..i + exp.len()]);
                    }
                    exp.len()
                }
            };
            i += covered;
        }
        assert_eq!(i, code.len());
    }

    proptest! {
        #[test]
        fn fuse_range_is_structure_preserving(
            seq in proptest::collection::vec(any_instr(), 0..40)
        ) {
            let mut syms = SymbolTable::new();
            let mut db = Program::new(&mut syms);
            let start = db.code.here();
            for &op in &seq {
                db.code.emit(op);
            }
            let orig = db.code.code[start as usize..].to_vec();
            db.fuse_range(start);
            prop_assert_eq!(db.code.code.len() - start as usize, orig.len());
            let code = db.code.code[start as usize..].to_vec();
            assert_fusion_preserves(&orig, &code, &db.code.unify_runs);
        }
    }
}
