//! Regression tests pinning the rendered table formats: `tables/0`
//! (`Engine::table_listing`) and the per-answer full-call-form listing
//! must stay byte-identical whether answers are stored substitution
//! factored (the default) or as full tuples (the `factoring` ablation
//! baseline), and under both table index representations.

use xsb_core::table::{answer_listing, TableIndex};
use xsb_core::Engine;

const CYCLE3: &str = r#"
    :- table path/2.
    path(X,Y) :- path(X,Z), edge(Z,Y).
    path(X,Y) :- edge(X,Y).
    edge(1,2). edge(2,3). edge(3,1).
"#;

const SKELETON: &str = r#"
    :- table q/2.
    q(f(X), g(X,b)) :- e(X).
    e(1). e(2).
"#;

fn engine(src: &str) -> Engine {
    let mut e = Engine::new();
    e.consult(src).expect("program consults");
    e
}

#[test]
fn table_listing_bytes_are_pinned() {
    let mut e = engine(CYCLE3);
    assert_eq!(e.count("path(1, X)").unwrap(), 3);
    assert_eq!(e.table_listing(), "path/2(1,_0): 3 answers, complete\n");
}

#[test]
fn table_listing_is_identical_across_store_representations() {
    let mut expected = None;
    for factored in [true, false] {
        for index in [TableIndex::Hash, TableIndex::Trie] {
            let mut e = Engine::new();
            e.set_table_index(index);
            e.set_answer_factoring(factored);
            e.consult(CYCLE3).unwrap();
            assert_eq!(e.count("path(1, X)").unwrap(), 3);
            let listing = e.table_listing();
            match &expected {
                None => expected = Some(listing),
                Some(want) => assert_eq!(
                    &listing, want,
                    "factored={factored} index={index:?} changed the listing"
                ),
            }
        }
    }
    assert_eq!(
        expected.as_deref(),
        Some("path/2(1,_0): 3 answers, complete\n")
    );
}

#[test]
fn answer_listing_renders_full_call_form() {
    // an open call: the whole argument tuple is variable, so the factored
    // store holds just the bindings — the listing re-expands them
    let mut want = None;
    for factored in [true, false] {
        let mut e = Engine::new();
        e.set_answer_factoring(factored);
        e.consult(SKELETON).unwrap();
        assert_eq!(e.count("q(U, V)").unwrap(), 2);
        let f = e
            .tables
            .subgoals
            .iter()
            .find(|f| f.nvars == 2)
            .expect("q/2 frame");
        let listing = answer_listing(f, &e.syms);
        assert_eq!(listing, "(f(1),g(1,b))\n(f(2),g(2,b))\n");
        match &want {
            None => want = Some(listing),
            Some(w) => assert_eq!(&listing, w),
        }
    }
}

#[test]
fn ground_call_answer_lists_as_yes() {
    let mut e = engine(SKELETON);
    assert!(e.holds("q(f(1), g(1,b))").unwrap());
    let f = e
        .tables
        .subgoals
        .iter()
        .find(|f| f.nvars == 0)
        .expect("ground q/2 frame");
    assert_eq!(f.store.len(), 1);
    assert_eq!(answer_listing(f, &e.syms), "yes\n");
    // the boolean answer is free: zero cells in the store
    assert_eq!(e.tables.answer_store_cells(), 0);
}

#[test]
fn partially_bound_call_keeps_skeleton_out_of_the_store() {
    // q(f(1), V): the f(1) skeleton lives in the call template only;
    // the single answer stores just V's binding g(1,b) — 4 cells —
    // instead of the 7-cell full tuple
    let mut e = engine(SKELETON);
    assert_eq!(e.count("q(f(1), V)").unwrap(), 1);
    let factored_cells = e.tables.answer_store_cells();

    let mut base = Engine::new();
    base.set_answer_factoring(false);
    base.consult(SKELETON).unwrap();
    assert_eq!(base.count("q(f(1), V)").unwrap(), 1);
    let full_cells = base.tables.answer_store_cells();

    assert!(
        factored_cells < full_cells,
        "factored {factored_cells} cells < full {full_cells} cells"
    );
    let f = e
        .tables
        .subgoals
        .iter()
        .find(|f| f.nvars == 1)
        .expect("q(f(1),_) frame");
    assert_eq!(answer_listing(f, &e.syms), "(f(1),g(1,b))\n");
}
