//! Cross-query table lifetime: dependency-tracked invalidation on
//! assert/retract, selective abolish under both index modes, the
//! answer-store budget, and shared-table safety under `e_tnot`.

use xsb_core::table::TableIndex;
use xsb_core::Engine;
use xsb_obs::Counter;

const PATH_OVER_DYNAMIC_EDGE: &str = ":- dynamic edge/2.\n\
     :- table path/2.\n\
     path(X,Y) :- edge(X,Y).\n\
     path(X,Y) :- path(X,Z), edge(Z,Y).\n\
     edge(1,2).";

fn engine(src: &str) -> Engine {
    let mut e = Engine::new();
    e.consult(src).expect("program consults");
    e
}

// ---------------------------------------------------------------------
// stale-answer regression: assert/retract invalidate dependent tables
// ---------------------------------------------------------------------

fn stale_answer_regression(index: TableIndex) {
    let mut e = Engine::new();
    e.set_table_index(index);
    e.consult(PATH_OVER_DYNAMIC_EDGE).unwrap();

    assert_eq!(e.count("path(1, X)").unwrap(), 1);
    // the bug this PR fixes: without invalidation this re-query served
    // the stale completed table and missed the new edge
    e.query("assert(edge(2, 3))").unwrap();
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    assert!(e.metrics().get(Counter::TableInvalidations) >= 1);

    // retract invalidates too
    assert!(e.holds("retract(edge(2, 3))").unwrap());
    assert_eq!(e.count("path(1, X)").unwrap(), 1);

    // retractall empties the relation and the table follows
    e.query("retractall(edge(_, _))").unwrap();
    assert_eq!(e.count("path(1, X)").unwrap(), 0);
}

#[test]
fn assert_retract_invalidate_dependent_table_hash_index() {
    stale_answer_regression(TableIndex::Hash);
}

#[test]
fn assert_retract_invalidate_dependent_table_trie_index() {
    stale_answer_regression(TableIndex::Trie);
}

#[test]
fn programmatic_assert_invalidates_like_the_builtin() {
    use xsb_syntax::Term;
    let mut e = engine(PATH_OVER_DYNAMIC_EDGE);
    assert_eq!(e.count("path(1, X)").unwrap(), 1);
    let edge = e.syms.lookup("edge").unwrap();
    e.assert_term(&Term::Compound(edge, vec![Term::Int(2), Term::Int(3)]))
        .unwrap();
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
}

#[test]
fn invalidation_is_transitive_through_tabled_layers() {
    let mut e = engine(
        ":- dynamic edge/2.\n\
         :- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         :- table reach/1.\n\
         reach(Y) :- path(1, Y).\n\
         edge(1,2).",
    );
    assert_eq!(e.count("reach(Y)").unwrap(), 1);
    let before = e.metrics().get(Counter::TableInvalidations);
    e.query("assert(edge(2, 3))").unwrap();
    // both path/2 and reach/1 (which only reaches edge/2 via path/2)
    // must be invalidated
    assert!(e.metrics().get(Counter::TableInvalidations) >= before + 2);
    assert_eq!(e.count("reach(Y)").unwrap(), 2);
    assert_eq!(e.count("path(1, Y)").unwrap(), 2);
}

#[test]
fn independent_tables_survive_and_serve_warm_hits() {
    let mut e = engine(
        ":- dynamic da/1.\n:- dynamic db/1.\n\
         :- table pa/1.\npa(X) :- da(X).\n\
         :- table pb/1.\npb(X) :- db(X).\n\
         da(1). db(2).",
    );
    assert_eq!(e.count("pa(X)").unwrap(), 1);
    assert_eq!(e.count("pb(X)").unwrap(), 1);

    e.query("assert(da(9))").unwrap();
    // pa/1 recomputes with the new fact ...
    assert_eq!(e.count("pa(X)").unwrap(), 2);
    // ... while pb/1's table survived the assert and is served warm
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(e.count("pb(X)").unwrap(), 1);
    assert!(
        e.metrics().get(Counter::TableHits) > hits,
        "pb/1 re-query should be a cross-query table hit"
    );
}

#[test]
fn assert_to_unrelated_predicate_keeps_tables() {
    let mut e = engine(
        ":- dynamic other/1.\n\
         :- table p/1.\np(1). p(2).",
    );
    assert_eq!(e.count("p(X)").unwrap(), 2);
    let invalidations = e.metrics().get(Counter::TableInvalidations);
    e.query("assert(other(1))").unwrap();
    assert_eq!(e.metrics().get(Counter::TableInvalidations), invalidations);
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert!(e.metrics().get(Counter::TableHits) > hits);
}

#[test]
fn mid_query_assert_keeps_call_time_view_safely() {
    // the assert lands while path/2's completed table still has a live
    // choice point; the running query must keep iterating its (call-time)
    // answers — the invalidated frame's store stays alive until query end
    let mut e = engine(
        ":- dynamic edge/2.\n\
         :- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         edge(1,2). edge(1,3).",
    );
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    // solution 1 asserts, then backtracking re-enters the invalidated table
    assert_eq!(e.count("path(1, X), assert(edge(3, 4))").unwrap(), 2);
    // the next query recomputes: {2, 3, 4}
    assert_eq!(e.count("path(1, X)").unwrap(), 3);
}

#[test]
fn dependencies_learned_from_asserted_rules() {
    // rule asserted at runtime: `p(X) :- d(X)` makes tabled p/1 depend on
    // dynamic d/1, so a later assert to d/1 invalidates p/1
    let mut e = engine(":- dynamic d/1.\n:- dynamic q/1.\n:- table p/1.\np(X) :- q(X).");
    e.query("assert((q(X) :- d(X)))").unwrap();
    e.query("assert(d(1))").unwrap();
    assert_eq!(e.count("p(X)").unwrap(), 1);
    e.query("assert(d(2))").unwrap();
    assert_eq!(e.count("p(X)").unwrap(), 2);
}

// ---------------------------------------------------------------------
// selective abolish builtins
// ---------------------------------------------------------------------

fn selective_abolish(index: TableIndex) {
    let mut e = Engine::new();
    e.set_table_index(index);
    e.consult(
        ":- table p/1.\np(1). p(2).\n\
         :- table q/1.\nq(7).",
    )
    .unwrap();
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert_eq!(e.count("q(X)").unwrap(), 1);
    assert_eq!(e.table_count(), 2);

    assert!(e.holds("abolish_table_pred(p/1)").unwrap());
    assert_eq!(e.table_count(), 1);
    // p/1 recomputes; q/1 is served warm
    assert_eq!(e.count("p(X)").unwrap(), 2);
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(e.count("q(X)").unwrap(), 1);
    assert!(e.metrics().get(Counter::TableHits) > hits);
}

#[test]
fn abolish_table_pred_is_selective_hash_index() {
    selective_abolish(TableIndex::Hash);
}

#[test]
fn abolish_table_pred_is_selective_trie_index() {
    selective_abolish(TableIndex::Trie);
}

#[test]
fn abolish_table_pred_rejects_untabled_and_skips_unknown() {
    let mut e = engine("plain(1).");
    assert!(e.query("abolish_table_pred(plain/1)").is_err());
    // unknown predicates are a no-op, like abolishing an empty table
    assert!(e.holds("abolish_table_pred(nosuch/3)").unwrap());
}

fn abolish_call_per_variant(index: TableIndex) {
    let mut e = Engine::new();
    e.set_table_index(index);
    e.consult(":- table p/1.\np(1). p(2).").unwrap();
    // `count` drives each call to exhaustion so both variants complete
    // (a query stopped at its first solution purges its incomplete table)
    assert_eq!(e.count("p(1)").unwrap(), 1);
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert_eq!(e.table_count(), 2); // variants p(1) and p(X)

    assert!(e.holds("abolish_table_call(p(1))").unwrap());
    assert_eq!(e.table_count(), 1);
    // the open-call variant is untouched and serves warm
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert!(e.metrics().get(Counter::TableHits) > hits);
    // the abolished variant recomputes on demand
    assert_eq!(e.count("p(1)").unwrap(), 1);
    assert_eq!(e.table_count(), 2);
}

#[test]
fn abolish_table_call_is_per_variant_hash_index() {
    abolish_call_per_variant(TableIndex::Hash);
}

#[test]
fn abolish_table_call_is_per_variant_trie_index() {
    abolish_call_per_variant(TableIndex::Trie);
}

#[test]
fn engine_api_abolish_table_pred() {
    let mut e = engine(":- table p/1.\np(1).");
    assert_eq!(e.count("p(1)").unwrap(), 1);
    assert_eq!(e.abolish_table_pred("p", 1), 1);
    assert_eq!(e.table_count(), 0);
    assert_eq!(e.abolish_table_pred("p", 1), 0);
    assert_eq!(e.abolish_table_pred("nosuch", 1), 0);
    assert_eq!(e.count("p(1)").unwrap(), 1);
}

// ---------------------------------------------------------------------
// answer-store budget
// ---------------------------------------------------------------------

#[test]
fn budget_evicts_completed_tables_between_queries() {
    let mut e = engine(
        ":- table p/1.\np(1). p(2). p(3).\n\
         :- table q/1.\nq(1). q(2). q(3).",
    );
    e.set_table_budget(Some(0));
    assert_eq!(e.count("p(X)").unwrap(), 3);
    // the budget sweep after the query evicted p's table
    assert!(e.metrics().get(Counter::TableEvictions) >= 1);
    assert_eq!(e.table_count(), 0);
    // evicted tables recompute transparently
    assert_eq!(e.count("p(X)").unwrap(), 3);
    assert_eq!(e.count("q(X)").unwrap(), 3);
}

#[test]
fn budget_keeps_recently_hit_tables_when_it_can() {
    let mut e = engine(
        ":- table p/1.\np(1). p(2). p(3).\n\
         :- table q/1.\nq(1). q(2). q(3).",
    );
    assert_eq!(e.count("p(X)").unwrap(), 3);
    assert_eq!(e.count("q(X)").unwrap(), 3);
    assert_eq!(e.count("q(X)").unwrap(), 3); // q hit more recently than p
    let total = e.table_count();
    assert_eq!(total, 2);
    // room for roughly one table: p (least recently hit) must go first
    e.set_table_budget(Some(4));
    assert_eq!(e.count("q(X)").unwrap(), 3);
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(e.count("q(X)").unwrap(), 3);
    assert!(
        e.metrics().get(Counter::TableHits) > hits,
        "q/1 should still be warm after the sweep"
    );
}

#[test]
fn set_table_budget_builtin_and_unbounded_reset() {
    let mut e = engine(":- table p/1.\np(1). p(2).");
    assert!(e.holds("set_table_budget(0)").unwrap()); // 0 = unbounded
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert_eq!(e.table_count(), 1);
    assert!(e.holds("set_table_budget(1)").unwrap());
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert_eq!(e.table_count(), 0, "budget of 1 cell evicts the table");
    assert!(e.query("set_table_budget(nope)").is_err());
}

#[test]
fn budget_survives_index_switch() {
    let mut e = Engine::new();
    e.set_table_budget(Some(1));
    e.set_table_index(TableIndex::Trie);
    e.consult(":- table p/1.\np(1). p(2).").unwrap();
    assert_eq!(e.count("p(X)").unwrap(), 2);
    assert_eq!(e.table_count(), 0, "budget still applies after the switch");
}

// ---------------------------------------------------------------------
// shared tables under existential negation
// ---------------------------------------------------------------------

#[test]
fn e_tnot_generator_with_second_consumer_keeps_table() {
    // the self-recursive clause makes the e_tnot-spawned generator for
    // p(1) acquire a second consumer of its own table; the early-cut
    // optimisation (one answer suffices for e_tnot) must detect that
    // other user and complete normally, so the table survives for reuse
    let mut e = engine(
        ":- table p/1.\n\
         p(X) :- p(X).\n\
         p(1). p(2).\n\
         probe :- e_tnot p(1).",
    );
    assert!(
        !e.holds("probe").unwrap(),
        "p(1) has an answer, e_tnot fails"
    );
    let hits = e.metrics().get(Counter::TableHits);
    assert_eq!(
        e.count("p(1)").unwrap(),
        1,
        "the table built under e_tnot completed with its answer"
    );
    assert!(
        e.metrics().get(Counter::TableHits) > hits,
        "the p(1) table built under e_tnot is reusable"
    );
}

#[test]
fn e_tnot_without_other_users_still_correct() {
    let mut e = engine(
        ":- table p/1.\np(1). p(2).\n\
         :- table empty/1.\nempty(X) :- empty(X).\n\
         yes :- e_tnot empty(0).\n\
         no :- e_tnot p(1).",
    );
    assert!(e.holds("yes").unwrap());
    assert!(!e.holds("no").unwrap());
}
