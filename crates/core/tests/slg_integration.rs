//! Integration tests for the SLG-WAM engine: tabling across SCCs,
//! negation strategies, aggregation, dynamic predicates, HiLog.

use xsb_core::{Engine, EngineError};
use xsb_syntax::Term;

fn engine(src: &str) -> Engine {
    let mut e = Engine::new();
    e.consult(src).expect("program consults");
    e
}

// ---------------------------------------------------------------------
// plain Prolog (SLD) behaviour
// ---------------------------------------------------------------------

#[test]
fn sld_backtracking_order_is_source_order() {
    let mut e = engine("color(red). color(green). color(blue).");
    let sols = e.query("color(C)").unwrap();
    let names: Vec<String> = sols
        .iter()
        .map(|s| format!("{}", s.get("C").unwrap().display(&e.syms)))
        .collect();
    assert_eq!(names, ["red", "green", "blue"]);
}

#[test]
fn append_both_directions() {
    let mut e = Engine::new();
    assert_eq!(e.count("append(X, Y, [1,2,3])").unwrap(), 4);
    let sols = e.query("append([1,2], [3,4], Z)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("Z").unwrap().display(&e.syms)),
        "[1,2,3,4]"
    );
}

#[test]
fn cut_commits_to_first_clause() {
    let mut e = engine(
        "transform_null(null, 'date unknown') :- !.\n\
         transform_null(X, X).",
    );
    // paper §4.4: exactly one tuple out of transform_null
    assert_eq!(e.count("transform_null(null, Y)").unwrap(), 1);
    let sols = e.query("transform_null(5, Y)").unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols[0].get("Y"), Some(&Term::Int(5)));
}

#[test]
fn negation_as_failure_not_p() {
    // paper §4.4 not_p example via \+
    let mut e = engine("p(a, b). p(b, c).");
    assert!(e.holds("\\+ p(a, c)").unwrap());
    assert!(!e.holds("\\+ p(a, b)").unwrap());
}

#[test]
fn if_then_else() {
    let mut e =
        engine("classify(X, small) :- (X < 10 -> true ; fail).\nclassify(X, big) :- X >= 10.");
    let sols = e.query("classify(5, K)").unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(
        format!("{}", sols[0].get("K").unwrap().display(&e.syms)),
        "small"
    );
    let sols = e.query("classify(50, K)").unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(
        format!("{}", sols[0].get("K").unwrap().display(&e.syms)),
        "big"
    );
}

#[test]
fn disjunction_gives_both_branches() {
    let mut e = Engine::new();
    assert_eq!(e.count("(X = 1 ; X = 2), Y is X * 10").unwrap(), 2);
}

#[test]
fn between_generates_and_tests() {
    let mut e = Engine::new();
    assert_eq!(e.count("between(1, 5, X)").unwrap(), 5);
    assert!(e.holds("between(1, 5, 3)").unwrap());
    assert!(!e.holds("between(1, 5, 7)").unwrap());
}

#[test]
fn findall_collects_all_solutions() {
    let mut e = engine("item(a, 1). item(b, 2). item(c, 3).");
    let sols = e
        .query("findall(K-V, item(K, V), L), length(L, N)")
        .unwrap();
    assert_eq!(sols[0].get("N"), Some(&Term::Int(3)));
    // empty findall gives []
    let sols = e.query("findall(X, item(zzz, X), L)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[]"
    );
}

#[test]
fn setof_sorts_and_dedups_and_fails_empty() {
    let mut e = engine("n(3). n(1). n(3). n(2).");
    let sols = e.query("setof(X, n(X), L)").unwrap();
    assert_eq!(
        format!("{}", sols[0].get("L").unwrap().display(&e.syms)),
        "[1,2,3]"
    );
    // setof fails (rather than yielding []) when the goal has no solutions
    assert!(!e.holds("setof(X, n(99), _L)").unwrap());
}

#[test]
fn nested_findall() {
    let mut e = engine("edge(1,2). edge(1,3). edge(2,4).");
    let sols = e
        .query("findall(X-L, (edge(X,_), findall(Y, edge(X,Y), L)), Out)")
        .unwrap();
    assert_eq!(sols.len(), 1);
    let out = format!("{}", sols[0].get("Out").unwrap().display(&e.syms));
    assert!(out.contains("-(1,[2,3])"), "got {out}"); // canonical display of 1-[2,3]
}

// ---------------------------------------------------------------------
// tabling
// ---------------------------------------------------------------------

#[test]
fn right_recursive_tabled_path() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- edge(X,Z), path(Z,Y).\n\
         edge(1,2). edge(2,3). edge(3,1).",
    );
    assert_eq!(e.count("path(1, Y)").unwrap(), 3);
}

#[test]
fn double_recursive_path() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), path(Z,Y).\n\
         edge(1,2). edge(2,3). edge(3,4). edge(4,1).",
    );
    assert_eq!(e.count("path(1, Y)").unwrap(), 4);
    assert_eq!(e.count("path(X, Y)").unwrap(), 16);
}

#[test]
fn same_generation() {
    let mut e = engine(
        ":- table sg/2.\n\
         sg(X, X).\n\
         sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n\
         par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).",
    );
    // c1 and c2 share parent p1; p1 and p2 share grandparent g1
    assert!(e.holds("sg(c1, c2)").unwrap());
    assert!(e.holds("sg(p1, p2)").unwrap());
    assert!(!e.holds("sg(c1, p2)").unwrap());
}

#[test]
fn mutual_recursion_single_scc() {
    let mut e = engine(
        ":- table even/1.\n:- table odd/1.\n\
         even(0).\n\
         even(X) :- X > 0, Y is X - 1, odd(Y).\n\
         odd(X) :- X > 0, Y is X - 1, even(Y).",
    );
    assert!(e.holds("even(10)").unwrap());
    assert!(!e.holds("even(9)").unwrap());
    assert!(e.holds("odd(7)").unwrap());
}

#[test]
fn tabled_answers_are_deduplicated() {
    let mut e = engine(
        ":- table reach/1.\n\
         reach(X) :- edge(_, X).\n\
         reach(X) :- reach(Y), edge(Y, X).\n\
         edge(1,2). edge(1,3). edge(2,3). edge(3,2).",
    );
    // 2 and 3 reachable many ways but answered once each
    assert_eq!(e.count("reach(X)").unwrap(), 2);
}

#[test]
fn left_recursion_terminates_where_sld_cannot() {
    let mut e = engine(
        ":- table t/2.\n\
         t(X,Y) :- t(X,Z), edge(Z,Y).\n\
         t(X,Y) :- edge(X,Y).\n\
         edge(a,b). edge(b,c).",
    );
    // left-recursive clause FIRST: pure SLD would loop instantly
    assert_eq!(e.count("t(a, Y)").unwrap(), 2);
}

#[test]
fn tables_persist_across_queries() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         edge(1,2). edge(2,3).",
    );
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    let t1 = e.table_count();
    // same variant call hits the completed table
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
    assert_eq!(e.table_count(), t1);
    e.abolish_all_tables();
    assert_eq!(e.table_count(), 0);
    assert_eq!(e.count("path(1, X)").unwrap(), 2);
}

#[test]
fn ground_tabled_call() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         edge(1,2). edge(2,3).",
    );
    assert!(e.holds("path(1, 3)").unwrap());
    assert!(!e.holds("path(3, 1)").unwrap());
}

#[test]
fn tabled_facts_only() {
    let mut e = engine(":- table e/2.\ne(1,2). e(2,3). e(1,2).");
    assert_eq!(
        e.count("e(X, Y)").unwrap(),
        2,
        "duplicate fact deduplicated"
    );
}

#[test]
fn tabling_with_structures() {
    let mut e = engine(
        ":- table r/1.\n\
         r(f(X)) :- q(X).\n\
         r(g(X)) :- r(f(X)).\n\
         q(1). q(2).",
    );
    assert_eq!(e.count("r(Z)").unwrap(), 4);
}

// ---------------------------------------------------------------------
// tabled negation (paper §4.4)
// ---------------------------------------------------------------------

const WIN_CHAIN: &str = "
:- table win/1.
win(X) :- move(X, Y), tnot win(Y).
move(1,2). move(2,3). move(3,4).
";

#[test]
fn win_on_chain_tnot() {
    // chain 1→2→3→4: 4 loses (no moves), 3 wins, 2 loses, 1 wins
    let mut e = engine(WIN_CHAIN);
    assert!(e.holds("win(1)").unwrap());
    assert!(!e.holds("win(2)").unwrap());
    assert!(e.holds("win(3)").unwrap());
    assert!(!e.holds("win(4)").unwrap());
}

#[test]
fn win_on_chain_existential() {
    let mut e = engine(
        ":- table win/1.\n\
         win(X) :- move(X, Y), e_tnot win(Y).\n\
         move(1,2). move(2,3). move(3,4).",
    );
    assert!(e.holds("win(1)").unwrap());
    assert!(!e.holds("win(2)").unwrap());
}

#[test]
fn win_on_binary_tree_matches_game_theory() {
    // complete binary tree of height 3: nodes 1..15, leaves lose
    let mut src = String::from(":- table win/1.\nwin(X) :- move(X,Y), tnot win(Y).\n");
    for n in 1..=7 {
        src.push_str(&format!("move({n},{}). move({n},{}).\n", 2 * n, 2 * n + 1));
    }
    let mut e = engine(&src);
    // leaves (8..15) lose; their parents (4..7) win; 2,3 lose; 1 wins
    assert!(e.holds("win(1)").unwrap());
    assert!(!e.holds("win(2)").unwrap());
    assert!(e.holds("win(4)").unwrap());
    assert!(!e.holds("win(8)").unwrap());
}

#[test]
fn win_with_existential_negation_on_tree() {
    let mut src = String::from(":- table win/1.\nwin(X) :- move(X,Y), e_tnot win(Y).\n");
    for n in 1..=7 {
        src.push_str(&format!("move({n},{}). move({n},{}).\n", 2 * n, 2 * n + 1));
    }
    let mut e = engine(&src);
    assert!(e.holds("win(1)").unwrap());
    assert!(!e.holds("win(2)").unwrap());
    assert!(e.holds("win(4)").unwrap());
}

#[test]
fn existential_negation_visits_fewer_subgoals() {
    // paper Figure 2: SLG evaluates all 2^(h+1)-1 subgoals, E-Neg only G(n)
    let h = 7u32; // height 7 (odd → first player wins): 255 nodes
    let mut base = String::new();
    for n in 1..(1u32 << h) {
        base.push_str(&format!("move({n},{}). move({n},{}).\n", 2 * n, 2 * n + 1));
    }
    let tnot_src = format!(":- table win/1.\nwin(X) :- move(X,Y), tnot win(Y).\n{base}");
    let enot_src = format!(":- table win/1.\nwin(X) :- move(X,Y), e_tnot win(Y).\n{base}");

    let mut e1 = engine(&tnot_src);
    assert!(e1.holds("win(1)").unwrap());
    let full = e1.metrics().get(xsb_obs::Counter::SubgoalsCreated);

    let mut e2 = engine(&enot_src);
    assert!(e2.holds("win(1)").unwrap());
    let existential = e2.metrics().get(xsb_obs::Counter::SubgoalsCreated);

    assert!(
        existential * 2 < full,
        "existential negation should evaluate far fewer subgoals: {existential} vs {full}"
    );
}

#[test]
fn tnot_on_completed_table() {
    let mut e = engine(
        ":- table p/1.\n\
         p(1). p(2).\n\
         :- table q/1.\n\
         q(9).",
    );
    assert!(e.holds("p(1), tnot q(1)").unwrap());
    assert!(!e.holds("tnot p(1)").unwrap());
}

#[test]
fn stratified_two_level_program() {
    let mut e = engine(
        ":- table reach/1.\n:- table unreach/1.\n\
         reach(1).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         unreach(X) :- node(X), tnot reach(X).\n\
         edge(1,2). edge(2,3).\n\
         node(1). node(2). node(3). node(4). node(5).",
    );
    assert_eq!(e.count("unreach(X)").unwrap(), 2); // 4 and 5
}

#[test]
fn non_stratified_loop_is_detected() {
    // win over a cycle: win(1) depends negatively on itself
    let mut e = engine(
        ":- table win/1.\n\
         win(X) :- move(X, Y), tnot win(Y).\n\
         move(1, 1).",
    );
    let r = e.holds("win(1)");
    assert!(
        matches!(r, Err(EngineError::NotStratified(_))),
        "expected stratification error, got {r:?}"
    );
}

#[test]
fn tfindall_waits_for_completion() {
    let mut e = engine(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n\
         edge(1,2). edge(2,3). edge(3,1).",
    );
    let sols = e.query("tfindall(Y, path(1, Y), L), length(L, N)").unwrap();
    assert_eq!(sols[0].get("N"), Some(&Term::Int(3)));
}

// ---------------------------------------------------------------------
// dynamic predicates (paper §4.2, §4.5)
// ---------------------------------------------------------------------

#[test]
fn assert_and_query() {
    let mut e = Engine::new();
    e.consult(":- dynamic emp/2.").unwrap();
    assert_eq!(e.count("emp(X, Y)").unwrap(), 0);
    e.query("assert(emp(smith, 10))").unwrap();
    e.query("assert(emp(jones, 20))").unwrap();
    assert_eq!(e.count("emp(X, Y)").unwrap(), 2);
    assert_eq!(e.count("emp(smith, Y)").unwrap(), 1);
}

#[test]
fn retract_removes_one_clause() {
    let mut e = Engine::new();
    e.consult(":- dynamic n/1.\nn(1). n(2). n(3).").unwrap();
    assert!(e.holds("retract(n(2))").unwrap());
    assert_eq!(e.count("n(X)").unwrap(), 2);
    assert!(!e.holds("retract(n(2))").unwrap());
}

#[test]
fn asserta_orders_first() {
    let mut e = Engine::new();
    e.consult(":- dynamic n/1.").unwrap();
    e.query("assertz(n(1))").unwrap();
    e.query("asserta(n(0))").unwrap();
    let sols = e.query("n(X)").unwrap();
    assert_eq!(sols[0].get("X"), Some(&Term::Int(0)));
}

#[test]
fn dynamic_rules_execute() {
    let mut e = Engine::new();
    e.consult(":- dynamic likes/2.\nfood(pizza). food(sushi).")
        .unwrap();
    e.query("assert((likes(sam, X) :- food(X)))").unwrap();
    assert_eq!(e.count("likes(sam, F)").unwrap(), 2);
}

#[test]
fn multi_field_index_directive_end_to_end() {
    let mut e = Engine::new();
    e.consult(":- index(p/3, [2, 1+3]).").unwrap();
    e.query("assert(p(a, 1, x))").unwrap();
    e.query("assert(p(b, 1, y))").unwrap();
    e.query("assert(p(a, 2, x))").unwrap();
    assert_eq!(e.count("p(X, 1, Y)").unwrap(), 2);
    assert_eq!(e.count("p(a, N, x)").unwrap(), 2);
}

#[test]
fn retractall_clears_matching() {
    let mut e = Engine::new();
    e.consult(":- dynamic n/1.\nn(1). n(2).").unwrap();
    e.query("retractall(n(_))").unwrap();
    assert_eq!(e.count("n(X)").unwrap(), 0);
}

// ---------------------------------------------------------------------
// HiLog (paper §4.1, §4.7)
// ---------------------------------------------------------------------

const BENEFITS: &str = "
:- hilog package1.
:- hilog package2.
:- hilog intersect_2.
:- hilog union_2.
package1(health_ins, required).
package1(life_ins, optional).
package2(free_car, optional).
package2(long_vacations, optional).
benefits('John', package1).
benefits('Bob', package2).
intersect_2(S1, S2)(X, Y) :- S1(X, Y), S2(X, Y).
union_2(S1, S2)(X, Y) :- S1(X, Y).
union_2(S1, S2)(X, Y) :- S2(X, Y).
";

#[test]
fn hilog_sets_example_from_paper() {
    let mut e = engine(BENEFITS);
    // ?- benefits('John', P), P(X, Y).
    let sols = e.query("benefits('John', P), P(X, Y)").unwrap();
    assert_eq!(sols.len(), 2);
    // union of both packages has 4 tuples
    assert_eq!(
        e.count("benefits('John',P), benefits('Bob',Q), union_2(P,Q)(X,Y)")
            .unwrap(),
        4
    );
    // intersection is empty
    assert_eq!(
        e.count("benefits('John',P), benefits('Bob',Q), intersect_2(P,Q)(X,Y)")
            .unwrap(),
        0
    );
}

#[test]
fn hilog_parameterized_path() {
    let mut e = engine(
        ":- hilog g1.\n\
         path(Graph)(X, Y) :- Graph(X, Y).\n\
         path(Graph)(X, Y) :- Graph(X, Z), path(Graph)(Z, Y).\n\
         g1(1, 2). g1(2, 3).",
    );
    // SLD evaluation of the acyclic graph
    assert_eq!(e.count("path(g1)(1, Y)").unwrap(), 2);
}

#[test]
fn hilog_variable_functor_query() {
    let mut e = engine(":- hilog f.\n:- hilog g.\nf(1). g(2).");
    // X(V) enumerates across all hilog facts
    assert_eq!(e.count("benefits0(X)").unwrap_or(0), 0); // undefined is an error, count 0 via or
    let n = e.count("P(V), P = f").unwrap();
    assert_eq!(n, 1);
}

// ---------------------------------------------------------------------
// object files
// ---------------------------------------------------------------------

#[test]
fn object_file_roundtrip_through_engine() {
    let mut e = Engine::new();
    e.consult(":- dynamic edge/2.").unwrap();
    for i in 0..50 {
        e.assert_term(&Term::Compound(
            e.syms.lookup("edge").unwrap(),
            vec![Term::Int(i), Term::Int(i + 1)],
        ))
        .unwrap();
    }
    let obj = e.save_object("edge", 2).unwrap();

    let mut e2 = Engine::new();
    let n = e2.load_object(&obj).unwrap();
    assert_eq!(n, 50);
    assert_eq!(e2.count("edge(X, Y)").unwrap(), 50);
    assert_eq!(e2.count("edge(7, Y)").unwrap(), 1);
}
