//! Thread-interleaving tests for the pool-shared table store.
//!
//! The store's safety argument is structural — frames are immutable and
//! `Arc`-held, so a reader observes a whole frame or no frame — but these
//! tests drive the claim with real racing threads, barrier-coordinated so
//! the contended window is exercised on every run: warm hits racing an
//! epoch bump never see a half-invalidated frame, and N workers racing
//! the same cold query dedup to exactly one shared table.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use xsb_core::cell::Cell;
use xsb_core::engine_pool::{PoolConfig, ServerPool};
use xsb_core::shared::{SharedFrame, SharedTableStore};
use xsb_obs::Counter;

/// A frame whose payload makes internal consistency checkable: `n`
/// answers, answer `i` holding the cells `[tag, tag + i]`. A torn or
/// half-written frame would break the arithmetic relation between spans
/// and cells.
fn coherent_frame(pred: u32, key: &[Cell], tag: i64, n: usize, epoch: u64) -> Arc<SharedFrame> {
    let mut cells = Vec::with_capacity(n * 2);
    let mut spans = Vec::with_capacity(n);
    for i in 0..n {
        spans.push((cells.len() as u32, 2));
        cells.push(Cell::int(tag));
        cells.push(Cell::int(tag + i as i64));
    }
    Arc::new(SharedFrame::new(
        pred,
        Arc::from(key),
        1,
        true,
        0,
        vec![1],
        Arc::from(&cells[..]),
        spans,
        epoch,
    ))
}

/// Asserts the full payload invariant of [`coherent_frame`].
fn assert_coherent(f: &SharedFrame) {
    assert!(!f.spans.is_empty(), "published frames have answers");
    let tag = f.cells[0].int_value();
    for (i, &(off, len)) in f.spans.iter().enumerate() {
        assert_eq!(len, 2);
        let seq = &f.cells[off as usize..(off + len) as usize];
        assert_eq!(seq[0].int_value(), tag, "answer {i}: tag half");
        assert_eq!(seq[1].int_value(), tag + i as i64, "answer {i}: index half");
    }
}

/// Readers hammer `probe` while a writer loops publish → invalidate on
/// the same variant. Every successful probe must return an internally
/// coherent frame — seeing the *old* or the *new* table is fine, seeing a
/// mixture or a partially-removed frame is not. The barrier lines all
/// threads up so every iteration races inside the contended window.
#[test]
fn warm_hits_racing_epoch_bumps_see_whole_frames_only() {
    const READERS: usize = 4;
    const MIN_ROUNDS: usize = 200;
    const MAX_ROUNDS: usize = 200_000;
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0)][..]);
    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let start = Arc::new(Barrier::new(READERS + 1));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let store = store.clone();
        let key = key.clone();
        let stop = stop.clone();
        let hits = hits.clone();
        let start = start.clone();
        readers.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                if let Some(f) = store.probe(7, &key) {
                    assert_coherent(&f);
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    start.wait();
    // each round publishes a differently-tagged table, then rips it out
    // from under the readers via the epoch bump; keep racing until the
    // readers provably overlapped a live frame (self-pacing, so the test
    // is not timing-sensitive on single-core machines)
    for round in 0..MAX_ROUNDS {
        let epoch = store.epoch();
        let f = coherent_frame(7, &key, (round as i64 + 1) * 1000, 5, epoch);
        assert!(store.publish(f), "writer is the only publisher");
        std::thread::yield_now(); // give a reader the live-frame window
        store.invalidate_preds(&[7]);
        if round + 1 >= MIN_ROUNDS && hits.load(Ordering::Relaxed) > 0 {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap(); // propagates any coherence assertion failure
    }
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "readers never overlapped a live frame"
    );
    assert!(store.is_empty());
}

/// N threads race to publish the same variant. Exactly one wins; probes
/// during and after the race always return the winner's payload, so a
/// subgoal is never represented by answers from two computations.
#[test]
fn concurrent_publishes_of_one_variant_dedup_to_first_winner() {
    const WRITERS: usize = 8;
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0), Cell::int(3)][..]);
    let start = Arc::new(Barrier::new(WRITERS));
    let published: Vec<bool> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            let key = key.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let f = coherent_frame(2, &key, (w as i64 + 1) * 100, 3, 0);
                start.wait();
                store.publish(f)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    assert_eq!(
        published.iter().filter(|&&p| p).count(),
        1,
        "first publisher wins, every other computation is discarded"
    );
    let f = store.probe(2, &key).expect("the winner's table serves");
    assert_coherent(&f);
    assert_eq!(store.len(), 1);
    assert_eq!(store.total_cells(), 6, "loser cells are not leaked");
}

/// Pool-level cold-start race: every worker gets the same query at once.
/// Losers may each compute the table locally (safe duplication), but the
/// shared store ends with exactly one copy and all workers agree on the
/// answers.
#[test]
fn cold_query_race_across_workers_dedups_in_the_store() {
    const WORKERS: usize = 4;
    let p = ServerPool::new(
        r#"
        :- table path/2.
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,4). edge(4,1).
        "#,
        PoolConfig {
            workers: WORKERS,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    // pin one copy of the same cold query to every worker, submitted
    // before any can finish: all race the publish
    let tickets: Vec<_> = (0..WORKERS)
        .map(|w| p.submit_count("path(X, Y)", Some(w)))
        .collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), 16, "all workers agree on the answers");
    }
    p.join();
    assert_eq!(p.store().len(), 1, "one shared copy of path(X,Y)");
    let m = p.metrics();
    let publishes = m.get(Counter::SharedTablePublishes);
    let hits = m.get(Counter::SharedTableHits);
    let misses = m.get(Counter::TableMisses);
    assert_eq!(publishes, 1, "exactly one worker publishes");
    // every worker either computed (miss) or imported (shared hit)
    assert_eq!(hits + misses, WORKERS as u64);
    assert!(misses >= 1);
}

/// A reader that imported a table keeps serving its local copy even after
/// the store evicts or invalidates the shared frame — the `Arc` keeps the
/// arena alive, which is the no-torn-read guarantee at the arena level.
#[test]
fn imported_arena_outlives_store_eviction() {
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0)][..]);
    let f = coherent_frame(1, &key, 500, 4, 0);
    assert!(store.publish(f));
    let held = store.probe(1, &key).unwrap();
    store.invalidate_preds(&[1]);
    assert!(store.probe(1, &key).is_none(), "store side is gone");
    assert_coherent(&held); // the reader's view is untouched
}
