//! Thread-interleaving tests for the pool-shared table store.
//!
//! The store's safety argument is structural — frames are immutable and
//! `Arc`-held, so a reader observes a whole frame or no frame — but these
//! tests drive the claim with real racing threads, barrier-coordinated so
//! the contended window is exercised on every run: warm hits racing an
//! epoch bump never see a half-invalidated frame, and N workers racing
//! the same cold query dedup to exactly one shared table.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use xsb_core::cell::Cell;
use xsb_core::engine_pool::{PoolConfig, ServerPool};
use xsb_core::shared::{SharedFrame, SharedTableStore};
use xsb_obs::Counter;

/// A frame whose payload makes internal consistency checkable: `n`
/// answers, answer `i` holding the cells `[tag, tag + i]`. A torn or
/// half-written frame would break the arithmetic relation between spans
/// and cells.
fn coherent_frame(pred: u32, key: &[Cell], tag: i64, n: usize, epoch: u64) -> Arc<SharedFrame> {
    let mut cells = Vec::with_capacity(n * 2);
    let mut spans = Vec::with_capacity(n);
    for i in 0..n {
        spans.push((cells.len() as u32, 2));
        cells.push(Cell::int(tag));
        cells.push(Cell::int(tag + i as i64));
    }
    Arc::new(SharedFrame::new(
        pred,
        Arc::from(key),
        1,
        true,
        0,
        vec![1],
        Arc::from(&cells[..]),
        spans,
        epoch,
    ))
}

/// Asserts the full payload invariant of [`coherent_frame`].
fn assert_coherent(f: &SharedFrame) {
    assert!(!f.spans.is_empty(), "published frames have answers");
    let tag = f.cells[0].int_value();
    for (i, &(off, len)) in f.spans.iter().enumerate() {
        assert_eq!(len, 2);
        let seq = &f.cells[off as usize..(off + len) as usize];
        assert_eq!(seq[0].int_value(), tag, "answer {i}: tag half");
        assert_eq!(seq[1].int_value(), tag + i as i64, "answer {i}: index half");
    }
}

/// Readers hammer `probe` while a writer loops publish → invalidate on
/// the same variant. Every successful probe must return an internally
/// coherent frame — seeing the *old* or the *new* table is fine, seeing a
/// mixture or a partially-removed frame is not. The barrier lines all
/// threads up so every iteration races inside the contended window.
#[test]
fn warm_hits_racing_epoch_bumps_see_whole_frames_only() {
    const READERS: usize = 4;
    const MIN_ROUNDS: usize = 200;
    const MAX_ROUNDS: usize = 200_000;
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0)][..]);
    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let start = Arc::new(Barrier::new(READERS + 1));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let store = store.clone();
        let key = key.clone();
        let stop = stop.clone();
        let hits = hits.clone();
        let start = start.clone();
        readers.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                if let Some(f) = store.probe(7, &key) {
                    assert_coherent(&f);
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    start.wait();
    // each round publishes a differently-tagged table, then rips it out
    // from under the readers via the epoch bump; keep racing until the
    // readers provably overlapped a live frame (self-pacing, so the test
    // is not timing-sensitive on single-core machines)
    for round in 0..MAX_ROUNDS {
        let epoch = store.epoch();
        let f = coherent_frame(7, &key, (round as i64 + 1) * 1000, 5, epoch);
        assert!(store.publish(f), "writer is the only publisher");
        std::thread::yield_now(); // give a reader the live-frame window
        store.invalidate_preds(&[7]);
        if round + 1 >= MIN_ROUNDS && hits.load(Ordering::Relaxed) > 0 {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap(); // propagates any coherence assertion failure
    }
    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "readers never overlapped a live frame"
    );
    assert!(store.is_empty());
}

/// N threads race to publish the same variant. Exactly one wins; probes
/// during and after the race always return the winner's payload, so a
/// subgoal is never represented by answers from two computations.
#[test]
fn concurrent_publishes_of_one_variant_dedup_to_first_winner() {
    const WRITERS: usize = 8;
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0), Cell::int(3)][..]);
    let start = Arc::new(Barrier::new(WRITERS));
    let published: Vec<bool> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            let key = key.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let f = coherent_frame(2, &key, (w as i64 + 1) * 100, 3, 0);
                start.wait();
                store.publish(f)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    assert_eq!(
        published.iter().filter(|&&p| p).count(),
        1,
        "first publisher wins, every other computation is discarded"
    );
    let f = store.probe(2, &key).expect("the winner's table serves");
    assert_coherent(&f);
    assert_eq!(store.len(), 1);
    assert_eq!(store.total_cells(), 6, "loser cells are not leaked");
}

/// Pool-level cold-start race: every worker gets the same query at once.
/// The claim/wait protocol guarantees exactly ONE worker computes — the
/// first claimant — while every other worker parks and imports the
/// published frame. No duplicated cold work, pool-wide.
#[test]
fn cold_query_race_across_workers_dedups_in_the_store() {
    const WORKERS: usize = 4;
    let p = ServerPool::new(
        r#"
        :- table path/2.
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,4). edge(4,1).
        "#,
        PoolConfig {
            workers: WORKERS,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    // pin one copy of the same cold query to every worker, submitted
    // before any can finish: all race the claim
    let tickets: Vec<_> = (0..WORKERS)
        .map(|w| p.submit_count("path(X, Y)", Some(w)))
        .collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), 16, "all workers agree on the answers");
    }
    p.join();
    assert_eq!(p.store().len(), 1, "one shared copy of path(X,Y)");
    let m = p.metrics();
    assert_eq!(
        m.get(Counter::SharedTablePublishes),
        1,
        "exactly one worker publishes"
    );
    assert_eq!(
        m.get(Counter::TableMisses),
        1,
        "exactly one worker computes — the claim/wait protocol parks the rest"
    );
    assert_eq!(
        m.get(Counter::SharedTableHits),
        (WORKERS - 1) as u64,
        "every losing racer imports the claimant's published table"
    );
    assert_eq!(m.get(Counter::SharedClaims), 1, "one claim granted");
}

/// Stress the claim/wait protocol: many distinct cold goals, each
/// submitted to every worker, in a deterministically scrambled order so
/// claim/park/publish/import interleave across goals. Each goal must be
/// computed exactly once pool-wide, and nothing may hang (the ci.sh
/// watchdog turns a claim/wait deadlock into a hard failure).
#[test]
fn scrambled_cold_goals_each_compute_once_pool_wide() {
    const WORKERS: usize = 6;
    const NODES: usize = 12; // a 12-cycle: path(k,X) has 12 answers
    let mut program = String::from(
        ":- table path/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n",
    );
    for k in 1..=NODES {
        program.push_str(&format!("edge({},{}).\n", k, k % NODES + 1));
    }
    let p = ServerPool::new(
        &program,
        PoolConfig {
            workers: WORKERS,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    // every (goal, worker) pair, Fisher-Yates-scrambled by a fixed LCG so
    // the submit order is adversarial but reproducible
    let mut jobs: Vec<(usize, usize)> = (1..=NODES)
        .flat_map(|k| (0..WORKERS).map(move |w| (k, w)))
        .collect();
    let mut seed: u64 = 0x5DEECE66D;
    for i in (1..jobs.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        jobs.swap(i, (seed >> 33) as usize % (i + 1));
    }
    let tickets: Vec<_> = jobs
        .iter()
        .map(|&(k, w)| p.submit_count(&format!("path({k}, X)"), Some(w)))
        .collect();
    for t in tickets {
        assert_eq!(
            t.wait().unwrap(),
            NODES,
            "every goal reaches the full cycle"
        );
    }
    p.join();
    assert_eq!(p.store().len(), NODES, "one shared frame per goal");
    let m = p.metrics();
    assert_eq!(
        m.get(Counter::TableMisses),
        NODES as u64,
        "each goal computed exactly once pool-wide"
    );
    assert_eq!(m.get(Counter::SharedTablePublishes), NODES as u64);
    assert_eq!(
        m.get(Counter::SharedTableHits),
        (NODES * (WORKERS - 1)) as u64,
        "every non-claimant serves every goal by import"
    );
}

/// With the claim-wait timeout forced to zero, losers of a claim race
/// never park: they fall back to local computation immediately (the
/// stuck-claimant escape hatch, exercised deterministically at the store
/// level in `shared::tests`). Whatever the interleaving, the cold-path
/// outcome identity must hold and the store still dedups to one frame.
#[test]
fn zero_wait_timeout_falls_back_to_local_compute() {
    const WORKERS: usize = 4;
    let p = ServerPool::new(
        r#"
        :- table path/2.
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,4). edge(4,1).
        "#,
        PoolConfig {
            workers: WORKERS,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    p.store().set_claim_wait_timeout(std::time::Duration::ZERO);
    let tickets: Vec<_> = (0..WORKERS)
        .map(|w| p.submit_count("path(X, Y)", Some(w)))
        .collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), 16, "fallback answers are correct");
    }
    p.join();
    assert_eq!(p.store().len(), 1, "duplicate publishes still dedup");
    let m = p.metrics();
    let claims = m.get(Counter::SharedClaims);
    let fallbacks = m.get(Counter::ClaimFallbacks);
    let hits = m.get(Counter::SharedTableHits);
    let misses = m.get(Counter::TableMisses);
    assert_eq!(m.get(Counter::SharedTablePublishes), 1);
    // every worker's cold call resolves exactly one way: granted the
    // claim, served a published frame, or timed out into local compute
    assert_eq!(claims + fallbacks + hits, WORKERS as u64);
    assert_eq!(
        misses,
        claims + fallbacks,
        "each claim or fallback computes"
    );
    assert_eq!(m.get(Counter::ClaimWaits), 0, "zero timeout never parks");
}

/// A reader that imported a table keeps serving its local copy even after
/// the store evicts or invalidates the shared frame — the `Arc` keeps the
/// arena alive, which is the no-torn-read guarantee at the arena level.
#[test]
fn imported_arena_outlives_store_eviction() {
    let store = Arc::new(SharedTableStore::new());
    let key: Arc<[Cell]> = Arc::from(&[Cell::tvar(0)][..]);
    let f = coherent_frame(1, &key, 500, 4, 0);
    assert!(store.publish(f));
    let held = store.probe(1, &key).unwrap();
    store.invalidate_preds(&[1]);
    assert!(store.probe(1, &key).is_none(), "store side is gone");
    assert_coherent(&held); // the reader's view is untouched
}
