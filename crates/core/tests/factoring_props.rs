//! Property tests for substitution-factored answer tables: the factored
//! store plus the direct-binding return path must round-trip any answer
//! back to a variant of the original instantiated call, under both table
//! indexes and with the unfactored-baseline expansion agreeing cell for
//! cell with a directly canonicalized full tuple.

// Property tests require the external `proptest` crate, which the
// offline sandbox cannot fetch. Re-add the dev-dependency and enable
// the `proptest` feature to run these.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::rc::Rc;
use xsb_core::cell::{Cell, Tag};
use xsb_core::machine::{Freeze, Machine, NONE};
use xsb_core::table::{canon_root_spans, GenMode, TableIndex, TableSpace};
use xsb_core::Engine;
use xsb_syntax::{SymbolTable, Term};

/// Strategy for terms with shared variables (pool 0..3), depth <= 6.
fn ast_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(Term::Var),
        (0i64..50).prop_map(Term::Int),
        // fixed symbol pool: syms 100..104 are interned in with_machine
        (100u32..104).prop_map(|s| Term::Atom(xsb_syntax::Sym(s))),
    ];
    leaf.prop_recursive(5, 24, 3, |inner| {
        (100u32..104, proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::Compound(xsb_syntax::Sym(f), args))
    })
}

fn with_space<R>(index: TableIndex, f: impl FnOnce(&mut Machine) -> R) -> R {
    let mut syms = SymbolTable::new();
    while syms.len() < 105 {
        syms.intern(&format!("s{}", syms.len()));
    }
    let mut db = xsb_core::program::Program::new(&mut syms);
    let mut tables = TableSpace::with_index(index);
    let mut m = Machine::new(&mut db, &mut tables);
    f(&mut m)
}

/// The round-trip core: load a two-argument call with shared variables,
/// instantiate its distinct variables from `bindings`, store the factored
/// answer in a real subgoal frame, undo the instantiation, then replay
/// the answer through the direct-binding return path and check the call
/// is a variant of the original instance (equal canonical forms).
fn roundtrip(index: TableIndex, t1: &Term, t2: &Term, bindings: &[Term]) -> Result<(), String> {
    with_space(index, |m| {
        let mut vm = Vec::new();
        let a1 = m.term_to_heap(t1, &mut vm);
        let a2 = m.term_to_heap(t2, &mut vm); // shared varmap: shared vars
        let mut var_addrs = Vec::new();
        let call_canon = m.canonicalize(&[a1, a2], &mut var_addrs);
        let nvars = var_addrs.len();
        let sub = m.tables.new_subgoal(
            0,
            std::sync::Arc::from(call_canon.as_ref()),
            var_addrs.clone(),
            Rc::from(&[][..]),
            GenMode::Positive,
            Freeze::default(),
            NONE,
        );

        // instantiate the call's distinct variables (answer terms may
        // themselves contain — possibly shared — variables)
        let mark = m.tip;
        let mut bvm = Vec::new();
        for (i, &addr) in var_addrs.iter().enumerate() {
            let b = if bindings.is_empty() {
                Cell::int(i as i64)
            } else {
                m.term_to_heap(&bindings[i % bindings.len()], &mut bvm)
            };
            if !m.unify(Cell::r#ref(addr as usize), b) {
                return Err("binding an unbound call variable cannot fail".into());
            }
        }
        let mut ev = Vec::new();
        let expected = m.canonicalize(&[a1, a2], &mut ev);

        // store the factored answer (what new_answer does)
        let roots: Vec<Cell> = var_addrs.iter().map(|&a| Cell::r#ref(a as usize)).collect();
        let mut av = Vec::new();
        let ans = m.canonicalize(&roots, &mut av);
        if !m.tables.add_answer(sub, &ans) {
            return Err("first insertion is new".into());
        }
        if m.tables.add_answer(sub, &ans) {
            return Err("second insertion is a duplicate".into());
        }
        if !m.tables.has_answer(sub, &ans) {
            return Err("stored answer is findable".into());
        }

        // the unfactored expansion (template with bindings spliced in)
        // must equal the directly canonicalized full tuple, cell for cell
        let mut spans = Vec::new();
        canon_root_spans(&ans, nvars, &mut spans);
        let mut expanded: Vec<Cell> = Vec::new();
        for &c in call_canon.iter() {
            if c.tag() == Tag::TVar {
                let (o, l) = spans[c.tvar_index()];
                expanded.extend_from_slice(&ans[o as usize..(o + l) as usize]);
            } else {
                expanded.push(c);
            }
        }
        if expanded.as_slice() != expected.as_ref() {
            return Err(format!(
                "expansion {expanded:?} != direct canonical {expected:?}"
            ));
        }

        // undo the instantiation, then replay the stored answer through
        // the zero-copy return path: bind each saved variable address
        // directly against the factored cells
        m.unwind_to(mark);
        let stored = m.tables.frame(sub).store.get(0).to_vec();
        let mut tvars = Vec::new();
        let mut pos = 0usize;
        for &addr in &var_addrs {
            if !m.unify_canon_one(&stored, &mut pos, &mut tvars, Cell::r#ref(addr as usize)) {
                return Err("returning a stored answer to its own call cannot fail".into());
            }
        }
        if pos != stored.len() {
            return Err(format!("answer cells not fully consumed: {pos}"));
        }
        let mut rv = Vec::new();
        let rebound = m.canonicalize(&[a1, a2], &mut rv);
        if rebound != expected {
            return Err(format!("rebound {rebound:?} != expected {expected:?}"));
        }
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Factored store → direct-binding return rebinds the call to a
    /// variant of the original instance, under the hash index.
    #[test]
    fn factored_roundtrip_hash(
        t1 in ast_term(),
        t2 in ast_term(),
        bs in proptest::collection::vec(ast_term(), 0..4),
    ) {
        prop_assert_eq!(roundtrip(TableIndex::Hash, &t1, &t2, &bs), Ok(()));
    }

    /// Same round trip under the trie index (store = index = one walk).
    #[test]
    fn factored_roundtrip_trie(
        t1 in ast_term(),
        t2 in ast_term(),
        bs in proptest::collection::vec(ast_term(), 0..4),
    ) {
        prop_assert_eq!(roundtrip(TableIndex::Trie, &t1, &t2, &bs), Ok(()));
    }

    /// End to end: on random edge relations, a tabled transitive closure
    /// computes the same answer set in all four store configurations
    /// (factored/unfactored x hash/trie) and never stores more cells
    /// factored than unfactored.
    #[test]
    fn query_results_agree_across_store_configs(
        edges in proptest::collection::vec((0i64..6, 0i64..6), 1..14),
    ) {
        let mut src = String::from(
            ":- table path/2.\npath(X,Y) :- path(X,Z), edge(Z,Y).\npath(X,Y) :- edge(X,Y).\n",
        );
        for (a, b) in &edges {
            src.push_str(&format!("edge({a},{b}).\n"));
        }
        let mut expected: Option<usize> = None;
        let mut cells: Vec<(bool, u64)> = Vec::new();
        for factored in [true, false] {
            for index in [TableIndex::Hash, TableIndex::Trie] {
                let mut e = Engine::new();
                e.set_table_index(index);
                e.set_answer_factoring(factored);
                e.consult(&src).unwrap();
                let n = e.count("path(0, X)").unwrap();
                match expected {
                    None => expected = Some(n),
                    Some(want) => prop_assert_eq!(
                        n, want,
                        "factored={} index={:?}", factored, index
                    ),
                }
                cells.push((factored, e.tables.answer_store_cells()));
            }
        }
        // per index kind, factored never stores more than unfactored
        for i in 0..2 {
            let (_, fac) = cells[i];
            let (_, unfac) = cells[i + 2];
            prop_assert!(fac <= unfac, "factored {} > unfactored {}", fac, unfac);
        }
    }
}
