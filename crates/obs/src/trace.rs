//! Structured SLG event tracing: a bounded ring buffer of typed events.
//!
//! The emulator emits one event per interesting SLG transition (subgoal
//! call, answer insert, suspension, resumption, SCC completion, backtrack).
//! The ring keeps the most recent `capacity` events; older ones are
//! overwritten and counted in `dropped`, so a long run reports both the
//! tail of the trace and how much was truncated.
//!
//! Cost when disabled is a single branch: hot paths check
//! [`EventRing::enabled`] (a plain bool) before constructing the event.

/// One typed SLG transition. Ids are engine-level indices: `pred` is a
/// predicate id, `subgoal` a subgoal-frame index, `consumer` a
/// consumer-frame index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlgEvent {
    /// A tabled call created a new generator (new subgoal `subgoal` of
    /// predicate `pred`).
    SubgoalCall { pred: u32, subgoal: u32 },
    /// Answer number `answer` added to `subgoal`'s table.
    NewAnswer { subgoal: u32, answer: u32 },
    /// An answer for `subgoal` was suppressed by the check/insert.
    DuplicateAnswer { subgoal: u32 },
    /// Consumer `consumer` of `subgoal` suspended (environment frozen).
    Suspend { subgoal: u32, consumer: u32 },
    /// Consumer `consumer` of `subgoal` scheduled to consume new answers.
    Resume { subgoal: u32, consumer: u32 },
    /// The SCC led by `leader` completed with `members` subgoals.
    CompleteScc { leader: u32, members: u32 },
    /// A negative literal on `subgoal` suspended awaiting completion.
    NegSuspend { subgoal: u32 },
    /// A suspended negative literal on `subgoal` resumed.
    NegResume { subgoal: u32 },
    /// The scheduler took a backtrack step (`depth` = choice-point stack
    /// depth after the step).
    Backtrack { depth: u32 },
    /// Tables of predicate `pred` were invalidated because a dynamic
    /// predicate they depend on changed (or a manual abolish ran).
    TableInvalidated { pred: u32 },
    /// Completed table `subgoal` was evicted to stay under the
    /// table-space memory budget.
    TableEvicted { subgoal: u32 },
}

impl SlgEvent {
    /// Event-type tag, used for filtering and JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            SlgEvent::SubgoalCall { .. } => "subgoal_call",
            SlgEvent::NewAnswer { .. } => "new_answer",
            SlgEvent::DuplicateAnswer { .. } => "duplicate_answer",
            SlgEvent::Suspend { .. } => "suspend",
            SlgEvent::Resume { .. } => "resume",
            SlgEvent::CompleteScc { .. } => "complete_scc",
            SlgEvent::NegSuspend { .. } => "neg_suspend",
            SlgEvent::NegResume { .. } => "neg_resume",
            SlgEvent::Backtrack { .. } => "backtrack",
            SlgEvent::TableInvalidated { .. } => "table_invalidated",
            SlgEvent::TableEvicted { .. } => "table_evicted",
        }
    }
}

pub const DEFAULT_CAPACITY: usize = 4096;

/// Bounded ring buffer of [`SlgEvent`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    /// Fast-path flag checked by the emulator before building an event.
    pub enabled: bool,
    buf: Vec<SlgEvent>,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    capacity: usize,
    dropped: u64,
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing {
            enabled: false,
            buf: Vec::new(),
            start: 0,
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }
    }
}

impl EventRing {
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity: capacity.max(1),
            ..EventRing::default()
        }
    }

    /// Records an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, e: SlgEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SlgEvent> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }

    /// Number of currently buffered events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (buffered + dropped).
    pub fn total(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Drops buffered events and the dropped count; keeps `enabled` and
    /// the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }

    /// Resizes the ring, discarding any buffered events.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(depth: u32) -> SlgEvent {
        SlgEvent::Backtrack { depth }
    }

    #[test]
    fn fills_then_truncates_oldest_first() {
        let mut r = EventRing::new(4);
        for i in 0..4 {
            r.push(bt(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        // two more overwrite the two oldest
        r.push(bt(4));
        r.push(bt(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total(), 6);
        let got: Vec<u32> = r
            .events()
            .map(|e| match e {
                SlgEvent::Backtrack { depth } => *depth,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_repeatedly_and_keeps_order() {
        let mut r = EventRing::new(3);
        for i in 0..100 {
            r.push(bt(i));
        }
        assert_eq!(r.dropped(), 97);
        let got: Vec<u32> = r
            .events()
            .map(|e| match e {
                SlgEvent::Backtrack { depth } => *depth,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![97, 98, 99]);
    }

    #[test]
    fn clear_preserves_config() {
        let mut r = EventRing::new(2);
        r.enabled = true;
        r.push(bt(0));
        r.push(bt(1));
        r.push(bt(2));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.enabled);
        assert_eq!(r.capacity(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(bt(1));
        r.push(bt(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            SlgEvent::SubgoalCall {
                pred: 0,
                subgoal: 0,
            },
            SlgEvent::NewAnswer {
                subgoal: 0,
                answer: 0,
            },
            SlgEvent::DuplicateAnswer { subgoal: 0 },
            SlgEvent::Suspend {
                subgoal: 0,
                consumer: 0,
            },
            SlgEvent::Resume {
                subgoal: 0,
                consumer: 0,
            },
            SlgEvent::CompleteScc {
                leader: 0,
                members: 0,
            },
            SlgEvent::NegSuspend { subgoal: 0 },
            SlgEvent::NegResume { subgoal: 0 },
            SlgEvent::Backtrack { depth: 0 },
            SlgEvent::TableInvalidated { pred: 0 },
            SlgEvent::TableEvicted { subgoal: 0 },
        ];
        let mut kinds: Vec<&str> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
