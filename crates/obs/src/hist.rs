//! Log2-bucketed latency histograms.
//!
//! A [`Histogram`] keeps 64 power-of-two buckets: bucket 0 holds the
//! values 0 and 1, bucket `i` (i ≥ 1) the range `[2^(i-1), 2^i)` — wide
//! enough for nanosecond latencies up to centuries with a fixed 512-byte
//! footprint and an O(1) branch-free `record`. Quantiles interpolate
//! linearly inside the covering bucket and are clamped to the observed
//! `[min, max]`, so the relative error is bounded by the bucket width
//! (a factor of two) and is usually much smaller.
//!
//! Histograms are plain counters: they merge by bucketwise addition
//! (associative and commutative, the pool-aggregation requirement) and
//! subtract by bucketwise saturating difference ([`Histogram::diff`],
//! used by the bench harness to carve per-phase distributions out of
//! cumulative snapshots).

use crate::json::Json;

/// Number of log2 buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0 and 1, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - v.leading_zeros()) as usize - 1
    }
}

/// Inclusive `[lo, hi]` range a bucket covers.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else if i == BUCKETS - 1 {
        (1u64 << i, u64::MAX)
    } else {
        (1u64 << i, (1u64 << (i + 1)) - 1)
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the value below which a `q`
    /// fraction of the samples fall, interpolated within its log2 bucket
    /// and clamped to the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // 1-based rank of the requested sample
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_range(i);
                // position of the rank inside this bucket, in [0, 1]
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).clamp(self.min(), self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucketwise addition — associative, commutative, with the empty
    /// histogram as identity. The pool-level aggregation primitive.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// The samples recorded in `self` but not in the (earlier) snapshot
    /// `earlier` — bucketwise saturating subtraction. Exact for the
    /// buckets and count; `min`/`max` are re-derived from the surviving
    /// bucket bounds (the per-sample extremes are not recoverable).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
            out.count += out.buckets[i];
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        for i in 0..BUCKETS {
            if out.buckets[i] > 0 {
                let (lo, hi) = bucket_range(i);
                if lo < out.min {
                    out.min = lo;
                }
                if hi > out.max {
                    out.max = hi.min(self.max);
                }
            }
        }
        out
    }

    /// Zeroes all samples.
    pub fn reset(&mut self) {
        *self = Histogram::default();
    }

    /// `{count, sum, min, max, mean, p50, p95, p99}` summary object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("min", Json::Int(self.min() as i64)),
            ("max", Json::Int(self.max as i64)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Int(self.p50() as i64)),
            ("p95", Json::Int(self.p95() as i64)),
            ("p99", Json::Int(self.p99() as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        // every bucket's range maps back to that bucket
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        let j = h.to_json().to_string();
        assert!(Json::parse(&j).is_ok());
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777, "q={q}");
        }
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn quantiles_on_known_uniform_distribution() {
        // 1..=1000 once each: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990, within
        // one log2 bucket's interpolation error
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        assert!((400..=600).contains(&p50), "p50={p50}");
        let p95 = h.p95();
        assert!((880..=1000).contains(&p95), "p95={p95}");
        let p99 = h.p99();
        assert!((920..=1000).contains(&p99), "p99={p99}");
        // monotone in q
        assert!(h.quantile(0.1) <= p50 && p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.quantile(1.0));
    }

    #[test]
    fn bimodal_distribution_p99_sees_the_tail() {
        // 99 fast samples at 100ns, 1 slow at 1ms: p50 stays in the fast
        // mode's bucket, p99+ reaches the slow one
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(h.p50() < 200, "p50={}", h.p50());
        assert!(h.quantile(1.0) >= 524_288, "tail={}", h.quantile(1.0));
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[100, 200]);
        let c = mk(&[7]);
        // (a+b)+c
        let mut l = a.clone();
        l.merge(&b);
        l.merge(&c);
        // a+(b+c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut r = a.clone();
        r.merge(&bc);
        assert_eq!(l.buckets, r.buckets);
        assert_eq!(l.count(), r.count());
        assert_eq!(l.sum(), r.sum());
        assert_eq!(l.min(), r.min());
        assert_eq!(l.max(), r.max());
        assert_eq!(l.count(), 6);
        // identity
        let mut i = a.clone();
        i.merge(&Histogram::new());
        assert_eq!(i.buckets, a.buckets);
        assert_eq!(i.min(), a.min());
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.buckets, a.buckets);
        assert_eq!(e.max(), a.max());
    }

    #[test]
    fn diff_recovers_a_phase() {
        let mut before = Histogram::new();
        for v in [10, 20, 30] {
            before.record(v);
        }
        let mut after = before.clone();
        for v in [1000, 2000, 4000, 8000] {
            after.record(v);
        }
        let phase = after.diff(&before);
        assert_eq!(phase.count(), 4);
        assert!(phase.p50() >= 1000, "p50={}", phase.p50());
        assert!(phase.max() >= 8000);
        // diff against itself is empty
        let zero = after.diff(&after);
        assert!(zero.is_empty());
        assert_eq!(zero.p99(), 0);
    }

    #[test]
    fn json_summary_round_trips() {
        let mut h = Histogram::new();
        for v in [3, 3, 3, 50, 700] {
            h.record(v);
        }
        let j = Json::parse(&h.to_json().to_string()).unwrap();
        assert_eq!(j.get("count"), Some(&Json::Int(5)));
        assert_eq!(j.get("min"), Some(&Json::Int(3)));
        assert_eq!(j.get("max"), Some(&Json::Int(700)));
        assert!(j.get("p50").is_some() && j.get("p99").is_some());
    }
}
