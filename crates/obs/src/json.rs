//! A tiny in-tree JSON value: writer plus a minimal parser.
//!
//! Just enough for machine-readable bench export (objects, arrays,
//! strings, integers, floats, booleans, null) with correct string
//! escaping. The parser exists so tests — and future tooling — can
//! round-trip what the writer emits without an external crate.

use std::fmt;

/// A JSON value. Object fields keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    // NaN/inf are not valid JSON number tokens
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (used by tests and tooling; not a
    /// full-compliance validator, but strict enough to reject malformed
    /// output).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                loop {
                    self.skip_ws();
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(xs));
                        }
                        _ => return Err(format!("bad array at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // scan a run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_values() {
        let v = Json::obj([
            ("name", Json::str("path/2")),
            ("n", Json::Int(2048)),
            ("ms", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("n"), Some(&Json::Int(2048)));
        assert_eq!(
            back.get("rows"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }

    #[test]
    fn escapes_special_characters() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::Arr(vec![]).to_string(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string(), "{}");
    }
}
