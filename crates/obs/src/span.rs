//! Span-based query tracing: a bounded arena of timed spans forming a
//! per-query tree, exportable as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! The engine opens a `query` span per query; the emulator hangs
//! `subgoal`, `complete`, and `import` spans under it, and the engine
//! adds `sync`/`publish` phases around the shared-store traffic. Spans
//! carry the predicate id, subgoal index, and the answer count observed
//! when the span closed.
//!
//! The arena is bounded: once `capacity` spans are recorded, further
//! `begin`s return [`NO_SPAN`] and are counted in `dropped` (ends on
//! `NO_SPAN` are no-ops), so a runaway trace degrades to truncation,
//! never to unbounded memory. Like the event ring, the disabled cost is
//! a single branch on [`SpanArena::enabled`].

use crate::json::Json;
use std::time::Instant;

/// Sentinel span id: returned when disabled or at capacity.
pub const NO_SPAN: u32 = u32::MAX;

/// Sentinel for "no predicate" / "no subgoal" on a span.
pub const NO_ID: u32 = u32::MAX;

/// Default span-arena capacity (spans per trace session).
pub const DEFAULT_SPAN_CAPACITY: usize = 16384;

/// One timed span. `dur_ns == u64::MAX` marks a still-open span.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Span kind: `query`, `subgoal`, `complete`, `import`, `sync`,
    /// `publish`.
    pub name: &'static str,
    /// Predicate id, or [`NO_ID`].
    pub pred: u32,
    /// Subgoal-frame index, or [`NO_ID`].
    pub subgoal: u32,
    /// Answers observed when the span closed (span-kind specific: table
    /// answers for `subgoal`/`import`, solutions for `query`, SCC members
    /// for `complete`, tables moved for `sync`/`publish`).
    pub answers: u32,
    /// Parent span index in the arena, or [`NO_SPAN`] for roots.
    pub parent: u32,
    /// Start offset from the arena epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; `u64::MAX` while open.
    pub dur_ns: u64,
}

impl Span {
    pub fn is_open(&self) -> bool {
        self.dur_ns == u64::MAX
    }
}

/// Bounded arena of [`Span`]s plus the open-span bookkeeping.
#[derive(Debug, Clone)]
pub struct SpanArena {
    /// Fast-path flag checked before any span work.
    pub enabled: bool,
    spans: Vec<Span>,
    /// Stack of open *nesting* spans (query/sync/publish phases).
    stack: Vec<u32>,
    /// Open subgoal spans `(subgoal, span id)` — subgoals overlap freely,
    /// so they live outside the nesting stack.
    open_subgoals: Vec<(u32, u32)>,
    capacity: usize,
    dropped: u64,
    epoch: Instant,
}

impl Default for SpanArena {
    fn default() -> SpanArena {
        SpanArena {
            enabled: false,
            spans: Vec::new(),
            stack: Vec::new(),
            open_subgoals: Vec::new(),
            capacity: DEFAULT_SPAN_CAPACITY,
            dropped: 0,
            epoch: Instant::now(),
        }
    }
}

impl SpanArena {
    pub fn new(capacity: usize) -> SpanArena {
        SpanArena {
            capacity: capacity.max(1),
            ..SpanArena::default()
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn alloc(&mut self, name: &'static str, pred: u32, subgoal: u32, parent: u32) -> u32 {
        if !self.enabled {
            return NO_SPAN;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return NO_SPAN;
        }
        let id = self.spans.len() as u32;
        let start_ns = self.now_ns();
        self.spans.push(Span {
            name,
            pred,
            subgoal,
            answers: 0,
            parent,
            start_ns,
            dur_ns: u64::MAX,
        });
        id
    }

    /// Opens a nesting span (child of the innermost open one) and makes
    /// it the current parent for subsequent spans.
    pub fn begin(&mut self, name: &'static str, pred: u32) -> u32 {
        let parent = self.stack.last().copied().unwrap_or(NO_SPAN);
        let id = self.alloc(name, pred, NO_ID, parent);
        if id != NO_SPAN {
            self.stack.push(id);
        }
        id
    }

    /// Closes a nesting span opened by [`SpanArena::begin`].
    pub fn end(&mut self, id: u32, answers: u32) {
        if id == NO_SPAN {
            return;
        }
        let now = self.now_ns();
        if let Some(s) = self.spans.get_mut(id as usize) {
            s.dur_ns = now.saturating_sub(s.start_ns);
            s.answers = answers;
        }
        self.stack.retain(|&x| x != id);
    }

    /// Opens a leaf span under the current parent without making it the
    /// parent of later spans (overlapping subgoal evaluations).
    pub fn begin_subgoal(&mut self, pred: u32, subgoal: u32) {
        let parent = self.stack.last().copied().unwrap_or(NO_SPAN);
        let id = self.alloc("subgoal", pred, subgoal, parent);
        if id != NO_SPAN {
            self.open_subgoals.push((subgoal, id));
        }
    }

    /// Closes the open subgoal span for `subgoal`, recording its answer
    /// count. No-op if the subgoal has no open span.
    pub fn end_subgoal(&mut self, subgoal: u32, answers: u32) {
        if let Some(pos) = self.open_subgoals.iter().position(|&(s, _)| s == subgoal) {
            let (_, id) = self.open_subgoals.swap_remove(pos);
            let now = self.now_ns();
            if let Some(s) = self.spans.get_mut(id as usize) {
                s.dur_ns = now.saturating_sub(s.start_ns);
                s.answers = answers;
            }
        }
    }

    /// Closes every still-open subgoal span (the query ended before its
    /// SCC completed — e.g. an early-stopped or failed query).
    pub fn end_open_subgoals(&mut self) {
        let now = self.now_ns();
        for &(_, id) in &self.open_subgoals {
            if let Some(s) = self.spans.get_mut(id as usize) {
                s.dur_ns = now.saturating_sub(s.start_ns);
            }
        }
        self.open_subgoals.clear();
    }

    /// Records an already-measured leaf span (used when the caller timed
    /// the operation itself, e.g. a shared-table import).
    pub fn record(
        &mut self,
        name: &'static str,
        pred: u32,
        subgoal: u32,
        dur_ns: u64,
        answers: u32,
    ) {
        let parent = self.stack.last().copied().unwrap_or(NO_SPAN);
        if !self.enabled {
            return;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let end = self.now_ns();
        self.spans.push(Span {
            name,
            pred,
            subgoal,
            answers,
            parent,
            start_ns: end.saturating_sub(dur_ns),
            dur_ns,
        });
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans rejected because the arena was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Drops recorded spans and the dropped count; keeps `enabled`, the
    /// capacity, and the time epoch.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.stack.clear();
        self.open_subgoals.clear();
        self.dropped = 0;
    }

    /// Resizes the arena, discarding recorded spans.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.clear();
    }

    /// Chrome trace-event JSON for every recorded span: an object with a
    /// `traceEvents` array of `ph:"X"` (complete) events, timestamps in
    /// microseconds — the format Perfetto and `chrome://tracing` load
    /// directly. `pred_name` maps predicate ids to display names (`None`
    /// falls back to the numeric id). Open spans are exported with zero
    /// duration. Nesting spans share track 0; overlapping subgoal spans
    /// are spread over a bounded set of sibling tracks.
    pub fn chrome_trace(&self, mut pred_name: impl FnMut(u32) -> Option<String>) -> Json {
        let mut events = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let label = if s.pred == NO_ID {
                s.name.to_string()
            } else {
                match pred_name(s.pred) {
                    Some(p) => format!("{} {}", s.name, p),
                    None => format!("{} pred#{}", s.name, s.pred),
                }
            };
            let tid = if s.name == "subgoal" || s.name == "import" {
                1 + (s.subgoal % 32) as i64
            } else {
                0
            };
            let dur = if s.is_open() { 0 } else { s.dur_ns };
            let mut args = vec![("answers".to_string(), Json::Int(s.answers as i64))];
            if s.pred != NO_ID {
                args.push(("pred".to_string(), Json::Int(s.pred as i64)));
            }
            if s.subgoal != NO_ID {
                args.push(("subgoal".to_string(), Json::Int(s.subgoal as i64)));
            }
            if s.parent != NO_SPAN {
                args.push(("parent".to_string(), Json::Int(s.parent as i64)));
            }
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(label)),
                ("cat".to_string(), Json::str("slg")),
                ("ph".to_string(), Json::str("X")),
                ("ts".to_string(), Json::Num(s.start_ns as f64 / 1000.0)),
                ("dur".to_string(), Json::Num(dur as f64 / 1000.0)),
                ("pid".to_string(), Json::Int(0)),
                ("tid".to_string(), Json::Int(tid)),
                ("args".to_string(), Json::Obj(args)),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ns")),
            ("spanCount", Json::Int(self.spans.len() as i64)),
            ("spansDropped", Json::Int(self.dropped as i64)),
        ])
    }

    /// Indented text rendering of the span tree rooted at `root` — the
    /// slow-query log format. Children are the spans recorded after
    /// `root` whose parent chain reaches it.
    pub fn render_tree(
        &self,
        root: u32,
        mut pred_name: impl FnMut(u32) -> Option<String>,
    ) -> String {
        let mut out = String::new();
        if (root as usize) >= self.spans.len() {
            return out;
        }
        // children lists for the slice from root onward
        let base = root as usize;
        let n = self.spans.len() - base;
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = vec![0]; // root itself, base-relative
        for (rel, s) in self.spans[base..].iter().enumerate().skip(1) {
            if s.parent != NO_SPAN && (s.parent as usize) >= base {
                children[s.parent as usize - base].push(rel);
            } else {
                roots.push(rel);
            }
        }
        let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|r| (r, 0)).collect();
        while let Some((rel, depth)) = stack.pop() {
            let s = &self.spans[base + rel];
            let label = if s.pred == NO_ID {
                s.name.to_string()
            } else {
                match pred_name(s.pred) {
                    Some(p) => format!("{} {}", s.name, p),
                    None => format!("{} pred#{}", s.name, s.pred),
                }
            };
            let dur = if s.is_open() {
                "open".to_string()
            } else {
                format!("{:.3}ms", s.dur_ns as f64 / 1e6)
            };
            out.push_str(&format!(
                "{:indent$}{label} [{dur}] answers={}\n",
                "",
                s.answers,
                indent = depth * 2
            ));
            for &c in children[rel].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_arena(cap: usize) -> SpanArena {
        let mut a = SpanArena::new(cap);
        a.enabled = true;
        a
    }

    #[test]
    fn disabled_records_nothing() {
        let mut a = SpanArena::new(8);
        let q = a.begin("query", NO_ID);
        assert_eq!(q, NO_SPAN);
        a.begin_subgoal(1, 0);
        a.record("import", 1, 0, 100, 2);
        a.end(q, 0);
        assert!(a.is_empty());
        assert_eq!(a.dropped(), 0);
    }

    #[test]
    fn builds_a_query_tree() {
        let mut a = enabled_arena(64);
        let q = a.begin("query", NO_ID);
        a.begin_subgoal(7, 0);
        a.begin_subgoal(7, 1);
        a.end_subgoal(1, 3);
        a.end_subgoal(0, 5);
        let p = a.begin("publish", NO_ID);
        a.end(p, 1);
        a.end(q, 8);
        assert_eq!(a.len(), 4);
        let spans = a.spans();
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].parent, NO_SPAN);
        assert!(!spans[0].is_open());
        assert_eq!(spans[0].answers, 8);
        // both subgoals and the publish phase hang off the query
        assert!(spans[1..].iter().all(|s| s.parent == q));
        assert_eq!(spans[1].answers, 5);
        assert_eq!(spans[2].answers, 3);
        assert_eq!(spans[3].name, "publish");
    }

    #[test]
    fn capacity_bounds_the_arena() {
        let mut a = enabled_arena(2);
        let q = a.begin("query", NO_ID);
        a.begin_subgoal(1, 0);
        a.begin_subgoal(1, 1); // over capacity
        a.record("import", 1, 2, 10, 0); // over capacity
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 2);
        a.end_subgoal(1, 0); // never recorded: no-op
        a.end(q, 0);
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.dropped(), 0);
        assert!(a.enabled, "clear keeps config");
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn end_open_subgoals_closes_strays() {
        let mut a = enabled_arena(16);
        let q = a.begin("query", NO_ID);
        a.begin_subgoal(3, 0);
        a.begin_subgoal(3, 1);
        a.end_open_subgoals();
        a.end(q, 0);
        assert!(a.spans().iter().all(|s| !s.is_open()));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let mut a = enabled_arena(16);
        let q = a.begin("query", NO_ID);
        a.begin_subgoal(2, 0);
        a.end_subgoal(0, 4);
        a.end(q, 4);
        let j = a.chrome_trace(|p| Some(format!("pred{p}")));
        let text = j.to_string();
        let parsed = Json::parse(&text).expect("valid chrome trace JSON");
        match parsed.get("traceEvents") {
            Some(Json::Arr(events)) => {
                assert_eq!(events.len(), 2);
                for e in events {
                    assert_eq!(e.get("ph"), Some(&Json::str("X")));
                    assert!(e.get("ts").is_some() && e.get("dur").is_some());
                }
                assert_eq!(events[1].get("name"), Some(&Json::str("subgoal pred2")));
            }
            other => panic!("expected traceEvents array, got {other:?}"),
        }
    }

    #[test]
    fn render_tree_indents_children() {
        let mut a = enabled_arena(16);
        let q = a.begin("query", NO_ID);
        a.begin_subgoal(5, 0);
        a.end_subgoal(0, 2);
        a.end(q, 2);
        let text = a.render_tree(q, |_| Some("win/1".to_string()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("query ["), "{text}");
        assert!(lines[1].starts_with("  subgoal win/1 ["), "{text}");
        assert!(lines[1].contains("answers=2"), "{text}");
    }
}
