//! Emulator opcode profiler: per-opcode and adjacent-opcode-pair
//! execution counts.
//!
//! The dispatch loop feeds one small integer per instruction into
//! [`OpcodeProfile::record`]; the profile keeps a flat count per opcode
//! and a 64×64 matrix of adjacent pairs (`prev → current`), the input a
//! dispatch-flattening / superinstruction pass needs: the hottest pairs
//! are the fusion candidates.
//!
//! The profiler is off by default. When off, the emulator's cost is one
//! predicted branch per instruction; when on, two array increments. The
//! crate is opcode-agnostic — callers pass a name table (the emulator's
//! `Instr` mnemonics) at report/export time.

use crate::json::Json;

/// Maximum opcode index (exclusive); indices are masked to this range.
pub const MAX_OPCODES: usize = 64;

/// Sentinel "no previous opcode" marker.
const NO_OP: u8 = u8::MAX;

/// Per-opcode and adjacent-pair execution counts.
#[derive(Debug, Clone)]
pub struct OpcodeProfile {
    /// Fast-path flag checked by the dispatch loop.
    pub enabled: bool,
    counts: Vec<u64>,
    /// Row-major `prev * MAX_OPCODES + cur` pair counts.
    pairs: Vec<u64>,
    prev: u8,
}

impl Default for OpcodeProfile {
    fn default() -> OpcodeProfile {
        OpcodeProfile {
            enabled: false,
            counts: vec![0; MAX_OPCODES],
            pairs: vec![0; MAX_OPCODES * MAX_OPCODES],
            prev: NO_OP,
        }
    }
}

impl OpcodeProfile {
    pub fn new() -> OpcodeProfile {
        OpcodeProfile::default()
    }

    /// Counts one dispatched instruction and the `prev → op` pair.
    #[inline]
    pub fn record(&mut self, op: u8) {
        let cur = (op as usize) & (MAX_OPCODES - 1);
        self.counts[cur] += 1;
        if self.prev != NO_OP {
            self.pairs[(self.prev as usize) * MAX_OPCODES + cur] += 1;
        }
        self.prev = cur as u8;
    }

    /// Breaks the pair chain (call between queries so the last opcode of
    /// one query does not pair with the first of the next).
    pub fn break_chain(&mut self) {
        self.prev = NO_OP;
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    pub fn count(&self, op: u8) -> u64 {
        self.counts
            .get((op as usize) & (MAX_OPCODES - 1))
            .copied()
            .unwrap_or(0)
    }

    pub fn pair_count(&self, prev: u8, cur: u8) -> u64 {
        let p = (prev as usize) & (MAX_OPCODES - 1);
        let c = (cur as usize) & (MAX_OPCODES - 1);
        self.pairs[p * MAX_OPCODES + c]
    }

    /// Opcode indices with nonzero counts, hottest first.
    pub fn top_opcodes(&self, n: usize) -> Vec<(u8, u64)> {
        let mut v: Vec<(u8, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Adjacent pairs with nonzero counts, hottest first.
    pub fn top_pairs(&self, n: usize) -> Vec<(u8, u8, u64)> {
        let mut v: Vec<(u8, u8, u64)> = self
            .pairs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| ((i / MAX_OPCODES) as u8, (i % MAX_OPCODES) as u8, c))
            .collect();
        v.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        v.truncate(n);
        v
    }

    /// Zeroes counts and the pair chain; keeps `enabled`.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.pairs.iter_mut().for_each(|c| *c = 0);
        self.prev = NO_OP;
    }

    /// Folds another profile into this one (pool aggregation).
    pub fn merge(&mut self, other: &OpcodeProfile) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        for (a, b) in self.pairs.iter_mut().zip(other.pairs.iter()) {
            *a += b;
        }
    }

    fn name_of<'n>(names: &'n [&'n str], op: u8) -> &'n str {
        names.get(op as usize).copied().unwrap_or("?")
    }

    /// Human-readable report: hottest opcodes, then hottest pairs — the
    /// body of the `profile/0` builtin.
    pub fn report(&self, names: &[&str]) -> String {
        let total = self.total();
        let mut s = format!("opcode profile ({total} instructions):\n");
        if total == 0 {
            s.push_str("  (empty — enable with set_profiling(on))\n");
            return s;
        }
        for (op, c) in self.top_opcodes(20) {
            s.push_str(&format!(
                "  {:<18} {:>12}  {:5.1}%\n",
                Self::name_of(names, op),
                c,
                c as f64 * 100.0 / total as f64
            ));
        }
        s.push_str("hottest adjacent pairs:\n");
        for (a, b, c) in self.top_pairs(15) {
            s.push_str(&format!(
                "  {:<18} -> {:<18} {:>12}\n",
                Self::name_of(names, a),
                Self::name_of(names, b),
                c
            ));
        }
        s
    }

    /// JSON export: total, per-opcode counts, and the hottest adjacent
    /// pairs (the harness `--json` payload feeding the dispatch-
    /// flattening work).
    pub fn to_json(&self, names: &[&str]) -> Json {
        let opcodes = self
            .top_opcodes(MAX_OPCODES)
            .into_iter()
            .map(|(op, c)| {
                Json::Obj(vec![
                    ("op".to_string(), Json::str(Self::name_of(names, op))),
                    ("count".to_string(), Json::Int(c as i64)),
                ])
            })
            .collect();
        let pairs = self
            .top_pairs(32)
            .into_iter()
            .map(|(a, b, c)| {
                Json::Obj(vec![
                    ("first".to_string(), Json::str(Self::name_of(names, a))),
                    ("second".to_string(), Json::str(Self::name_of(names, b))),
                    ("count".to_string(), Json::Int(c as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("total", Json::Int(self.total() as i64)),
            ("opcodes", Json::Arr(opcodes)),
            ("pairs", Json::Arr(pairs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

    #[test]
    fn counts_opcodes_and_adjacent_pairs() {
        let mut p = OpcodeProfile::new();
        for op in [0u8, 1, 0, 1, 2] {
            p.record(op);
        }
        assert_eq!(p.total(), 5);
        assert_eq!(p.count(0), 2);
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 1);
        assert_eq!(p.pair_count(0, 1), 2);
        assert_eq!(p.pair_count(1, 0), 1);
        assert_eq!(p.pair_count(1, 2), 1);
        assert_eq!(p.pair_count(2, 0), 0);
        assert_eq!(p.top_pairs(1), vec![(0, 1, 2)]);
        assert_eq!(p.top_opcodes(1)[0].1, 2);
    }

    #[test]
    fn break_chain_stops_cross_boundary_pairs() {
        let mut p = OpcodeProfile::new();
        p.record(0);
        p.break_chain();
        p.record(1);
        assert_eq!(p.pair_count(0, 1), 0);
        assert_eq!(p.total(), 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_enabled() {
        let mut p = OpcodeProfile::new();
        p.enabled = true;
        p.record(2);
        p.record(2);
        p.reset();
        assert!(p.is_empty());
        assert_eq!(p.pair_count(2, 2), 0);
        assert!(p.enabled, "reset must preserve the toggle");
        // the chain is broken too: no pair with the pre-reset opcode
        p.record(1);
        assert_eq!(p.pair_count(2, 1), 0);
    }

    #[test]
    fn merge_sums_counts_and_pairs() {
        let mut a = OpcodeProfile::new();
        a.record(0);
        a.record(1);
        let mut b = OpcodeProfile::new();
        b.record(0);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.pair_count(0, 1), 2);
        assert_eq!(a.pair_count(1, 1), 1);
    }

    #[test]
    fn report_and_json_surface_names() {
        let mut p = OpcodeProfile::new();
        for op in [0u8, 1, 1, 2] {
            p.record(op);
        }
        let r = p.report(&NAMES);
        assert!(r.contains("beta"), "{r}");
        assert!(r.contains("->"), "{r}");
        let j = p.to_json(&NAMES);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("total"), Some(&Json::Int(4)));
        match parsed.get("opcodes") {
            Some(Json::Arr(ops)) => assert_eq!(ops.len(), 3),
            other => panic!("expected opcodes array, got {other:?}"),
        }
        match parsed.get("pairs") {
            Some(Json::Arr(ps)) => assert!(!ps.is_empty()),
            other => panic!("expected pairs array, got {other:?}"),
        }
    }

    #[test]
    fn empty_profile_reports_emptiness() {
        let p = OpcodeProfile::new();
        assert!(p.is_empty());
        assert!(p.report(&NAMES).contains("empty"));
        let j = p.to_json(&NAMES);
        assert_eq!(j.get("total"), Some(&Json::Int(0)));
    }
}
