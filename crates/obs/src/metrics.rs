//! Metrics registry: monotonic counters, high-water gauges, and
//! monotonic-clock timers.
//!
//! Counters are plain `u64` fields bumped inline on the emulator's hot
//! paths (a register increment, no atomics — the machine is single-
//! threaded), enumerated by [`Counter`] so report/JSON/`statistics/2`
//! share one name table. Gauges track a current value plus a high-water
//! mark that never regresses. Timers accumulate monotonic elapsed time via
//! [`Stopwatch`].

use crate::hist::Histogram;
use crate::json::Json;
use crate::profile::OpcodeProfile;
use std::time::Instant;

/// Machine-wide monotonic counters. The discriminant order defines the
/// report order; `NAMES` must stay in sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Abstract-machine instructions dispatched.
    Instructions,
    /// Predicate calls (tabled and non-tabled) entering `dispatch`.
    Calls,
    /// Top-level unification operations.
    Unifications,
    /// Bindings recorded on the (forward) trail.
    TrailOps,
    /// Choice points pushed.
    ChoicePoints,
    /// Backtracks taken (choice-point retries/pops).
    Backtracks,
    /// New tabled subgoals created (generator check/insert inserts).
    SubgoalsCreated,
    /// Answers added to answer tables.
    AnswersRecorded,
    /// Answers suppressed as duplicates by the answer check/insert.
    DuplicateAnswers,
    /// Consumer suspensions (environment frozen awaiting answers).
    ConsumerSuspensions,
    /// Consumer resumptions (scheduled to consume new answers).
    ConsumerResumptions,
    /// Strongly-connected components completed.
    SccCompletions,
    /// Subgoals marked complete (across all completed SCCs).
    SubgoalsCompleted,
    /// Negative literals delayed/suspended awaiting completion.
    NegationSuspends,
    /// Delayed negative literals simplified/resumed after completion.
    NegationResumes,
    /// Completed tables reused by a later query (cross-query warm hits).
    TableHits,
    /// Tabled calls that had to build a fresh subgoal (cold misses).
    TableMisses,
    /// Subgoal frames invalidated by assert/retract dependency tracking
    /// or by a manual `abolish_table_pred/1` / `abolish_table_call/1`.
    TableInvalidations,
    /// Completed tables evicted to stay under the table-space budget.
    TableEvictions,
    /// Cells actually stored for new answers under substitution
    /// factoring (bindings of the call's distinct variables only).
    AnswerCellsFactored,
    /// Cells the same answers would occupy as full argument tuples
    /// (call skeleton re-expanded at every variable occurrence).
    AnswerCellsFull,
    /// Cells saved by substitution factoring (`full - factored`).
    AnswerCellsSaved,
    /// Tabled calls answered by importing a completed table from the
    /// pool's shared store (cross-worker warm hits).
    SharedTableHits,
    /// Completed tables this engine promoted into the shared store.
    SharedTablePublishes,
    /// Predicates invalidated in (or synced out of) the shared store.
    SharedTableInvalidations,
    /// In-progress claims acquired on cold shared subgoals (this worker
    /// elected itself the one computing the table pool-wide).
    SharedClaims,
    /// Times a worker parked on another worker's in-progress claim
    /// instead of duplicating the computation.
    ClaimWaits,
    /// Parked waits that ended without an importable frame (bounded wait
    /// expired or the claimant released without publishing) — the worker
    /// fell back to computing the table locally.
    ClaimFallbacks,
    /// WAL records appended (begin/commit/abort, assert/retract images,
    /// consult text, checkpoints).
    WalAppends,
    /// WAL fsyncs issued (commit-point durability barriers).
    WalFsyncs,
    /// Commits made durable by group-commit fsyncs, cumulatively — the
    /// average batch size is `group_commit_batch / wal_fsyncs`.
    GroupCommitBatch,
    /// WAL records re-applied by crash recovery / restart replay.
    RecoveryReplayed,
    /// TCP client connections accepted by the network server.
    NetConnections,
    /// Wire requests received (query/count/consult frames).
    NetRequests,
    /// Requests rejected with a typed `Busy` by admission control.
    NetRejections,
    /// Connections dropped for a wire-protocol violation (bad magic,
    /// oversized frame, truncated payload, unknown opcode).
    NetProtocolErrors,
}

impl Counter {
    pub const COUNT: usize = 36;

    /// `statistics/2` keys, in report order.
    pub const NAMES: [&'static str; Counter::COUNT] = [
        "instructions",
        "calls",
        "unifications",
        "trail_ops",
        "choice_points",
        "backtracks",
        "subgoals_created",
        "answers_recorded",
        "duplicate_answers",
        "consumer_suspensions",
        "consumer_resumptions",
        "scc_completions",
        "subgoals_completed",
        "negation_suspends",
        "negation_resumes",
        "table_hits",
        "table_misses",
        "table_invalidations",
        "table_evictions",
        "answer_cells_factored",
        "answer_cells_full",
        "answer_cells_saved",
        "shared_table_hits",
        "shared_table_publishes",
        "shared_table_invalidations",
        "shared_claims",
        "claim_waits",
        "claim_fallbacks",
        "wal_appends",
        "wal_fsyncs",
        "group_commit_batch",
        "recovery_replayed",
        "net_connections",
        "net_requests",
        "net_rejections",
        "net_protocol_errors",
    ];

    pub fn name(self) -> &'static str {
        Counter::NAMES[self as usize]
    }
}

/// A gauge: current value plus a never-regressing high-water mark.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    pub current: u64,
    pub high_water: u64,
}

impl Gauge {
    /// Sets the current value, raising the high-water mark if exceeded.
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.current = v;
        if v > self.high_water {
            self.high_water = v;
        }
    }

    /// Raises the high-water mark without touching the current value
    /// (for sampling a peak mid-operation).
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.high_water {
            self.high_water = v;
        }
    }
}

/// Accumulated monotonic time plus a start count.
#[derive(Default, Debug, Clone, Copy)]
pub struct Timer {
    pub nanos: u64,
    pub count: u64,
}

impl Timer {
    pub fn record(&mut self, sw: Stopwatch) {
        self.nanos += sw.elapsed_nanos();
        self.count += 1;
    }

    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// A running monotonic-clock measurement; feed it back to [`Timer::record`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Per-predicate counters, indexed by the engine's predicate id.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredCounters {
    pub calls: u64,
    pub subgoals: u64,
}

/// The machine-wide metrics registry.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: [u64; Counter::COUNT],
    /// Heap arena length (cells).
    pub heap: Gauge,
    /// Choice-point stack depth (frames).
    pub choice_points: Gauge,
    /// Trail length (entries).
    pub trail: Gauge,
    /// Environment-frame arena length (slots).
    pub frames: Gauge,
    /// Accumulated query evaluation time.
    pub query_time: Timer,
    /// Per-query wall-time distribution (nanoseconds).
    pub query_latency: Histogram,
    /// Pool worker: submit-to-dequeue wait per job (nanoseconds).
    pub queue_wait: Histogram,
    /// Pool worker: job execution time (nanoseconds).
    pub run_time: Histogram,
    /// Shared store: per-call publish latency (nanoseconds).
    pub shared_publish: Histogram,
    /// Shared store: per-table import latency (nanoseconds).
    pub shared_import: Histogram,
    /// Shared store: per-call sync latency (nanoseconds).
    pub shared_sync: Histogram,
    /// Shared store: time parked on another worker's in-progress claim
    /// (nanoseconds).
    pub claim_wait: Histogram,
    /// Durability: append+sync latency per commit point (nanoseconds) —
    /// auto-commit mutations and explicit `commit_transaction/0`.
    pub commit_latency: Histogram,
    /// Network server: request wall time on the wire side — frame decode
    /// to completion frame written (nanoseconds).
    pub wire_latency: Histogram,
    /// Emulator opcode profiler (off by default; [`Metrics::reset`]
    /// preserves the toggle).
    pub profile: OpcodeProfile,
    /// Per-predicate counters, indexed by predicate id (grown on demand).
    pub per_pred: Vec<PredCounters>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            counters: [0; Counter::COUNT],
            heap: Gauge::default(),
            choice_points: Gauge::default(),
            trail: Gauge::default(),
            frames: Gauge::default(),
            query_time: Timer::default(),
            query_latency: Histogram::default(),
            queue_wait: Histogram::default(),
            run_time: Histogram::default(),
            shared_publish: Histogram::default(),
            shared_import: Histogram::default(),
            shared_sync: Histogram::default(),
            claim_wait: Histogram::default(),
            commit_latency: Histogram::default(),
            wire_latency: Histogram::default(),
            profile: OpcodeProfile::default(),
            per_pred: Vec::new(),
        }
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bumps a machine-wide counter.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Adds `n` to a machine-wide counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Records a call of predicate `pred` (machine-wide + per-predicate).
    #[inline]
    pub fn count_call(&mut self, pred: usize) {
        self.counters[Counter::Calls as usize] += 1;
        if pred >= self.per_pred.len() {
            self.per_pred.resize(pred + 1, PredCounters::default());
        }
        self.per_pred[pred].calls += 1;
    }

    /// Records a new tabled subgoal of predicate `pred`.
    #[inline]
    pub fn count_subgoal(&mut self, pred: usize) {
        self.counters[Counter::SubgoalsCreated as usize] += 1;
        if pred >= self.per_pred.len() {
            self.per_pred.resize(pred + 1, PredCounters::default());
        }
        self.per_pred[pred].subgoals += 1;
    }

    pub fn pred(&self, pred: usize) -> PredCounters {
        self.per_pred.get(pred).copied().unwrap_or_default()
    }

    /// All scalar entries (counters, then gauge high-waters and currents,
    /// then timer totals), as `statistics/2` key/value pairs in report
    /// order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Counter::NAMES
            .iter()
            .zip(self.counters.iter())
            .map(|(&n, &v)| (n, v))
            .collect();
        out.push(("heap_high_water", self.heap.high_water));
        out.push(("cp_high_water", self.choice_points.high_water));
        out.push(("trail_high_water", self.trail.high_water));
        out.push(("frame_high_water", self.frames.high_water));
        out.push(("query_time_ns", self.query_time.nanos));
        out.push(("queries", self.query_time.count));
        for (name_p50, name_p99, h) in self.histograms() {
            out.push((name_p50, h.p50()));
            out.push((name_p99, h.p99()));
        }
        out
    }

    /// The latency histograms with their `statistics/2` p50/p99 key
    /// names, in report order.
    fn histograms(&self) -> [(&'static str, &'static str, &Histogram); 9] {
        [
            ("query_p50_ns", "query_p99_ns", &self.query_latency),
            ("queue_wait_p50_ns", "queue_wait_p99_ns", &self.queue_wait),
            ("run_p50_ns", "run_p99_ns", &self.run_time),
            (
                "shared_publish_p50_ns",
                "shared_publish_p99_ns",
                &self.shared_publish,
            ),
            (
                "shared_import_p50_ns",
                "shared_import_p99_ns",
                &self.shared_import,
            ),
            (
                "shared_sync_p50_ns",
                "shared_sync_p99_ns",
                &self.shared_sync,
            ),
            ("claim_wait_p50_ns", "claim_wait_p99_ns", &self.claim_wait),
            ("commit_p50_ns", "commit_p99_ns", &self.commit_latency),
            ("wire_p50_ns", "wire_p99_ns", &self.wire_latency),
        ]
    }

    /// Full histogram summaries as a JSON object (count/min/max/mean and
    /// the p50/p95/p99 points per distribution).
    pub fn histograms_json(&self) -> Json {
        Json::obj([
            ("query_latency", self.query_latency.to_json()),
            ("queue_wait", self.queue_wait.to_json()),
            ("run_time", self.run_time.to_json()),
            ("shared_publish", self.shared_publish.to_json()),
            ("shared_import", self.shared_import.to_json()),
            ("shared_sync", self.shared_sync.to_json()),
            ("claim_wait", self.claim_wait.to_json()),
            ("commit_latency", self.commit_latency.to_json()),
            ("wire_latency", self.wire_latency.to_json()),
        ])
    }

    /// Looks up a scalar entry by its `statistics/2` key.
    pub fn lookup(&self, key: &str) -> Option<u64> {
        self.entries()
            .into_iter()
            .find(|&(n, _)| n == key)
            .map(|(_, v)| v)
    }

    /// Human-readable report, the body of `statistics/0`.
    pub fn report(&self) -> String {
        let mut s = String::from("SLG-WAM statistics:\n");
        for (name, v) in self.entries() {
            s.push_str(&format!("  {name:<22} {v}\n"));
        }
        s
    }

    /// JSON object with every scalar entry.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries()
                .into_iter()
                .map(|(n, v)| (n.to_string(), Json::Int(v as i64)))
                .collect(),
        )
    }

    /// Zeroes everything, including per-predicate counters and high-water
    /// marks. Configuration toggles (the opcode profiler's `enabled`
    /// flag) survive the reset — a reset must not silently disable
    /// profiling the user turned on.
    pub fn reset(&mut self) {
        let profiling = self.profile.enabled;
        *self = Metrics::default();
        self.profile.enabled = profiling;
    }

    /// Folds another registry into this one — the pool-wide aggregation
    /// over per-worker snapshots. Counters, timers, histograms, opcode
    /// profiles, and per-predicate counts are summed; gauges keep the
    /// maximum (each worker has its own stacks, so a sum would not
    /// describe any real machine).
    pub fn merge(&mut self, other: &Metrics) {
        for i in 0..Counter::COUNT {
            self.counters[i] += other.counters[i];
        }
        for (g, o) in [
            (&mut self.heap, &other.heap),
            (&mut self.choice_points, &other.choice_points),
            (&mut self.trail, &other.trail),
            (&mut self.frames, &other.frames),
        ] {
            g.current = g.current.max(o.current);
            g.high_water = g.high_water.max(o.high_water);
        }
        self.query_time.nanos += other.query_time.nanos;
        self.query_time.count += other.query_time.count;
        self.query_latency.merge(&other.query_latency);
        self.queue_wait.merge(&other.queue_wait);
        self.run_time.merge(&other.run_time);
        self.shared_publish.merge(&other.shared_publish);
        self.shared_import.merge(&other.shared_import);
        self.shared_sync.merge(&other.shared_sync);
        self.claim_wait.merge(&other.claim_wait);
        self.commit_latency.merge(&other.commit_latency);
        self.wire_latency.merge(&other.wire_latency);
        self.profile.merge(&other.profile);
        if other.per_pred.len() > self.per_pred.len() {
            self.per_pred
                .resize(other.per_pred.len(), PredCounters::default());
        }
        for (p, o) in self.per_pred.iter_mut().zip(other.per_pred.iter()) {
            p.calls += o.calls;
            p.subgoals += o.subgoals;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_and_report() {
        let mut m = Metrics::new();
        m.bump(Counter::Instructions);
        m.bump(Counter::Instructions);
        m.bump(Counter::Backtracks);
        assert_eq!(m.get(Counter::Instructions), 2);
        assert_eq!(m.lookup("instructions"), Some(2));
        assert_eq!(m.lookup("backtracks"), Some(1));
        assert_eq!(m.lookup("no_such_key"), None);
        assert!(m.report().contains("instructions"));
    }

    #[test]
    fn gauge_high_water_never_regresses() {
        let mut g = Gauge::default();
        g.set(10);
        g.set(3);
        assert_eq!(g.current, 3);
        assert_eq!(g.high_water, 10);
        g.observe(42);
        assert_eq!(g.current, 3);
        assert_eq!(g.high_water, 42);
        g.observe(7);
        assert_eq!(g.high_water, 42);
    }

    #[test]
    fn per_pred_counters_grow_on_demand() {
        let mut m = Metrics::new();
        m.count_call(5);
        m.count_call(5);
        m.count_subgoal(2);
        assert_eq!(m.pred(5).calls, 2);
        assert_eq!(m.pred(2).subgoals, 1);
        assert_eq!(m.pred(99).calls, 0);
        assert_eq!(m.get(Counter::Calls), 2);
        assert_eq!(m.get(Counter::SubgoalsCreated), 1);
    }

    #[test]
    fn counter_names_match_count() {
        assert_eq!(Counter::NAMES.len(), Counter::COUNT);
        assert_eq!(Counter::NetProtocolErrors as usize, Counter::COUNT - 1);
        assert_eq!(Counter::SubgoalsCreated.name(), "subgoals_created");
        assert_eq!(Counter::TableHits.name(), "table_hits");
        assert_eq!(Counter::AnswerCellsSaved.name(), "answer_cells_saved");
        assert_eq!(Counter::SharedTableHits.name(), "shared_table_hits");
        assert_eq!(Counter::SharedClaims.name(), "shared_claims");
        assert_eq!(Counter::ClaimWaits.name(), "claim_waits");
        assert_eq!(Counter::ClaimFallbacks.name(), "claim_fallbacks");
        assert_eq!(Counter::WalAppends.name(), "wal_appends");
        assert_eq!(Counter::WalFsyncs.name(), "wal_fsyncs");
        assert_eq!(Counter::GroupCommitBatch.name(), "group_commit_batch");
        assert_eq!(Counter::RecoveryReplayed.name(), "recovery_replayed");
        assert_eq!(Counter::NetConnections.name(), "net_connections");
        assert_eq!(Counter::NetRequests.name(), "net_requests");
        assert_eq!(Counter::NetRejections.name(), "net_rejections");
        assert_eq!(Counter::NetProtocolErrors.name(), "net_protocol_errors");
    }

    #[test]
    fn merge_sums_counters_and_keeps_gauge_maxima() {
        let mut a = Metrics::new();
        a.bump(Counter::Calls);
        a.heap.set(100);
        a.count_call(3);
        a.query_time.nanos = 5;
        a.query_time.count = 1;
        let mut b = Metrics::new();
        b.add(Counter::Calls, 2);
        b.bump(Counter::SharedTableHits);
        b.heap.set(40);
        b.count_call(3);
        b.count_call(7);
        b.query_time.nanos = 7;
        b.query_time.count = 2;
        a.merge(&b);
        // a: bump + count_call = 2; b: add(2) + two count_calls = 4
        assert_eq!(a.get(Counter::Calls), 6);
        assert_eq!(a.get(Counter::SharedTableHits), 1);
        assert_eq!(a.heap.high_water, 100);
        assert_eq!(a.pred(3).calls, 2);
        assert_eq!(a.pred(7).calls, 1);
        assert_eq!(a.query_time.nanos, 12);
        assert_eq!(a.query_time.count, 3);
    }

    #[test]
    fn merge_audit_gauges_max_histograms_sum_no_double_reset() {
        // gauge semantics: merge must take the max even when the other
        // side's *current* is lower but its high-water is higher, and
        // vice versa — never last-write-wins
        let mut a = Metrics::new();
        a.heap.set(50); // current 50, hw 50
        a.trail.set(90);
        a.trail.set(10); // current 10, hw 90
        let mut b = Metrics::new();
        b.heap.set(80);
        b.heap.set(5); // current 5, hw 80
        b.trail.set(60); // current 60, hw 60
        a.merge(&b);
        assert_eq!(a.heap.current, 50, "max, not last-write");
        assert_eq!(a.heap.high_water, 80);
        assert_eq!(a.trail.current, 60);
        assert_eq!(a.trail.high_water, 90);

        // histograms and profiles merge by summation
        let mut x = Metrics::new();
        x.query_latency.record(100);
        x.profile.record(1);
        let mut y = Metrics::new();
        y.query_latency.record(5000);
        y.query_latency.record(5000);
        y.profile.record(1);
        y.profile.record(2);
        x.merge(&y);
        assert_eq!(x.query_latency.count(), 3);
        assert_eq!(x.query_latency.max(), 5000);
        assert_eq!(x.profile.count(1), 2);
        assert_eq!(x.profile.pair_count(1, 2), 1);

        // merging a snapshot twice must double the counters (merge takes
        // a borrowed snapshot: it must never reset or consume `other`)
        let mut acc = Metrics::new();
        let mut w = Metrics::new();
        w.bump(Counter::Calls);
        w.query_time.nanos = 10;
        w.query_time.count = 1;
        acc.merge(&w);
        acc.merge(&w);
        assert_eq!(acc.get(Counter::Calls), 2);
        assert_eq!(acc.query_time.nanos, 20);
        assert_eq!(w.get(Counter::Calls), 1, "other side untouched");

        // reset zeroes samples but preserves the profiling toggle
        let mut r = Metrics::new();
        r.profile.enabled = true;
        r.profile.record(3);
        r.query_latency.record(7);
        r.reset();
        assert!(r.profile.is_empty());
        assert!(r.profile.enabled, "reset must not disable profiling");
        assert!(r.query_latency.is_empty());
    }

    #[test]
    fn entries_include_latency_percentiles() {
        let mut m = Metrics::new();
        m.query_latency.record(1000);
        m.query_latency.record(1000);
        assert_eq!(m.lookup("query_p50_ns"), Some(m.query_latency.p50()));
        assert_eq!(m.lookup("query_p99_ns"), Some(m.query_latency.p99()));
        assert_eq!(m.lookup("queue_wait_p50_ns"), Some(0));
        let hj = m.histograms_json().to_string();
        let parsed = Json::parse(&hj).unwrap();
        assert_eq!(
            parsed.get("query_latency").and_then(|h| h.get("count")),
            Some(&Json::Int(2))
        );
    }

    #[test]
    fn timer_accumulates() {
        let mut t = Timer::default();
        let sw = Stopwatch::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record(sw);
        assert_eq!(t.count, 1);
        assert!(t.nanos >= 2_000_000, "{}", t.nanos);
    }

    #[test]
    fn json_snapshot_contains_all_entries() {
        let mut m = Metrics::new();
        m.bump(Counter::Calls);
        let j = m.to_json().to_string();
        let parsed = Json::parse(&j).unwrap();
        match parsed {
            Json::Obj(fields) => {
                assert!(fields
                    .iter()
                    .any(|(k, v)| k == "calls" && *v == Json::Int(1)));
                assert_eq!(fields.len(), m.entries().len());
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
