//! # xsb-obs — dependency-free observability for the SLG-WAM
//!
//! The paper's evaluation (§3, §6) is quantitative: subgoals evaluated,
//! answers recorded, suspensions/resumptions, and time per strategy. Real
//! XSB ships `statistics/0-2` and table-inspection predicates because a
//! tabled engine is undebuggable without them. This crate is the substrate:
//!
//! * [`metrics`] — monotonic counters, gauges with high-water marks, and
//!   monotonic-clock timers ([`metrics::Metrics`]), including per-predicate
//!   call/subgoal counts.
//! * [`trace`] — a bounded ring buffer of typed SLG events
//!   ([`trace::SlgEvent`]) with an `enabled` fast path, so the disabled
//!   cost on the emulator's hot paths is a single branch.
//! * [`json`] — a tiny in-tree JSON value type ([`json::Json`]) with a
//!   writer and a minimal parser, used for machine-readable bench export.
//!
//! Everything is plain `std`; the crate has no dependencies so it can sit
//! below `xsb-core` without entangling the engine.

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Metrics, Stopwatch, Timer};
pub use trace::{EventRing, SlgEvent};

/// The observability bundle a machine carries: metrics plus the event ring.
#[derive(Default, Debug, Clone)]
pub struct Obs {
    pub metrics: Metrics,
    pub trace: EventRing,
}

impl Obs {
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Clears counters, gauges, timers, and buffered events; tracing
    /// configuration (enabled flag, capacity) is preserved.
    pub fn reset(&mut self) {
        self.metrics.reset();
        self.trace.clear();
    }
}
