//! # xsb-obs — dependency-free observability for the SLG-WAM
//!
//! The paper's evaluation (§3, §6) is quantitative: subgoals evaluated,
//! answers recorded, suspensions/resumptions, and time per strategy. Real
//! XSB ships `statistics/0-2` and table-inspection predicates because a
//! tabled engine is undebuggable without them. This crate is the substrate:
//!
//! * [`metrics`] — monotonic counters, gauges with high-water marks,
//!   monotonic-clock timers, and log2-bucketed latency histograms
//!   ([`metrics::Metrics`]), including per-predicate call/subgoal counts.
//! * [`hist`] — the [`hist::Histogram`] itself: 64 power-of-two buckets,
//!   p50/p95/p99 with in-bucket interpolation, associative merge, and
//!   snapshot subtraction for per-phase carving.
//! * [`trace`] — a bounded ring buffer of typed SLG events
//!   ([`trace::SlgEvent`]) with an `enabled` fast path, so the disabled
//!   cost on the emulator's hot paths is a single branch.
//! * [`span`] — span-based query tracing ([`span::SpanArena`]): a bounded
//!   arena of timed spans forming a per-query tree, exportable as Chrome
//!   trace-event JSON for Perfetto and rendered as text for the
//!   slow-query log.
//! * [`profile`] — the emulator opcode profiler
//!   ([`profile::OpcodeProfile`]): per-opcode and adjacent-pair dispatch
//!   counts behind a toggle whose disabled cost is one branch.
//! * [`json`] — a tiny in-tree JSON value type ([`json::Json`]) with a
//!   writer and a minimal parser, used for machine-readable bench export.
//!
//! Everything is plain `std`; the crate has no dependencies so it can sit
//! below `xsb-core` without entangling the engine.

pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use hist::Histogram;
pub use json::Json;
pub use metrics::{Counter, Gauge, Metrics, Stopwatch, Timer};
pub use profile::OpcodeProfile;
pub use span::{Span, SpanArena, NO_ID, NO_SPAN};
pub use trace::{EventRing, SlgEvent};

/// The observability bundle a machine carries: the metrics registry
/// (counters, gauges, timers, histograms, opcode profile), the SLG event
/// ring, the span arena, and the slow-query threshold.
#[derive(Default, Debug, Clone)]
pub struct Obs {
    pub metrics: Metrics,
    pub trace: EventRing,
    pub spans: SpanArena,
    /// Queries whose wall time reaches this threshold get their span tree
    /// dumped to the slow-query log (`None` = disabled).
    pub slow_query_threshold_ns: Option<u64>,
}

impl Obs {
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Clears counters, gauges, timers, histograms, profile samples,
    /// buffered events, and recorded spans; configuration (trace/span
    /// enabled flags and capacities, the profiling toggle, the slow-query
    /// threshold) is preserved.
    pub fn reset(&mut self) {
        self.metrics.reset();
        self.trace.clear();
        self.spans.clear();
    }
}
