//! Property tests for the log2-bucketed histogram: quantiles stay within
//! the recorded range and one bucket of the true order statistic, merge
//! is associative and agrees with recording the concatenation, and
//! `diff` of cumulative snapshots recovers the later phase exactly.

// Property tests require the external `proptest` crate, which the
// offline sandbox cannot fetch. Re-add the dev-dependency and enable
// the `proptest` feature to run these.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use xsb_obs::Histogram;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

/// Samples spanning many buckets: 0 .. ~2^40.
fn sample() -> impl Strategy<Value = u64> {
    (0u64..40).prop_map(|shift| 1u64 << shift).prop_map(|hi| hi)
}

fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..40u64, 0u64..1000u64).prop_map(|(shift, off)| (1u64 << shift).wrapping_add(off)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every quantile lies within [min, max], and quantiles are monotone
    /// in q.
    #[test]
    fn quantiles_bounded_and_monotone(vals in samples(64)) {
        let h = hist_of(&vals);
        if vals.is_empty() {
            prop_assert_eq!(h.p50(), 0);
            prop_assert_eq!(h.p99(), 0);
        } else {
            let lo = *vals.iter().min().unwrap();
            let hi = *vals.iter().max().unwrap();
            let mut prev = 0u64;
            for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
                let v = h.quantile(q);
                prop_assert!(v >= lo && v <= hi, "q={} v={} range=[{},{}]", q, v, lo, hi);
                prop_assert!(v >= prev, "quantile not monotone at q={}", q);
                prev = v;
            }
        }
    }

    /// The estimated quantile is within a factor of two of the true order
    /// statistic (the log2-bucket error bound).
    #[test]
    fn quantile_within_one_bucket_of_truth(vals in samples(64), qi in 1u64..100u64) {
        if vals.is_empty() {
            return Ok(());
        }
        let q = qi as f64 / 100.0;
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        // same log2 bucket ⇒ est/truth ratio < 2 (plus the 0/1 bucket)
        prop_assert!(
            est <= truth.saturating_mul(2).max(1) && truth <= est.saturating_mul(2).max(1),
            "q={} est={} truth={}",
            q, est, truth
        );
    }

    /// merge(a, b) has the same buckets/count/sum/min/max as recording
    /// the concatenated sample stream, and is associative.
    #[test]
    fn merge_agrees_with_concatenation(xs in samples(32), ys in samples(32), zs in samples(16)) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let concat: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        let direct = hist_of(&concat);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
        // associativity: (x+y)+z == x+(y+z) on every observable
        let mut left = hist_of(&xs);
        left.merge(&hist_of(&ys));
        left.merge(&hist_of(&zs));
        let mut yz = hist_of(&ys);
        yz.merge(&hist_of(&zs));
        let mut right = hist_of(&xs);
        right.merge(&yz);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    /// diff(cumulative, earlier) recovers the later phase's buckets:
    /// count and quantiles match a histogram of just the phase samples.
    #[test]
    fn diff_recovers_phase_buckets(phase1 in samples(32), phase2 in samples(32)) {
        let before = hist_of(&phase1);
        let mut after = before.clone();
        for &v in &phase2 {
            after.record(v);
        }
        let diff = after.diff(&before);
        let direct = hist_of(&phase2);
        prop_assert_eq!(diff.count(), direct.count());
        prop_assert_eq!(diff.sum(), direct.sum());
        for q in [0.5, 0.95, 0.99] {
            // same buckets ⇒ same bucket selected; interpolation may
            // differ only through the min/max clamp, which diff bounds
            // by bucket range — allow the factor-of-two bucket width
            let d = diff.quantile(q);
            let t = direct.quantile(q);
            prop_assert!(
                d <= t.saturating_mul(2).max(1) && t <= d.saturating_mul(2).max(1),
                "q={} diff={} direct={}",
                q, d, t
            );
        }
    }

    /// A single sample pins every quantile exactly.
    #[test]
    fn single_sample_is_every_quantile(v in sample()) {
        let h = hist_of(&[v]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(h.quantile(q), v);
        }
    }
}
