//! Stable models from the well-founded residual (paper §3.1 / ref [5]).
//!
//! "In fact the answer clauses (answers conditioned by delays) can be seen
//! as constituting a transformed program from which sets of 3-valued stable
//! models can be computed." The well-founded model fixes the true and
//! false atoms; only the *undefined* atoms are open. This module
//! enumerates the (two-valued) stable models by branching over those
//! residual atoms and checking the Gelfond–Lifschitz fixpoint
//! `M = Γ(M)` — exactly the integration of stable-model computation with
//! query processing that Chen & Warren's companion paper describes.

use crate::ground::GroundProgram;
use std::collections::HashSet;

/// Least model of the reduct of `g` w.r.t. `assumed` (the Γ operator —
/// shared with the alternating fixpoint).
pub(crate) fn gamma(g: &GroundProgram, assumed: &HashSet<u32>) -> HashSet<u32> {
    let mut out: HashSet<u32> = g.facts.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for r in &g.rules {
            if out.contains(&r.head) {
                continue;
            }
            if r.neg.iter().any(|a| assumed.contains(a)) {
                continue;
            }
            if r.pos.iter().all(|a| out.contains(a)) {
                out.insert(r.head);
                changed = true;
            }
        }
    }
    out
}

/// Enumerates the stable models of the ground program, given the
/// well-founded `true_set` and `possible_set` (its complement is false in
/// every stable model). Branches only over the undefined atoms, so the
/// search space is `2^|undefined|` — the well-founded model does the heavy
/// pruning, as [5] intends. `limit` caps the number of undefined atoms
/// (returns `None` when exceeded, rather than exploding).
pub fn stable_models(
    g: &GroundProgram,
    true_set: &HashSet<u32>,
    possible_set: &HashSet<u32>,
    limit: usize,
) -> Option<Vec<HashSet<u32>>> {
    let undefined: Vec<u32> = possible_set
        .iter()
        .copied()
        .filter(|a| !true_set.contains(a))
        .collect();
    if undefined.len() > limit {
        return None;
    }
    let mut models = Vec::new();
    // branch over subsets of the undefined atoms
    for mask in 0u64..(1u64 << undefined.len()) {
        let mut candidate: HashSet<u32> = true_set.clone();
        for (i, &a) in undefined.iter().enumerate() {
            if mask & (1 << i) != 0 {
                candidate.insert(a);
            }
        }
        if gamma(g, &candidate) == candidate {
            models.push(candidate);
        }
    }
    Some(models)
}

#[cfg(test)]
mod tests {
    use crate::Wfs;

    fn models_of(src: &str, pred: &str, arity: u16) -> Vec<Vec<String>> {
        let w = Wfs::new(src).unwrap();
        let mut out = w
            .stable_models(16)
            .expect("few undefined atoms")
            .into_iter()
            .map(|m| {
                let mut v: Vec<String> = m.into_iter().filter(|a| a.starts_with(pred)).collect();
                v.sort();
                v
            })
            .collect::<Vec<_>>();
        let _ = arity;
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn mutual_negation_has_two_stable_models() {
        let models = models_of("p(1) :- tnot q(1).\nq(1) :- tnot p(1).", "", 0);
        // two models: {p(1)} and {q(1)}
        assert_eq!(models.len(), 2);
        assert!(models.contains(&vec!["p(1)".to_string()]));
        assert!(models.contains(&vec!["q(1)".to_string()]));
    }

    #[test]
    fn odd_negative_loop_has_no_stable_model() {
        let models = models_of("p(1) :- tnot p(1).", "", 0);
        assert!(models.is_empty(), "p :- not p has no stable model");
    }

    #[test]
    fn stratified_program_has_exactly_the_wf_model() {
        let models = models_of(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\n\
             edge(1,2). node(1). node(2). node(3).",
            "",
            0,
        );
        assert_eq!(models.len(), 1, "stratified ⇒ unique stable model");
        assert!(models[0].contains(&"unreach(3)".to_string()));
        assert!(!models[0].contains(&"unreach(2)".to_string()));
    }

    #[test]
    fn win_cycle_game_has_alternating_stable_models() {
        let models = models_of(
            "win(X) :- move(X,Y), tnot win(Y).\nmove(1,2). move(2,1).",
            "win",
            1,
        );
        // either 1 wins or 2 wins — each is a consistent stable world
        let wins: Vec<Vec<String>> = models
            .into_iter()
            .map(|m| m.into_iter().filter(|a| a.starts_with("win")).collect())
            .collect();
        assert_eq!(wins.len(), 2);
        assert!(wins.contains(&vec!["win(1)".to_string()]));
        assert!(wins.contains(&vec!["win(2)".to_string()]));
    }

    #[test]
    fn true_atoms_appear_in_every_stable_model() {
        let w = Wfs::new("a(1).\nb(1) :- a(1).\np(1) :- tnot q(1).\nq(1) :- tnot p(1).").unwrap();
        let models = w.stable_models(16).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(m.contains(&"a(1)".to_string()));
            assert!(m.contains(&"b(1)".to_string()));
        }
    }

    #[test]
    fn limit_guards_exponential_blowup() {
        // 20 independent 2-cycles → 2^20 models: refuse politely
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!("p({i}) :- tnot q({i}).\nq({i}) :- tnot p({i}).\n"));
        }
        let w = Wfs::new(&src).unwrap();
        assert!(w.stable_models(16).is_none());
    }
}
