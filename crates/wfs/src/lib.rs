//! # xsb-wfs — well-founded semantics evaluator
//!
//! XSB's engine evaluates modularly stratified programs; for general
//! (non-stratified) programs "a meta-interpreter is provided that has the
//! same properties" and computes the well-founded semantics [21], or
//! equivalently the three-valued stable model semantics [11] (paper §1,
//! §3.1). This crate is that component: it grounds a datalog¬ program over
//! its relevant domain and computes the well-founded model by the
//! alternating fixpoint, giving each atom a truth value of *true*, *false*
//! or *undefined*.
//!
//! ```
//! use xsb_wfs::{Truth, Wfs};
//!
//! // the stalemate game over a pure cycle: both positions are a draw —
//! // undefined in the well-founded model
//! let mut w = Wfs::new(r#"
//!     win(X) :- move(X, Y), tnot win(Y).
//!     move(1, 2). move(2, 1). move(3, 4).
//! "#).unwrap();
//! assert_eq!(w.truth("win(1)").unwrap(), Truth::Undefined);
//! assert_eq!(w.truth("win(2)").unwrap(), Truth::Undefined);
//! assert_eq!(w.truth("win(3)").unwrap(), Truth::True);
//! assert_eq!(w.truth("win(4)").unwrap(), Truth::False);
//! ```

pub mod ground;
pub mod stable;

/// Rebuilds a constant table preserving ids (interning order replays).
pub(crate) fn clone_consts(p: &xsb_datalog::ast::DatalogProgram) -> xsb_datalog::ast::ConstTable {
    let mut t = xsb_datalog::ast::ConstTable::default();
    for i in 0..p.consts.len() {
        let id = t.intern(p.consts.value(i as u32));
        debug_assert_eq!(id, i as u32);
    }
    t
}

use ground::{ground_program, GroundAtom, GroundProgram};
use std::collections::HashSet;
use xsb_datalog::ast::{DatalogProgram, LowerError, Value};
use xsb_syntax::{parse_program, parse_query, Clause, Item, OpTable, SymbolTable, Term};

/// Three-valued truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Truth {
    True,
    False,
    Undefined,
}

/// WFS evaluation errors.
#[derive(Debug)]
pub enum WfsError {
    Parse(xsb_syntax::ParseError),
    Lower(LowerError),
    Other(String),
}

impl std::fmt::Display for WfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfsError::Parse(e) => write!(f, "{e}"),
            WfsError::Lower(e) => write!(f, "{e}"),
            WfsError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WfsError {}

/// The well-founded model of a program.
pub struct Wfs {
    pub syms: SymbolTable,
    ops: OpTable,
    program: DatalogProgram,
    ground: GroundProgram,
    /// well-founded true atoms
    true_set: HashSet<u32>,
    /// atoms possibly true (complement = well-founded false)
    possible_set: HashSet<u32>,
}

impl Wfs {
    /// Parses, grounds and solves the program.
    pub fn new(src: &str) -> Result<Wfs, WfsError> {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).map_err(WfsError::Parse)?;
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                Item::Directive(_) => None,
            })
            .collect();
        let program = DatalogProgram::from_clauses(&clauses).map_err(WfsError::Lower)?;
        let ground = ground_program(&program);
        let (true_set, possible_set) = alternating_fixpoint(&ground);
        Ok(Wfs {
            syms,
            ops,
            program,
            ground,
            true_set,
            possible_set,
        })
    }

    /// Truth value of a ground atom such as `"win(1)"`.
    pub fn truth(&mut self, atom_src: &str) -> Result<Truth, WfsError> {
        let q = parse_query(atom_src, &mut self.syms, &self.ops).map_err(WfsError::Parse)?;
        if q.goals.len() != 1 {
            return Err(WfsError::Other("expected a single atom".into()));
        }
        let goal = &q.goals[0];
        let (f, n) = goal
            .functor()
            .ok_or_else(|| WfsError::Other("expected an atom".into()))?;
        let mut tuple = Vec::with_capacity(n);
        for a in goal.args() {
            let v = match a {
                Term::Int(i) => Value::Int(*i),
                Term::Atom(s) => Value::Atom(*s),
                _ => return Err(WfsError::Other("atom must be ground datalog".into())),
            };
            match self.program.consts.lookup(v) {
                Some(c) => tuple.push(c),
                None => return Ok(Truth::False), // unknown constant
            }
        }
        let atom = GroundAtom {
            pred: (f, n as u16),
            args: tuple,
        };
        Ok(match self.ground.atom_id(&atom) {
            None => Truth::False,
            Some(id) => {
                if self.true_set.contains(&id) {
                    Truth::True
                } else if self.possible_set.contains(&id) {
                    Truth::Undefined
                } else {
                    Truth::False
                }
            }
        })
    }

    /// All atoms of `pred/arity` that are true (resp. undefined) in the
    /// well-founded model, decoded to display strings.
    pub fn extension(&self, pred: &str, arity: u16) -> (Vec<String>, Vec<String>) {
        let Some(s) = self.syms.lookup(pred) else {
            return (Vec::new(), Vec::new());
        };
        let mut t = Vec::new();
        let mut u = Vec::new();
        for (id, atom) in self.ground.atoms() {
            if atom.pred != (s, arity) {
                continue;
            }
            let rendered = format!(
                "{}({})",
                pred,
                atom.args
                    .iter()
                    .map(|&c| self.program.consts.value(c).display(&self.syms))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            if self.true_set.contains(&id) {
                t.push(rendered);
            } else if self.possible_set.contains(&id) {
                u.push(rendered);
            }
        }
        t.sort();
        u.sort();
        (t, u)
    }

    /// Enumerates the (two-valued) stable models by branching over the
    /// well-founded-undefined residual (paper §3.1 / ref [5]); atoms come
    /// back rendered and sorted. Returns `None` when more than `limit`
    /// atoms are undefined (the search is `2^|undefined|`).
    pub fn stable_models(&self, limit: usize) -> Option<Vec<Vec<String>>> {
        let models =
            stable::stable_models(&self.ground, &self.true_set, &self.possible_set, limit)?;
        // render each atom id once
        let mut rendered: Vec<String> = Vec::with_capacity(self.ground.num_atoms());
        for (_, atom) in self.ground.atoms() {
            let args = atom
                .args
                .iter()
                .map(|&c| self.program.consts.value(c).display(&self.syms))
                .collect::<Vec<_>>()
                .join(",");
            let name = self.syms.name(atom.pred.0);
            rendered.push(if args.is_empty() {
                name.to_string()
            } else {
                format!("{name}({args})")
            });
        }
        Some(
            models
                .into_iter()
                .map(|m| {
                    let mut v: Vec<String> = m
                        .into_iter()
                        .map(|id| rendered[id as usize].clone())
                        .collect();
                    v.sort();
                    v
                })
                .collect(),
        )
    }

    /// Counts of (true, undefined) atoms in the model.
    pub fn model_size(&self) -> (usize, usize) {
        (
            self.true_set.len(),
            self.possible_set.len() - self.true_set.len(),
        )
    }
}

/// The alternating fixpoint of Van Gelder: with
/// `Γ(S)` = least model of the reduct of the ground program w.r.t. `S`,
/// iterate `K ← Γ(U); U ← Γ(K)` from `K = ∅, U = Γ(∅)` until both are
/// stable. `K` converges to the true atoms and `U` to the possible atoms
/// (its complement is well-founded false).
fn alternating_fixpoint(g: &GroundProgram) -> (HashSet<u32>, HashSet<u32>) {
    let mut k: HashSet<u32> = HashSet::new();
    let mut u: HashSet<u32> = gamma(g, &k);
    loop {
        let k2 = gamma(g, &u);
        let u2 = gamma(g, &k2);
        if k2 == k && u2 == u {
            return (k, u);
        }
        k = k2;
        u = u2;
    }
}

use stable::gamma;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_program_is_two_valued() {
        let mut w = Wfs::new(
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3). edge(3,1).",
        )
        .unwrap();
        assert_eq!(w.truth("path(1,3)").unwrap(), Truth::True);
        assert_eq!(w.truth("path(1,9)").unwrap(), Truth::False);
        let (_, undef) = w.model_size();
        assert_eq!(undef, 0);
    }

    #[test]
    fn classic_mutual_negation_is_undefined() {
        let mut w = Wfs::new("p(1) :- tnot q(1).\nq(1) :- tnot p(1).").unwrap();
        assert_eq!(w.truth("p(1)").unwrap(), Truth::Undefined);
        assert_eq!(w.truth("q(1)").unwrap(), Truth::Undefined);
    }

    #[test]
    fn stratified_negation_is_two_valued() {
        let mut w = Wfs::new(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\n\
             edge(1,2). node(1). node(2). node(3).",
        )
        .unwrap();
        assert_eq!(w.truth("unreach(3)").unwrap(), Truth::True);
        assert_eq!(w.truth("unreach(2)").unwrap(), Truth::False);
    }

    #[test]
    fn win_on_acyclic_graph_matches_game_theory() {
        let mut w = Wfs::new(
            "win(X) :- move(X,Y), tnot win(Y).\n\
             move(1,2). move(2,3). move(3,4).",
        )
        .unwrap();
        assert_eq!(w.truth("win(1)").unwrap(), Truth::True);
        assert_eq!(w.truth("win(2)").unwrap(), Truth::False);
        assert_eq!(w.truth("win(3)").unwrap(), Truth::True);
        assert_eq!(w.truth("win(4)").unwrap(), Truth::False);
    }

    #[test]
    fn win_on_pure_cycle_is_undefined() {
        let mut w = Wfs::new(
            "win(X) :- move(X,Y), tnot win(Y).\n\
             move(1,2). move(2,1).",
        )
        .unwrap();
        // 1 and 2 chase each other forever: a draw, undefined in WFS
        assert_eq!(w.truth("win(1)").unwrap(), Truth::Undefined);
        assert_eq!(w.truth("win(2)").unwrap(), Truth::Undefined);
    }

    #[test]
    fn escape_from_cycle_decides_the_game() {
        // 2 can escape the cycle to losing node 3, so 2 wins and 1 loses
        let mut w = Wfs::new(
            "win(X) :- move(X,Y), tnot win(Y).\n\
             move(1,2). move(2,1). move(2,3).",
        )
        .unwrap();
        assert_eq!(w.truth("win(2)").unwrap(), Truth::True);
        assert_eq!(w.truth("win(1)").unwrap(), Truth::False);
        assert_eq!(w.truth("win(3)").unwrap(), Truth::False);
    }

    #[test]
    fn undefined_propagates_through_positive_rules() {
        let mut w =
            Wfs::new("p(1) :- tnot q(1).\nq(1) :- tnot p(1).\nr(1) :- p(1).\ns(1) :- r(1), q(1).")
                .unwrap();
        assert_eq!(w.truth("r(1)").unwrap(), Truth::Undefined);
        assert_eq!(w.truth("s(1)").unwrap(), Truth::Undefined);
    }

    #[test]
    fn true_support_beats_undefined() {
        // c has support from a definite source even though a is undefined
        let mut w =
            Wfs::new("a(1) :- tnot b(1).\nb(1) :- tnot a(1).\nc(1) :- a(1).\nc(1) :- t(1).\nt(1).")
                .unwrap();
        assert_eq!(w.truth("c(1)").unwrap(), Truth::True);
    }

    #[test]
    fn extension_lists_true_and_undefined() {
        let w = Wfs::new(
            "win(X) :- move(X,Y), tnot win(Y).\n\
             move(1,2). move(2,1). move(3,4).",
        )
        .unwrap();
        let (t, u) = w.extension("win", 1);
        assert_eq!(t, vec!["win(3)"]);
        assert_eq!(u, vec!["win(1)", "win(2)"]);
    }
}
