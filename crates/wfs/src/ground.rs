//! Relevant grounding of a datalog¬ program.
//!
//! The alternating fixpoint works on a ground program. Grounding the rules
//! over the full Herbrand base is exponential in arity, so we first compute
//! a positive *over-approximation* (drop every negative literal and take
//! the least model: everything possibly true is in it), then instantiate
//! each rule only over substitutions whose positive body holds in the
//! over-approximation. Negative literals whose atom is not even in the
//! over-approximation are certainly true and are dropped.

use std::collections::HashMap;
use xsb_datalog::ast::{Arg, ConstId, DatalogProgram, PredKey, Rule};
use xsb_datalog::seminaive::Evaluator;
use xsb_datalog::stratify::Strata;

/// A ground atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundAtom {
    pub pred: PredKey,
    pub args: Vec<ConstId>,
}

/// A ground rule over atom ids.
#[derive(Clone, Debug)]
pub struct GroundRule {
    pub head: u32,
    pub pos: Vec<u32>,
    pub neg: Vec<u32>,
}

/// The ground program: interned atoms, ground facts, ground rules.
#[derive(Default, Debug)]
pub struct GroundProgram {
    atoms: Vec<GroundAtom>,
    map: HashMap<GroundAtom, u32>,
    pub facts: Vec<u32>,
    pub rules: Vec<GroundRule>,
}

impl GroundProgram {
    fn intern(&mut self, a: GroundAtom) -> u32 {
        if let Some(&id) = self.map.get(&a) {
            return id;
        }
        let id = self.atoms.len() as u32;
        self.atoms.push(a.clone());
        self.map.insert(a, id);
        id
    }

    pub fn atom_id(&self, a: &GroundAtom) -> Option<u32> {
        self.map.get(a).copied()
    }

    /// Iterates (id, atom) pairs.
    pub fn atoms(&self) -> impl Iterator<Item = (u32, &GroundAtom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as u32, a))
    }

    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }
}

/// Grounds `program` over its relevant domain.
pub fn ground_program(program: &DatalogProgram) -> GroundProgram {
    // 1. positive over-approximation
    let positive = DatalogProgram {
        consts: crate::clone_consts(program),
        facts: program.facts.clone(),
        rules: program
            .rules
            .iter()
            .map(|r| Rule {
                head: r.head.clone(),
                body: r.body.iter().filter(|l| !l.negated).cloned().collect(),
            })
            .collect(),
    };
    // a purely positive program always stratifies
    let strata = xsb_datalog::stratify::stratify(&positive).expect("positive program");
    let mut over = Evaluator::from_facts(&positive);
    over.evaluate(&Strata { ..strata }, true);

    // 2. instantiate rules over the over-approximation
    let mut g = GroundProgram::default();
    for (pred, tuple) in &program.facts {
        let id = g.intern(GroundAtom {
            pred: *pred,
            args: tuple.clone(),
        });
        g.facts.push(id);
    }
    for rule in &program.rules {
        let nvars = var_count(rule);
        let mut env: Vec<Option<ConstId>> = vec![None; nvars];
        instantiate(rule, 0, &mut over, &mut env, &mut g);
    }
    g
}

fn var_count(rule: &Rule) -> usize {
    let mut max = 0usize;
    let visit = |args: &[Arg], max: &mut usize| {
        for a in args {
            if let Arg::Var(v) = a {
                *max = (*max).max(*v as usize + 1);
            }
        }
    };
    visit(&rule.head.args, &mut max);
    for l in &rule.body {
        visit(&l.args, &mut max);
    }
    max
}

/// Recursively enumerates substitutions over the positive body literals
/// (indexes into the over-approximation), emitting one ground rule per
/// complete substitution.
fn instantiate(
    rule: &Rule,
    i: usize,
    over: &mut Evaluator,
    env: &mut Vec<Option<ConstId>>,
    g: &mut GroundProgram,
) {
    // find the next positive literal; negatives are handled at the end
    let next_pos = rule.body[i..]
        .iter()
        .position(|l| !l.negated)
        .map(|off| i + off);
    let Some(ip) = next_pos else {
        emit_ground_rule(rule, over, env, g);
        return;
    };
    // instantiate literals before ip (all negated) later; recurse over ip's
    // matching tuples
    let lit = &rule.body[ip];
    let mut positions: Vec<u16> = Vec::new();
    let mut key: Vec<ConstId> = Vec::new();
    for (p, a) in lit.args.iter().enumerate() {
        match a {
            Arg::Const(c) => {
                positions.push(p as u16);
                key.push(*c);
            }
            Arg::Var(v) => {
                if let Some(c) = env[*v as usize] {
                    positions.push(p as u16);
                    key.push(c);
                }
            }
        }
    }
    let rows: Vec<Vec<ConstId>> = match over.relations.get_mut(&lit.pred) {
        None => return,
        Some(rel) => {
            let ids: Vec<u32> = if positions.is_empty() {
                (0..rel.len() as u32).collect()
            } else {
                rel.select(&positions, &key).to_vec()
            };
            ids.iter().map(|&r| rel.tuple(r).to_vec()).collect()
        }
    };
    for t in rows {
        let mut bound: Vec<u32> = Vec::new();
        let mut ok = true;
        for (p, a) in lit.args.iter().enumerate() {
            if let Arg::Var(v) = a {
                match env[*v as usize] {
                    Some(c) if c != t[p] => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        env[*v as usize] = Some(t[p]);
                        bound.push(*v);
                    }
                }
            }
        }
        if ok {
            instantiate(rule, ip + 1, over, env, g);
        }
        for v in bound {
            env[v as usize] = None;
        }
    }
}

fn emit_ground_rule(rule: &Rule, over: &Evaluator, env: &[Option<ConstId>], g: &mut GroundProgram) {
    let ground_args = |args: &[Arg]| -> Vec<ConstId> {
        args.iter()
            .map(|a| match a {
                Arg::Const(c) => *c,
                Arg::Var(v) => env[*v as usize].expect("safe rule fully bound"),
            })
            .collect()
    };
    let mut neg: Vec<u32> = Vec::new();
    for l in rule.body.iter().filter(|l| l.negated) {
        let atom = GroundAtom {
            pred: l.pred,
            args: ground_args(&l.args),
        };
        // if the atom is not even possibly true, its negation is true
        let possibly = over
            .relations
            .get(&l.pred)
            .map(|r| r.contains(&atom.args))
            .unwrap_or(false);
        if possibly {
            neg.push(g.intern(atom));
        }
    }
    let mut pos: Vec<u32> = Vec::new();
    for l in rule.body.iter().filter(|l| !l.negated) {
        pos.push(g.intern(GroundAtom {
            pred: l.pred,
            args: ground_args(&l.args),
        }));
    }
    let head = g.intern(GroundAtom {
        pred: rule.head.pred,
        args: ground_args(&rule.head.args),
    });
    g.rules.push(GroundRule { head, pos, neg });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::{parse_program, Clause, Item, OpTable, SymbolTable};

    fn prog(src: &str) -> (DatalogProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        (DatalogProgram::from_clauses(&clauses).unwrap(), syms)
    }

    #[test]
    fn grounds_only_relevant_instances() {
        let (p, _) = prog(
            "win(X) :- move(X,Y), tnot win(Y).\n\
             move(1,2). move(2,3).",
        );
        let g = ground_program(&p);
        // win(1), win(2), win(3) and the move atoms — not a 3x3 blowup
        assert_eq!(g.rules.len(), 2); // one instance per move tuple
        assert!(g.num_atoms() <= 7);
    }

    #[test]
    fn certainly_false_negations_are_dropped() {
        let (p, _) = prog(
            "q(X) :- base(X), tnot impossible(X).\n\
             base(1).",
        );
        let g = ground_program(&p);
        assert_eq!(g.rules.len(), 1);
        assert!(g.rules[0].neg.is_empty(), "impossible(1) can never hold");
    }
}
