//! The client driver: one API, two transports.
//!
//! [`Driver`] is the client-facing query interface — `query` (lazy
//! answer iterator), `count`, `consult`. It has two implementations
//! that return byte-identical answers for the same pool, because
//! answer rendering happens worker-side in both cases:
//!
//! * [`EmbeddedDriver`] holds an `Arc<ServerPool>` and submits through
//!   the pool's streaming API directly — no sockets, no frames. This
//!   is the in-process path an application embedding the engine uses.
//! * [`RemoteConn`] speaks the wire protocol over TCP. Beyond the
//!   blocking [`Driver`] methods it exposes the pipelined face:
//!   [`RemoteConn::send_query`] / [`send_count`](RemoteConn::send_count)
//!   fire a request and return immediately with its id;
//!   [`RemoteConn::wait`] collects any request's outcome, buffering
//!   frames that belong to other in-flight ids — so one connection can
//!   keep many requests in flight and harvest them in any order.
//!
//! Request ids are client-assigned (monotonic per connection here);
//! the server echoes them on every response frame, which is the whole
//! demultiplexing story.

use crate::wire::{read_frame, write_frame, Answer, Frame, WireError, VERSION};
use std::collections::{HashMap, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use xsb_core::{PoolBusy, ServerPool, StreamItem, StreamKind};

/// Client-side failure, typed so callers can tell backpressure from
/// engine errors from transport death.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The server shed the request (admission queue full). Retry later.
    Busy,
    /// The engine rejected the goal or program (parse error, unknown
    /// predicate, step limit…). The connection is still usable.
    Engine(String),
    /// Transport or framing failure; the connection is dead.
    Wire(WireError),
    /// The server closed us with a typed protocol error.
    Protocol { code: u8, message: String },
    /// Handshake did not complete as expected.
    Handshake(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Busy => write!(f, "server busy (admission queue full)"),
            DriverError::Engine(m) => write!(f, "engine error: {m}"),
            DriverError::Wire(e) => write!(f, "wire error: {e}"),
            DriverError::Protocol { code, message } => {
                write!(f, "protocol error {code}: {message}")
            }
            DriverError::Handshake(m) => write!(f, "handshake failed: {m}"),
        }
    }
}

impl From<WireError> for DriverError {
    fn from(e: WireError) -> Self {
        DriverError::Wire(e)
    }
}

impl From<PoolBusy> for DriverError {
    fn from(_: PoolBusy) -> Self {
        DriverError::Busy
    }
}

/// Completion record for a finished request: total solutions plus the
/// server-side queue wait and engine run time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Completion {
    pub count: u64,
    pub queue_wait_ns: u64,
    pub run_ns: u64,
}

/// Outcome of one pipelined request, from [`RemoteConn::wait`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Completed; `answers` is empty for `Count` requests and consults.
    Complete {
        answers: Vec<Answer>,
        completion: Completion,
    },
    /// Shed by admission control — never ran.
    Busy,
    /// Engine-level failure for this request only.
    Error(String),
}

/// The unified client API. `query` returns a lazy [`AnswerStream`];
/// `count` and `consult` block to completion.
pub trait Driver {
    /// Starts `goal` and returns an iterator over its solutions.
    fn query(&mut self, goal: &str) -> Result<AnswerStream<'_>, DriverError>;
    /// Evaluates `goal` to exhaustion, returns the solution count.
    fn count(&mut self, goal: &str) -> Result<u64, DriverError>;
    /// Loads `text` as program clauses on every worker.
    fn consult(&mut self, text: &str) -> Result<(), DriverError>;
}

// ---------------------------------------------------------------------
// answer stream

enum StreamSource<'a> {
    /// Direct pool reply channel; answers arrive as `StreamItem`s.
    Embedded(Receiver<(u64, StreamItem)>),
    /// Reads frames off the connection, demuxing by `id`.
    Remote { conn: &'a mut RemoteConn, id: u64 },
}

/// Lazy iterator over one query's solutions. Yields
/// `Result<Answer, DriverError>`; after the terminal event,
/// [`AnswerStream::completion`] has the count and timings.
pub struct AnswerStream<'a> {
    source: StreamSource<'a>,
    buf: VecDeque<Answer>,
    completion: Option<Completion>,
    failed: bool,
}

impl AnswerStream<'_> {
    /// Completion stats, available once the iterator has returned `None`.
    pub fn completion(&self) -> Option<Completion> {
        self.completion
    }

    /// Drains the stream into a vector, failing on the first error.
    pub fn collect_all(mut self) -> Result<Vec<Answer>, DriverError> {
        let mut out = Vec::new();
        for a in &mut self {
            out.push(a?);
        }
        Ok(out)
    }
}

impl Iterator for AnswerStream<'_> {
    type Item = Result<Answer, DriverError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(a) = self.buf.pop_front() {
                return Some(Ok(a));
            }
            if self.completion.is_some() || self.failed {
                return None;
            }
            // pull the next event for this request
            let event = match &mut self.source {
                StreamSource::Embedded(rx) => match rx.recv() {
                    Ok((_, item)) => Ok(item),
                    Err(_) => Err(DriverError::Wire(WireError::Closed)),
                },
                StreamSource::Remote { conn, id } => conn.next_event(*id),
            };
            match event {
                Ok(StreamItem::Answers(batch)) => self.buf.extend(batch),
                Ok(StreamItem::Done {
                    count,
                    queue_wait_ns,
                    run_ns,
                }) => {
                    self.completion = Some(Completion {
                        count,
                        queue_wait_ns,
                        run_ns,
                    });
                }
                Ok(StreamItem::Error(m)) => {
                    self.failed = true;
                    return Some(Err(DriverError::Engine(m)));
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// embedded driver

/// In-process driver over a shared pool — the trusted, zero-copy-ish
/// path. Sharing the `Arc<ServerPool>` with a [`crate::Server`] gives
/// embedded and network clients one table store and one admission
/// budget.
pub struct EmbeddedDriver {
    pool: Arc<ServerPool>,
    batch: usize,
    next_id: u64,
}

impl EmbeddedDriver {
    pub fn new(pool: Arc<ServerPool>) -> EmbeddedDriver {
        EmbeddedDriver {
            pool,
            batch: 64,
            next_id: 0,
        }
    }

    /// Answers per streamed batch (default 64).
    pub fn with_batch(mut self, batch: usize) -> EmbeddedDriver {
        self.batch = batch.max(1);
        self
    }

    fn submit(
        &mut self,
        kind: StreamKind,
        goal: &str,
    ) -> Result<Receiver<(u64, StreamItem)>, DriverError> {
        let (tx, rx) = channel();
        let id = self.next_id;
        self.next_id += 1;
        self.pool
            .try_submit_stream(kind, goal, id, self.batch, tx)?;
        Ok(rx)
    }
}

impl Driver for EmbeddedDriver {
    fn query(&mut self, goal: &str) -> Result<AnswerStream<'_>, DriverError> {
        let rx = self.submit(StreamKind::Query, goal)?;
        Ok(AnswerStream {
            source: StreamSource::Embedded(rx),
            buf: VecDeque::new(),
            completion: None,
            failed: false,
        })
    }

    fn count(&mut self, goal: &str) -> Result<u64, DriverError> {
        let rx = self.submit(StreamKind::Count, goal)?;
        loop {
            match rx.recv() {
                Ok((_, StreamItem::Answers(_))) => {}
                Ok((_, StreamItem::Done { count, .. })) => return Ok(count),
                Ok((_, StreamItem::Error(m))) => return Err(DriverError::Engine(m)),
                Err(_) => return Err(DriverError::Wire(WireError::Closed)),
            }
        }
    }

    fn consult(&mut self, text: &str) -> Result<(), DriverError> {
        self.pool
            .consult_all(text)
            .map_err(|e| DriverError::Engine(e.to_string()))
    }
}

// ---------------------------------------------------------------------
// remote driver

/// Per-request reassembly buffer for responses that arrive while the
/// client is waiting on a *different* id.
#[derive(Default)]
struct Pending {
    batches: VecDeque<Vec<Answer>>,
    terminal: Option<StreamItem>,
    busy: bool,
}

/// A TCP connection speaking the wire protocol, with client-side
/// pipelining: fire requests with `send_*`, harvest with [`wait`]
/// (any order), or use the blocking [`Driver`] methods one at a time.
pub struct RemoteConn {
    stream: TcpStream,
    /// worker count the server reported in its `HelloAck`
    workers: u16,
    next_id: u64,
    pending: HashMap<u64, Pending>,
}

impl RemoteConn {
    /// Connects and runs the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteConn, DriverError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| DriverError::Handshake(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        write_frame(&mut stream, &Frame::Hello { version: VERSION })?;
        match read_frame(&mut stream)? {
            Frame::HelloAck { version, workers } if version == VERSION => Ok(RemoteConn {
                stream,
                workers,
                next_id: 0,
                pending: HashMap::new(),
            }),
            Frame::HelloAck { version, .. } => Err(DriverError::Handshake(format!(
                "server speaks version {version}, client speaks {VERSION}"
            ))),
            Frame::ProtoError { code, message } => Err(DriverError::Protocol { code, message }),
            other => Err(DriverError::Handshake(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Worker count the server advertised.
    pub fn workers(&self) -> u16 {
        self.workers
    }

    fn send(&mut self, frame: &Frame) -> Result<(), DriverError> {
        write_frame(&mut self.stream, frame).map_err(DriverError::from)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, Pending::default());
        id
    }

    /// Fires a query; returns its request id immediately.
    pub fn send_query(&mut self, goal: &str) -> Result<u64, DriverError> {
        let id = self.fresh_id();
        self.send(&Frame::Query {
            id,
            goal: goal.to_string(),
        })?;
        Ok(id)
    }

    /// Fires a count request; returns its request id immediately.
    pub fn send_count(&mut self, goal: &str) -> Result<u64, DriverError> {
        let id = self.fresh_id();
        self.send(&Frame::Count {
            id,
            goal: goal.to_string(),
        })?;
        Ok(id)
    }

    /// Fires a consult; returns its request id immediately.
    pub fn send_consult(&mut self, text: &str) -> Result<u64, DriverError> {
        let id = self.fresh_id();
        self.send(&Frame::Consult {
            id,
            text: text.to_string(),
        })?;
        Ok(id)
    }

    /// Graceful close: sends `Bye` and drops the connection.
    pub fn close(mut self) {
        let _ = self.send(&Frame::Bye);
    }

    /// Reads frames until request `id` produces its next event,
    /// buffering frames that belong to other in-flight requests.
    fn next_event(&mut self, id: u64) -> Result<StreamItem, DriverError> {
        loop {
            // anything already buffered for this id?
            if let Some(p) = self.pending.get_mut(&id) {
                if let Some(batch) = p.batches.pop_front() {
                    return Ok(StreamItem::Answers(batch));
                }
                if p.busy {
                    self.pending.remove(&id);
                    return Err(DriverError::Busy);
                }
                if let Some(t) = p.terminal.take() {
                    self.pending.remove(&id);
                    return Ok(t);
                }
            } else {
                return Err(DriverError::Wire(WireError::Malformed(
                    "wait on unknown request id",
                )));
            }
            let frame = read_frame(&mut self.stream)?;
            match frame {
                Frame::Answers { id: fid, answers } => {
                    if fid == id {
                        return Ok(StreamItem::Answers(answers));
                    }
                    self.pending
                        .entry(fid)
                        .or_default()
                        .batches
                        .push_back(answers);
                }
                Frame::Done {
                    id: fid,
                    count,
                    queue_wait_ns,
                    run_ns,
                } => {
                    let item = StreamItem::Done {
                        count,
                        queue_wait_ns,
                        run_ns,
                    };
                    if fid == id && self.pending[&id].batches.is_empty() {
                        self.pending.remove(&id);
                        return Ok(item);
                    }
                    self.pending.entry(fid).or_default().terminal = Some(item);
                }
                Frame::Error { id: fid, message } => {
                    let item = StreamItem::Error(message);
                    if fid == id && self.pending[&id].batches.is_empty() {
                        self.pending.remove(&id);
                        return Ok(item);
                    }
                    self.pending.entry(fid).or_default().terminal = Some(item);
                }
                Frame::Busy { id: fid } => {
                    if fid == id {
                        self.pending.remove(&id);
                        return Err(DriverError::Busy);
                    }
                    self.pending.entry(fid).or_default().busy = true;
                }
                Frame::ProtoError { code, message } => {
                    return Err(DriverError::Protocol { code, message });
                }
                other => {
                    return Err(DriverError::Wire(WireError::Malformed(match other {
                        Frame::Hello { .. } => "client-side frame from server",
                        _ => "unexpected frame from server",
                    })));
                }
            }
        }
    }

    /// Collects the full outcome of request `id` (blocking), demuxing
    /// and buffering other requests' frames as they arrive. Requests
    /// can be harvested in any order.
    pub fn wait(&mut self, id: u64) -> Result<Outcome, DriverError> {
        let mut answers = Vec::new();
        loop {
            match self.next_event(id) {
                Ok(StreamItem::Answers(mut batch)) => answers.append(&mut batch),
                Ok(StreamItem::Done {
                    count,
                    queue_wait_ns,
                    run_ns,
                }) => {
                    return Ok(Outcome::Complete {
                        answers,
                        completion: Completion {
                            count,
                            queue_wait_ns,
                            run_ns,
                        },
                    });
                }
                Ok(StreamItem::Error(m)) => return Ok(Outcome::Error(m)),
                Err(DriverError::Busy) => return Ok(Outcome::Busy),
                Err(e) => return Err(e),
            }
        }
    }
}

impl Driver for RemoteConn {
    fn query(&mut self, goal: &str) -> Result<AnswerStream<'_>, DriverError> {
        let id = self.send_query(goal)?;
        Ok(AnswerStream {
            source: StreamSource::Remote { conn: self, id },
            buf: VecDeque::new(),
            completion: None,
            failed: false,
        })
    }

    fn count(&mut self, goal: &str) -> Result<u64, DriverError> {
        let id = self.send_count(goal)?;
        match self.wait(id)? {
            Outcome::Complete { completion, .. } => Ok(completion.count),
            Outcome::Busy => Err(DriverError::Busy),
            Outcome::Error(m) => Err(DriverError::Engine(m)),
        }
    }

    fn consult(&mut self, text: &str) -> Result<(), DriverError> {
        let id = self.send_consult(text)?;
        match self.wait(id)? {
            Outcome::Complete { .. } => Ok(()),
            Outcome::Busy => Err(DriverError::Busy),
            Outcome::Error(m) => Err(DriverError::Engine(m)),
        }
    }
}
