//! The TCP front-end: accept loop, per-connection sessions, backpressure.
//!
//! A [`Server`] wraps a [`ServerPool`] and serves the wire protocol
//! (DESIGN.md §2.12) on a TCP listener. It always binds port 0 — the
//! kernel picks a free port and [`Server::addr`] reports it — so tests
//! and benches never collide on a hardcoded port.
//!
//! Each accepted connection gets two threads:
//!
//! * a **reader** that runs the handshake, then decodes request frames
//!   and submits them to the pool via the admission-controlled
//!   streaming API. Control frames the reader itself produces
//!   ([`Frame::HelloAck`], [`Frame::Busy`], [`Frame::ProtoError`],
//!   consult replies) go out under a per-connection write mutex;
//! * a **writer** that drains a channel of `(request id, StreamItem)`
//!   events — the same channel every pool job for this connection
//!   replies to — and encodes them as `Answers*/Done/Error` frames
//!   under that same mutex.
//!
//! That split is what makes pipelining work without async machinery:
//! the reader never blocks on a running query, so a client can keep
//! many request ids in flight on one connection, and the writer
//! interleaves their answer batches in completion order, demuxed
//! client-side by id.
//!
//! Backpressure is the pool's bounded admission queue
//! (`PoolConfig::queue_depth`): when it is full, `try_submit_stream`
//! returns a typed rejection and the reader answers [`Frame::Busy`]
//! immediately — the request is shed, never queued. Dead and idle
//! connections are reaped by a socket read timeout
//! ([`ServerConfig::read_timeout`]); a protocol violation gets a typed
//! [`Frame::ProtoError`] and a close, never a panic.

use crate::wire::{proto_code, read_frame, write_frame, Frame, WireError, VERSION};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xsb_core::{EngineError, PoolConfig, ServerPool, StreamItem, StreamKind};
use xsb_obs::{Counter, Histogram, Metrics};

/// Configuration for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Pool shape (workers, step limit, admission `queue_depth`).
    pub pool: PoolConfig,
    /// Maximum solutions per [`Frame::Answers`] batch.
    pub batch: usize,
    /// Socket read timeout for accepted connections. A connection that
    /// sends nothing for this long is reaped (closed without a
    /// protocol error). `None` waits forever — fine for trusted
    /// clients, wrong for a public listener.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool: PoolConfig::default(),
            batch: 64,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Shared serving counters, aggregated across all connections.
#[derive(Default)]
struct ServerStats {
    /// connections accepted over the server's lifetime
    connections: AtomicU64,
    /// requests received (queries, counts, consults)
    requests: AtomicU64,
    /// requests shed by admission control (answered `Busy`)
    rejections: AtomicU64,
    /// connections closed for a protocol violation
    protocol_errors: AtomicU64,
    /// connections currently open
    active: AtomicUsize,
    /// frame-decode to completion-frame-written latency
    wire_latency: Mutex<Histogram>,
}

/// Point-in-time copy of the serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub rejections: u64,
    pub protocol_errors: u64,
    pub active: usize,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
        }
    }
}

/// A running TCP server over a worker-engine pool.
pub struct Server {
    pool: Arc<ServerPool>,
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Consults `program` into a fresh pool and starts serving it on a
    /// kernel-assigned loopback port.
    pub fn start(program: &str, config: ServerConfig) -> Result<Server, EngineError> {
        let pool = Arc::new(ServerPool::new(program, config.pool.clone())?);
        Self::start_on_pool(pool, config)
    }

    /// Starts serving an existing pool — the embedded/remote split: the
    /// same pool can back an [`crate::driver::EmbeddedDriver`] and a
    /// network listener at once, sharing tables and admission budget.
    pub fn start_on_pool(
        pool: Arc<ServerPool>,
        config: ServerConfig,
    ) -> Result<Server, EngineError> {
        // Port 0: never hardcode a port. Explicit IPv4 loopback (not
        // "localhost", which resolves to ::1 first on IPv6-less CI
        // sandboxes and then fails).
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            .map_err(|e| EngineError::Other(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| EngineError::Other(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EngineError::Other(format!("set_nonblocking failed: {e}")))?;

        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, pool, stats, stop, config))
        };
        Ok(Server {
            pool,
            addr,
            stats,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (kernel-assigned port) — hand this to clients.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pool behind this server.
    pub fn pool(&self) -> &Arc<ServerPool> {
        &self.pool
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Pool-wide engine metrics with the serving counters and wire
    /// latency folded in — the `statistics/2` view of the server.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.pool.metrics();
        let s = self.stats.snapshot();
        m.add(Counter::NetConnections, s.connections);
        m.add(Counter::NetRequests, s.requests);
        m.add(Counter::NetRejections, s.rejections);
        m.add(Counter::NetProtocolErrors, s.protocol_errors);
        let wire = self.stats.wire_latency.lock().unwrap();
        m.wire_latency.merge(&wire);
        m
    }

    /// Stops accepting, then waits up to two seconds for open
    /// connections to drain. Returns the number still open (0 on a
    /// clean shutdown — the bench gates on this as "stuck
    /// connections").
    pub fn shutdown(mut self) -> usize {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let active = self.stats.active.load(Ordering::Acquire);
            if active == 0 || Instant::now() >= deadline {
                return active;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    pool: Arc<ServerPool>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                stats.active.fetch_add(1, Ordering::AcqRel);
                let pool = Arc::clone(&pool);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::spawn(move || {
                    serve_connection(stream, pool, Arc::clone(&stats), stop, config);
                    stats.active.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // nonblocking accept: poll the stop flag at 5ms
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Writes a `ProtoError` frame (best-effort) and counts the violation.
/// The caller closes the connection after this.
fn proto_error(wr: &Mutex<TcpStream>, stats: &ServerStats, code: u8, message: String) {
    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut s) = wr.lock() {
        let _ = write_frame(&mut *s, &Frame::ProtoError { code, message });
    }
}

/// One connection, reader side: handshake, then the request loop.
fn serve_connection(
    mut stream: TcpStream,
    pool: Arc<ServerPool>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(config.read_timeout);
    let write_half = match stream.try_clone() {
        Ok(s) => Arc::new(Mutex::new(s)),
        Err(_) => return,
    };

    // Handshake: the first frame must be a well-formed Hello. decode()
    // already types magic/version mismatches, so just map them to codes.
    match read_frame(&mut stream) {
        Ok(Frame::Hello { .. }) => {
            let ack = Frame::HelloAck {
                version: VERSION,
                workers: pool.workers() as u16,
            };
            let mut w = write_half.lock().unwrap();
            if write_frame(&mut *w, &ack).is_err() {
                return;
            }
        }
        Ok(_) => {
            proto_error(
                &write_half,
                &stats,
                proto_code::UNEXPECTED,
                "first frame must be Hello".into(),
            );
            return;
        }
        Err(WireError::BadMagic(m)) => {
            proto_error(
                &write_half,
                &stats,
                proto_code::BAD_MAGIC,
                format!("bad handshake magic {m:?}"),
            );
            return;
        }
        Err(WireError::BadVersion(v)) => {
            proto_error(
                &write_half,
                &stats,
                proto_code::BAD_VERSION,
                format!("unsupported protocol version {v} (server speaks {VERSION})"),
            );
            return;
        }
        Err(WireError::Closed) | Err(WireError::TimedOut) => return,
        Err(e) => {
            proto_error(&write_half, &stats, proto_code::MALFORMED, e.to_string());
            return;
        }
    }

    // In-flight request arrival times, shared with the writer so the
    // wire-latency histogram spans decode → completion frame written.
    let arrivals: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));

    // The writer drains this channel; every pool job gets a clone of tx.
    let (tx, rx) = channel::<(u64, StreamItem)>();
    let writer = {
        let write_half = Arc::clone(&write_half);
        let arrivals = Arc::clone(&arrivals);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || writer_loop(rx, write_half, arrivals, stats))
    };

    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // clean close, dead-peer reap, transport error: just close
            Err(WireError::Closed) | Err(WireError::TimedOut) | Err(WireError::Io(_)) => break,
            Err(e) => {
                proto_error(&write_half, &stats, proto_code::MALFORMED, e.to_string());
                break;
            }
        };
        let kind = frame_kind(&frame);
        match frame {
            Frame::Query { id, goal } | Frame::Count { id, goal } => {
                let kind = kind.expect("query/count frames have a stream kind");
                stats.requests.fetch_add(1, Ordering::Relaxed);
                arrivals.lock().unwrap().insert(id, Instant::now());
                if pool
                    .try_submit_stream(kind, &goal, id, config.batch, tx.clone())
                    .is_err()
                {
                    stats.rejections.fetch_add(1, Ordering::Relaxed);
                    arrivals.lock().unwrap().remove(&id);
                    let mut w = write_half.lock().unwrap();
                    if write_frame(&mut *w, &Frame::Busy { id }).is_err() {
                        break;
                    }
                }
            }
            Frame::Consult { id, text } => {
                // Broadcast consults run inline on the reader: they must
                // hit *every* worker (pool coherence), so they don't go
                // through the streaming path, and serializing them per
                // connection is the semantics a client wants anyway.
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let reply = match pool.consult_all(&text) {
                    Ok(()) => Frame::Done {
                        id,
                        count: 0,
                        queue_wait_ns: 0,
                        run_ns: started.elapsed().as_nanos() as u64,
                    },
                    Err(e) => Frame::Error {
                        id,
                        message: e.to_string(),
                    },
                };
                stats
                    .wire_latency
                    .lock()
                    .unwrap()
                    .record(started.elapsed().as_nanos() as u64);
                let mut w = write_half.lock().unwrap();
                if write_frame(&mut *w, &reply).is_err() {
                    break;
                }
            }
            Frame::Bye => break,
            // server→client frames (or a second Hello) from a client are
            // a protocol violation
            _ => {
                proto_error(
                    &write_half,
                    &stats,
                    proto_code::UNEXPECTED,
                    "unexpected frame direction".into(),
                );
                break;
            }
        }
    }

    // Dropping our tx lets the writer exit once in-flight jobs drain —
    // answers already computed still reach a client that only half-closed.
    drop(tx);
    let _ = writer.join();
}

fn frame_kind(f: &Frame) -> Option<StreamKind> {
    match f {
        Frame::Query { .. } => Some(StreamKind::Query),
        Frame::Count { .. } => Some(StreamKind::Count),
        _ => None,
    }
}

/// Connection writer: encodes pool stream events as response frames.
/// Keeps draining even if the socket dies so arrival entries are
/// released and job senders never block.
fn writer_loop(
    rx: Receiver<(u64, StreamItem)>,
    write_half: Arc<Mutex<TcpStream>>,
    arrivals: Arc<Mutex<HashMap<u64, Instant>>>,
    stats: Arc<ServerStats>,
) {
    let mut sink_only = false;
    for (id, item) in rx {
        let frame = match item {
            StreamItem::Answers(batch) => Frame::Answers { id, answers: batch },
            StreamItem::Done {
                count,
                queue_wait_ns,
                run_ns,
            } => {
                record_wire_latency(&arrivals, &stats, id);
                Frame::Done {
                    id,
                    count,
                    queue_wait_ns,
                    run_ns,
                }
            }
            StreamItem::Error(message) => {
                record_wire_latency(&arrivals, &stats, id);
                Frame::Error { id, message }
            }
        };
        if !sink_only {
            let mut w = write_half.lock().unwrap();
            if write_frame(&mut *w, &frame).is_err() {
                sink_only = true;
            }
        }
    }
}

fn record_wire_latency(arrivals: &Mutex<HashMap<u64, Instant>>, stats: &ServerStats, id: u64) {
    if let Some(t0) = arrivals.lock().unwrap().remove(&id) {
        stats
            .wire_latency
            .lock()
            .unwrap()
            .record(t0.elapsed().as_nanos() as u64);
    }
}
