//! The wire protocol: small length-prefixed binary frames over TCP.
//!
//! Every frame is `[len: u32 LE][opcode: u8][payload]` where `len` counts
//! the opcode byte plus the payload. `len` is bounded by [`MAX_FRAME`];
//! a larger prefix is rejected *before* any allocation, so a hostile
//! 4-byte header cannot balloon server memory. Integers are
//! little-endian; strings are `u32` byte length + UTF-8 bytes.
//!
//! A connection opens with a handshake: the client's first frame must be
//! [`Frame::Hello`] carrying [`MAGIC`] and [`VERSION`]; the server
//! answers [`Frame::HelloAck`] (echoing its version and worker count) or
//! closes with a typed [`Frame::ProtoError`]. After the handshake the
//! client pipelines requests — each carries a client-assigned request id,
//! and response frames echo that id, so many requests can be in flight on
//! one connection with answers demultiplexed by id. Per request the
//! server emits `Answers* (Done | Error)`, or a single `Busy` when
//! admission control sheds the request.
//!
//! Decoding never panics on hostile input: every malformed shape maps to
//! a typed [`WireError`] ([`decode`] is total), which the server turns
//! into a `ProtoError` frame and a closed connection.

use std::io::{Read, Write};

/// Protocol magic, first field of the client's `Hello`.
pub const MAGIC: [u8; 4] = *b"XSBN";

/// Protocol version, bumped on any incompatible frame-layout change.
pub const VERSION: u16 = 1;

/// Upper bound on the length prefix (opcode + payload), 16 MiB. Chosen
/// well above any real frame (answer batches are bounded by the server's
/// batch size) while keeping a hostile prefix from allocating memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// One rendered solution: (variable name, canonical term text) pairs in
/// the query's variable order. Mirrors `xsb_core::WireAnswer`.
pub type Answer = Vec<(String, String)>;

/// Every frame of the protocol, both directions. Client→server: `Hello`,
/// `Query`, `Count`, `Consult`, `Bye`. Server→client: `HelloAck`,
/// `Answers`, `Done`, `Busy`, `Error`, `ProtoError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Handshake request: protocol magic + the client's version.
    Hello { version: u16 },
    /// Handshake accept: the server's version and worker count.
    HelloAck { version: u16, workers: u16 },
    /// Evaluate `goal`, stream every solution for request `id`.
    Query { id: u64, goal: String },
    /// Evaluate `goal` to exhaustion, return only the solution count.
    Count { id: u64, goal: String },
    /// Consult `text` as program text on every pool worker (broadcast).
    Consult { id: u64, text: String },
    /// Graceful client-side close.
    Bye,
    /// A batch of solutions for request `id`, in solution order.
    Answers { id: u64, answers: Vec<Answer> },
    /// Request `id` completed: total solution count plus the server-side
    /// queue-wait and engine run time (nanoseconds) for this request.
    Done {
        id: u64,
        count: u64,
        queue_wait_ns: u64,
        run_ns: u64,
    },
    /// Request `id` was shed by admission control (bounded pool queue
    /// full). The request did not run; the client may retry later.
    Busy { id: u64 },
    /// Request `id` failed in the engine (parse error, unknown
    /// predicate, step limit, …). The connection stays usable.
    Error { id: u64, message: String },
    /// Connection-fatal protocol violation; the sender closes the
    /// connection after this frame.
    ProtoError { code: u8, message: String },
}

/// `ProtoError` codes.
pub mod proto_code {
    /// Handshake magic mismatch.
    pub const BAD_MAGIC: u8 = 1;
    /// Handshake version mismatch.
    pub const BAD_VERSION: u8 = 2;
    /// Frame failed to decode (truncated, oversized, unknown opcode…).
    pub const MALFORMED: u8 = 3;
    /// First frame was not `Hello`, or a server-only frame arrived from
    /// a client (or vice versa).
    pub const UNEXPECTED: u8 = 4;
}

/// Typed decode failure. Every hostile byte sequence maps here — decode
/// never panics and never allocates past [`MAX_FRAME`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// EOF mid-frame: the length prefix promised more bytes than arrived.
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME`].
    Oversized { len: u32 },
    /// Opcode byte not assigned by this protocol version.
    UnknownOpcode(u8),
    /// `Hello` carried the wrong magic.
    BadMagic([u8; 4]),
    /// `Hello` carried an unsupported version.
    BadVersion(u16),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload shorter (or longer) than the opcode's field layout.
    Malformed(&'static str),
    /// A socket read timeout fired (only on sockets with a configured
    /// read timeout). The server uses this to reap idle connections.
    TimedOut,
    /// Underlying transport error.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::TimedOut => write!(f, "read timed out"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

// opcode bytes: client requests in 0x0_, server responses in 0x8_
const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_COUNT: u8 = 0x03;
const OP_CONSULT: u8 = 0x04;
const OP_BYE: u8 = 0x05;
const OP_HELLO_ACK: u8 = 0x81;
const OP_ANSWERS: u8 = 0x82;
const OP_DONE: u8 = 0x83;
const OP_BUSY: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_PROTO_ERROR: u8 = 0x8f;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Sequential payload reader with typed exhaustion errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn finish(self, what: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            // trailing garbage means the sender and receiver disagree on
            // the layout — fail loudly instead of desynchronizing
            Err(WireError::Malformed(what))
        }
    }
}

impl Frame {
    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            Frame::Hello { version } => {
                body.push(OP_HELLO);
                body.extend_from_slice(&MAGIC);
                put_u16(&mut body, *version);
            }
            Frame::HelloAck { version, workers } => {
                body.push(OP_HELLO_ACK);
                put_u16(&mut body, *version);
                put_u16(&mut body, *workers);
            }
            Frame::Query { id, goal } => {
                body.push(OP_QUERY);
                put_u64(&mut body, *id);
                put_str(&mut body, goal);
            }
            Frame::Count { id, goal } => {
                body.push(OP_COUNT);
                put_u64(&mut body, *id);
                put_str(&mut body, goal);
            }
            Frame::Consult { id, text } => {
                body.push(OP_CONSULT);
                put_u64(&mut body, *id);
                put_str(&mut body, text);
            }
            Frame::Bye => body.push(OP_BYE),
            Frame::Answers { id, answers } => {
                body.push(OP_ANSWERS);
                put_u64(&mut body, *id);
                put_u32(&mut body, answers.len() as u32);
                for a in answers {
                    put_u32(&mut body, a.len() as u32);
                    for (name, value) in a {
                        put_str(&mut body, name);
                        put_str(&mut body, value);
                    }
                }
            }
            Frame::Done {
                id,
                count,
                queue_wait_ns,
                run_ns,
            } => {
                body.push(OP_DONE);
                put_u64(&mut body, *id);
                put_u64(&mut body, *count);
                put_u64(&mut body, *queue_wait_ns);
                put_u64(&mut body, *run_ns);
            }
            Frame::Busy { id } => {
                body.push(OP_BUSY);
                put_u64(&mut body, *id);
            }
            Frame::Error { id, message } => {
                body.push(OP_ERROR);
                put_u64(&mut body, *id);
                put_str(&mut body, message);
            }
            Frame::ProtoError { code, message } => {
                body.push(OP_PROTO_ERROR);
                body.push(*code);
                put_str(&mut body, message);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame body (opcode + payload, the length prefix
    /// already stripped). Total: every input maps to `Ok` or a typed
    /// [`WireError`]; nothing panics.
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor { buf: body, pos: 0 };
        let op = c.u8("empty frame")?;
        let frame = match op {
            OP_HELLO => {
                let magic: [u8; 4] = c.take(4, "hello magic")?.try_into().unwrap();
                if magic != MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                let version = c.u16("hello version")?;
                if version != VERSION {
                    return Err(WireError::BadVersion(version));
                }
                Frame::Hello { version }
            }
            OP_HELLO_ACK => Frame::HelloAck {
                version: c.u16("ack version")?,
                workers: c.u16("ack workers")?,
            },
            OP_QUERY => Frame::Query {
                id: c.u64("query id")?,
                goal: c.str("query goal")?,
            },
            OP_COUNT => Frame::Count {
                id: c.u64("count id")?,
                goal: c.str("count goal")?,
            },
            OP_CONSULT => Frame::Consult {
                id: c.u64("consult id")?,
                text: c.str("consult text")?,
            },
            OP_BYE => Frame::Bye,
            OP_ANSWERS => {
                let id = c.u64("answers id")?;
                let n = c.u32("answers count")? as usize;
                // cap preallocation by what the payload could actually
                // hold (≥ 4 bytes per answer), so a lying count cannot
                // over-allocate
                let mut answers = Vec::with_capacity(n.min(body.len() / 4 + 1));
                for _ in 0..n {
                    let vars = c.u32("binding count")? as usize;
                    let mut a = Vec::with_capacity(vars.min(body.len() / 8 + 1));
                    for _ in 0..vars {
                        let name = c.str("binding name")?;
                        let value = c.str("binding value")?;
                        a.push((name, value));
                    }
                    answers.push(a);
                }
                Frame::Answers { id, answers }
            }
            OP_DONE => Frame::Done {
                id: c.u64("done id")?,
                count: c.u64("done count")?,
                queue_wait_ns: c.u64("done queue wait")?,
                run_ns: c.u64("done run time")?,
            },
            OP_BUSY => Frame::Busy {
                id: c.u64("busy id")?,
            },
            OP_ERROR => Frame::Error {
                id: c.u64("error id")?,
                message: c.str("error message")?,
            },
            OP_PROTO_ERROR => Frame::ProtoError {
                code: c.u8("proto-error code")?,
                message: c.str("proto-error message")?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        c.finish("trailing bytes after frame")?;
        Ok(frame)
    }
}

/// Writes one frame to `w` (single `write_all` — frames are small, and
/// callers serialize writes per connection).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one frame from `r`. Distinguishes a clean close at a frame
/// boundary ([`WireError::Closed`]) from EOF mid-frame
/// ([`WireError::Truncated`]). IO timeouts surface as [`WireError::Io`]
/// with the underlying error text.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    read_exact_or(r, &mut len_buf, WireError::Closed)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame"));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or(r, &mut body, WireError::Truncated)?;
    Frame::decode(&body)
}

/// `read_exact` mapping a clean EOF *before the first byte* to `on_eof`
/// and any partial read to [`WireError::Truncated`].
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], on_eof: WireError) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    on_eof
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(WireError::TimedOut);
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let bytes = f.encode();
        let mut r = &bytes[..];
        let back = read_frame(&mut r).expect("round trip decodes");
        assert_eq!(back, f);
        assert!(r.is_empty(), "decode consumed the whole frame");
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Frame::Hello { version: VERSION });
        round_trip(Frame::HelloAck {
            version: VERSION,
            workers: 4,
        });
        round_trip(Frame::Query {
            id: 42,
            goal: "path(1, X)".into(),
        });
        round_trip(Frame::Count {
            id: u64::MAX,
            goal: String::new(),
        });
        round_trip(Frame::Consult {
            id: 7,
            text: "edge(1,2).\nedge(2,3).".into(),
        });
        round_trip(Frame::Bye);
        round_trip(Frame::Answers {
            id: 3,
            answers: vec![
                vec![("X".into(), "1".into()), ("Y".into(), "f(a,b)".into())],
                vec![],
                vec![("Z".into(), "'hello world'".into())],
            ],
        });
        round_trip(Frame::Done {
            id: 9,
            count: 4096,
            queue_wait_ns: 1234,
            run_ns: 567_890,
        });
        round_trip(Frame::Busy { id: 8 });
        round_trip(Frame::Error {
            id: 5,
            message: "unknown predicate foo/1".into(),
        });
        round_trip(Frame::ProtoError {
            code: proto_code::MALFORMED,
            message: "truncated frame".into(),
        });
    }

    #[test]
    fn unicode_survives_the_wire() {
        round_trip(Frame::Error {
            id: 1,
            message: "überfüllt — 答案".into(),
        });
    }

    #[test]
    fn clean_close_and_truncation_are_distinguished() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty), Err(WireError::Closed));
        let bytes = Frame::Bye.encode();
        let mut cut = &bytes[..2]; // half the length prefix
        assert_eq!(read_frame(&mut cut), Err(WireError::Truncated));
        let mut cut = &bytes[..4]; // header only, body missing
        assert_eq!(read_frame(&mut cut), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::Oversized { len: u32::MAX })
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut f = Frame::Hello { version: VERSION }.encode();
        f[5] = b'Z'; // corrupt first magic byte (after len+opcode)
        let mut r = &f[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::BadMagic(_))));
        let mut f = Frame::Hello { version: VERSION }.encode();
        f[9] = 0xff; // corrupt version low byte
        let mut r = &f[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn unknown_opcode_and_trailing_garbage_are_typed() {
        let body = [0x7fu8];
        assert_eq!(Frame::decode(&body), Err(WireError::UnknownOpcode(0x7f)));
        let mut bye = Frame::Bye.encode();
        bye[0] += 3; // lie: 3 extra bytes in the length prefix
        bye.extend_from_slice(&[1, 2, 3]);
        let mut r = &bye[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut body = vec![OP_QUERY];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Frame::decode(&body), Err(WireError::BadUtf8));
    }

    #[test]
    fn lying_answer_count_cannot_overallocate() {
        // claims 2^32-1 answers but carries none: must error, not OOM
        let mut body = vec![OP_ANSWERS];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Frame::decode(&body), Err(WireError::Malformed(_))));
    }
}
