//! # xsb-server — the network serving front-end
//!
//! The paper positions XSB as a deductive-database *server*; this crate
//! is the serving surface over `xsb_core::ServerPool`: a TCP listener
//! speaking a small length-prefixed binary protocol ([`wire`]), per-
//! connection sessions with request pipelining and admission-control
//! backpressure ([`server`]), and a client driver with an embedded /
//! remote split ([`driver`]) — the same [`Driver`] trait backed either
//! by a direct pool handle or by a socket, returning byte-identical
//! answers because rendering happens worker-side in both cases.
//!
//! ```no_run
//! use xsb_server::{Driver, RemoteConn, Server, ServerConfig};
//!
//! let server = Server::start(
//!     ":- table path/2.
//!      path(X,Y) :- edge(X,Y).
//!      path(X,Y) :- path(X,Z), edge(Z,Y).
//!      edge(1,2). edge(2,3). edge(3,1).",
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! let mut client = RemoteConn::connect(server.addr()).unwrap();
//! assert_eq!(client.count("path(1, X)").unwrap(), 3);
//!
//! // pipelined: three requests in flight, harvested out of order
//! let a = client.send_count("path(1, X)").unwrap();
//! let b = client.send_count("path(2, X)").unwrap();
//! let c = client.send_count("path(3, X)").unwrap();
//! for id in [c, a, b] {
//!     client.wait(id).unwrap();
//! }
//! client.close();
//! assert_eq!(server.shutdown(), 0);
//! ```
//!
//! Protocol details, the session state machine, and the backpressure
//! policy are specified in DESIGN.md §2.12.

pub mod driver;
pub mod server;
pub mod wire;

pub use driver::{
    AnswerStream, Completion, Driver, DriverError, EmbeddedDriver, Outcome, RemoteConn,
};
pub use server::{Server, ServerConfig, StatsSnapshot};
pub use wire::{Frame, WireError, MAGIC, MAX_FRAME, VERSION};
