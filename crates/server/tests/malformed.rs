//! Hostile-input suite: every malformed byte sequence must produce a
//! typed `ProtoError` (or a silent close for dead peers) and never a
//! server panic. Each test talks raw bytes over a fresh socket, then
//! proves the server is still alive by running a clean client against
//! the same listener.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xsb_server::wire::{proto_code, read_frame, Frame, WireError, MAGIC, VERSION};
use xsb_server::{Driver, RemoteConn, Server, ServerConfig};

const PROGRAM: &str = r#"
    :- table path/2.
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
    edge(1,2). edge(2,3). edge(3,1).
"#;

fn start_server() -> Server {
    Server::start(PROGRAM, ServerConfig::default()).expect("server starts")
}

/// Opens a raw socket, writes `bytes`, and returns every frame the
/// server sends back before closing (empty if it closed silently).
fn poke(server: &Server, bytes: &[u8]) -> Vec<Frame> {
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(bytes).expect("write");
    // half-close: the payload is complete, so a server waiting for more
    // bytes should see EOF now rather than hold the connection open
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut s) {
            Ok(f) => frames.push(f),
            Err(_) => return frames, // closed / reset / timed out
        }
    }
}

/// The server must still answer real queries after hostile traffic.
fn assert_still_serving(server: &Server) {
    let mut c = RemoteConn::connect(server.addr()).expect("clean client connects");
    assert_eq!(c.count("path(1, X)").expect("clean query runs"), 3);
    c.close();
}

fn wait_protocol_errors(server: &Server, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if server.stats().protocol_errors >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().protocol_errors, want, "protocol error count");
}

fn hello_bytes() -> Vec<u8> {
    Frame::Hello { version: VERSION }.encode()
}

#[test]
fn bad_magic_gets_typed_error_and_close() {
    let server = start_server();
    let mut bad = hello_bytes();
    bad[5] = b'Q'; // first magic byte, after the 4-byte length prefix + opcode
    let frames = poke(&server, &bad);
    assert_eq!(frames.len(), 1);
    match &frames[0] {
        Frame::ProtoError { code, .. } => assert_eq!(*code, proto_code::BAD_MAGIC),
        f => panic!("expected ProtoError, got {f:?}"),
    }
    wait_protocol_errors(&server, 1);
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn wrong_version_gets_typed_error_and_close() {
    let server = start_server();
    let mut bad = hello_bytes();
    bad[9] = 0xee; // version low byte
    let frames = poke(&server, &bad);
    assert_eq!(frames.len(), 1);
    match &frames[0] {
        Frame::ProtoError { code, message } => {
            assert_eq!(*code, proto_code::BAD_VERSION);
            assert!(message.contains("version"), "got {message:?}");
        }
        f => panic!("expected ProtoError, got {f:?}"),
    }
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn request_before_hello_is_rejected() {
    let server = start_server();
    let frames = poke(
        &server,
        &Frame::Query {
            id: 1,
            goal: "path(1, X)".into(),
        }
        .encode(),
    );
    assert_eq!(frames.len(), 1, "no answers before a handshake");
    match &frames[0] {
        Frame::ProtoError { code, .. } => assert_eq!(*code, proto_code::UNEXPECTED),
        f => panic!("expected ProtoError, got {f:?}"),
    }
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let server = start_server();
    let mut bytes = hello_bytes();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB frame, allegedly
    bytes.extend_from_slice(&[0u8; 32]);
    let frames = poke(&server, &bytes);
    // HelloAck for the valid handshake, then the typed rejection
    assert!(matches!(frames[0], Frame::HelloAck { .. }));
    match &frames[1] {
        Frame::ProtoError { code, message } => {
            assert_eq!(*code, proto_code::MALFORMED);
            assert!(message.contains("exceeds"), "got {message:?}");
        }
        f => panic!("expected ProtoError, got {f:?}"),
    }
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn unknown_opcode_is_rejected() {
    let server = start_server();
    let mut bytes = hello_bytes();
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&[0x7f, 0x00]); // unassigned opcode
    let frames = poke(&server, &bytes);
    assert!(matches!(frames[0], Frame::HelloAck { .. }));
    assert!(
        matches!(&frames[1], Frame::ProtoError { code, .. } if *code == proto_code::MALFORMED),
        "got {:?}",
        frames[1]
    );
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn zero_length_frame_is_rejected() {
    let server = start_server();
    let mut bytes = hello_bytes();
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let frames = poke(&server, &bytes);
    assert!(matches!(frames[0], Frame::HelloAck { .. }));
    assert!(matches!(&frames[1], Frame::ProtoError { .. }));
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn truncated_frame_then_close_is_not_a_panic() {
    let server = start_server();
    let mut bytes = hello_bytes();
    // promise an 80-byte frame, deliver 3 bytes, hang up
    bytes.extend_from_slice(&80u32.to_le_bytes());
    bytes.extend_from_slice(&[1, 2, 3]);
    let frames = poke(&server, &bytes);
    assert!(matches!(frames[0], Frame::HelloAck { .. }));
    wait_protocol_errors(&server, 1);
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn garbage_mid_stream_after_valid_requests() {
    let server = start_server();
    let mut bytes = hello_bytes();
    bytes.extend_from_slice(
        &Frame::Count {
            id: 9,
            goal: "path(X, Y)".into(),
        }
        .encode(),
    );
    // then 64 bytes of garbage (with a plausible little length prefix so
    // it decodes as a frame attempt, not an oversize)
    bytes.extend_from_slice(&9u32.to_le_bytes());
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05]);
    let frames = poke(&server, &bytes);
    assert!(matches!(frames[0], Frame::HelloAck { .. }));
    // the valid request completes; the garbage closes the connection
    let done = frames.iter().find(|f| {
        matches!(
            f,
            Frame::Done {
                id: 9,
                count: 9,
                ..
            }
        )
    });
    assert!(
        done.is_some(),
        "valid request before garbage lost: {frames:?}"
    );
    let proto = frames
        .iter()
        .find(|f| matches!(f, Frame::ProtoError { .. }));
    assert!(proto.is_some(), "garbage not rejected: {frames:?}");
    assert_still_serving(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn hostile_barrage_leaves_server_standing() {
    // a pile of adversarial payloads against ONE server; it must survive
    // all of them with typed errors only, then serve a clean client
    let server = start_server();
    let barrage: Vec<Vec<u8>> = vec![
        vec![],                          // connect + instant close
        vec![0x00],                      // quarter of a length prefix
        vec![0xff; 3],                   // most of a length prefix
        u32::MAX.to_le_bytes().to_vec(), // oversized before handshake
        {
            let mut b = 1u32.to_le_bytes().to_vec();
            b.push(0x44); // unknown opcode as the very first frame
            b
        },
        {
            let mut b = hello_bytes();
            b.extend_from_slice(&hello_bytes()); // double handshake
            b
        },
        {
            // Query with a lying string length: claims 1000 goal bytes,
            // carries 4
            let mut b = hello_bytes();
            let mut body = vec![0x02u8]; // OP_QUERY
            body.extend_from_slice(&7u64.to_le_bytes());
            body.extend_from_slice(&1000u32.to_le_bytes());
            body.extend_from_slice(b"abcd");
            b.extend_from_slice(&(body.len() as u32).to_le_bytes());
            b.extend_from_slice(&body);
            b
        },
        {
            // invalid UTF-8 in a goal
            let mut b = hello_bytes();
            let mut body = vec![0x02u8];
            body.extend_from_slice(&8u64.to_le_bytes());
            body.extend_from_slice(&2u32.to_le_bytes());
            body.extend_from_slice(&[0xff, 0xfe]);
            b.extend_from_slice(&(body.len() as u32).to_le_bytes());
            b.extend_from_slice(&body);
            b
        },
    ];
    for (i, payload) in barrage.iter().enumerate() {
        let frames = poke(&server, payload);
        // whatever came back decoded cleanly; no panic reached us, and
        // any error the server sent was a typed ProtoError frame
        for f in &frames {
            assert!(
                matches!(f, Frame::HelloAck { .. } | Frame::ProtoError { .. }),
                "payload {i}: unexpected frame {f:?}"
            );
        }
        assert_still_serving(&server);
    }
    assert!(server.stats().protocol_errors > 0);
    assert_eq!(server.shutdown(), 0, "barrage left stuck connections");
}

#[test]
fn half_closed_client_still_receives_computed_answers() {
    // a client that shuts down its write side after sending a request
    // must still get the answer: the writer drains in-flight jobs
    let server = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(&hello_bytes()).unwrap();
    s.write_all(
        &Frame::Count {
            id: 3,
            goal: "path(1, X)".into(),
        }
        .encode(),
    )
    .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();

    // exiting the loop means the Done frame arrived; anything else panics
    loop {
        match read_frame(&mut s) {
            Ok(Frame::HelloAck { .. }) => {}
            Ok(Frame::Done {
                id: 3, count: 3, ..
            }) => break,
            Ok(f) => panic!("unexpected frame {f:?}"),
            Err(e) => panic!("connection died before the answer: {e}"),
        }
    }
    // drain to EOF; reading past Done must end in a clean close
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn wire_error_types_cover_the_taxonomy() {
    // the typed decode errors named in the docs actually come out of the
    // decoder (client-side check, no server needed)
    let hello = Frame::Hello { version: VERSION }.encode();
    let mut r: &[u8] = &[];
    assert_eq!(read_frame(&mut r), Err(WireError::Closed));
    let mut r = &hello[..3];
    assert_eq!(read_frame(&mut r), Err(WireError::Truncated));
    assert_eq!(&MAGIC, b"XSBN");
}
