//! End-to-end tests of the network front-end: embedded-vs-remote
//! differential, pipelining, backpressure, consult broadcast, idle
//! reaping, and clean shutdown. Every server binds port 0 — no test
//! ever hardcodes a port.

use std::sync::Arc;
use std::time::{Duration, Instant};
use xsb_core::{PoolConfig, ServerPool};
use xsb_server::{
    wire, Driver, DriverError, EmbeddedDriver, Outcome, RemoteConn, Server, ServerConfig,
};

const GRAPH: &str = r#"
    :- table path/2.
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
    edge(1,2). edge(2,3). edge(3,1).
    p(f(X, b)) :- q(X).
    q(a). q('hello world'). q(7).
"#;

fn small_config() -> ServerConfig {
    ServerConfig {
        pool: PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
        batch: 2, // small batches so multi-frame streaming is exercised
        ..ServerConfig::default()
    }
}

/// Spin until `cond` holds or ~2s elapse; background threads (connection
/// reaping, active-count drain) need a bounded grace period.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn remote_client_gets_identical_answers_to_embedded_driver() {
    let pool = Arc::new(ServerPool::new(GRAPH, small_config().pool).unwrap());
    let server = Server::start_on_pool(Arc::clone(&pool), small_config()).unwrap();

    // same pool, two transports
    let mut embedded = EmbeddedDriver::new(Arc::clone(&pool)).with_batch(2);
    let mut remote = RemoteConn::connect(server.addr()).unwrap();

    for goal in ["path(1, X)", "path(X, Y)", "p(Z)", "q(W)"] {
        let via_pool = embedded.query(goal).unwrap().collect_all().unwrap();
        let via_wire = remote.query(goal).unwrap().collect_all().unwrap();
        assert_eq!(
            via_pool, via_wire,
            "embedded and remote answers diverge for {goal}"
        );
        assert!(!via_wire.is_empty(), "no answers for {goal}");
        assert_eq!(
            embedded.count(goal).unwrap(),
            remote.count(goal).unwrap(),
            "counts diverge for {goal}"
        );
    }

    // structured terms and quoted atoms survive rendering + the wire
    let p = remote.query("p(Z)").unwrap().collect_all().unwrap();
    let rendered: Vec<&str> = p.iter().map(|a| a[0].1.as_str()).collect();
    assert!(rendered.contains(&"f(a,b)"), "got {rendered:?}");
    assert!(rendered.contains(&"f('hello world',b)"), "got {rendered:?}");

    remote.close();
    assert_eq!(server.shutdown(), 0, "connections stuck at shutdown");
}

#[test]
fn pipelined_requests_demux_by_id_in_any_order() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();
    assert_eq!(c.workers(), 2);

    // fire before harvesting anything: all three in flight at once
    let a = c.send_count("path(1, X)").unwrap();
    let b = c.send_query("q(W)").unwrap();
    let d = c.send_count("path(X, Y)").unwrap();

    // harvest out of submission order
    match c.wait(d).unwrap() {
        Outcome::Complete { completion, .. } => assert_eq!(completion.count, 9),
        other => panic!("expected completion, got {other:?}"),
    }
    match c.wait(b).unwrap() {
        Outcome::Complete {
            answers,
            completion,
        } => {
            assert_eq!(completion.count, 3);
            assert_eq!(answers.len(), 3);
            assert_eq!(answers[0][0].0, "W");
        }
        other => panic!("expected completion, got {other:?}"),
    }
    match c.wait(a).unwrap() {
        Outcome::Complete { completion, .. } => assert_eq!(completion.count, 3),
        other => panic!("expected completion, got {other:?}"),
    }
    c.close();
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn overflow_is_shed_with_typed_busy() {
    // a 48-node cycle: path(X,Y) has 48*48 answers, milliseconds of
    // work — a wall that keeps the single worker busy while the
    // remaining submissions hit the full admission queue (depth 1)
    let mut program = String::from(
        ":- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n",
    );
    for i in 0..48 {
        program.push_str(&format!("edge({}, {}).\n", i, (i + 1) % 48));
    }
    let config = ServerConfig {
        pool: PoolConfig {
            workers: 1,
            queue_depth: Some(1),
            ..PoolConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(&program, config).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();

    let ids: Vec<u64> = (0..6)
        .map(|_| c.send_count("path(X, Y)").unwrap())
        .collect();
    let mut done = 0u32;
    let mut busy = 0u32;
    for id in ids {
        match c.wait(id).unwrap() {
            Outcome::Complete { completion, .. } => {
                assert_eq!(completion.count, 48 * 48);
                done += 1;
            }
            Outcome::Busy => busy += 1,
            Outcome::Error(e) => panic!("unexpected engine error: {e}"),
        }
    }
    assert_eq!(done + busy, 6);
    assert!(done >= 1, "at least the first request must run");
    assert!(busy >= 1, "queue depth 1 must shed the burst");
    let stats = server.stats();
    assert_eq!(stats.rejections, busy as u64);
    assert_eq!(stats.requests, 6);
    // every accepted and rejected request has released its admission slot
    assert!(eventually(|| server.pool().inflight() == 0));
    c.close();
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn consult_over_the_wire_reaches_every_worker() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();

    assert_eq!(c.count("q(W)").unwrap(), 3);
    c.consult("r(extra1). r(extra2).").unwrap();
    // workers are queried round-robin; ask enough times to hit both
    for _ in 0..4 {
        assert_eq!(c.count("r(W)").unwrap(), 2);
        assert_eq!(c.count("q(W)").unwrap(), 3);
    }
    c.close();
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn engine_error_is_per_request_and_connection_survives() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();

    match c.count("this is not a goal ((") {
        Err(DriverError::Engine(_)) => {}
        other => panic!("expected engine error, got {other:?}"),
    }
    // the same connection still answers
    assert_eq!(c.count("path(1, X)").unwrap(), 3);
    c.close();
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn idle_connections_are_reaped_by_read_timeout() {
    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(50)),
        ..small_config()
    };
    let server = Server::start(GRAPH, config).unwrap();

    // a client that handshakes and then goes silent
    let mut c = RemoteConn::connect(server.addr()).unwrap();
    assert!(eventually(|| server.stats().active == 1));
    // ... and one that never even says Hello
    let raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();

    assert!(
        eventually(|| server.stats().active == 0),
        "idle connections were not reaped: {} still active",
        server.stats().active
    );
    // the reaped client sees a close, not a protocol error
    match c.count("q(W)") {
        Err(DriverError::Wire(_)) => {}
        other => panic!("expected a dead connection, got {other:?}"),
    }
    assert_eq!(server.stats().protocol_errors, 0);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn metrics_surface_serving_counters_and_wire_latency() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();
    for _ in 0..3 {
        assert_eq!(c.count("path(1, X)").unwrap(), 3);
    }
    c.consult("q(another).").unwrap();

    // wait for the terminal frames to be written (stats are updated by
    // the writer thread)
    assert!(eventually(
        || server.metrics().lookup("net_requests") == Some(4)
    ));
    let m = server.metrics();
    assert_eq!(m.lookup("net_connections"), Some(1));
    assert_eq!(m.lookup("net_rejections"), Some(0));
    assert_eq!(m.lookup("net_protocol_errors"), Some(0));
    assert!(m.wire_latency.count() >= 4, "wire latency not recorded");

    // the statistics/2 JSON view carries the same rows
    let json = m.to_json().to_string();
    for key in [
        "net_connections",
        "net_requests",
        "net_rejections",
        "net_protocol_errors",
    ] {
        assert!(json.contains(key), "{key} missing from metrics JSON");
    }
    c.close();
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn bye_closes_cleanly_and_shutdown_reports_no_stuck_connections() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut clients: Vec<RemoteConn> = (0..3)
        .map(|_| RemoteConn::connect(server.addr()).unwrap())
        .collect();
    for c in &mut clients {
        assert_eq!(c.count("path(1, X)").unwrap(), 3);
    }
    assert!(eventually(|| server.stats().active == 3));
    for c in clients {
        c.close();
    }
    assert!(eventually(|| server.stats().active == 0));
    let stats = server.stats();
    assert_eq!(stats.connections, 3);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn answers_stream_lazily_through_the_iterator() {
    let server = Server::start(GRAPH, small_config()).unwrap();
    let mut c = RemoteConn::connect(server.addr()).unwrap();
    let mut stream = c.query("path(X, Y)").unwrap();
    let first = stream.next().unwrap().unwrap();
    assert_eq!(first.len(), 2, "two variables bound");
    assert_eq!(first[0].0, "X");
    assert_eq!(first[1].0, "Y");
    let rest: Result<Vec<_>, _> = stream.by_ref().collect();
    assert_eq!(rest.unwrap().len(), 8);
    let completion = stream.completion().expect("stream saw its Done frame");
    assert_eq!(completion.count, 9);
    // wire module consts are part of the public contract
    assert_eq!(&wire::MAGIC, b"XSBN");
    c.close();
    assert_eq!(server.shutdown(), 0);
}
