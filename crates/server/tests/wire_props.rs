//! Property tests for the wire protocol, over the in-tree deterministic
//! `proptest` stand-in. Run with:
//!
//! ```sh
//! cargo test -p xsb-server --features proptest
//! ```
//!
//! Three properties: (1) every frame the protocol can produce survives
//! an encode → decode round trip bit-exactly; (2) truncating a valid
//! frame at *any* byte boundary yields a typed error, never a panic;
//! (3) arbitrary byte mutations and pure garbage either decode to a
//! frame that re-encodes canonically or fail with a typed error —
//! decode is total.
#![cfg(feature = "proptest")]

use proptest::collection::vec;
use proptest::prelude::*;
use xsb_server::wire::{read_frame, Frame, WireError, VERSION};

/// Strings mixing ASCII, Greek, and an astral-plane emoji, so every
/// UTF-8 sequence length crosses the wire.
fn arb_string() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![32u32..127, 0x3b1u32..0x3c9, Just(0x1F600u32)],
        0..24,
    )
    .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

fn arb_answers() -> impl Strategy<Value = Vec<Vec<(String, String)>>> {
    vec(vec((arb_string(), arb_string()), 0..4), 0..5)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::Hello { version: VERSION }),
        (0u32..u32::MAX, 0u32..256).prop_map(|(v, w)| Frame::HelloAck {
            version: (v % 65536) as u16,
            workers: w as u16,
        }),
        (0u64..u64::MAX, arb_string()).prop_map(|(id, goal)| Frame::Query { id, goal }),
        (0u64..u64::MAX, arb_string()).prop_map(|(id, goal)| Frame::Count { id, goal }),
        (0u64..u64::MAX, arb_string()).prop_map(|(id, text)| Frame::Consult { id, text }),
        Just(Frame::Bye),
        (0u64..u64::MAX, arb_answers()).prop_map(|(id, answers)| Frame::Answers { id, answers }),
        (0u64..u64::MAX, 0u64..1 << 40, 0u64..1 << 40).prop_map(|(id, count, ns)| Frame::Done {
            id,
            count,
            queue_wait_ns: ns,
            run_ns: ns / 2,
        }),
        (0u64..u64::MAX).prop_map(|id| Frame::Busy { id }),
        (0u64..u64::MAX, arb_string()).prop_map(|(id, message)| Frame::Error { id, message }),
        (0u32..256, arb_string()).prop_map(|(code, message)| Frame::ProtoError {
            code: code as u8,
            message,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        let mut r = &bytes[..];
        let back = read_frame(&mut r);
        prop_assert_eq!(back, Ok(frame));
        prop_assert!(r.is_empty(), "decode left {} bytes unread", r.len());
    }

    #[test]
    fn truncation_at_any_boundary_is_a_typed_error(
        frame in arb_frame(),
        cut_seed in 0u64..1 << 32,
    ) {
        let bytes = frame.encode();
        // cut somewhere strictly inside the frame
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let mut r = &bytes[..cut];
        match read_frame(&mut r) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(_) => {} // typed failure: the contract
            Ok(f) => {
                return Err(TestCaseError::fail(format!(
                    "prefix of length {cut} decoded as {f:?}"
                )));
            }
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(
        frame in arb_frame(),
        pos_seed in 0u64..1 << 32,
        newbyte in 0u32..256,
    ) {
        let mut bytes = frame.encode();
        // mutate past the length prefix so the frame is still one frame
        // (length-prefix mutations are the truncation/oversize property)
        let pos = 4 + (pos_seed % (bytes.len() as u64 - 4)) as usize;
        bytes[pos] = newbyte as u8;
        let mut r = &bytes[..];
        // decode is total: either a typed error or a frame that
        // re-encodes to exactly the bytes it was decoded from
        if let Ok(f) = read_frame(&mut r) {
            prop_assert_eq!(f.encode(), bytes);
        }
    }

    #[test]
    fn pure_garbage_never_panics(garbage in vec(0u32..256, 0..64)) {
        let bytes: Vec<u8> = garbage.into_iter().map(|b| b as u8).collect();
        let mut r = &bytes[..];
        // same totality contract as above
        if let Ok(f) = read_frame(&mut r) {
            let reencoded = f.encode();
            prop_assert_eq!(&reencoded[..], &bytes[..reencoded.len()]);
        }
    }
}
