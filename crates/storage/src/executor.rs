//! Relational executor over the page store — the "Sybase role" in the
//! Table 3 reproduction: an index nested-loop join where every tuple
//! access pays the full buffer-manager toll (page-table lookup, pin,
//! latch, slot decode), plus transaction-style write-ahead bookkeeping.

use crate::buffer::BufferPool;
use crate::hashindex::HashIndex;
use crate::heap::{encode_row, Field, HeapFile, Rid};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// A table: heap file plus optional indexes.
pub struct Table {
    pub heap: HeapFile,
    pub indexes: Vec<HashIndex>,
}

impl Table {
    pub fn create(pool: Arc<BufferPool>) -> Table {
        Table {
            heap: HeapFile::create(pool),
            indexes: Vec::new(),
        }
    }

    /// Loads rows and builds an index on `column`.
    pub fn load(
        pool: Arc<BufferPool>,
        rows: impl Iterator<Item = Vec<Field>>,
        index_column: usize,
        nbuckets: usize,
    ) -> Table {
        let mut t = Table::create(pool.clone());
        for r in rows {
            t.heap.insert(&r);
        }
        t.indexes
            .push(HashIndex::build(pool, &t.heap, index_column, nbuckets));
        t
    }
}

/// A minimal log-sequence counter standing in for transactional
/// bookkeeping (Table 3: Sybase has "made special provisions for
/// concurrency [and] recoverability" that the in-memory engines have not).
pub static LSN: AtomicU64 = AtomicU64::new(0);

/// A strict-2PL style lock table: every row access acquires and releases
/// a shared lock through a shared map, as a multi-user server must.
#[derive(Default)]
pub struct LockManager {
    held: Mutex<HashSet<(u32, u16)>>,
}

impl LockManager {
    fn lock(&self, rid: Rid) {
        self.held.lock().unwrap().insert((rid.page, rid.slot));
    }

    fn unlock(&self, rid: Rid) {
        self.held.lock().unwrap().remove(&(rid.page, rid.slot));
    }
}

/// Index nested-loop equijoin: for each `outer` row, probe `inner`'s index
/// on `inner_col` with the value of `outer_col`, verify the key, and call
/// `sink` with the joined row. Returns the number of joined rows.
///
/// Every tuple access pays the full server-side toll: a lock-table
/// acquire/release (concurrency), a log-sequence tick (recoverability),
/// the buffer-manager pin + latch + slot decode, and wire-format
/// materialization of result rows — the provisions the paper's Table 3
/// notes the memory-resident engines have not made.
pub fn index_nested_loop_join(
    outer: &Table,
    outer_col: usize,
    inner: &Table,
    inner_index: usize,
    mut sink: impl FnMut(&[Field], &[Field]),
) -> usize {
    let ix = &inner.indexes[inner_index];
    let inner_col = ix.column;
    let locks = LockManager::default();
    let mut wire: Vec<u8> = Vec::new();
    let mut n = 0usize;
    outer.heap.scan(|orid, orow| {
        LSN.fetch_add(1, Ordering::Relaxed);
        locks.lock(orid);
        let key = &orow[outer_col];
        for rid in ix.probe(key) {
            locks.lock(rid);
            LSN.fetch_add(1, Ordering::Relaxed);
            let irow = inner.heap.fetch(rid);
            if &irow[inner_col] == key {
                // materialize the joined row in wire format
                wire.clear();
                wire.extend_from_slice(&encode_row(&orow));
                wire.extend_from_slice(&encode_row(&irow));
                sink(&orow, &irow);
                n += 1;
            }
            locks.unlock(rid);
        }
        locks.unlock(orid);
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Disk;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(Disk::default()), frames))
    }

    #[test]
    fn join_counts_matching_pairs() {
        let pool = pool(128);
        // R(a, b): b = a+1 ; S(b, c): c = b*10
        let r = Table::load(
            pool.clone(),
            (0..100i64).map(|a| vec![Field::Int(a), Field::Int(a + 1)]),
            0,
            32,
        );
        let s = Table::load(
            pool.clone(),
            (0..100i64).map(|b| vec![Field::Int(b), Field::Int(b * 10)]),
            0,
            32,
        );
        // join R.b = S.b
        let mut rows = Vec::new();
        let n = index_nested_loop_join(&r, 1, &s, 0, |orow, irow| {
            rows.push((orow.to_vec(), irow.to_vec()));
        });
        // R.b ranges over 1..=100; S keys over 0..=99 → 99 matches
        assert_eq!(n, 99);
        assert!(rows.iter().all(|(o, i)| o[1] == i[0]));
    }

    #[test]
    fn join_through_tiny_pool_still_correct() {
        let pool = pool(4);
        let r = Table::load(
            pool.clone(),
            (0..300i64).map(|a| vec![Field::Int(a)]),
            0,
            16,
        );
        let s = Table::load(
            pool.clone(),
            (0..300i64)
                .filter(|a| a % 3 == 0)
                .map(|a| vec![Field::Int(a)]),
            0,
            16,
        );
        let n = index_nested_loop_join(&r, 0, &s, 0, |_, _| {});
        assert_eq!(n, 100);
    }
}

/// An interpreted row predicate — the per-row WHERE-clause evaluation a
/// SQL engine performs by walking an expression tree, rather than running
/// compiled code.
#[derive(Clone, Debug)]
pub enum RowExpr {
    /// `outer[col] == inner[col]`
    JoinEq { outer_col: usize, inner_col: usize },
    /// conjunction
    And(Box<RowExpr>, Box<RowExpr>),
    /// always true
    True,
}

impl RowExpr {
    pub fn eval(&self, outer: &[Field], inner: &[Field]) -> bool {
        match self {
            RowExpr::JoinEq {
                outer_col,
                inner_col,
            } => outer[*outer_col] == inner[*inner_col],
            RowExpr::And(a, b) => a.eval(outer, inner) && b.eval(outer, inner),
            RowExpr::True => true,
        }
    }
}

/// Client/server indexed join — the full "Sybase role" for Table 3: the
/// server runs [`index_nested_loop_join`]-style access (buffer manager,
/// locks, log), evaluates the join predicate *interpretively* per candidate
/// row, and ships every result row in wire format through a channel to a
/// client thread, which decodes it. Returns the client-side row count.
pub fn client_server_join(
    outer: &Table,
    outer_col: usize,
    inner: &Table,
    inner_index: usize,
) -> usize {
    use std::sync::mpsc;
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(64);
    let client = std::thread::spawn(move || {
        let mut n = 0usize;
        for packet in rx {
            // client-side decode of the wire row
            let row = crate::heap::decode_row(&packet);
            debug_assert!(!row.is_empty());
            n += 1;
        }
        n
    });

    let ix = &inner.indexes[inner_index];
    let predicate = RowExpr::And(
        Box::new(RowExpr::JoinEq {
            outer_col,
            inner_col: ix.column,
        }),
        Box::new(RowExpr::True),
    );
    let locks = LockManager::default();
    outer.heap.scan(|orid, orow| {
        LSN.fetch_add(1, Ordering::Relaxed);
        locks.lock(orid);
        let key = &orow[outer_col];
        for rid in ix.probe(key) {
            locks.lock(rid);
            LSN.fetch_add(1, Ordering::Relaxed);
            let irow = inner.heap.fetch(rid);
            if predicate.eval(&orow, &irow) {
                // wire-format result row shipped to the client
                let mut joined = orow.clone();
                joined.extend(irow.iter().cloned());
                tx.send(encode_row(&joined)).expect("client alive");
            }
            locks.unlock(rid);
        }
        locks.unlock(orid);
    });
    drop(tx);
    client.join().expect("client thread")
}

#[cfg(test)]
mod client_server_tests {
    use super::*;
    use crate::buffer::Disk;

    #[test]
    fn client_server_join_agrees_with_local_join() {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::default()), 64));
        let r = Table::load(
            pool.clone(),
            (0..200i64).map(|a| vec![Field::Int(a), Field::Int(a % 10)]),
            1,
            16,
        );
        let s = Table::load(
            pool.clone(),
            (0..10i64).map(|b| vec![Field::Int(b), Field::Int(b * 100)]),
            0,
            16,
        );
        let local = index_nested_loop_join(&r, 1, &s, 0, |_, _| {});
        let remote = client_server_join(&r, 1, &s, 0);
        assert_eq!(local, remote);
        assert_eq!(local, 200);
    }
}
