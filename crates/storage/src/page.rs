//! Slotted pages.
//!
//! The persistent-store substrate stores tuples in 4 KiB slotted pages:
//! a header, a slot directory growing from the front, and tuple data
//! growing from the back. This is the classic RDBMS layout whose per-access
//! costs (slot indirection, bounds checks, page latching upstream) are what
//! Table 3 of the paper attributes the ~100× gap to.

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;
const HEADER: usize = 4; // nslots u16 | free_end u16
const SLOT: usize = 4; // off u16 | len u16

/// A slot id within a page.
pub type SlotId = u16;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    pub fn new() -> Page {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_nslots(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    fn nslots(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_nslots(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_end(&mut self, n: u16) {
        self.data[2..4].copy_from_slice(&n.to_le_bytes());
    }

    fn slot(&self, i: SlotId) -> (u16, u16) {
        let base = HEADER + i as usize * SLOT;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot(&mut self, i: SlotId, off: u16, len: u16) {
        let base = HEADER + i as usize * SLOT;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Free space remaining (for one more tuple including its slot).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER + self.nslots() as usize * SLOT;
        (self.free_end() as usize).saturating_sub(slots_end + SLOT)
    }

    /// Inserts a tuple, returning its slot, or `None` if the page is full.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<SlotId> {
        if tuple.len() > self.free_space() {
            return None;
        }
        let id = self.nslots();
        let off = self.free_end() as usize - tuple.len();
        self.data[off..off + tuple.len()].copy_from_slice(tuple);
        self.set_slot(id, off as u16, tuple.len() as u16);
        self.set_free_end(off as u16);
        self.set_nslots(id + 1);
        Some(id)
    }

    /// Reads the tuple in `slot` (empty slice if deleted).
    pub fn get(&self, slot: SlotId) -> &[u8] {
        debug_assert!(slot < self.nslots());
        let (off, len) = self.slot(slot);
        &self.data[off as usize..(off + len) as usize]
    }

    /// Logically deletes a slot (length zeroed; space not compacted).
    pub fn delete(&mut self, slot: SlotId) {
        let (off, _) = self.slot(slot);
        self.set_slot(slot, off, 0);
    }

    pub fn tuple_count(&self) -> u16 {
        self.nslots()
    }

    /// Iterates live (non-deleted) slots.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.nslots()).filter(|&s| {
            let (_, len) = self.slot(s);
            len > 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), b"hello");
        assert_eq!(p.get(b), b"world!");
        assert_eq!(p.tuple_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 4096 - 4 header; each tuple costs 104 bytes
        assert!((38..=40).contains(&n), "page held {n} tuples");
        assert!(p.insert(&tuple).is_none());
    }

    #[test]
    fn delete_hides_slot() {
        let mut p = Page::new();
        let a = p.insert(b"one").unwrap();
        let b = p.insert(b"two").unwrap();
        p.delete(a);
        let live: Vec<_> = p.live_slots().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn empty_page_has_room() {
        let p = Page::new();
        assert!(p.free_space() > 4000);
    }
}
