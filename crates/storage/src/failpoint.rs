//! Deterministic fault injection for the WAL: a [`Vfs`] that models a
//! kernel page cache over a disk, and can crash at any point.
//!
//! `FailpointFs` keeps the full written stream plus a *synced* watermark
//! (everything at or below it reached "disk"). Faults:
//!
//! * **kill-at-byte** — writes past a configured byte offset fail
//!   (partial data up to the offset is kept, modelling a torn write);
//!   every subsequent operation returns an error, like a pulled plug.
//! * **dropped fsyncs** — `sync` returns success without advancing the
//!   watermark, modelling a lying disk / missing barrier.
//! * **crash images** — [`crash_image`] produces the byte stream a
//!   restarted process would read, under a chosen [`CrashMode`]:
//!   everything written (clean kill of the *process* only), the synced
//!   prefix (power loss with an honest disk), or the synced prefix plus
//!   a garbled torn final sector (power loss mid-sector-write).
//!
//! All behaviour is deterministic — the sector garbling uses a fixed
//! byte pattern, not randomness — so crash-matrix tests are replayable.

use crate::log::Vfs;
use std::io;
use std::sync::{Arc, Mutex};

/// Disk sector size used for torn-write simulation.
pub const SECTOR: usize = 512;

/// What a restarted process finds on "disk".
#[derive(Clone, Copy, Debug)]
pub enum CrashMode {
    /// Process death only: every written byte survives (the page cache
    /// was flushed by the OS). Image = full stream, clipped to `at`.
    Exact { at: u64 },
    /// Power loss, honest disk: only explicitly synced bytes survive.
    SyncedOnly,
    /// Power loss mid-write: synced bytes survive, plus the unsynced tail
    /// with its final sector garbled (torn write).
    TornTail,
}

/// Fault-injecting [`Vfs`]. Dependency-free and fully deterministic.
pub struct FailpointFs {
    data: Vec<u8>,
    synced: u64,
    /// Writes that would extend the stream past this offset die.
    kill_at: Option<u64>,
    /// When set, `sync` lies: returns Ok without advancing the watermark.
    drop_syncs: bool,
    /// Set after a kill fires: all further operations error.
    dead: bool,
    /// Number of successful syncs (observability for tests).
    pub syncs: u64,
}

impl FailpointFs {
    pub fn new() -> FailpointFs {
        FailpointFs {
            data: Vec::new(),
            synced: 0,
            kill_at: None,
            drop_syncs: false,
            dead: false,
            syncs: 0,
        }
    }

    /// Arms the kill switch: any write extending the stream past byte
    /// `offset` writes the prefix up to `offset`, then fails — and the
    /// store is dead from then on.
    pub fn kill_at_byte(&mut self, offset: u64) {
        self.kill_at = Some(offset);
    }

    /// Makes `sync` lie (return Ok, advance nothing).
    pub fn set_drop_syncs(&mut self, drop: bool) {
        self.drop_syncs = drop;
    }

    /// True once a kill has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Bytes written so far (including unsynced tail).
    pub fn written_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Bytes known durable.
    pub fn synced_len(&self) -> u64 {
        self.synced
    }

    /// The byte stream a restarted process would read after a crash.
    pub fn crash_image(&self, mode: CrashMode) -> Vec<u8> {
        match mode {
            CrashMode::Exact { at } => {
                let n = (at as usize).min(self.data.len());
                self.data[..n].to_vec()
            }
            CrashMode::SyncedOnly => self.data[..self.synced as usize].to_vec(),
            CrashMode::TornTail => {
                let mut img = self.data.clone();
                let tail = img.len().saturating_sub(self.synced as usize);
                if tail > 0 {
                    let torn = tail.min(SECTOR);
                    let start = img.len() - torn;
                    for (i, b) in img[start..].iter_mut().enumerate() {
                        // deterministic garble: invert and mix in position
                        *b = !*b ^ (i as u8).wrapping_mul(0x9d);
                    }
                }
                img
            }
        }
    }
}

impl Default for FailpointFs {
    fn default() -> Self {
        FailpointFs::new()
    }
}

impl Vfs for FailpointFs {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "failpoint: store is dead",
            ));
        }
        if let Some(k) = self.kill_at {
            let end = self.data.len() as u64 + data.len() as u64;
            if end > k {
                // torn write: the prefix up to the kill point lands
                let keep = (k as usize).saturating_sub(self.data.len());
                self.data.extend_from_slice(&data[..keep.min(data.len())]);
                self.dead = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "failpoint: killed write at configured byte",
                ));
            }
        }
        self.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "failpoint: store is dead",
            ));
        }
        if !self.drop_syncs {
            self.synced = self.data.len() as u64;
            self.syncs += 1;
        }
        Ok(())
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.data.clone())
    }

    fn rewrite(&mut self, data: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "failpoint: store is dead",
            ));
        }
        if let Some(k) = self.kill_at {
            if data.len() as u64 > k {
                self.dead = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "failpoint: killed rewrite at configured byte",
                ));
            }
        }
        // rewrite is atomic (tmp+rename in FileVfs): all-or-nothing
        self.data = data.to_vec();
        self.synced = self.data.len() as u64;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// A shareable failpoint store: hand one clone to a `Wal` (it implements
/// [`Vfs`]) and keep the other to arm faults / take crash images while the
/// log is live.
pub type SharedFailpoint = Arc<Mutex<FailpointFs>>;

pub fn shared_failpoint() -> SharedFailpoint {
    Arc::new(Mutex::new(FailpointFs::new()))
}

impl Vfs for SharedFailpoint {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.lock().unwrap().append(data)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.lock().unwrap().sync()
    }
    fn read_all(&self) -> io::Result<Vec<u8>> {
        self.lock().unwrap().read_all()
    }
    fn rewrite(&mut self, data: &[u8]) -> io::Result<()> {
        self.lock().unwrap().rewrite(data)
    }
    fn len(&self) -> u64 {
        self.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{scan_records, Wal};

    #[test]
    fn kill_at_byte_tears_write() {
        let mut fs = FailpointFs::new();
        fs.kill_at_byte(10);
        fs.append(b"12345678").unwrap();
        let err = fs.append(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(fs.is_dead());
        assert_eq!(fs.read_all().unwrap(), b"12345678ab"); // torn at byte 10
        assert!(fs.append(b"more").is_err()); // dead stays dead
    }

    #[test]
    fn dropped_fsync_loses_unsynced_tail() {
        let mut fs = FailpointFs::new();
        fs.append(b"durable!").unwrap();
        fs.sync().unwrap();
        fs.set_drop_syncs(true);
        fs.append(b"lost").unwrap();
        fs.sync().unwrap(); // lies
        assert_eq!(fs.synced_len(), 8);
        assert_eq!(fs.crash_image(CrashMode::SyncedOnly), b"durable!");
    }

    #[test]
    fn torn_tail_garbles_final_sector_deterministically() {
        let mut fs = FailpointFs::new();
        fs.append(&[7u8; 100]).unwrap();
        fs.sync().unwrap();
        fs.append(&[9u8; 600]).unwrap();
        let a = fs.crash_image(CrashMode::TornTail);
        let b = fs.crash_image(CrashMode::TornTail);
        assert_eq!(a, b); // deterministic
        assert_eq!(a.len(), 700);
        assert_eq!(&a[..100], &[7u8; 100]); // synced prefix intact
        assert_eq!(&a[100..188], &[9u8; 88]); // unsynced but un-torn middle
        assert_ne!(&a[188..], &[9u8; 512]); // final sector garbled
    }

    #[test]
    fn torn_wal_tail_recovers_to_synced_prefix() {
        let fs = shared_failpoint();
        // write two records through the real Wal framing, sync after first
        let (mut wal, _) = Wal::open(Box::new(fs.clone())).unwrap();
        wal.append(b"committed").unwrap();
        wal.sync().unwrap();
        wal.append(b"in flight").unwrap();
        drop(wal);
        let img = fs.lock().unwrap().crash_image(CrashMode::TornTail);
        let scan = scan_records(&img);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
    }
}
