//! Buffer pool with latching and clock eviction.
//!
//! Every page access goes through the pool: look up the page table, pin the
//! frame, take a read/write latch, and unpin afterwards. The backing
//! "disk" is an in-memory page vector (we measure the *management* cost,
//! not I/O — the paper's Table 3 measures Sybase with "all data … in the
//! Sybase system buffer" too, so the comparison is precisely about this
//! per-access machinery plus concurrency provisions).

use crate::page::{Page, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

/// Page identifier on "disk".
pub type PageId = u32;

/// One buffer frame.
struct Frame {
    page_id: AtomicU32,
    pin_count: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
    /// LSN of the latest logged update to this page (0 = unlogged).
    /// WAL-before-data: the page may not be written back while this
    /// exceeds the WAL's flushed LSN.
    page_lsn: AtomicU64,
    page: RwLock<Page>,
}

/// Connection from the buffer pool to a write-ahead log, enforcing the
/// WAL-before-data rule: before any dirty page is written back, the log
/// must be durable up to that page's `page_lsn`.
pub struct WalLink {
    /// Highest LSN known durable (owned by the log; the pool only reads).
    pub flushed_lsn: Arc<AtomicU64>,
    /// Forces the log durable up to at least the given LSN (and must
    /// advance `flushed_lsn` accordingly before returning).
    pub force: Arc<dyn Fn(u64) + Send + Sync>,
}

/// The simulated disk: stable page storage.
#[derive(Default)]
pub struct Disk {
    pages: Mutex<Vec<Page>>,
}

impl Disk {
    pub fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock().unwrap();
        pages.push(Page::new());
        (pages.len() - 1) as PageId
    }

    fn read(&self, id: PageId) -> Page {
        self.pages.lock().unwrap()[id as usize].clone()
    }

    fn write(&self, id: PageId, p: &Page) {
        self.pages.lock().unwrap()[id as usize] = p.clone();
    }

    pub fn page_count(&self) -> usize {
        self.pages.lock().unwrap().len()
    }
}

const NO_PAGE: u32 = u32::MAX;

/// A fixed-capacity buffer pool over a [`Disk`].
pub struct BufferPool {
    pub disk: Arc<Disk>,
    frames: Vec<Frame>,
    table: Mutex<HashMap<PageId, usize>>,
    clock_hand: AtomicU32,
    /// WAL hookup; when present, every dirty write-back first forces the
    /// log up to the page's LSN (WAL-before-data).
    wal: Mutex<Option<WalLink>>,
    /// statistics
    pub hits: AtomicU32,
    pub misses: AtomicU32,
}

/// A pinned page guard: unpins on drop.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    frame: usize,
}

impl PinnedPage<'_> {
    /// Takes the read latch and runs `f`.
    pub fn read<R>(&self, f: impl FnOnce(&Page) -> R) -> R {
        let guard = self.pool.frames[self.frame].page.read().unwrap();
        f(&guard)
    }

    /// Takes the write latch, runs `f`, marks the frame dirty.
    pub fn write<R>(&self, f: impl FnOnce(&mut Page) -> R) -> R {
        let mut guard = self.pool.frames[self.frame].page.write().unwrap();
        self.pool.frames[self.frame]
            .dirty
            .store(true, Ordering::Release);
        f(&mut guard)
    }

    /// Like [`write`](PinnedPage::write), but stamps the frame with the
    /// LSN of the log record describing this update. The page cannot
    /// reach disk until the WAL is durable past `lsn`.
    pub fn write_logged<R>(&self, lsn: u64, f: impl FnOnce(&mut Page) -> R) -> R {
        let fr = &self.pool.frames[self.frame];
        let mut guard = fr.page.write().unwrap();
        fr.dirty.store(true, Ordering::Release);
        fr.page_lsn.fetch_max(lsn, Ordering::AcqRel);
        f(&mut guard)
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.frame]
            .pin_count
            .fetch_sub(1, Ordering::AcqRel);
    }
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<Disk>, capacity: usize) -> BufferPool {
        let frames = (0..capacity)
            .map(|_| Frame {
                page_id: AtomicU32::new(NO_PAGE),
                pin_count: AtomicU32::new(0),
                referenced: AtomicBool::new(false),
                dirty: AtomicBool::new(false),
                page_lsn: AtomicU64::new(0),
                page: RwLock::new(Page::new()),
            })
            .collect();
        BufferPool {
            disk,
            frames,
            table: Mutex::new(HashMap::new()),
            clock_hand: AtomicU32::new(0),
            wal: Mutex::new(None),
            hits: AtomicU32::new(0),
            misses: AtomicU32::new(0),
        }
    }

    /// Attaches a WAL: from now on no page with `page_lsn` above the
    /// log's flushed LSN is written back without forcing the log first.
    pub fn set_wal(&self, link: WalLink) {
        *self.wal.lock().unwrap() = Some(link);
    }

    /// WAL-before-data guard: called immediately before writing frame `f`
    /// back to disk. Forces the log if the page's LSN outruns it.
    fn ensure_wal_durable(&self, f: usize) {
        let lsn = self.frames[f].page_lsn.load(Ordering::Acquire);
        if lsn == 0 {
            return;
        }
        let wal = self.wal.lock().unwrap();
        if let Some(link) = wal.as_ref() {
            if link.flushed_lsn.load(Ordering::Acquire) < lsn {
                (link.force)(lsn);
            }
            debug_assert!(
                link.flushed_lsn.load(Ordering::Acquire) >= lsn,
                "WAL force failed to reach page LSN {lsn}"
            );
        }
    }

    /// Pins `page_id`, faulting it in (with clock eviction) if absent.
    pub fn pin(&self, page_id: PageId) -> PinnedPage<'_> {
        let mut table = self.table.lock().unwrap();
        if let Some(&f) = table.get(&page_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.frames[f].pin_count.fetch_add(1, Ordering::AcqRel);
            self.frames[f].referenced.store(true, Ordering::Release);
            return PinnedPage {
                pool: self,
                frame: f,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // clock eviction: find an unpinned frame
        let n = self.frames.len();
        let mut spins = 0usize;
        let victim = loop {
            let hand = self.clock_hand.fetch_add(1, Ordering::Relaxed) as usize % n;
            let fr = &self.frames[hand];
            if fr.pin_count.load(Ordering::Acquire) == 0 {
                if fr.referenced.swap(false, Ordering::AcqRel) {
                    // second chance
                } else {
                    break hand;
                }
            }
            spins += 1;
            assert!(
                spins < n * 4 + 16,
                "buffer pool exhausted: all {n} frames pinned"
            );
        };
        // write back and remap
        let old_id = self.frames[victim].page_id.load(Ordering::Acquire);
        if old_id != NO_PAGE {
            if self.frames[victim].dirty.swap(false, Ordering::AcqRel) {
                self.ensure_wal_durable(victim);
                let page = self.frames[victim].page.read().unwrap();
                self.disk.write(old_id, &page);
            }
            table.remove(&old_id);
            self.frames[victim].page_lsn.store(0, Ordering::Release);
        }
        {
            let mut page = self.frames[victim].page.write().unwrap();
            *page = self.disk.read(page_id);
        }
        self.frames[victim]
            .page_id
            .store(page_id, Ordering::Release);
        self.frames[victim].pin_count.store(1, Ordering::Release);
        self.frames[victim]
            .referenced
            .store(true, Ordering::Release);
        table.insert(page_id, victim);
        PinnedPage {
            pool: self,
            frame: victim,
        }
    }

    /// Flushes all dirty frames to disk, forcing the WAL ahead of each
    /// page whose LSN outruns the flushed LSN (WAL-before-data).
    pub fn flush_all(&self) {
        let table = self.table.lock().unwrap();
        for (&pid, &f) in table.iter() {
            if self.frames[f].dirty.swap(false, Ordering::AcqRel) {
                self.ensure_wal_durable(f);
                let page = self.frames[f].page.read().unwrap();
                self.disk.write(pid, &page);
            }
        }
    }

    /// Approximate memory devoted to the pool.
    pub fn capacity_bytes(&self) -> usize {
        self.frames.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_faults_and_hits() {
        let disk = Arc::new(Disk::default());
        let p0 = disk.allocate();
        let pool = BufferPool::new(disk, 4);
        {
            let pinned = pool.pin(p0);
            pinned.write(|pg| {
                pg.insert(b"data").unwrap();
            });
        }
        {
            let pinned = pool.pin(p0);
            pinned.read(|pg| assert_eq!(pg.get(0), b"data"));
        }
        assert_eq!(pool.misses.load(Ordering::Relaxed), 1);
        assert_eq!(pool.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let disk = Arc::new(Disk::default());
        let ids: Vec<PageId> = (0..8).map(|_| disk.allocate()).collect();
        let pool = BufferPool::new(disk.clone(), 2);
        for (i, &id) in ids.iter().enumerate() {
            let pinned = pool.pin(id);
            pinned.write(|pg| {
                pg.insert(&[i as u8; 8]).unwrap();
            });
        }
        // every page was evicted at least once by the tiny pool; re-read all
        for (i, &id) in ids.iter().enumerate() {
            let pinned = pool.pin(id);
            pinned.read(|pg| assert_eq!(pg.get(0), &[i as u8; 8]));
        }
    }

    #[test]
    fn flush_forces_wal_before_data() {
        let disk = Arc::new(Disk::default());
        let p_logged = disk.allocate();
        let p_clean = disk.allocate();
        let pool = BufferPool::new(disk, 4);
        let flushed = Arc::new(AtomicU64::new(5));
        let forced = Arc::new(Mutex::new(Vec::new()));
        let (fl, fo) = (flushed.clone(), forced.clone());
        pool.set_wal(WalLink {
            flushed_lsn: flushed.clone(),
            force: Arc::new(move |lsn| {
                fo.lock().unwrap().push(lsn);
                fl.fetch_max(lsn, Ordering::AcqRel);
            }),
        });
        // page with LSN 42 > flushed 5: flush must force the WAL first
        pool.pin(p_logged).write_logged(42, |pg| {
            pg.insert(b"logged").unwrap();
        });
        // page with LSN 3 <= flushed 5: no force needed
        pool.pin(p_clean).write_logged(3, |pg| {
            pg.insert(b"clean").unwrap();
        });
        pool.flush_all();
        assert_eq!(*forced.lock().unwrap(), vec![42]);
        assert!(flushed.load(Ordering::Acquire) >= 42);
        // second flush: nothing dirty, no further forces
        pool.flush_all();
        assert_eq!(forced.lock().unwrap().len(), 1);
    }

    #[test]
    fn eviction_forces_wal_before_writeback() {
        let disk = Arc::new(Disk::default());
        let ids: Vec<PageId> = (0..4).map(|_| disk.allocate()).collect();
        let pool = BufferPool::new(disk, 2);
        let flushed = Arc::new(AtomicU64::new(0));
        let forced = Arc::new(Mutex::new(Vec::new()));
        let (fl, fo) = (flushed.clone(), forced.clone());
        pool.set_wal(WalLink {
            flushed_lsn: flushed.clone(),
            force: Arc::new(move |lsn| {
                fo.lock().unwrap().push(lsn);
                fl.fetch_max(lsn, Ordering::AcqRel);
            }),
        });
        for (i, &id) in ids.iter().enumerate() {
            pool.pin(id).write_logged((i as u64 + 1) * 10, |pg| {
                pg.insert(&[i as u8; 4]).unwrap();
            });
        }
        // the 2-frame pool evicted dirty pages; each write-back forced
        // the WAL to at least that page's LSN first
        let forced = forced.lock().unwrap();
        assert!(!forced.is_empty());
        let mut hi = 0;
        for &lsn in forced.iter() {
            assert!(lsn > hi, "forces must be monotonically increasing");
            hi = lsn;
        }
        assert!(flushed.load(Ordering::Acquire) >= hi);
    }

    #[test]
    fn concurrent_pins_across_threads() {
        let disk = Arc::new(Disk::default());
        let id = disk.allocate();
        let pool = BufferPool::new(disk, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..100 {
                        let pinned = pool.pin(id);
                        pinned.write(|pg| {
                            pg.insert(&[t as u8]).unwrap();
                        });
                    }
                });
            }
        });
        let pinned = pool.pin(id);
        pinned.read(|pg| assert_eq!(pg.tuple_count(), 400));
    }
}
