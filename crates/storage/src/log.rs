//! Append-only write-ahead log: record framing, checksums, and the
//! backing-store abstraction.
//!
//! The WAL is a flat byte stream: an 8-byte magic header followed by
//! records. Each record is framed as
//!
//! ```text
//! [len: u32 LE] [crc: u64 LE = FNV-1a(payload)] [payload: len bytes]
//! ```
//!
//! The **LSN** of a record is the byte offset of its first frame byte in
//! the stream; LSNs are therefore strictly increasing and directly
//! comparable to file sizes ("everything below offset N is durable").
//! Payload bytes are opaque here — the engine layer defines the record
//! schema (begin/commit/abort, assert/retract images, checkpoint).
//!
//! [`scan_records`] is the recovery-side reader: it walks the stream and
//! stops at the first frame whose length runs past the end of the file or
//! whose checksum does not match — the *truncate-at-corruption* rule. A
//! torn tail (partial final write) is indistinguishable from corruption
//! and is discarded the same way; everything before it is intact by
//! construction.
//!
//! Backing stores implement [`Vfs`]: a real file ([`FileVfs`]), an
//! in-memory buffer ([`MemVfs`]), or the fault-injecting
//! [`FailpointFs`](crate::failpoint::FailpointFs).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic header written at offset 0 of every log.
pub const WAL_MAGIC: [u8; 8] = *b"XSBWAL01";

/// Frame overhead per record: 4-byte length + 8-byte checksum.
pub const FRAME_OVERHEAD: usize = 12;

/// FNV-1a 64-bit — the workspace's standard dependency-free checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one framed record to `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One record recovered from a scan: its LSN and payload byte range.
#[derive(Clone, Copy, Debug)]
pub struct RecordSpan {
    /// Byte offset of the frame start (the record's LSN).
    pub lsn: u64,
    /// Payload start offset within the scanned buffer.
    pub start: usize,
    /// Payload end offset within the scanned buffer.
    pub end: usize,
}

/// Result of scanning a log image.
#[derive(Debug)]
pub struct Scan {
    /// Valid records, in LSN order.
    pub records: Vec<RecordSpan>,
    /// Bytes of valid prefix (header + intact records). Everything past
    /// this offset is torn or corrupt and must be discarded.
    pub valid_len: u64,
    /// True when the stream held bytes past `valid_len` (torn tail or a
    /// checksum-corrupt record).
    pub truncated: bool,
    /// True when the stream was missing or had a bad magic header.
    pub bad_header: bool,
}

/// Scans a log byte image, applying the truncate-at-corruption rule.
pub fn scan_records(bytes: &[u8]) -> Scan {
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            truncated: !bytes.is_empty(),
            bad_header: true,
        };
    }
    let mut records = Vec::new();
    let mut off = WAL_MAGIC.len();
    loop {
        if off + FRAME_OVERHEAD > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        let start = off + FRAME_OVERHEAD;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() || fnv1a(&bytes[start..end]) != crc {
            break;
        }
        records.push(RecordSpan {
            lsn: off as u64,
            start,
            end,
        });
        off = end;
    }
    Scan {
        records,
        valid_len: off as u64,
        truncated: off < bytes.len(),
        bad_header: false,
    }
}

/// Backing store for a WAL: an append-only byte stream with explicit
/// durability points (`sync`) and atomic wholesale replacement
/// (`rewrite`, used by checkpoint truncation).
pub trait Vfs: Send {
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    fn sync(&mut self) -> io::Result<()>;
    fn read_all(&self) -> io::Result<Vec<u8>>;
    /// Atomically replaces the whole stream with `data` (durable once the
    /// call returns). Checkpoints rely on this being all-or-nothing.
    fn rewrite(&mut self, data: &[u8]) -> io::Result<()>;
    fn len(&self) -> u64;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory backing store: `sync` is a no-op (everything written is
/// considered durable). The deterministic default for tests and benches.
#[derive(Default)]
pub struct MemVfs {
    data: Vec<u8>,
}

impl MemVfs {
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// A store pre-loaded with an existing log image (e.g. a crash image).
    pub fn from_bytes(data: Vec<u8>) -> MemVfs {
        MemVfs { data }
    }
}

impl Vfs for MemVfs {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(data);
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.data.clone())
    }
    fn rewrite(&mut self, data: &[u8]) -> io::Result<()> {
        self.data = data.to_vec();
        Ok(())
    }
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// File-backed store. `rewrite` goes through a temp file + rename so a
/// crash mid-checkpoint leaves either the old or the new log, never a mix.
pub struct FileVfs {
    path: PathBuf,
    file: File,
    len: u64,
}

impl FileVfs {
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileVfs> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(FileVfs { path, file, len })
    }
}

impl Vfs for FileVfs {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
    fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        let mut buf = Vec::with_capacity(self.len as usize);
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
    fn rewrite(&mut self, data: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.len = data.len() as u64;
        Ok(())
    }
    fn len(&self) -> u64 {
        self.len
    }
}

/// A write-ahead log over a [`Vfs`]: appends framed records, tracks the
/// next LSN, and exposes sync/rewrite. Single-writer; callers serialize
/// access (the engine wraps this in a mutex).
pub struct Wal {
    vfs: Box<dyn Vfs>,
    len: u64,
}

impl Wal {
    /// Opens a log over `vfs`, writing the magic header if the store is
    /// empty. Returns the log plus the scan of any pre-existing records
    /// (recovery input). If the tail was torn/corrupt, the store is
    /// truncated back to the valid prefix before new appends.
    pub fn open(vfs: Box<dyn Vfs>) -> io::Result<(Wal, Scan)> {
        let mut vfs = vfs;
        if vfs.is_empty() {
            vfs.append(&WAL_MAGIC)?;
            vfs.sync()?;
            let len = vfs.len();
            return Ok((
                Wal { vfs, len },
                Scan {
                    records: Vec::new(),
                    valid_len: WAL_MAGIC.len() as u64,
                    truncated: false,
                    bad_header: false,
                },
            ));
        }
        let bytes = vfs.read_all()?;
        let scan = scan_records(&bytes);
        if scan.bad_header {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "WAL header missing or corrupt",
            ));
        }
        if scan.truncated {
            vfs.rewrite(&bytes[..scan.valid_len as usize])?;
        }
        let len = scan.valid_len;
        Ok((Wal { vfs, len }, scan))
    }

    /// Appends one record; returns its LSN. Not durable until [`sync`].
    ///
    /// [`sync`]: Wal::sync
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let lsn = self.len;
        let mut buf = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        frame_record(payload, &mut buf);
        self.vfs.append(&buf)?;
        self.len += buf.len() as u64;
        Ok(lsn)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.vfs.sync()
    }

    /// Atomically replaces the whole log with header + `payloads` (the
    /// checkpoint-truncation primitive).
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&WAL_MAGIC);
        for p in payloads {
            frame_record(p, &mut buf);
        }
        self.vfs.rewrite(&buf)?;
        self.len = buf.len() as u64;
        Ok(())
    }

    /// Bytes in the log (== the next record's LSN).
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Full current log image (recovery + tests).
    pub fn bytes(&self) -> io::Result<Vec<u8>> {
        self.vfs.read_all()
    }

    /// Access to the backing store (fault-injection tests downcast this).
    pub fn vfs_mut(&mut self) -> &mut dyn Vfs {
        &mut *self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_records() {
        let (mut wal, scan) = Wal::open(Box::new(MemVfs::new())).unwrap();
        assert!(scan.records.is_empty());
        let l1 = wal.append(b"first").unwrap();
        let l2 = wal.append(b"second record").unwrap();
        assert_eq!(l1, WAL_MAGIC.len() as u64);
        assert!(l2 > l1);
        let bytes = wal.bytes().unwrap();
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.truncated);
        assert_eq!(&bytes[scan.records[0].start..scan.records[0].end], b"first");
        assert_eq!(
            &bytes[scan.records[1].start..scan.records[1].end],
            b"second record"
        );
        assert_eq!(scan.records[0].lsn, l1);
        assert_eq!(scan.records[1].lsn, l2);
    }

    #[test]
    fn torn_tail_truncates() {
        let (mut wal, _) = Wal::open(Box::new(MemVfs::new())).unwrap();
        wal.append(b"keep me").unwrap();
        let mut bytes = wal.bytes().unwrap();
        let keep = bytes.len();
        // simulate a torn final write: half a frame of a second record
        let mut extra = Vec::new();
        frame_record(b"torn away", &mut extra);
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
        assert_eq!(scan.valid_len as usize, keep);
    }

    #[test]
    fn corrupt_middle_record_truncates_at_corruption() {
        let (mut wal, _) = Wal::open(Box::new(MemVfs::new())).unwrap();
        wal.append(b"alpha").unwrap();
        let l2 = wal.append(b"beta").unwrap();
        wal.append(b"gamma").unwrap();
        let mut bytes = wal.bytes().unwrap();
        // flip a payload byte of the middle record
        bytes[l2 as usize + FRAME_OVERHEAD] ^= 0xff;
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 1); // only "alpha" survives
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, l2);
    }

    #[test]
    fn reopen_truncates_torn_tail_in_store() {
        let (mut wal, _) = Wal::open(Box::new(MemVfs::new())).unwrap();
        wal.append(b"solid").unwrap();
        let mut bytes = wal.bytes().unwrap();
        bytes.extend_from_slice(&[0x55; 7]); // garbage tail
        let (wal2, scan) = Wal::open(Box::new(MemVfs::from_bytes(bytes))).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
        assert_eq!(wal2.size(), scan.valid_len);
    }

    #[test]
    fn rewrite_replaces_stream() {
        let (mut wal, _) = Wal::open(Box::new(MemVfs::new())).unwrap();
        for i in 0..50u8 {
            wal.append(&[i; 40]).unwrap();
        }
        let big = wal.size();
        wal.rewrite(&[b"checkpoint".to_vec()]).unwrap();
        assert!(wal.size() < big);
        let scan = scan_records(&wal.bytes().unwrap());
        assert_eq!(scan.records.len(), 1);
        let bytes = wal.bytes().unwrap();
        assert_eq!(
            &bytes[scan.records[0].start..scan.records[0].end],
            b"checkpoint"
        );
    }

    #[test]
    fn file_vfs_round_trip() {
        let dir = std::env::temp_dir().join(format!("xsb_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(Box::new(FileVfs::open(&path).unwrap())).unwrap();
            wal.append(b"persist me").unwrap();
            wal.sync().unwrap();
        }
        {
            let (wal, scan) = Wal::open(Box::new(FileVfs::open(&path).unwrap())).unwrap();
            assert_eq!(scan.records.len(), 1);
            let bytes = wal.bytes().unwrap();
            assert_eq!(
                &bytes[scan.records[0].start..scan.records[0].end],
                b"persist me"
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
