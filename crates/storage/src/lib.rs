//! # xsb-storage — persistent-store substrate
//!
//! Two roles from the paper:
//!
//! * **§4.6 (Interface with Persistent Store):** the bulk-load paths —
//!   general reader, formatted read, and object files ([`bulkload`]).
//! * **§5 Table 3 (the Sybase column):** a page/buffer-pool relational
//!   executor whose every tuple access pays buffer-management and latching
//!   costs ([`page`], [`buffer`], [`heap`], [`hashindex`], [`executor`]) —
//!   the substitution for the unavailable commercial RDBMS, exercising the
//!   same per-access overheads the paper attributes the ~100× factor to.

pub mod buffer;
pub mod bulkload;
pub mod executor;
pub mod hashindex;
pub mod heap;
pub mod page;

pub use buffer::{BufferPool, Disk, PageId};
pub use executor::{client_server_join, index_nested_loop_join, Table};
pub use heap::{Field, HeapFile, Rid};
