//! # xsb-storage — persistent-store substrate
//!
//! Two roles from the paper:
//!
//! * **§4.6 (Interface with Persistent Store):** backing stores for the
//!   bulk-load paths (the load drivers themselves live in `xsb-bench`,
//!   since they drive an `Engine` and this crate sits *below* the engine).
//! * **§5 Table 3 (the Sybase column):** a page/buffer-pool relational
//!   executor whose every tuple access pays buffer-management and latching
//!   costs ([`page`], [`buffer`], [`heap`], [`hashindex`], [`executor`]) —
//!   the substitution for the unavailable commercial RDBMS, exercising the
//!   same per-access overheads the paper attributes the ~100× factor to.
//!
//! Durability substrate (the engine's WAL is layered on top):
//!
//! * [`log`] — append-only write-ahead log framing (length-prefixed,
//!   checksummed records, LSN = byte offset) over a [`log::Vfs`] backing
//!   store (file, memory, or fault-injected).
//! * [`failpoint`] — deterministic fault injection ([`failpoint::FailpointFs`]):
//!   kill-at-byte, torn final sector, dropped fsyncs, crash images.

pub mod buffer;
pub mod executor;
pub mod failpoint;
pub mod hashindex;
pub mod heap;
pub mod log;
pub mod page;

pub use buffer::{BufferPool, Disk, PageId, WalLink};
pub use executor::{client_server_join, index_nested_loop_join, Table};
pub use failpoint::{shared_failpoint, CrashMode, FailpointFs, SharedFailpoint};
pub use heap::{Field, HeapFile, Rid};
pub use log::{scan_records, FileVfs, MemVfs, Vfs, Wal};
